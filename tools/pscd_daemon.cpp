// pscd_daemon: the networked serving tier as a standalone process.
//
// Binds a TCP port, builds the overlay network and DistributionService
// from the given flags, and serves wire-protocol frames until SIGINT /
// SIGTERM. Prints "listening on <port>" once ready so scripts (the CI
// serve-smoke job) can scrape the ephemeral port.
//
// Operational signals: SIGUSR1 logs a stats snapshot without stopping;
// when --drain-ms is set, SIGTERM drains (stop accepting, flush live
// connections, then exit) instead of stopping immediately. SIGINT
// always stops immediately. A stats line is printed on clean exit.
#include <csignal>

#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>

#include "pscd/cache/strategy_factory.h"
#include "pscd/net/daemon.h"
#include "pscd/util/args.h"

namespace {

pscd::net::Daemon* g_daemon = nullptr;
bool g_drainOnTerm = false;

void handleSignal(int sig) {
  if (g_daemon == nullptr) return;
  if (sig == SIGTERM && g_drainOnTerm) {
    g_daemon->stopDrain();
  } else {
    g_daemon->stop();
  }
}

void handleStatsSignal(int) {
  if (g_daemon != nullptr) g_daemon->requestStatsDump();
}

}  // namespace

int main(int argc, char** argv) {
  pscd::ArgParser args("pscd_daemon",
                       "Networked pscd broker/proxy daemon: serves the "
                       "wire protocol over TCP in front of a "
                       "DistributionService.");
  args.addOption("port", "TCP port to bind (0 = ephemeral)", "0");
  args.addOption("bind", "IPv4 address to bind", "127.0.0.1");
  args.addOption("proxies", "number of proxies in the overlay", "16");
  args.addOption("transit", "number of transit nodes in the overlay", "8");
  args.addOption("strategy", "cache strategy (GD*, SUB, SG1, ...)", "GD*");
  args.addOption("beta", "GD* beta balance factor", "1.0");
  args.addOption("capacity", "cache capacity per proxy in bytes",
                 std::to_string(1u << 20));
  args.addOption("seed", "overlay topology seed", "42");
  args.addOption("max-connections", "concurrent connection cap", "1024");
  args.addOption("idle-timeout-ms",
                 "reap connections idle this long (0 = never)", "0");
  args.addOption("read-timeout-ms",
                 "reap connections stuck mid-frame this long (0 = never)",
                 "0");
  args.addOption("write-timeout-ms",
                 "reap connections with an unflushed response this long "
                 "(0 = never)",
                 "0");
  args.addOption("shed",
                 "per-batch REQUEST load-shedding threshold (0 = off)", "0");
  args.addOption("drain-ms",
                 "drain budget for SIGTERM: stop accepting, flush live "
                 "connections up to this long (0 = stop immediately)",
                 "0");
  if (!args.parse(argc, argv)) {
    if (!args.error().empty()) {
      std::fprintf(stderr, "%s\n%s", args.error().c_str(),
                   args.help().c_str());
      return 2;
    }
    std::fputs(args.help().c_str(), stdout);
    return 0;
  }

  try {
    pscd::net::ServeHostConfig hostConfig;
    hostConfig.numProxies =
        static_cast<std::uint32_t>(args.optionInt("proxies"));
    hostConfig.numTransitNodes =
        static_cast<std::uint32_t>(args.optionInt("transit"));
    hostConfig.networkSeed = static_cast<std::uint64_t>(args.optionInt("seed"));
    hostConfig.strategy = pscd::parseStrategyKind(args.option("strategy"));
    hostConfig.beta = args.optionDouble("beta");
    hostConfig.capacityPerProxy =
        static_cast<pscd::Bytes>(args.optionInt("capacity"));

    pscd::net::DaemonConfig daemonConfig;
    daemonConfig.bindAddress = args.option("bind");
    daemonConfig.port = static_cast<std::uint16_t>(args.optionInt("port"));
    daemonConfig.maxConnections =
        static_cast<std::size_t>(args.optionInt("max-connections"));
    daemonConfig.idleTimeoutSeconds =
        args.optionDouble("idle-timeout-ms") / 1000.0;
    daemonConfig.readTimeoutSeconds =
        args.optionDouble("read-timeout-ms") / 1000.0;
    daemonConfig.writeTimeoutSeconds =
        args.optionDouble("write-timeout-ms") / 1000.0;
    daemonConfig.shedThreshold =
        static_cast<std::size_t>(args.optionInt("shed"));
    const double drainMs = args.optionDouble("drain-ms");
    if (drainMs > 0) daemonConfig.drainSeconds = drainMs / 1000.0;

    pscd::net::ServeHost host(hostConfig, daemonConfig);
    g_daemon = &host.daemon();
    g_drainOnTerm = drainMs > 0;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    std::signal(SIGUSR1, handleStatsSignal);

    // Line-buffered stdout handshake for scripts that spawn the daemon
    // and need the resolved ephemeral port.
    std::printf("listening on %u\n", host.daemon().port());
    std::fflush(stdout);

    host.daemon().run();
    g_daemon = nullptr;

    const pscd::net::DaemonStats& stats = host.daemon().stats();
    const pscd::net::ServeCounters& counters = host.sink().counters();
    std::printf(
        "served %llu frames (%llu connections, %llu decode errors, "
        "%llu error responses); %llu requests, hit ratio %.3f\n",
        static_cast<unsigned long long>(stats.framesHandled),
        static_cast<unsigned long long>(stats.accepted),
        static_cast<unsigned long long>(stats.decodeErrors),
        static_cast<unsigned long long>(stats.errorResponses),
        static_cast<unsigned long long>(counters.requests),
        counters.hitRatio());
    std::printf("%s\n", pscd::net::formatDaemonStats(stats).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pscd_daemon: %s\n", e.what());
    return 1;
  }
}
