#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the library, tools, bench,
# example, and test sources against a compile_commands.json database.
#
#   tools/run_tidy.sh [--strict] [build-dir]
#
# build-dir defaults to build/tidy (configured on demand). With
# --strict a missing clang-tidy binary is an error; without it the run
# is skipped so machines without clang can still use the script in
# pre-commit hooks. Any warning fails the run (WarningsAsErrors: '*').
#
# --strict may appear in any argument position, and is implied when
# $CI is set: a CI runner with a missing binary must fail loudly, never
# silently skip the lint gate.
set -euo pipefail

cd "$(dirname "$0")/.."

strict=0
if [[ -n "${CI:-}" ]]; then
  strict=1
fi
build_dir=""
for arg in "$@"; do
  case "$arg" in
    --strict) strict=1 ;;
    -*)
      echo "usage: tools/run_tidy.sh [--strict] [build-dir]" >&2
      exit 2
      ;;
    *) build_dir="$arg" ;;
  esac
done
build_dir="${build_dir:-build/tidy}"

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  if [[ "$strict" == 1 ]]; then
    echo "error: $tidy_bin not found (install clang-tidy or set CLANG_TIDY)" >&2
    exit 2
  fi
  echo "run_tidy: $tidy_bin not found; skipping lint (use --strict to fail)" >&2
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy: configuring $build_dir for compile_commands.json"
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPSCD_FUZZ=ON >/dev/null
fi

mapfile -t sources < <(git ls-files \
  'src/**/*.cpp' 'tools/*.cpp' 'bench/*.cpp' 'examples/*.cpp' \
  'tests/*.cpp' 'fuzz/*.cpp')

echo "run_tidy: linting ${#sources[@]} files with $("$tidy_bin" --version | head -1)"
fail=0
for src in "${sources[@]}"; do
  if ! "$tidy_bin" -p "$build_dir" --quiet "$src"; then
    fail=1
  fi
done

if [[ "$fail" != 0 ]]; then
  echo "run_tidy: FAILED (warnings above; the tree must stay tidy-clean)" >&2
  exit 1
fi
echo "run_tidy: clean"
