// pscd_chaos: the ChaosProxy as a standalone process, for driving an
// out-of-process pscd_daemon through injected faults (the CI
// resilience-smoke job, manual soak runs).
//
// Listens on --bind:--port, forwards every connection to --connect
// HOST:PORT, and applies the configured faults symmetrically to both
// directions of each (faulted) connection. Prints "listening on <port>"
// once ready so scripts can scrape the ephemeral port, and a
// formatChaosStats line on clean exit. SIGINT / SIGTERM stop the proxy.
#include <csignal>

#include <cstdint>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>

#include "pscd/net/chaos.h"
#include "pscd/util/args.h"

namespace {

pscd::net::ChaosProxy* g_proxy = nullptr;

void handleSignal(int) {
  if (g_proxy != nullptr) g_proxy->stop();
}

}  // namespace

int main(int argc, char** argv) {
  pscd::ArgParser args("pscd_chaos",
                       "Deterministic fault-injecting TCP proxy for the "
                       "pscd wire protocol: forwards to --connect while "
                       "adding latency, jitter, throttling, stalls, "
                       "truncation and resets from a seeded schedule.");
  args.addOption("port", "TCP port to bind (0 = ephemeral)", "0");
  args.addOption("bind", "IPv4 address to bind", "127.0.0.1");
  args.addOption("connect", "forward target as HOST:PORT", "");
  args.addOption("seed", "jitter RNG seed", "1");
  args.addOption("latency-ms", "fixed delay per forwarded chunk", "0");
  args.addOption("jitter-ms", "uniform extra delay per chunk", "0");
  args.addOption("bps", "1-byte-dribble throttle rate (0 = off)", "0");
  args.addOption("stall-bytes",
                 "per direction: forward N bytes then hang (0 = off)", "0");
  args.addOption("truncate-bytes",
                 "per direction: forward N bytes then half-close (0 = off)",
                 "0");
  args.addOption("reset-bytes",
                 "RST both sides once the client sent N bytes (0 = off)",
                 "0");
  args.addOption("fault-conns",
                 "only the first N connections get faults (0 = all)", "0");
  if (!args.parse(argc, argv)) {
    if (!args.error().empty()) {
      std::fprintf(stderr, "%s\n%s", args.error().c_str(),
                   args.help().c_str());
      return 2;
    }
    std::fputs(args.help().c_str(), stdout);
    return 0;
  }

  try {
    pscd::net::ChaosConfig config;
    config.bindAddress = args.option("bind");
    config.port = static_cast<std::uint16_t>(args.optionInt("port"));
    const std::string connect = args.option("connect");
    const std::size_t colon = connect.rfind(':');
    if (connect.empty() || colon == std::string::npos) {
      throw std::invalid_argument("--connect must be HOST:PORT");
    }
    config.targetAddress = connect.substr(0, colon);
    config.targetPort = static_cast<std::uint16_t>(
        std::stoul(connect.substr(colon + 1)));
    config.seed = static_cast<std::uint64_t>(args.optionInt("seed"));
    config.clientToServer.latencySeconds =
        args.optionDouble("latency-ms") / 1000.0;
    config.clientToServer.jitterSeconds =
        args.optionDouble("jitter-ms") / 1000.0;
    config.clientToServer.bytesPerSecond = args.optionDouble("bps");
    config.clientToServer.stallAfterBytes =
        static_cast<std::uint64_t>(args.optionInt("stall-bytes"));
    config.clientToServer.truncateAfterBytes =
        static_cast<std::uint64_t>(args.optionInt("truncate-bytes"));
    config.serverToClient = config.clientToServer;
    config.resetAfterClientBytes =
        static_cast<std::uint64_t>(args.optionInt("reset-bytes"));
    config.faultConnections =
        static_cast<std::uint32_t>(args.optionInt("fault-conns"));

    pscd::net::ChaosProxy proxy(config);
    g_proxy = &proxy;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);

    // Line-buffered handshake, same shape as pscd_daemon's.
    std::printf("listening on %u\n", proxy.port());
    std::fflush(stdout);

    proxy.run();
    g_proxy = nullptr;

    std::printf("%s\n", pscd::net::formatChaosStats(proxy.stats()).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pscd_chaos: %s\n", e.what());
    return 1;
  }
}
