// pscd_sim: command-line front end to the simulator. Runs one strategy
// over a canonical or customized trace and reports hit ratio and
// traffic; optionally dumps the hourly series as CSV.
//
//   $ pscd_sim --trace NEWS --strategy SG2 --capacity 0.05
//   $ pscd_sim --trace ALT --strategy "GD*" --sq 0.5 --hourly-csv h.csv
#include <cstdio>
#include <fstream>
#include <iostream>

#include "pscd/pscd.h"
#include "pscd/util/args.h"
#include "pscd/version.h"

using namespace pscd;

int main(int argc, char** argv) {
  ArgParser args("pscd_sim",
                 "content-distribution simulation for publish/subscribe "
                 "(Chen, LaPaugh & Singh, Middleware 2003), pscd v" +
                     std::string(kVersion));
  args.addOption("trace", "NEWS (Zipf 1.5) or ALT (Zipf 1.0)", "NEWS");
  args.addOption("strategy",
                 "GD*, SUB, SG1, SG2, SR, DM, DC-FP, DC-AP, DC-LAP, LRU, "
                 "GDS, LFU-DA",
                 "SG2");
  args.addOption("capacity", "cache capacity fraction of unique bytes",
                 "0.05");
  args.addOption("sq", "subscription quality in (0, 1]", "1.0");
  args.addOption("beta", "GD* balance factor; 'auto' = paper setting",
                 "auto");
  args.addOption("scheme", "push scheme: always | necessary", "always");
  args.addOption("seed", "workload seed", "42");
  args.addOption("topology-seed", "overlay topology seed", "7");
  args.addOption("requests", "total requests (0 = paper default)", "0");
  args.addOption("pages", "distinct pages (0 = paper default)", "0");
  args.addOption("proxies", "number of proxies (0 = paper default)", "0");
  args.addOption("hourly-csv", "write hour,hit_ratio,traffic_pages CSV", "");
  args.addOption("fault-seed", "failure-model seed (independent of --seed)",
                 "0");
  args.addOption("fault-proxy-rate", "proxy crashes per proxy per day", "0");
  args.addOption("fault-proxy-downtime", "mean proxy downtime in hours", "1");
  args.addOption("fault-link-rate", "link failures per link per day", "0");
  args.addOption("fault-link-downtime", "mean link downtime in hours", "0.5");
  args.addOption("fault-push-loss", "per-push in-flight loss probability",
                 "0");
  args.addOption("fault-fetch-fail", "per-fetch-attempt failure probability",
                 "0");
  args.addOption("fault-retries", "max fetch retries before degrading", "3");
  args.addOption("fault-backoff-ms", "base retry backoff in ms (doubles)",
                 "50");
  args.addFlag("fault-warm-restart",
               "restarted proxies keep their cache (default: cold, cache "
               "wiped)");
  args.addFlag("fault-no-failover",
               "fail requests at a crashed proxy instead of fetching "
               "straight from the publisher");
  args.addFlag("self-check",
               "validate engine/broker/cache invariants after each "
               "simulated hour (CheckFailure aborts the run)");
  args.addFlag("quiet", "print only the hit ratio");

  if (!args.parse(argc, argv)) {
    if (!args.error().empty()) {
      std::fprintf(stderr, "error: %s\n\n", args.error().c_str());
    }
    std::fputs(args.help().c_str(), args.error().empty() ? stdout : stderr);
    return args.error().empty() ? 0 : 2;
  }

  try {
    const std::string traceArg = args.option("trace");
    const TraceKind trace = traceArg == "NEWS"  ? TraceKind::kNews
                            : traceArg == "ALT" ? TraceKind::kAlternative
                                                : throw std::invalid_argument(
                                                      "--trace must be NEWS "
                                                      "or ALT");
    const StrategyKind kind = parseStrategyKind(args.option("strategy"));
    const double capacity = args.optionDouble("capacity");
    const double sq = args.optionDouble("sq");

    WorkloadParams params = traceParams(trace, sq);
    params.seed = static_cast<std::uint64_t>(args.optionInt("seed"));
    if (const auto n = args.optionInt("requests"); n > 0) {
      params.request.totalRequests = static_cast<std::uint64_t>(n);
    }
    if (const auto n = args.optionInt("pages"); n > 0) {
      params.publishing.numPages = static_cast<std::uint32_t>(n);
      params.publishing.numUpdatedPages =
          static_cast<std::uint32_t>(n * 2 / 5);
    }
    if (const auto n = args.optionInt("proxies"); n > 0) {
      params.request.numProxies = static_cast<std::uint32_t>(n);
    }

    const bool quiet = args.flag("quiet");
    if (!quiet) std::printf("generating %s workload...\n", traceArg.c_str());
    const Workload workload = buildWorkload(params);

    Rng topoRng(static_cast<std::uint64_t>(args.optionInt("topology-seed")));
    NetworkParams np;
    np.numProxies = workload.numProxies();
    const Network network(np, topoRng);

    SimConfig config;
    config.strategy = kind;
    config.capacityFraction = capacity;
    config.beta = args.option("beta") == "auto"
                      ? paperBeta(kind, trace, capacity)
                      : args.optionDouble("beta");
    const std::string scheme = args.option("scheme");
    if (scheme == "always") {
      config.pushScheme = PushScheme::kAlwaysPushing;
    } else if (scheme == "necessary") {
      config.pushScheme = PushScheme::kPushingWhenNecessary;
    } else {
      throw std::invalid_argument("--scheme must be always or necessary");
    }
    config.collectHourly = !args.option("hourly-csv").empty();
    config.selfCheckHourly = args.flag("self-check");

    config.faults.seed =
        static_cast<std::uint64_t>(args.optionInt("fault-seed"));
    config.faults.proxyFailuresPerDay = args.optionDouble("fault-proxy-rate");
    config.faults.proxyMeanDowntimeHours =
        args.optionDouble("fault-proxy-downtime");
    config.faults.linkFailuresPerDay = args.optionDouble("fault-link-rate");
    config.faults.linkMeanDowntimeHours =
        args.optionDouble("fault-link-downtime");
    config.faults.pushLossProbability = args.optionDouble("fault-push-loss");
    config.faults.fetchFailureProbability =
        args.optionDouble("fault-fetch-fail");
    config.faults.warmRestart = args.flag("fault-warm-restart");
    config.faults.publisherFailover = !args.flag("fault-no-failover");
    config.faults.retry.maxRetries =
        static_cast<std::uint32_t>(args.optionInt("fault-retries"));
    config.faults.retry.backoffBaseMs = args.optionDouble("fault-backoff-ms");

    Simulator sim(workload, network, config);
    const SimMetrics m = sim.run();

    if (config.selfCheckHourly && !quiet) {
      std::printf("self-check       : invariants OK after every hour\n");
    }
    if (quiet) {
      std::printf("%.6f\n", m.hitRatio());
    } else {
      std::printf(
          "strategy %s, trace %s, capacity %.1f%%, SQ %.2f, beta %.4g, "
          "scheme %s\n",
          std::string(strategyName(kind)).c_str(), traceArg.c_str(),
          100 * capacity, sq, config.beta, scheme.c_str());
      std::printf("hit ratio H      : %.2f%% (%llu / %llu, %llu stale)\n",
                  100 * m.hitRatio(),
                  static_cast<unsigned long long>(m.hits()),
                  static_cast<unsigned long long>(m.requests()),
                  static_cast<unsigned long long>(m.staleMisses()));
      std::printf("mean response    : %.1f ms\n", m.meanResponseTime());
      std::printf("push traffic     : %llu pages, %.1f MB\n",
                  static_cast<unsigned long long>(m.traffic().pushPages),
                  m.traffic().pushBytes / 1e6);
      std::printf("fetch traffic    : %llu pages, %.1f MB\n",
                  static_cast<unsigned long long>(m.traffic().fetchPages),
                  m.traffic().fetchBytes / 1e6);
      if (config.faults.enabled()) {
        std::printf("availability     : %.4f (%llu of %llu unserved)\n",
                    m.availability(),
                    static_cast<unsigned long long>(m.unavailableRequests()),
                    static_cast<unsigned long long>(m.requests()));
        std::printf("degraded serving : %llu stale serves, %llu failovers\n",
                    static_cast<unsigned long long>(m.staleServes()),
                    static_cast<unsigned long long>(m.failovers()));
        std::printf("fetch retries    : %llu (%.3f per request)\n",
                    static_cast<unsigned long long>(m.totalRetries()),
                    m.retriesPerRequest());
        std::printf("lost pushes      : %llu pages, %.1f MB\n",
                    static_cast<unsigned long long>(
                        m.traffic().lostPushPages),
                    m.traffic().lostPushBytes / 1e6);
      }
    }

    if (config.collectHourly) {
      std::ofstream out(args.option("hourly-csv"));
      if (!out) throw std::runtime_error("cannot open hourly CSV for write");
      CsvWriter csv(out);
      csv.header({"hour", "hit_ratio", "traffic_pages"});
      for (std::size_t h = 0; h < m.hours(); ++h) {
        csv.field(static_cast<std::uint64_t>(h))
            .field(m.hourlyHitRatio(h))
            .field(m.hourlyTrafficPages(h));
        csv.endRow();
      }
      if (!quiet) {
        std::printf("hourly series    : %s (%zu rows)\n",
                    args.option("hourly-csv").c_str(), m.hours());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
