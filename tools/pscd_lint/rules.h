// Rule registry for pscd_lint.
//
// Every rule is a token-stream matcher over one file (plus declaration
// info merged from the sibling header, so `entries_` declared in
// value_cache.h is known while linting value_cache.cpp). Rules carry a
// path scope: determinism rules about container iteration only apply
// inside src/pscd/, the float-compare rule exempts tests/, and a small
// number of files are sanctioned homes for otherwise-banned constructs
// (util/wallclock.h for clocks, util/check.h for throw,
// bench/bench_common.h for environment access).
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace pscd_lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (path != o.path) return path < o.path;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

/// Identifiers whose declared type matters to a rule, harvested in a
/// pre-pass over the file and its sibling header.
struct DeclInfo {
  std::set<std::string> unorderedNames;  // std::unordered_{map,set} vars
  std::set<std::string> ptrVectorNames;  // std::vector<T*> / vector<unique_ptr>
  std::set<std::string> floatNames;      // double / float vars & members
  std::set<std::string> mapNames;        // std::map / std::unordered_map vars
};

DeclInfo collectDecls(const std::vector<Token>& tokens);
void mergeDecls(DeclInfo& into, const DeclInfo& from);

/// One `PSCD_HOT`-annotated function, harvested from the token stream
/// with brace-depth tracking (util/hot.h documents the annotation).
/// Token indexes are into the lexed file; -1 marks an absent part
/// (a declaration without a body has bodyBegin = bodyEnd = -1).
struct HotRegion {
  std::string name;    // identifier before the parameter list
  int line = 0;        // line of the PSCD_HOT token
  int paramBegin = -1;  // index of the '(' opening the parameter list
  int paramEnd = -1;    // index of the matching ')'
  int bodyBegin = -1;   // index of the '{' opening the body
  int bodyEnd = -1;     // index of the matching '}'
};

/// Scans the token stream for PSCD_HOT annotations and resolves each to
/// its function's parameter list and (brace-matched) body.
std::vector<HotRegion> collectHotRegions(const std::vector<Token>& tokens);

struct FileContext {
  std::string effectivePath;  // after any as-path directive
  const std::vector<Token>* tokens = nullptr;
  const DeclInfo* decls = nullptr;
  const std::vector<HotRegion>* hotRegions = nullptr;
};

struct Rule {
  std::string name;
  std::string group;    // "determinism", "correctness", or "performance"
  std::string summary;  // one line, shown by --list-rules
  std::string hint;     // remediation, shown by --fix-hints
  std::function<bool(const std::string& path)> inScope;
  std::function<void(const FileContext&, std::vector<Finding>&)> check;
};

/// The registered rules, in stable (registration) order.
const std::vector<Rule>& ruleRegistry();

/// True when `name` names a registered rule (used to validate allow()
/// and expect() directives).
bool isKnownRule(const std::string& name);

}  // namespace pscd_lint
