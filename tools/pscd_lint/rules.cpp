#include "rules.h"

#include <array>

namespace pscd_lint {
namespace {

using Tokens = std::vector<Token>;

bool isIdent(const Token& t, const char* s) {
  return t.kind == Token::Kind::kIdent && t.text == s;
}
bool isPunct(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}
bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// tokens[i] must be "<"; returns the index one past the matching ">",
/// or -1 when unbalanced within the file. `>>` never appears as a
/// single token (the lexer splits it), so depth tracking is exact.
int skipTemplateArgs(const Tokens& toks, int i) {
  int depth = 0;
  const int n = static_cast<int>(toks.size());
  for (int j = i; j < n; ++j) {
    if (isPunct(toks[j], "<")) {
      ++depth;
    } else if (isPunct(toks[j], ">")) {
      if (--depth == 0) return j + 1;
    } else if (isPunct(toks[j], ";") || isPunct(toks[j], "{")) {
      return -1;  // ran off the declaration: it was a comparison
    }
  }
  return -1;
}

/// True when the template argument list starting at "<" (index i)
/// contains any of the given identifier tokens or a raw `*`.
bool templateArgsContain(const Tokens& toks, int i, int end,
                         const std::set<std::string>& idents,
                         bool matchStar) {
  for (int j = i; j < end; ++j) {
    if (matchStar && isPunct(toks[j], "*")) return true;
    if (toks[j].kind == Token::Kind::kIdent && idents.count(toks[j].text))
      return true;
  }
  return false;
}

void addFinding(std::vector<Finding>& out, const FileContext& ctx, int line,
                const std::string& rule, const std::string& message) {
  out.push_back(Finding{ctx.effectivePath, line, rule, message});
}

// ---------------------------------------------------------------------------
// Declaration harvesting
// ---------------------------------------------------------------------------

bool isFloatKeyword(const Token& t) {
  return isIdent(t, "double") || isIdent(t, "float");
}

}  // namespace

DeclInfo collectDecls(const Tokens& toks) {
  DeclInfo info;
  const int n = static_cast<int>(toks.size());
  static const std::set<std::string> kSmartPtr = {"unique_ptr", "shared_ptr"};
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if ((t.text == "unordered_map" || t.text == "unordered_set" ||
         t.text == "unordered_multimap" || t.text == "unordered_multiset") &&
        i + 1 < n && isPunct(toks[i + 1], "<")) {
      int j = skipTemplateArgs(toks, i + 1);
      if (j < 0) continue;
      // Optional ::iterator / ::const_iterator, then cv/ref qualifiers.
      if (j + 1 < n && isPunct(toks[j], "::") &&
          (isIdent(toks[j + 1], "iterator") ||
           isIdent(toks[j + 1], "const_iterator"))) {
        j += 2;
      }
      while (j < n && (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
                       isIdent(toks[j], "const")))
        ++j;
      if (j < n && toks[j].kind == Token::Kind::kIdent)
        info.unorderedNames.insert(toks[j].text);
    } else if (t.text == "vector" && i + 1 < n && isPunct(toks[i + 1], "<")) {
      int j = skipTemplateArgs(toks, i + 1);
      if (j < 0) continue;
      if (!templateArgsContain(toks, i + 1, j, kSmartPtr, true)) continue;
      while (j < n && (isPunct(toks[j], "&") || isIdent(toks[j], "const")))
        ++j;
      if (j < n && toks[j].kind == Token::Kind::kIdent)
        info.ptrVectorNames.insert(toks[j].text);
    } else if (isFloatKeyword(t)) {
      // `double x` declares x — unless this is a template argument
      // (`vector<double>`), a cast `(double)` / `static_cast<double>`,
      // or a function return type `double f(`.
      if (i > 0 && (isPunct(toks[i - 1], "<") || isPunct(toks[i - 1], ","))) {
        // could still be a parameter: `f(double x, float y)` has `,`
        // before float — allow that case through when an identifier
        // follows directly.
        if (!(i + 1 < n && toks[i + 1].kind == Token::Kind::kIdent)) continue;
      }
      int j = i + 1;
      while (j < n && (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
                       isIdent(toks[j], "const")))
        ++j;
      if (j < n && toks[j].kind == Token::Kind::kIdent &&
          !(j + 1 < n && isPunct(toks[j + 1], "(")))
        info.floatNames.insert(toks[j].text);
    }
  }
  return info;
}

void mergeDecls(DeclInfo& into, const DeclInfo& from) {
  into.unorderedNames.insert(from.unorderedNames.begin(),
                             from.unorderedNames.end());
  into.ptrVectorNames.insert(from.ptrVectorNames.begin(),
                             from.ptrVectorNames.end());
  into.floatNames.insert(from.floatNames.begin(), from.floatNames.end());
}

namespace {

// ---------------------------------------------------------------------------
// Scope predicates
// ---------------------------------------------------------------------------

bool anywhere(const std::string&) { return true; }
bool inLibrary(const std::string& p) { return startsWith(p, "src/"); }
bool inCore(const std::string& p) { return startsWith(p, "src/pscd/"); }
bool notInTests(const std::string& p) { return !startsWith(p, "tests/"); }

// ---------------------------------------------------------------------------
// determinism: wall-clock
// ---------------------------------------------------------------------------

void checkWallClock(const FileContext& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> kBanned = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
      "localtime",     "gmtime",        "strftime",
      "mktime",        "ctime",         "difftime",
      "file_clock",    "utc_clock"};
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (kBanned.count(t.text)) {
      addFinding(out, ctx, t.line, "wall-clock",
                 "'" + t.text +
                     "' reads the wall clock; route timing through "
                     "pscd/util/wallclock.h or derive it from SimTime");
      continue;
    }
    // time( / clock( as free-function calls; member calls like
    // `r.time` or `metrics.clock(...)` on project types are fine.
    if ((t.text == "time" || t.text == "clock") && i + 1 < n &&
        isPunct(toks[i + 1], "(")) {
      if (i > 0 && (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->")))
        continue;
      addFinding(out, ctx, t.line, "wall-clock",
                 "'" + t.text +
                     "()' reads the wall clock; simulations must draw "
                     "time from the event loop, diagnostics from "
                     "pscd/util/wallclock.h");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: random-source
// ---------------------------------------------------------------------------

void checkRandomSource(const FileContext& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> kBannedBare = {
      "random_device", "mt19937",        "mt19937_64",
      "minstd_rand",   "minstd_rand0",   "default_random_engine",
      "ranlux24",      "ranlux48",       "knuth_b",
      "random_shuffle"};
  static const std::set<std::string> kBannedCall = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "random", "srandom"};
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (kBannedBare.count(t.text)) {
      addFinding(out, ctx, t.line, "random-source",
                 "'" + t.text +
                     "' is a non-reproducible / implementation-defined "
                     "random source; use pscd::Rng (util/rng.h)");
    } else if (kBannedCall.count(t.text) && i + 1 < n &&
               isPunct(toks[i + 1], "(") &&
               !(i > 0 && (isPunct(toks[i - 1], ".") ||
                           isPunct(toks[i - 1], "->")))) {
      addFinding(out, ctx, t.line, "random-source",
                 "'" + t.text +
                     "()' is seeded from global state; use pscd::Rng "
                     "with an explicit seed (util/rng.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: unordered-iter
// ---------------------------------------------------------------------------

bool fileWritesOutput(const Tokens& toks) {
  static const std::set<std::string> kSinks = {
      "CsvWriter", "CsvSink",  "SimMetrics", "cout",   "cerr",  "clog",
      "printf",    "fprintf",  "ostream",    "ofstream", "Logger"};
  for (const Token& t : toks) {
    if (t.kind == Token::Kind::kIdent && kSinks.count(t.text)) return true;
    if (isPunct(t, "<<")) return true;
  }
  return false;
}

/// If the token range [begin, end) is a plain object path such as
/// `entries_`, `this->pages_` or `obj.map_`, returns the final
/// identifier; otherwise "".
std::string basePathIdent(const Tokens& toks, int begin, int end) {
  std::string last;
  for (int j = begin; j < end; ++j) {
    const Token& t = toks[j];
    if (t.kind == Token::Kind::kIdent) {
      last = t.text;
    } else if (isPunct(t, ".") || isPunct(t, "->")) {
      continue;
    } else {
      return "";  // calls, indexing, arithmetic: not a plain path
    }
  }
  return last;
}

void checkUnorderedIter(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  if (!fileWritesOutput(toks)) return;
  const std::set<std::string>& names = ctx.decls->unorderedNames;
  if (names.empty()) return;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    // Range-for over an unordered container.
    if (isIdent(toks[i], "for") && i + 1 < n && isPunct(toks[i + 1], "(")) {
      int depth = 0;
      int colon = -1, close = -1;
      for (int j = i + 1; j < n; ++j) {
        if (isPunct(toks[j], "(")) {
          ++depth;
        } else if (isPunct(toks[j], ")")) {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (depth == 1 && isPunct(toks[j], ":") && colon < 0) {
          colon = j;
        }
      }
      if (colon >= 0 && close >= 0) {
        const std::string base = basePathIdent(toks, colon + 1, close);
        if (!base.empty() && names.count(base)) {
          addFinding(out, ctx, toks[i].line, "unordered-iter",
                     "range-for over unordered container '" + base +
                         "' in output-writing code; iteration order is "
                         "implementation-defined — iterate sorted keys "
                         "or an ordered mirror index");
        }
      }
    }
    // Explicit iterator walk: name.begin( / name.cbegin(. A lone
    // .end() is not flagged — `find(k) != m.end()` never iterates.
    if (toks[i].kind == Token::Kind::kIdent && names.count(toks[i].text) &&
        i + 2 < n && isPunct(toks[i + 1], ".") &&
        (isIdent(toks[i + 2], "begin") || isIdent(toks[i + 2], "cbegin")) &&
        i + 3 < n && isPunct(toks[i + 3], "(")) {
      addFinding(out, ctx, toks[i].line, "unordered-iter",
                 "iterator walk over unordered container '" + toks[i].text +
                     "' in output-writing code; iteration order is "
                     "implementation-defined — iterate sorted keys or "
                     "an ordered mirror index");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: ptr-order
// ---------------------------------------------------------------------------

void checkPtrOrder(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  static const std::set<std::string> kNone;
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if ((t.text == "less" || t.text == "greater" || t.text == "hash") &&
        i + 1 < n && isPunct(toks[i + 1], "<")) {
      int j = skipTemplateArgs(toks, i + 1);
      if (j > 0 && templateArgsContain(toks, i + 1, j, kNone, true)) {
        addFinding(out, ctx, t.line, "ptr-order",
                   "std::" + t.text +
                       " over a pointer type orders/hashes by address, "
                       "which varies run to run; key on a stable id "
                       "instead");
      }
    }
    // Smart-pointer address comparison: `.get() <` / `.get() >=` ...
    if (t.text == "get" && i >= 1 && isPunct(toks[i - 1], ".") &&
        i + 3 < n && isPunct(toks[i + 1], "(") && isPunct(toks[i + 2], ")")) {
      const Token& after = toks[i + 3];
      if (isPunct(after, "<") || isPunct(after, ">") ||
          isPunct(after, "<=") || isPunct(after, ">=")) {
        addFinding(out, ctx, t.line, "ptr-order",
                   "relational comparison of smart-pointer addresses is "
                   "address-order nondeterminism; compare stable ids");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: ptr-sort
// ---------------------------------------------------------------------------

void checkPtrSort(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const std::set<std::string>& names = ctx.decls->ptrVectorNames;
  if (names.empty()) return;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i + 12 < n; ++i) {
    if (!(isIdent(toks[i], "sort") || isIdent(toks[i], "stable_sort")))
      continue;
    if (!isPunct(toks[i + 1], "(")) continue;
    // sort( X .begin() , X .end() )  — the two-argument, operator< form.
    int j = i + 2;
    if (toks[j].kind != Token::Kind::kIdent || !names.count(toks[j].text))
      continue;
    const std::string& name = toks[j].text;
    if (isPunct(toks[j + 1], ".") && isIdent(toks[j + 2], "begin") &&
        isPunct(toks[j + 3], "(") && isPunct(toks[j + 4], ")") &&
        isPunct(toks[j + 5], ",") && isIdent(toks[j + 6], name.c_str()) &&
        isPunct(toks[j + 7], ".") && isIdent(toks[j + 8], "end") &&
        isPunct(toks[j + 9], "(") && isPunct(toks[j + 10], ")") &&
        isPunct(toks[j + 11], ")")) {
      addFinding(out, ctx, toks[i].line, "ptr-sort",
                 "std::" + toks[i].text + " of pointer container '" + name +
                     "' without a comparator sorts by address; pass a "
                     "named comparator over stable fields");
    }
  }
}

// ---------------------------------------------------------------------------
// correctness: bare-assert
// ---------------------------------------------------------------------------

void checkBareAssert(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i + 1 < n; ++i) {
    if (isIdent(toks[i], "assert") && isPunct(toks[i + 1], "(")) {
      addFinding(out, ctx, toks[i].line, "bare-assert",
                 "assert() aborts and compiles out under NDEBUG; use "
                 "PSCD_CHECK / PSCD_DCHECK (util/check.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// correctness: throw-site
// ---------------------------------------------------------------------------

void checkThrowSite(const FileContext& ctx, std::vector<Finding>& out) {
  if (ctx.effectivePath == "src/pscd/util/check.h") return;
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    if (!isIdent(toks[i], "throw")) continue;
    // `noexcept` or exception-spec contexts: `throw (`? Legacy dynamic
    // exception specifications do not appear in this codebase; treat
    // `throw` followed by `;` as a bare rethrow (allowed).
    if (i + 1 < n && isPunct(toks[i + 1], ";")) continue;
    // Sanctioned: direct construction of a std:: exception type — the
    // API-contract idiom kept by PR 1 (tests EXPECT_THROW on the exact
    // std type). Everything else routes through PSCD_CHECK.
    if (i + 4 < n && isIdent(toks[i + 1], "std") &&
        isPunct(toks[i + 2], "::") &&
        toks[i + 3].kind == Token::Kind::kIdent &&
        isPunct(toks[i + 4], "(")) {
      continue;
    }
    addFinding(out, ctx, toks[i].line, "throw-site",
               "throw of a non-std type or value; use PSCD_CHECK "
               "(util/check.h) for invariants or construct a typed "
               "std:: exception for API contracts");
  }
}

// ---------------------------------------------------------------------------
// correctness: float-compare
// ---------------------------------------------------------------------------

bool isFloatLiteral(const Token& t) {
  if (t.kind != Token::Kind::kNumber) return false;
  const std::string& s = t.text;
  if (startsWith(s, "0x") || startsWith(s, "0X")) return false;
  for (char c : s) {
    if (c == '.' || c == 'e' || c == 'E' || c == 'f' || c == 'F') return true;
  }
  return false;
}

void checkFloatCompare(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  const std::set<std::string>& floats = ctx.decls->floatNames;
  for (int i = 1; i + 1 < n; ++i) {
    if (!(isPunct(toks[i], "==") || isPunct(toks[i], "!="))) continue;
    const Token& lhs = toks[i - 1];
    const Token& rhs = toks[i + 1];
    bool floaty = isFloatLiteral(lhs) || isFloatLiteral(rhs);
    if (!floaty && lhs.kind == Token::Kind::kIdent && floats.count(lhs.text))
      floaty = true;
    if (!floaty && rhs.kind == Token::Kind::kIdent && floats.count(rhs.text))
      floaty = true;
    // `x == std::numeric_limits<double>::infinity()` and friends.
    if (!floaty && isIdent(rhs, "std") && i + 6 < n &&
        isIdent(toks[i + 3], "numeric_limits") &&
        (isIdent(toks[i + 5], "double") || isIdent(toks[i + 5], "float")))
      floaty = true;
    // `...infinity() == x` — look back across the call parens.
    if (!floaty && isPunct(lhs, ")") && i >= 3 && isPunct(toks[i - 2], "(") &&
        (isIdent(toks[i - 3], "infinity") || isIdent(toks[i - 3], "epsilon") ||
         isIdent(toks[i - 3], "quiet_NaN")))
      floaty = true;
    if (floaty) {
      addFinding(out, ctx, toks[i].line, "float-compare",
                 "exact == / != on floating-point values; compare against "
                 "an epsilon, or suppress if an exact sentinel is intended");
    }
  }
}

// ---------------------------------------------------------------------------
// correctness: naked-new
// ---------------------------------------------------------------------------

void checkNakedNew(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    if (isIdent(toks[i], "new")) {
      addFinding(out, ctx, toks[i].line, "naked-new",
                 "naked new in library code; use std::make_unique / "
                 "std::make_shared or a container");
    } else if (isIdent(toks[i], "delete")) {
      // `= delete` (deleted special member) is not a deallocation.
      if (i > 0 && isPunct(toks[i - 1], "=")) continue;
      addFinding(out, ctx, toks[i].line, "naked-new",
                 "naked delete in library code; owning raw pointers are "
                 "banned — use std::unique_ptr");
    }
  }
}

// ---------------------------------------------------------------------------
// correctness: env-access
// ---------------------------------------------------------------------------

void checkEnvAccess(const FileContext& ctx, std::vector<Finding>& out) {
  if (ctx.effectivePath == "bench/bench_common.h") return;
  static const std::set<std::string> kBanned = {
      "getenv", "secure_getenv", "setenv", "putenv", "unsetenv"};
  for (const Token& t : *ctx.tokens) {
    if (t.kind == Token::Kind::kIdent && kBanned.count(t.text)) {
      addFinding(out, ctx, t.line, "env-access",
                 "'" + t.text +
                     "' makes behavior depend on ambient environment; "
                     "route configuration through bench_common.h or "
                     "explicit flags");
    }
  }
}

}  // namespace

const std::vector<Rule>& ruleRegistry() {
  static const std::vector<Rule> kRules = {
      {"wall-clock", "determinism",
       "wall-clock reads (chrono clocks, time(), gettimeofday, ...) outside "
       "the util/wallclock.h shim",
       "derive simulation time from SimTime; for diagnostics include "
       "pscd/util/wallclock.h and call pscd::monotonicSeconds()",
       [](const std::string& p) { return p != "src/pscd/util/wallclock.h"; },
       checkWallClock},
      {"random-source", "determinism",
       "rand()/srand(), std::random_device, and <random> engines instead of "
       "the seeded pscd::Rng",
       "construct pscd::Rng with an explicit seed (derive per-component "
       "streams via split() or cellSeed())",
       anywhere, checkRandomSource},
      {"unordered-iter", "determinism",
       "iteration over std::unordered_map/set in src/pscd/ code that writes "
       "to streams, CSV sinks, or metrics",
       "collect keys and sort them, keep an ordered mirror index, or prove "
       "the fold is commutative and suppress with a justification",
       inCore, checkUnorderedIter},
      {"ptr-order", "determinism",
       "ordering or hashing by pointer value (std::less/hash over T*, "
       "smart-pointer .get() comparisons)",
       "key on a stable id owned by the object, never its address",
       anywhere, checkPtrOrder},
      {"ptr-sort", "determinism",
       "std::sort/stable_sort of a pointer container without a comparator",
       "pass a named comparator over stable fields of the pointees",
       anywhere, checkPtrSort},
      {"bare-assert", "correctness",
       "assert() instead of PSCD_CHECK / PSCD_DCHECK",
       "use PSCD_CHECK (always on, catchable) or PSCD_DCHECK (debug), "
       "from pscd/util/check.h",
       anywhere, checkBareAssert},
      {"throw-site", "correctness",
       "throw of anything but a typed std:: exception outside util/check.h",
       "invariants: PSCD_CHECK; API contracts: throw a std:: exception "
       "type tests can EXPECT_THROW on",
       anywhere, checkThrowSite},
      {"float-compare", "correctness",
       "exact ==/!= on floating-point values outside tests/",
       "compare |a-b| against an epsilon; exact sentinel compares take an "
       "allow(float-compare) with justification",
       notInTests, checkFloatCompare},
      {"naked-new", "correctness",
       "naked new/delete in library code (src/)",
       "use std::make_unique/std::make_shared or standard containers",
       inLibrary, checkNakedNew},
      {"env-access", "correctness",
       "environment access (getenv & friends) outside bench_common.h",
       "plumb configuration through explicit flags or BenchEnv",
       anywhere, checkEnvAccess},
  };
  return kRules;
}

bool isKnownRule(const std::string& name) {
  for (const Rule& r : ruleRegistry()) {
    if (r.name == name) return true;
  }
  return name == "lint-directive";
}

}  // namespace pscd_lint
