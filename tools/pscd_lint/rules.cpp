#include "rules.h"

#include <array>

namespace pscd_lint {
namespace {

using Tokens = std::vector<Token>;

bool isIdent(const Token& t, const char* s) {
  return t.kind == Token::Kind::kIdent && t.text == s;
}
bool isPunct(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}
bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// tokens[i] must be "<"; returns the index one past the matching ">",
/// or -1 when unbalanced within the file. `>>` never appears as a
/// single token (the lexer splits it), so depth tracking is exact.
int skipTemplateArgs(const Tokens& toks, int i) {
  int depth = 0;
  const int n = static_cast<int>(toks.size());
  for (int j = i; j < n; ++j) {
    if (isPunct(toks[j], "<")) {
      ++depth;
    } else if (isPunct(toks[j], ">")) {
      if (--depth == 0) return j + 1;
    } else if (isPunct(toks[j], ";") || isPunct(toks[j], "{")) {
      return -1;  // ran off the declaration: it was a comparison
    }
  }
  return -1;
}

/// True when the template argument list starting at "<" (index i)
/// contains any of the given identifier tokens or a raw `*`.
bool templateArgsContain(const Tokens& toks, int i, int end,
                         const std::set<std::string>& idents,
                         bool matchStar) {
  for (int j = i; j < end; ++j) {
    if (matchStar && isPunct(toks[j], "*")) return true;
    if (toks[j].kind == Token::Kind::kIdent && idents.count(toks[j].text))
      return true;
  }
  return false;
}

void addFinding(std::vector<Finding>& out, const FileContext& ctx, int line,
                const std::string& rule, const std::string& message) {
  out.push_back(Finding{ctx.effectivePath, line, rule, message});
}

// ---------------------------------------------------------------------------
// Declaration harvesting
// ---------------------------------------------------------------------------

bool isFloatKeyword(const Token& t) {
  return isIdent(t, "double") || isIdent(t, "float");
}

}  // namespace

DeclInfo collectDecls(const Tokens& toks) {
  DeclInfo info;
  const int n = static_cast<int>(toks.size());
  static const std::set<std::string> kSmartPtr = {"unique_ptr", "shared_ptr"};
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    const bool isUnorderedType =
        t.text == "unordered_map" || t.text == "unordered_set" ||
        t.text == "unordered_multimap" || t.text == "unordered_multiset";
    const bool isMapType = t.text == "unordered_map" ||
                           t.text == "unordered_multimap" ||
                           t.text == "map" || t.text == "multimap";
    if ((isUnorderedType || isMapType) && i + 1 < n &&
        isPunct(toks[i + 1], "<")) {
      int j = skipTemplateArgs(toks, i + 1);
      if (j < 0) continue;
      // Optional ::iterator / ::const_iterator, then cv/ref qualifiers.
      if (j + 1 < n && isPunct(toks[j], "::") &&
          (isIdent(toks[j + 1], "iterator") ||
           isIdent(toks[j + 1], "const_iterator"))) {
        j += 2;
      }
      while (j < n && (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
                       isIdent(toks[j], "const")))
        ++j;
      if (j < n && toks[j].kind == Token::Kind::kIdent) {
        if (isUnorderedType) info.unorderedNames.insert(toks[j].text);
        if (isMapType) info.mapNames.insert(toks[j].text);
      }
    } else if (t.text == "vector" && i + 1 < n && isPunct(toks[i + 1], "<")) {
      int j = skipTemplateArgs(toks, i + 1);
      if (j < 0) continue;
      if (!templateArgsContain(toks, i + 1, j, kSmartPtr, true)) continue;
      while (j < n && (isPunct(toks[j], "&") || isIdent(toks[j], "const")))
        ++j;
      if (j < n && toks[j].kind == Token::Kind::kIdent)
        info.ptrVectorNames.insert(toks[j].text);
    } else if (isFloatKeyword(t)) {
      // `double x` declares x — unless this is a template argument
      // (`vector<double>`), a cast `(double)` / `static_cast<double>`,
      // or a function return type `double f(`.
      if (i > 0 && (isPunct(toks[i - 1], "<") || isPunct(toks[i - 1], ","))) {
        // could still be a parameter: `f(double x, float y)` has `,`
        // before float — allow that case through when an identifier
        // follows directly.
        if (!(i + 1 < n && toks[i + 1].kind == Token::Kind::kIdent)) continue;
      }
      int j = i + 1;
      while (j < n && (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
                       isIdent(toks[j], "const")))
        ++j;
      if (j < n && toks[j].kind == Token::Kind::kIdent &&
          !(j + 1 < n && isPunct(toks[j + 1], "(")))
        info.floatNames.insert(toks[j].text);
    }
  }
  return info;
}

void mergeDecls(DeclInfo& into, const DeclInfo& from) {
  into.unorderedNames.insert(from.unorderedNames.begin(),
                             from.unorderedNames.end());
  into.ptrVectorNames.insert(from.ptrVectorNames.begin(),
                             from.ptrVectorNames.end());
  into.floatNames.insert(from.floatNames.begin(), from.floatNames.end());
  into.mapNames.insert(from.mapNames.begin(), from.mapNames.end());
}

// ---------------------------------------------------------------------------
// Hot-region harvesting (PSCD_HOT, see src/pscd/util/hot.h)
// ---------------------------------------------------------------------------

std::vector<HotRegion> collectHotRegions(const Tokens& toks) {
  std::vector<HotRegion> regions;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    if (!isIdent(toks[i], "PSCD_HOT")) continue;
    HotRegion r;
    r.line = toks[i].line;
    // The parameter list is the first '(' directly preceded by an
    // identifier (the function name — skips over the return type,
    // including templated ones, whose '<'...'>' contain no parens).
    int open = -1;
    for (int j = i + 1; j < n; ++j) {
      if (isPunct(toks[j], ";") || isPunct(toks[j], "{")) break;
      if (isPunct(toks[j], "(") && toks[j - 1].kind == Token::Kind::kIdent) {
        open = j;
        break;
      }
    }
    if (open < 0) continue;  // annotation on a non-function; ignore
    r.name = toks[open - 1].text;
    r.paramBegin = open;
    int depth = 0;
    for (int j = open; j < n; ++j) {
      if (isPunct(toks[j], "(")) {
        ++depth;
      } else if (isPunct(toks[j], ")")) {
        if (--depth == 0) {
          r.paramEnd = j;
          break;
        }
      }
    }
    if (r.paramEnd < 0) continue;
    // After the parameter list: cv-qualifiers, ref-qualifiers,
    // noexcept(...), override/final, trailing return types, and
    // paren-style member-initializer lists may all precede the body.
    // Skip balanced paren groups; the first top-level '{' opens the
    // body, a ';' means declaration-only (copy-param still applies).
    // Known limitation: a brace-init member initializer (`: f_{x}`)
    // would be mistaken for the body — this codebase initializes with
    // parens.
    int j = r.paramEnd + 1;
    while (j < n) {
      if (isPunct(toks[j], ";")) break;
      if (isPunct(toks[j], "{")) {
        r.bodyBegin = j;
        break;
      }
      if (isPunct(toks[j], "(")) {
        int d = 0;
        for (; j < n; ++j) {
          if (isPunct(toks[j], "(")) {
            ++d;
          } else if (isPunct(toks[j], ")")) {
            if (--d == 0) {
              ++j;
              break;
            }
          }
        }
        continue;
      }
      ++j;
    }
    if (r.bodyBegin >= 0) {
      int d = 0;
      for (int k = r.bodyBegin; k < n; ++k) {
        if (isPunct(toks[k], "{")) {
          ++d;
        } else if (isPunct(toks[k], "}")) {
          if (--d == 0) {
            r.bodyEnd = k;
            break;
          }
        }
      }
      if (r.bodyEnd < 0) continue;  // unbalanced braces: bail out
    }
    regions.push_back(std::move(r));
  }
  return regions;
}

namespace {

// ---------------------------------------------------------------------------
// Scope predicates
// ---------------------------------------------------------------------------

bool anywhere(const std::string&) { return true; }
bool inLibrary(const std::string& p) { return startsWith(p, "src/"); }
bool inCore(const std::string& p) { return startsWith(p, "src/pscd/"); }
bool notInTests(const std::string& p) { return !startsWith(p, "tests/"); }
// Self-lint: the linter holds itself to library policy too.
bool inLintTool(const std::string& p) {
  return startsWith(p, "tools/pscd_lint/");
}
bool inLibraryOrLintTool(const std::string& p) {
  return inLibrary(p) || inLintTool(p);
}
bool inCoreOrLintTool(const std::string& p) {
  return inCore(p) || inLintTool(p);
}

// ---------------------------------------------------------------------------
// determinism: wall-clock
// ---------------------------------------------------------------------------

void checkWallClock(const FileContext& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> kBanned = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
      "localtime",     "gmtime",        "strftime",
      "mktime",        "ctime",         "difftime",
      "file_clock",    "utc_clock"};
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (kBanned.count(t.text)) {
      addFinding(out, ctx, t.line, "wall-clock",
                 "'" + t.text +
                     "' reads the wall clock; route timing through "
                     "pscd/util/wallclock.h or derive it from SimTime");
      continue;
    }
    // time( / clock( as free-function calls; member calls like
    // `r.time` or `metrics.clock(...)` on project types are fine.
    if ((t.text == "time" || t.text == "clock") && i + 1 < n &&
        isPunct(toks[i + 1], "(")) {
      if (i > 0 && (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->")))
        continue;
      addFinding(out, ctx, t.line, "wall-clock",
                 "'" + t.text +
                     "()' reads the wall clock; simulations must draw "
                     "time from the event loop, diagnostics from "
                     "pscd/util/wallclock.h");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: random-source
// ---------------------------------------------------------------------------

void checkRandomSource(const FileContext& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> kBannedBare = {
      "random_device", "mt19937",        "mt19937_64",
      "minstd_rand",   "minstd_rand0",   "default_random_engine",
      "ranlux24",      "ranlux48",       "knuth_b",
      "random_shuffle"};
  static const std::set<std::string> kBannedCall = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "random", "srandom"};
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (kBannedBare.count(t.text)) {
      addFinding(out, ctx, t.line, "random-source",
                 "'" + t.text +
                     "' is a non-reproducible / implementation-defined "
                     "random source; use pscd::Rng (util/rng.h)");
    } else if (kBannedCall.count(t.text) && i + 1 < n &&
               isPunct(toks[i + 1], "(") &&
               !(i > 0 && (isPunct(toks[i - 1], ".") ||
                           isPunct(toks[i - 1], "->")))) {
      addFinding(out, ctx, t.line, "random-source",
                 "'" + t.text +
                     "()' is seeded from global state; use pscd::Rng "
                     "with an explicit seed (util/rng.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: unordered-iter
// ---------------------------------------------------------------------------

bool fileWritesOutput(const Tokens& toks) {
  static const std::set<std::string> kSinks = {
      "CsvWriter", "CsvSink",  "SimMetrics", "cout",   "cerr",  "clog",
      "printf",    "fprintf",  "ostream",    "ofstream", "Logger"};
  for (const Token& t : toks) {
    if (t.kind == Token::Kind::kIdent && kSinks.count(t.text)) return true;
    if (isPunct(t, "<<")) return true;
  }
  return false;
}

/// If the token range [begin, end) is a plain object path such as
/// `entries_`, `this->pages_` or `obj.map_`, returns the final
/// identifier; otherwise "".
std::string basePathIdent(const Tokens& toks, int begin, int end) {
  std::string last;
  for (int j = begin; j < end; ++j) {
    const Token& t = toks[j];
    if (t.kind == Token::Kind::kIdent) {
      last = t.text;
    } else if (isPunct(t, ".") || isPunct(t, "->")) {
      continue;
    } else {
      return "";  // calls, indexing, arithmetic: not a plain path
    }
  }
  return last;
}

void checkUnorderedIter(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  if (!fileWritesOutput(toks)) return;
  const std::set<std::string>& names = ctx.decls->unorderedNames;
  if (names.empty()) return;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    // Range-for over an unordered container.
    if (isIdent(toks[i], "for") && i + 1 < n && isPunct(toks[i + 1], "(")) {
      int depth = 0;
      int colon = -1, close = -1;
      for (int j = i + 1; j < n; ++j) {
        if (isPunct(toks[j], "(")) {
          ++depth;
        } else if (isPunct(toks[j], ")")) {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (depth == 1 && isPunct(toks[j], ":") && colon < 0) {
          colon = j;
        }
      }
      if (colon >= 0 && close >= 0) {
        const std::string base = basePathIdent(toks, colon + 1, close);
        if (!base.empty() && names.count(base)) {
          addFinding(out, ctx, toks[i].line, "unordered-iter",
                     "range-for over unordered container '" + base +
                         "' in output-writing code; iteration order is "
                         "implementation-defined — iterate sorted keys "
                         "or an ordered mirror index");
        }
      }
    }
    // Explicit iterator walk: name.begin( / name.cbegin(. A lone
    // .end() is not flagged — `find(k) != m.end()` never iterates.
    if (toks[i].kind == Token::Kind::kIdent && names.count(toks[i].text) &&
        i + 2 < n && isPunct(toks[i + 1], ".") &&
        (isIdent(toks[i + 2], "begin") || isIdent(toks[i + 2], "cbegin")) &&
        i + 3 < n && isPunct(toks[i + 3], "(")) {
      addFinding(out, ctx, toks[i].line, "unordered-iter",
                 "iterator walk over unordered container '" + toks[i].text +
                     "' in output-writing code; iteration order is "
                     "implementation-defined — iterate sorted keys or "
                     "an ordered mirror index");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: ptr-order
// ---------------------------------------------------------------------------

void checkPtrOrder(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  static const std::set<std::string> kNone;
  for (int i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if ((t.text == "less" || t.text == "greater" || t.text == "hash") &&
        i + 1 < n && isPunct(toks[i + 1], "<")) {
      int j = skipTemplateArgs(toks, i + 1);
      if (j > 0 && templateArgsContain(toks, i + 1, j, kNone, true)) {
        addFinding(out, ctx, t.line, "ptr-order",
                   "std::" + t.text +
                       " over a pointer type orders/hashes by address, "
                       "which varies run to run; key on a stable id "
                       "instead");
      }
    }
    // Smart-pointer address comparison: `.get() <` / `.get() >=` ...
    if (t.text == "get" && i >= 1 && isPunct(toks[i - 1], ".") &&
        i + 3 < n && isPunct(toks[i + 1], "(") && isPunct(toks[i + 2], ")")) {
      const Token& after = toks[i + 3];
      if (isPunct(after, "<") || isPunct(after, ">") ||
          isPunct(after, "<=") || isPunct(after, ">=")) {
        addFinding(out, ctx, t.line, "ptr-order",
                   "relational comparison of smart-pointer addresses is "
                   "address-order nondeterminism; compare stable ids");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: ptr-sort
// ---------------------------------------------------------------------------

void checkPtrSort(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const std::set<std::string>& names = ctx.decls->ptrVectorNames;
  if (names.empty()) return;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i + 12 < n; ++i) {
    if (!(isIdent(toks[i], "sort") || isIdent(toks[i], "stable_sort")))
      continue;
    if (!isPunct(toks[i + 1], "(")) continue;
    // sort( X .begin() , X .end() )  — the two-argument, operator< form.
    int j = i + 2;
    if (toks[j].kind != Token::Kind::kIdent || !names.count(toks[j].text))
      continue;
    const std::string& name = toks[j].text;
    if (isPunct(toks[j + 1], ".") && isIdent(toks[j + 2], "begin") &&
        isPunct(toks[j + 3], "(") && isPunct(toks[j + 4], ")") &&
        isPunct(toks[j + 5], ",") && isIdent(toks[j + 6], name.c_str()) &&
        isPunct(toks[j + 7], ".") && isIdent(toks[j + 8], "end") &&
        isPunct(toks[j + 9], "(") && isPunct(toks[j + 10], ")") &&
        isPunct(toks[j + 11], ")")) {
      addFinding(out, ctx, toks[i].line, "ptr-sort",
                 "std::" + toks[i].text + " of pointer container '" + name +
                     "' without a comparator sorts by address; pass a "
                     "named comparator over stable fields");
    }
  }
}

// ---------------------------------------------------------------------------
// correctness: bare-assert
// ---------------------------------------------------------------------------

void checkBareAssert(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i + 1 < n; ++i) {
    if (isIdent(toks[i], "assert") && isPunct(toks[i + 1], "(")) {
      addFinding(out, ctx, toks[i].line, "bare-assert",
                 "assert() aborts and compiles out under NDEBUG; use "
                 "PSCD_CHECK / PSCD_DCHECK (util/check.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// correctness: throw-site
// ---------------------------------------------------------------------------

void checkThrowSite(const FileContext& ctx, std::vector<Finding>& out) {
  if (ctx.effectivePath == "src/pscd/util/check.h") return;
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    if (!isIdent(toks[i], "throw")) continue;
    // `noexcept` or exception-spec contexts: `throw (`? Legacy dynamic
    // exception specifications do not appear in this codebase; treat
    // `throw` followed by `;` as a bare rethrow (allowed).
    if (i + 1 < n && isPunct(toks[i + 1], ";")) continue;
    // Sanctioned: direct construction of a std:: exception type — the
    // API-contract idiom kept by PR 1 (tests EXPECT_THROW on the exact
    // std type). Everything else routes through PSCD_CHECK.
    if (i + 4 < n && isIdent(toks[i + 1], "std") &&
        isPunct(toks[i + 2], "::") &&
        toks[i + 3].kind == Token::Kind::kIdent &&
        isPunct(toks[i + 4], "(")) {
      continue;
    }
    addFinding(out, ctx, toks[i].line, "throw-site",
               "throw of a non-std type or value; use PSCD_CHECK "
               "(util/check.h) for invariants or construct a typed "
               "std:: exception for API contracts");
  }
}

// ---------------------------------------------------------------------------
// correctness: float-compare
// ---------------------------------------------------------------------------

bool isFloatLiteral(const Token& t) {
  if (t.kind != Token::Kind::kNumber) return false;
  const std::string& s = t.text;
  if (startsWith(s, "0x") || startsWith(s, "0X")) return false;
  for (char c : s) {
    if (c == '.' || c == 'e' || c == 'E' || c == 'f' || c == 'F') return true;
  }
  return false;
}

void checkFloatCompare(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  const std::set<std::string>& floats = ctx.decls->floatNames;
  for (int i = 1; i + 1 < n; ++i) {
    if (!(isPunct(toks[i], "==") || isPunct(toks[i], "!="))) continue;
    const Token& lhs = toks[i - 1];
    const Token& rhs = toks[i + 1];
    bool floaty = isFloatLiteral(lhs) || isFloatLiteral(rhs);
    if (!floaty && lhs.kind == Token::Kind::kIdent && floats.count(lhs.text))
      floaty = true;
    if (!floaty && rhs.kind == Token::Kind::kIdent && floats.count(rhs.text))
      floaty = true;
    // `x == std::numeric_limits<double>::infinity()` and friends.
    if (!floaty && isIdent(rhs, "std") && i + 6 < n &&
        isIdent(toks[i + 3], "numeric_limits") &&
        (isIdent(toks[i + 5], "double") || isIdent(toks[i + 5], "float")))
      floaty = true;
    // `...infinity() == x` — look back across the call parens.
    if (!floaty && isPunct(lhs, ")") && i >= 3 && isPunct(toks[i - 2], "(") &&
        (isIdent(toks[i - 3], "infinity") || isIdent(toks[i - 3], "epsilon") ||
         isIdent(toks[i - 3], "quiet_NaN")))
      floaty = true;
    if (floaty) {
      addFinding(out, ctx, toks[i].line, "float-compare",
                 "exact == / != on floating-point values; compare against "
                 "an epsilon, or suppress if an exact sentinel is intended");
    }
  }
}

// ---------------------------------------------------------------------------
// correctness: naked-new
// ---------------------------------------------------------------------------

void checkNakedNew(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    if (isIdent(toks[i], "new")) {
      addFinding(out, ctx, toks[i].line, "naked-new",
                 "naked new in library code; use std::make_unique / "
                 "std::make_shared or a container");
    } else if (isIdent(toks[i], "delete")) {
      // `= delete` (deleted special member) is not a deallocation.
      if (i > 0 && isPunct(toks[i - 1], "=")) continue;
      addFinding(out, ctx, toks[i].line, "naked-new",
                 "naked delete in library code; owning raw pointers are "
                 "banned — use std::unique_ptr");
    }
  }
}

// ---------------------------------------------------------------------------
// correctness: env-access
// ---------------------------------------------------------------------------

void checkEnvAccess(const FileContext& ctx, std::vector<Finding>& out) {
  if (ctx.effectivePath == "bench/bench_common.h") return;
  static const std::set<std::string> kBanned = {
      "getenv", "secure_getenv", "setenv", "putenv", "unsetenv"};
  for (const Token& t : *ctx.tokens) {
    if (t.kind == Token::Kind::kIdent && kBanned.count(t.text)) {
      addFinding(out, ctx, t.line, "env-access",
                 "'" + t.text +
                     "' makes behavior depend on ambient environment; "
                     "route configuration through bench_common.h or "
                     "explicit flags");
    }
  }
}

// ---------------------------------------------------------------------------
// performance: hot-region rule pack (PSCD_HOT scopes)
// ---------------------------------------------------------------------------

/// Token-index ranges (inclusive) of loop bodies — `for`/`while`/`do`
/// statements, braced or single-statement — within [from, to]. Nested
/// loops each contribute their own (overlapping) range.
std::vector<std::pair<int, int>> collectLoopBodies(const Tokens& toks,
                                                   int from, int to) {
  std::vector<std::pair<int, int>> out;
  for (int i = from; i <= to; ++i) {
    int bodyStart = -1;
    if ((isIdent(toks[i], "for") || isIdent(toks[i], "while")) &&
        i + 1 <= to && isPunct(toks[i + 1], "(")) {
      int depth = 0, close = -1;
      for (int j = i + 1; j <= to; ++j) {
        if (isPunct(toks[j], "(")) {
          ++depth;
        } else if (isPunct(toks[j], ")")) {
          if (--depth == 0) {
            close = j;
            break;
          }
        }
      }
      if (close < 0) continue;
      bodyStart = close + 1;
      // `do { ... } while (cond);` — the trailing while owns no body.
      if (bodyStart > to || isPunct(toks[bodyStart], ";")) continue;
    } else if (isIdent(toks[i], "do")) {
      bodyStart = i + 1;
    } else {
      continue;
    }
    if (bodyStart > to) continue;
    if (isPunct(toks[bodyStart], "{")) {
      int d = 0;
      for (int k = bodyStart; k <= to; ++k) {
        if (isPunct(toks[k], "{")) {
          ++d;
        } else if (isPunct(toks[k], "}")) {
          if (--d == 0) {
            out.emplace_back(bodyStart, k);
            break;
          }
        }
      }
    } else {
      // Single-statement body: up to the ';' at paren depth 0.
      int d = 0;
      for (int k = bodyStart; k <= to; ++k) {
        if (isPunct(toks[k], "(")) {
          ++d;
        } else if (isPunct(toks[k], ")")) {
          --d;
        } else if (d == 0 && isPunct(toks[k], ";")) {
          out.emplace_back(bodyStart, k);
          break;
        }
      }
    }
  }
  return out;
}

bool memberCallBefore(const Tokens& toks, int i) {
  return i > 0 && (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->"));
}

void checkAllocInHot(const FileContext& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> kContainers = {
      "vector", "string",        "unordered_map", "unordered_set",
      "map",    "set",           "deque",         "list",
      "function", "stringstream", "ostringstream"};
  const Tokens& toks = *ctx.tokens;
  for (const HotRegion& r : *ctx.hotRegions) {
    if (r.bodyBegin < 0) continue;
    for (int i = r.bodyBegin + 1; i < r.bodyEnd; ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent) continue;
      if (t.text == "new") {
        addFinding(out, ctx, t.line, "alloc-in-hot",
                   "'new' inside PSCD_HOT '" + r.name +
                       "'; hoist the allocation out of the hot path or "
                       "reuse a scratch buffer");
        continue;
      }
      if (t.text == "make_unique" || t.text == "make_shared") {
        addFinding(out, ctx, t.line, "alloc-in-hot",
                   "'" + t.text + "' allocates inside PSCD_HOT '" + r.name +
                       "'; hoist the allocation out of the hot path");
        continue;
      }
      if (!kContainers.count(t.text)) continue;
      // A local declaration or temporary construction of an allocating
      // type: `std::vector<T> v`, `std::string(...)`, `std::function<...>
      // f = lambda`. References, pointers, and nested template args are
      // not constructions and stay silent.
      int j = i + 1;
      if (j < r.bodyEnd && isPunct(toks[j], "<")) {
        j = skipTemplateArgs(toks, j);
        if (j < 0 || j >= r.bodyEnd) continue;
      }
      if (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
          isPunct(toks[j], "::"))
        continue;
      if (toks[j].kind == Token::Kind::kIdent && !isIdent(toks[j], "const")) {
        addFinding(out, ctx, t.line, "alloc-in-hot",
                   "local '" + t.text + "' constructed inside PSCD_HOT '" +
                       r.name +
                       "'; hoist to a reused scratch member or take it "
                       "from the caller");
      } else if (isPunct(toks[j], "(") || isPunct(toks[j], "{")) {
        addFinding(out, ctx, t.line, "alloc-in-hot",
                   "temporary '" + t.text + "' constructed inside PSCD_HOT '" +
                       r.name + "'; build it once outside the hot path");
      }
    }
  }
}

void checkGrowWithoutReserve(const FileContext& ctx,
                             std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  for (const HotRegion& r : *ctx.hotRegions) {
    if (r.bodyBegin < 0) continue;
    // Containers that see a .reserve( anywhere in this function.
    std::set<std::string> reserved;
    for (int i = r.bodyBegin + 1; i < r.bodyEnd; ++i) {
      if (isIdent(toks[i], "reserve") && memberCallBefore(toks, i) &&
          i + 1 < r.bodyEnd && isPunct(toks[i + 1], "(") && i >= 2 &&
          toks[i - 2].kind == Token::Kind::kIdent) {
        reserved.insert(toks[i - 2].text);
      }
    }
    for (const auto& [lb, le] : collectLoopBodies(toks, r.bodyBegin + 1,
                                                  r.bodyEnd - 1)) {
      for (int i = lb; i <= le; ++i) {
        if (!(isIdent(toks[i], "push_back") || isIdent(toks[i], "emplace_back")))
          continue;
        if (!memberCallBefore(toks, i)) continue;
        if (!(i + 1 <= le && isPunct(toks[i + 1], "("))) continue;
        if (i < 2 || toks[i - 2].kind != Token::Kind::kIdent) continue;
        const std::string& base = toks[i - 2].text;
        if (reserved.count(base)) continue;
        addFinding(out, ctx, toks[i].line, "grow-without-reserve",
                   "'" + base + "." + toks[i].text +
                       "' grows in a loop inside PSCD_HOT '" + r.name +
                       "' with no reserve() in this function; reserve the "
                       "expected size before the loop");
      }
    }
  }
}

void checkMapBracketInsert(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  const std::set<std::string>& maps = ctx.decls->mapNames;
  if (maps.empty()) return;
  for (const HotRegion& r : *ctx.hotRegions) {
    if (r.bodyBegin < 0) continue;
    for (const auto& [lb, le] : collectLoopBodies(toks, r.bodyBegin + 1,
                                                  r.bodyEnd - 1)) {
      for (int i = lb; i + 1 <= le; ++i) {
        if (toks[i].kind != Token::Kind::kIdent || !maps.count(toks[i].text))
          continue;
        if (!isPunct(toks[i + 1], "[")) continue;
        addFinding(out, ctx, toks[i].line, "map-bracket-insert",
                   "map operator[] on '" + toks[i].text +
                       "' in a loop inside PSCD_HOT '" + r.name +
                       "'; operator[] default-constructs on miss — use "
                       "find()/try_emplace() and reuse the iterator");
      }
    }
  }
}

void checkCopyParam(const FileContext& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> kHeavy = {
      "string", "vector", "shared_ptr", "function", "map",
      "unordered_map", "set", "unordered_set", "deque"};
  const Tokens& toks = *ctx.tokens;
  for (const HotRegion& r : *ctx.hotRegions) {
    if (r.paramBegin < 0 || r.paramEnd <= r.paramBegin) continue;
    for (int i = r.paramBegin + 1; i < r.paramEnd; ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent || !kHeavy.count(t.text)) continue;
      int j = i + 1;
      if (j < r.paramEnd && isPunct(toks[j], "<")) {
        j = skipTemplateArgs(toks, j);
        if (j < 0 || j > r.paramEnd) continue;
      }
      // By value iff the parameter name follows directly; '&' and '*'
      // are pass-by-reference/pointer, anything else (a '>' closing an
      // enclosing template argument list, ',', ')') is not a parameter
      // of this type.
      if (j < r.paramEnd && toks[j].kind == Token::Kind::kIdent &&
          !isIdent(toks[j], "const")) {
        addFinding(out, ctx, t.line, "copy-param",
                   "by-value '" + t.text + "' parameter '" + toks[j].text +
                       "' on PSCD_HOT '" + r.name +
                       "'; pass by const reference (or std::move a sink "
                       "argument and suppress with justification)");
      }
    }
  }
}

void checkCopyInLoop(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  for (const HotRegion& r : *ctx.hotRegions) {
    if (r.bodyBegin < 0) continue;
    for (int i = r.bodyBegin + 1; i < r.bodyEnd; ++i) {
      if (!isIdent(toks[i], "for") || !isPunct(toks[i + 1], "(")) continue;
      int depth = 0, colon = -1, close = -1;
      for (int j = i + 1; j < r.bodyEnd; ++j) {
        if (isPunct(toks[j], "(")) {
          ++depth;
        } else if (isPunct(toks[j], ")")) {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (depth == 1 && isPunct(toks[j], ":") && colon < 0) {
          colon = j;
        }
      }
      if (colon < 0 || close < 0) continue;  // classic for, not range-for
      bool hasAuto = false, byRefOrPtr = false;
      for (int j = i + 2; j < colon; ++j) {
        if (isIdent(toks[j], "auto")) hasAuto = true;
        if (isPunct(toks[j], "&") || isPunct(toks[j], "*")) byRefOrPtr = true;
      }
      if (hasAuto && !byRefOrPtr) {
        addFinding(out, ctx, toks[i].line, "copy-in-loop",
                   "range-for binds each element by value inside PSCD_HOT '" +
                       r.name +
                       "'; bind `const auto&` (or `auto&` to mutate)");
      }
    }
  }
}

void checkSharedPtrCopyInHot(const FileContext& ctx,
                             std::vector<Finding>& out) {
  const Tokens& toks = *ctx.tokens;
  for (const HotRegion& r : *ctx.hotRegions) {
    if (r.bodyBegin < 0) continue;
    for (int i = r.bodyBegin + 1; i < r.bodyEnd; ++i) {
      if (!isIdent(toks[i], "shared_ptr")) continue;
      if (!(i + 1 < r.bodyEnd && isPunct(toks[i + 1], "<"))) continue;
      int j = skipTemplateArgs(toks, i + 1);
      if (j < 0 || j >= r.bodyEnd) continue;
      if (toks[j].kind != Token::Kind::kIdent || isIdent(toks[j], "const"))
        continue;
      // `shared_ptr<T> name = rhs` / `shared_ptr<T> name(rhs)`. A
      // default-constructed local or a move/make_shared initializer
      // does not bump the refcount, so those stay silent.
      int k = j + 1;
      if (k >= r.bodyEnd) continue;
      if (isPunct(toks[k], ";")) continue;  // default construction
      if (isPunct(toks[k], "=") || isPunct(toks[k], "(") ||
          isPunct(toks[k], "{")) {
        int v = k + 1;
        if (v < r.bodyEnd && isIdent(toks[v], "std") &&
            v + 2 < r.bodyEnd && isPunct(toks[v + 1], "::"))
          v += 2;
        if (v < r.bodyEnd && (isIdent(toks[v], "move") ||
                              isIdent(toks[v], "make_shared")))
          continue;
        addFinding(out, ctx, toks[i].line, "shared-ptr-copy-in-hot",
                   "shared_ptr copy into '" + toks[j].text +
                       "' inside PSCD_HOT '" + r.name +
                       "'; refcount bumps are atomic RMWs — take a raw "
                       "pointer/reference or std::move the pointer");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Architecture rules (whole-repo)
// ---------------------------------------------------------------------------

// The architecture rules' findings come from the include/symbol graph
// pass in lint.cpp — they need every scanned file at once, so the
// per-file hook is a no-op. They are registered here anyway so the
// registry owns their names, groups, summaries, and fix hints (and so
// allow()/expect() directives naming them validate).
void checkWholeRepo(const FileContext&, std::vector<Finding>&) {}

}  // namespace

const std::vector<Rule>& ruleRegistry() {
  static const std::vector<Rule> kRules = {
      {"wall-clock", "determinism",
       "wall-clock reads (chrono clocks, time(), gettimeofday, ...) outside "
       "the util/wallclock.h shim",
       "derive simulation time from SimTime; for diagnostics include "
       "pscd/util/wallclock.h and call pscd::monotonicSeconds()",
       [](const std::string& p) { return p != "src/pscd/util/wallclock.h"; },
       checkWallClock},
      {"random-source", "determinism",
       "rand()/srand(), std::random_device, and <random> engines instead of "
       "the seeded pscd::Rng",
       "construct pscd::Rng with an explicit seed (derive per-component "
       "streams via split() or cellSeed())",
       anywhere, checkRandomSource},
      {"unordered-iter", "determinism",
       "iteration over std::unordered_map/set in src/pscd/ code that writes "
       "to streams, CSV sinks, or metrics",
       "collect keys and sort them, keep an ordered mirror index, or prove "
       "the fold is commutative and suppress with a justification",
       inCoreOrLintTool, checkUnorderedIter},
      {"ptr-order", "determinism",
       "ordering or hashing by pointer value (std::less/hash over T*, "
       "smart-pointer .get() comparisons)",
       "key on a stable id owned by the object, never its address",
       anywhere, checkPtrOrder},
      {"ptr-sort", "determinism",
       "std::sort/stable_sort of a pointer container without a comparator",
       "pass a named comparator over stable fields of the pointees",
       anywhere, checkPtrSort},
      {"bare-assert", "correctness",
       "assert() instead of PSCD_CHECK / PSCD_DCHECK",
       "use PSCD_CHECK (always on, catchable) or PSCD_DCHECK (debug), "
       "from pscd/util/check.h",
       anywhere, checkBareAssert},
      {"throw-site", "correctness",
       "throw of anything but a typed std:: exception outside util/check.h",
       "invariants: PSCD_CHECK; API contracts: throw a std:: exception "
       "type tests can EXPECT_THROW on",
       anywhere, checkThrowSite},
      {"float-compare", "correctness",
       "exact ==/!= on floating-point values outside tests/",
       "compare |a-b| against an epsilon; exact sentinel compares take an "
       "allow(float-compare) with justification",
       notInTests, checkFloatCompare},
      {"naked-new", "correctness",
       "naked new/delete in library code (src/, tools/pscd_lint/)",
       "use std::make_unique/std::make_shared or standard containers",
       inLibraryOrLintTool, checkNakedNew},
      {"env-access", "correctness",
       "environment access (getenv & friends) outside bench_common.h",
       "plumb configuration through explicit flags or BenchEnv",
       anywhere, checkEnvAccess},
      {"alloc-in-hot", "performance",
       "allocation inside a PSCD_HOT body (new, make_unique/make_shared, "
       "container/string/function construction)",
       "hoist the allocation to a reused scratch buffer, a member set up "
       "once, or the caller; a result that must escape takes an "
       "allow(alloc-in-hot) with justification",
       anywhere, checkAllocInHot},
      {"grow-without-reserve", "performance",
       "push_back/emplace_back in a loop inside a PSCD_HOT body with no "
       "reserve() on that container in the same function",
       "call container.reserve(expected) before the loop; when the size "
       "is unknowable, suppress with the reason",
       anywhere, checkGrowWithoutReserve},
      {"map-bracket-insert", "performance",
       "map/unordered_map operator[] in a loop inside a PSCD_HOT body",
       "operator[] default-constructs the mapped value on every miss; "
       "use find()/try_emplace() once and reuse the iterator",
       anywhere, checkMapBracketInsert},
      {"copy-param", "performance",
       "by-value string/vector/shared_ptr/function/map parameter on a "
       "PSCD_HOT function",
       "pass heavy parameters by const reference; an intentional sink "
       "parameter (stored via std::move) takes an allow(copy-param)",
       anywhere, checkCopyParam},
      {"copy-in-loop", "performance",
       "range-for that binds elements by value inside a PSCD_HOT body",
       "bind `const auto&` (read) or `auto&` (mutate); copy on purpose "
       "only with an allow(copy-in-loop) and the reason",
       anywhere, checkCopyInLoop},
      {"shared-ptr-copy-in-hot", "performance",
       "shared_ptr copied (refcount bumped) inside a PSCD_HOT body",
       "take T* or T& for non-owning access inside the hot path; "
       "transfer ownership with std::move",
       anywhere, checkSharedPtrCopyInHot},
      {"layer-violation", "architecture",
       "an #include crossing layers along an edge the layering manifest "
       "(tools/pscd_lint/layers.txt) does not allow, or a --forbid-reach "
       "layer transitively reaching a forbidden one",
       "depend downward only: move the shared type into the lower layer, "
       "take a narrow interface (core/runtime.h Clock/EventSink) instead "
       "of the concrete upper type, or add the edge to layers.txt under "
       "review; an intentional back-edge takes allow(layer-violation) "
       "with the rationale",
       anywhere, checkWholeRepo},
      {"include-cycle", "architecture",
       "a strongly connected component in the #include graph (reported "
       "once per cycle with a minimal witness path)",
       "break the cycle: forward-declare instead of including, split the "
       "shared piece into its own header, or invert the dependency",
       anywhere, checkWholeRepo},
      {"unused-include", "architecture",
       "a directly included project header none of whose declared "
       "symbols appear in this file (headers that #define macros are "
       "exempt — macro use is invisible to the token stream)",
       "drop the include (or include what you use where the symbol "
       "really comes from); an include kept for re-export takes "
       "allow(unused-include) with the rationale",
       anywhere, checkWholeRepo},
      {"self-include-first", "architecture",
       "a .cpp whose sibling header exists but is not its first #include "
       "(first-include position proves the header is self-sufficient)",
       "move the own-header #include above every other include",
       anywhere, checkWholeRepo},
  };
  return kRules;
}

bool isKnownRule(const std::string& name) {
  for (const Rule& r : ruleRegistry()) {
    if (r.name == name) return true;
  }
  return name == "lint-directive";
}

}  // namespace pscd_lint
