// pscd_lint: determinism & correctness static analysis for the pscd
// tree. See lint.h for exit codes and DESIGN.md §10 for the rule set.
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return pscd_lint::runLint(args, std::cout, std::cerr);
}
