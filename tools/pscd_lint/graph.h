// Whole-repo architecture analysis for pscd_lint: the #include graph,
// a per-header declared-symbol harvest, Tarjan SCC cycle detection with
// minimal witness cycles, and a checked-in layering manifest
// (tools/pscd_lint/layers.txt) that turns the graph into enforceable
// rules:
//
//   layer-violation    a direct include crosses layers along an edge the
//                      manifest does not allow, or (--forbid-reach) a
//                      file in one layer transitively reaches another
//   include-cycle      a strongly connected component in the include
//                      graph, reported with a minimal witness cycle
//   unused-include     IWYU-lite: a directly included project header
//                      none of whose harvested symbols appear in the
//                      including file's token stream
//   self-include-first a .cpp whose sibling header exists but is not its
//                      first include
//
// Everything here keys files by their *effective* path (after any
// as-path directive), so the fixture corpus can exercise the rules
// against the live manifest without leaving tests/lint_fixtures/.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace pscd_lint {

/// One #include directive, scanned from the raw source (the lexer drops
/// preprocessor lines, so the graph pass re-scans them comment-aware).
struct IncludeDirective {
  int line = 0;
  std::string text;    // the path between the quotes / angle brackets
  bool angle = false;  // <...> vs "..."
  /// Canonical repo-relative target ("src/pscd/util/rng.h"), or "" when
  /// the include is a system/unresolvable header the graph ignores.
  std::string resolved;
};

/// Raw-scan result of one file: its include directives plus the names
/// of every object-like/function-like macro it #defines. Macro names
/// feed the unused-include exemption — a header that defines macros may
/// be "used" purely inside preprocessor context the token stream cannot
/// see, so the rule must stay quiet about it.
struct RawScan {
  std::vector<IncludeDirective> includes;
  std::set<std::string> macros;
};

/// Scans `source` for #include directives and #define'd macro names,
/// skipping comments and string literals. Does not resolve paths (see
/// resolveInclude).
RawScan scanRaw(const std::string& source);

/// Declared symbols harvested from a header's token stream: type names
/// (class/struct/enum/union, including forward declarations), using
/// aliases and typedefs, and namespace-scope function/variable names.
/// Class members and function locals are deliberately excluded — their
/// names are too generic to witness "this file uses that header".
std::set<std::string> harvestSymbols(const std::vector<Token>& tokens);

// ---------------------------------------------------------------------------
// Layering manifest
// ---------------------------------------------------------------------------

struct Manifest {
  /// Layer name -> path prefixes, matched longest-prefix-first.
  std::map<std::string, std::vector<std::string>> layers;
  /// Allowed cross-layer include edges (from, to). Same-layer includes
  /// are always allowed and never listed.
  std::set<std::pair<std::string, std::string>> allowedEdges;
  /// Include roots tried (in order) when resolving quoted includes that
  /// are not relative to the including file's directory.
  std::vector<std::string> roots;

  /// Layer of a canonical path by longest prefix match; "" if unmapped.
  std::string layerOf(const std::string& path) const;
};

/// Parses a layering manifest. On failure returns false and sets
/// `error` to a named diagnostic ("line N: <what>"). Duplicate layers,
/// duplicate allow edges, unknown layers in allow/root lines and
/// malformed lines are all hard errors (the driver exits 2).
bool parseManifest(const std::string& text, Manifest* manifest,
                   std::string* error);

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

/// Per-file input to the architecture pass.
struct ArchFile {
  std::string displayPath;    // as given on the command line
  std::string effectivePath;  // after any as-path directive
  RawScan raw;
  std::set<std::string> symbols;  // harvested declarations (headers)
  const std::vector<Token>* tokens = nullptr;  // lexed token stream
};

/// Canonicalizes an include directive against the including file's
/// effective path and the manifest's include roots: "pscd/x.h" maps to
/// "src/pscd/x.h", a quoted sibling include joins the includer's
/// directory, and remaining quoted forms try each root in order. A
/// target that matches a scanned file wins; otherwise the best textual
/// guess is returned so layer checks still apply to unscanned-but-
/// prefixed paths. Returns "" for system headers.
std::string resolveInclude(const std::string& includerPath,
                           const std::string& text, bool angle,
                           const std::vector<std::string>& roots,
                           const std::set<std::string>& knownPaths);

/// Collapses "./" and "a/../" segments; keeps the path relative.
std::string normalizeDots(const std::string& path);

/// Tarjan strongly connected components over adjacency lists (indexes
/// into `adj`). Returns components in reverse topological order; only
/// components with >= 2 nodes or a self-loop represent cycles.
std::vector<std::vector<int>> tarjanScc(
    const std::vector<std::vector<int>>& adj);

/// Shortest cycle through `start` (BFS over `adj` restricted to
/// `members`), returned as a node sequence start -> ... -> start.
/// Empty when no cycle through `start` exists within `members`.
std::vector<int> minimalCycleWitness(const std::vector<std::vector<int>>& adj,
                                     const std::set<int>& members, int start);

/// Fills every include's `resolved` field against the scan set and the
/// manifest's include roots. Must run before runArchPass / renders.
void resolveIncludes(std::vector<ArchFile>& files, const Manifest& manifest);

/// Options of the architecture pass.
struct ArchOptions {
  /// Layer pairs (from, to): report a layer-violation for every file in
  /// `from` that transitively includes a file in `to`.
  std::vector<std::pair<std::string, std::string>> forbidReach;
};

/// Runs the whole-repo pass and appends findings (attributed to
/// effective paths; the driver rewrites them to display paths).
void runArchPass(const std::vector<ArchFile>& files, const Manifest& manifest,
                 const ArchOptions& options, std::vector<Finding>& out);

/// DOT export of the file-level include graph, clustered by layer.
std::string renderGraphDot(const std::vector<ArchFile>& files,
                           const Manifest& manifest);

/// Deterministic one-line-per-edge dump of the *actual* cross-layer
/// edges in the graph ("from -> to"), for the CI graph-diff gate.
std::string renderLayerEdges(const std::vector<ArchFile>& files,
                             const Manifest& manifest);

/// Self-contained SVG of the layer DAG (nodes = layers on rows by
/// topological depth, edges = manifest-allowed edges), committed as
/// docs/layers.svg.
std::string renderLayerSvg(const std::vector<ArchFile>& files,
                           const Manifest& manifest);

}  // namespace pscd_lint
