#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "graph.h"

namespace pscd_lint {
namespace {

namespace fs = std::filesystem;

std::string normalize(std::string path) {
  while (path.rfind("./", 0) == 0) path.erase(0, 2);
  return path;
}

bool hasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp";
}

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return bool(out);
}

/// One file flowing through the lint pipeline: lexed once, linted by
/// the per-file rules, optionally annotated by the whole-repo
/// architecture pass, then filtered through its own suppressions.
struct PerFile {
  std::string displayPath;
  std::string effectivePath;
  std::string source;
  LexResult lexed;
  DeclInfo decls;
  std::vector<HotRegion> hotRegions;
  std::vector<Finding> raw;  // pre-suppression, display-path attributed
};

PerFile makePerFile(const std::string& displayPath, std::string source,
                    const DeclInfo& headerDecls) {
  PerFile pf;
  pf.displayPath = displayPath;
  pf.source = std::move(source);
  pf.lexed = lex(pf.source);
  pf.effectivePath = pf.lexed.directives.asPath.empty()
                         ? normalize(displayPath)
                         : pf.lexed.directives.asPath;
  pf.decls = collectDecls(pf.lexed.tokens);
  mergeDecls(pf.decls, headerDecls);
  pf.hotRegions = collectHotRegions(pf.lexed.tokens);
  return pf;
}

void runFileRules(PerFile& pf) {
  FileContext ctx;
  ctx.effectivePath = pf.effectivePath;
  ctx.tokens = &pf.lexed.tokens;
  ctx.decls = &pf.decls;
  ctx.hotRegions = &pf.hotRegions;
  std::vector<Finding> raw;
  for (const Rule& rule : ruleRegistry()) {
    if (rule.inScope(pf.effectivePath)) rule.check(ctx, raw);
  }
  for (Finding& f : raw) f.path = pf.displayPath;
  pf.raw.insert(pf.raw.end(), raw.begin(), raw.end());
}

/// Runs the whole-repo architecture pass over the already-lexed files
/// and distributes its findings back onto the per-file records
/// (attributed to display paths, so suppressions and output see the
/// path the user passed in). The built graph is returned through
/// *graphOut for the export flags.
void runArchitecture(std::vector<PerFile>& pfs, const Manifest& manifest,
                     const ArchOptions& options,
                     std::vector<ArchFile>* graphOut) {
  std::vector<ArchFile> arch;
  arch.reserve(pfs.size());
  std::map<std::string, std::size_t> byEffective;  // first claim wins
  for (std::size_t i = 0; i < pfs.size(); ++i) {
    ArchFile af;
    af.displayPath = pfs[i].displayPath;
    af.effectivePath = pfs[i].effectivePath;
    af.raw = scanRaw(pfs[i].source);
    af.symbols = harvestSymbols(pfs[i].lexed.tokens);
    af.tokens = &pfs[i].lexed.tokens;
    arch.push_back(std::move(af));
    byEffective.emplace(pfs[i].effectivePath, i);
  }
  resolveIncludes(arch, manifest);
  std::vector<Finding> findings;
  runArchPass(arch, manifest, options, findings);
  for (Finding& f : findings) {
    auto it = byEffective.find(f.path);
    if (it == byEffective.end()) continue;
    PerFile& pf = pfs[it->second];
    f.path = pf.displayPath;
    pf.raw.push_back(std::move(f));
  }
  if (graphOut != nullptr) *graphOut = std::move(arch);
}

/// Applies the file's suppressions to its raw findings and, in strict
/// mode, adds suppression-hygiene findings under the meta-rule
/// "lint-directive". Must run after the architecture pass so allow()
/// directives naming architecture rules count as used.
std::vector<Finding> applySuppressions(const PerFile& pf, bool strict) {
  const Directives& d = pf.lexed.directives;

  // Pre-suppression index for unused-allow detection.
  std::set<std::pair<int, std::string>> rawIndex;
  std::set<std::string> rawRules;
  for (const Finding& f : pf.raw) {
    rawIndex.insert({f.line, f.rule});
    rawRules.insert(f.rule);
  }

  std::set<Finding> kept;
  for (const Finding& f : pf.raw) {
    if (d.allowFile.count(f.rule)) continue;
    auto it = d.allow.find(f.line);
    if (it != d.allow.end() && it->second.count(f.rule)) continue;
    kept.insert(f);
  }

  if (strict) {
    // Directive-hygiene findings are themselves suppressible: a file
    // whose comments *document* the directive syntax (this tool's own
    // sources, DESIGN.md excerpts in headers) carries
    // `allow-file(lint-directive)`. The meta-rule is exempt from
    // unused-suppression checking — its findings are synthesized here,
    // after the raw index was built.
    const bool metaAllowed = d.allowFile.count("lint-directive") > 0;
    auto addMeta = [&](int line, const std::string& message) {
      if (metaAllowed) return;
      auto it = d.allow.find(line);
      if (it != d.allow.end() && it->second.count("lint-directive")) return;
      kept.insert(Finding{pf.displayPath, line, "lint-directive", message});
    };
    for (const auto& [line, message] : d.errors) addMeta(line, message);
    for (const Directives::AllowSite& site : d.allowSites) {
      if (site.rule == "lint-directive") continue;
      if (!isKnownRule(site.rule)) {
        addMeta(site.targetLine,
                "allow() names unknown rule '" + site.rule + "'");
      } else if (!rawIndex.count({site.targetLine, site.rule})) {
        addMeta(site.targetLine, "unused suppression: no '" + site.rule +
                                     "' finding on this line");
      }
    }
    for (const std::string& rule : d.allowFile) {
      if (rule == "lint-directive") continue;
      if (!isKnownRule(rule)) {
        addMeta(1, "allow-file() names unknown rule '" + rule + "'");
      } else if (!rawRules.count(rule)) {
        addMeta(1, "unused file-wide suppression for '" + rule + "'");
      }
    }
    for (const auto& [line, rules] : d.expect) {
      for (const std::string& rule : rules) {
        if (!isKnownRule(rule)) {
          addMeta(line, "expect() names unknown rule '" + rule + "'");
        }
      }
    }
  }

  return std::vector<Finding>(kept.begin(), kept.end());
}

DeclInfo siblingHeaderDecls(const std::string& path) {
  DeclInfo decls;
  fs::path p(path);
  const std::string ext = p.extension().string();
  if (ext != ".cpp" && ext != ".cc" && ext != ".cxx") return decls;
  for (const char* hext : {".h", ".hpp"}) {
    fs::path header = p;
    header.replace_extension(hext);
    std::string source;
    if (readFile(header.string(), &source)) {
      mergeDecls(decls, collectDecls(lex(source).tokens));
      break;
    }
  }
  return decls;
}

struct Options {
  bool strict = false;
  bool listRules = false;
  bool fixHints = false;
  bool checkFixtures = false;
  bool github = false;
  bool printLayerEdges = false;
  std::string manifestPath;
  std::string graphDotPath;
  std::string graphSvgPath;
  std::vector<std::pair<std::string, std::string>> forbidReach;
  std::vector<std::string> excludes;
  std::vector<std::string> paths;
};

int usage(std::ostream& err, const std::string& message) {
  if (!message.empty()) err << "pscd_lint: error: " << message << "\n";
  err << "usage: pscd_lint [--strict] [--fix-hints] [--exclude PREFIX]...\n"
         "                 [--manifest FILE] [--forbid-reach FROM:TO]...\n"
         "                 [--graph-dot FILE] [--graph-svg FILE]\n"
         "                 [--print-layer-edges]\n"
         "                 [--check-fixtures] [--list-rules] PATH...\n"
         "\n"
         "Lints C++ sources (files or directories, recursed) against the\n"
         "pscd determinism & correctness rules. Output lines are\n"
         "machine-readable:  file:line:rule: message\n"
         "\n"
         "  --strict          also fail on unused or unknown pscd-lint\n"
         "                    suppression directives\n"
         "  --fix-hints       print a remediation hint under each finding\n"
         "  --github          additionally emit GitHub Actions '::error'\n"
         "                    workflow commands so findings annotate the\n"
         "                    PR diff inline\n"
         "  --exclude PREFIX  skip files whose path starts with PREFIX\n"
         "  --manifest FILE   load a layering manifest and run the whole-\n"
         "                    repo architecture pass (layer-violation,\n"
         "                    include-cycle, unused-include,\n"
         "                    self-include-first)\n"
         "  --forbid-reach FROM:TO\n"
         "                    with --manifest: report a layer-violation\n"
         "                    when any file in layer FROM transitively\n"
         "                    includes layer TO (repeatable)\n"
         "  --graph-dot FILE  with --manifest: write the file-level\n"
         "                    include graph as Graphviz DOT\n"
         "  --graph-svg FILE  with --manifest: write the layer DAG as a\n"
         "                    self-contained SVG\n"
         "  --print-layer-edges\n"
         "                    with --manifest: print the actual cross-\n"
         "                    layer edges (one 'from -> to' per line) and\n"
         "                    exit 0; CI diffs this against the committed\n"
         "                    baseline\n"
         "  --check-fixtures  fixture mode: every '// pscd-lint: expect(r)'\n"
         "                    must fire, nothing else may, and every\n"
         "                    registered rule needs at least one firing\n"
         "                    fixture across the given paths\n"
         "  --list-rules      print the rule registry and exit\n"
         "\n"
         "exit codes: 0 clean, 1 findings, 2 usage/io error\n";
  return 2;
}

bool parseArgs(const std::vector<std::string>& args, Options* opts,
               std::ostream& err, int* exitCode) {
  auto value = [&](std::size_t& i, const char* flag,
                   std::string* out) -> bool {
    if (i + 1 >= args.size()) {
      *exitCode = usage(err, std::string(flag) + " needs a value");
      return false;
    }
    *out = args[++i];
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--strict") {
      opts->strict = true;
    } else if (a == "--list-rules") {
      opts->listRules = true;
    } else if (a == "--fix-hints") {
      opts->fixHints = true;
    } else if (a == "--check-fixtures") {
      opts->checkFixtures = true;
    } else if (a == "--github") {
      opts->github = true;
    } else if (a == "--print-layer-edges") {
      opts->printLayerEdges = true;
    } else if (a == "--manifest") {
      if (!value(i, "--manifest", &opts->manifestPath)) return false;
    } else if (a == "--graph-dot") {
      if (!value(i, "--graph-dot", &opts->graphDotPath)) return false;
    } else if (a == "--graph-svg") {
      if (!value(i, "--graph-svg", &opts->graphSvgPath)) return false;
    } else if (a == "--forbid-reach") {
      std::string pair;
      if (!value(i, "--forbid-reach", &pair)) return false;
      const std::size_t colon = pair.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= pair.size()) {
        *exitCode = usage(err, "--forbid-reach wants FROM:TO, got '" + pair +
                                   "'");
        return false;
      }
      opts->forbidReach.emplace_back(pair.substr(0, colon),
                                     pair.substr(colon + 1));
    } else if (a == "--exclude") {
      std::string prefix;
      if (!value(i, "--exclude", &prefix)) return false;
      opts->excludes.push_back(normalize(prefix));
    } else if (a == "--help" || a == "-h") {
      *exitCode = usage(err, "");
      *exitCode = 0;
      return false;
    } else if (!a.empty() && a[0] == '-') {
      *exitCode = usage(err, "unknown option '" + a + "'");
      return false;
    } else {
      opts->paths.push_back(a);
    }
  }
  if (opts->manifestPath.empty()) {
    const char* needManifest = nullptr;
    if (!opts->graphDotPath.empty()) needManifest = "--graph-dot";
    if (!opts->graphSvgPath.empty()) needManifest = "--graph-svg";
    if (opts->printLayerEdges) needManifest = "--print-layer-edges";
    if (!opts->forbidReach.empty()) needManifest = "--forbid-reach";
    if (needManifest != nullptr) {
      *exitCode =
          usage(err, std::string(needManifest) + " requires --manifest");
      return false;
    }
  }
  if (!opts->listRules && opts->paths.empty()) {
    *exitCode = usage(err, "no input paths");
    return false;
  }
  return true;
}

/// Expands files and directories into a sorted, deduplicated file list.
bool collectFiles(const Options& opts, std::vector<std::string>* files,
                  std::ostream& err) {
  std::set<std::string> found;
  for (const std::string& path : opts.paths) {
    fs::path p(path);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && hasLintableExtension(it->path())) {
          found.insert(normalize(it->path().generic_string()));
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      found.insert(normalize(p.generic_string()));
    } else {
      err << "pscd_lint: error: no such file or directory: " << path << "\n";
      return false;
    }
  }
  for (const std::string& f : found) {
    bool excluded = false;
    for (const std::string& prefix : opts.excludes) {
      if (f.rfind(prefix, 0) == 0) {
        excluded = true;
        break;
      }
    }
    if (!excluded) files->push_back(f);
  }
  return true;
}

const Rule* findRule(const std::string& name) {
  for (const Rule& r : ruleRegistry()) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

/// Escapes a GitHub Actions workflow-command *property* value
/// (file=..., title=...). Properties additionally escape ':' and ','.
std::string githubEscapeProperty(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ':': out += "%3A"; break;
      case ',': out += "%2C"; break;
      default: out += c;
    }
  }
  return out;
}

/// Escapes a workflow-command *message* (the part after `::`).
std::string githubEscapeMessage(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      default: out += c;
    }
  }
  return out;
}

void printFindings(const std::vector<Finding>& findings, bool fixHints,
                   bool github, std::ostream& out) {
  for (const Finding& f : findings) {
    out << f.path << ':' << f.line << ':' << f.rule << ": " << f.message
        << "\n";
    if (fixHints) {
      const Rule* rule = findRule(f.rule);
      if (rule != nullptr) out << "    hint: " << rule->hint << "\n";
    }
    if (github) {
      out << "::error file=" << githubEscapeProperty(f.path)
          << ",line=" << f.line
          << ",title=" << githubEscapeProperty("pscd-lint: " + f.rule)
          << "::" << githubEscapeMessage(f.message) << "\n";
    }
  }
}

int runListRules(std::ostream& out) {
  std::size_t width = 0;
  for (const Rule& r : ruleRegistry()) width = std::max(width, r.name.size());
  for (const Rule& r : ruleRegistry()) {
    out << r.name << std::string(width - r.name.size() + 2, ' ') << "["
        << r.group << "] " << r.summary << "\n";
  }
  return 0;
}

/// Fixture mode: expectations in the corpus must match findings exactly,
/// and every registered rule must fire somewhere. Architecture findings
/// are already distributed onto the per-file records, so fixtures can
/// expect() them like any token rule.
int runCheckFixtures(const std::vector<PerFile>& pfs, bool fixHints,
                     std::ostream& out) {
  int mismatches = 0;
  std::set<std::string> firedRules;
  for (const PerFile& pf : pfs) {
    const std::vector<Finding> findings =
        applySuppressions(pf, /*strict=*/true);
    std::set<std::pair<int, std::string>> actual;
    for (const Finding& f : findings) actual.insert({f.line, f.rule});
    std::set<std::pair<int, std::string>> expected;
    for (const auto& [line, rules] : pf.lexed.directives.expect) {
      for (const std::string& rule : rules) expected.insert({line, rule});
    }
    for (const auto& [line, rule] : expected) {
      firedRules.insert(rule);
      if (!actual.count({line, rule})) {
        out << pf.displayPath << ':' << line << ':' << rule
            << ": FIXTURE DID NOT FIRE (expected a finding here)\n";
        ++mismatches;
      }
    }
    for (const Finding& f : findings) {
      if (!expected.count({f.line, f.rule})) {
        out << f.path << ':' << f.line << ':' << f.rule
            << ": unexpected finding in fixture: " << f.message << "\n";
        if (fixHints) {
          const Rule* rule = findRule(f.rule);
          if (rule != nullptr) out << "    hint: " << rule->hint << "\n";
        }
        ++mismatches;
      }
    }
  }
  for (const Rule& r : ruleRegistry()) {
    if (!firedRules.count(r.name)) {
      out << "pscd_lint: rule '" << r.name
          << "' has no firing fixture in the corpus\n";
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    out << "pscd_lint: fixture self-test FAILED (" << mismatches
        << " mismatch" << (mismatches == 1 ? "" : "es") << ")\n";
    return 1;
  }
  out << "pscd_lint: fixture self-test ok (" << pfs.size() << " fixtures, "
      << ruleRegistry().size() << " rules fired)\n";
  return 0;
}

}  // namespace

std::vector<Finding> lintSource(const std::string& path,
                                const std::string& source,
                                const DeclInfo& headerDecls, bool strict) {
  PerFile pf = makePerFile(path, source, headerDecls);
  runFileRules(pf);
  return applySuppressions(pf, strict);
}

std::vector<Finding> lintRepo(
    const std::vector<MemoryFile>& files, const std::string& manifestText,
    const std::vector<std::pair<std::string, std::string>>& forbidReach,
    bool strict, std::string* manifestError) {
  Manifest manifest;
  std::string parseError;
  if (!parseManifest(manifestText, &manifest, &parseError)) {
    if (manifestError != nullptr) *manifestError = parseError;
    return {};
  }
  if (manifestError != nullptr) manifestError->clear();

  std::vector<PerFile> pfs;
  pfs.reserve(files.size());
  for (const MemoryFile& mf : files) {
    DeclInfo headerDecls;
    fs::path p(mf.path);
    const std::string ext = p.extension().string();
    if (ext == ".cpp" || ext == ".cc" || ext == ".cxx") {
      for (const char* hext : {".h", ".hpp"}) {
        fs::path header = p;
        header.replace_extension(hext);
        const std::string headerPath = header.generic_string();
        for (const MemoryFile& other : files) {
          if (other.path == headerPath) {
            mergeDecls(headerDecls, collectDecls(lex(other.source).tokens));
            break;
          }
        }
      }
    }
    pfs.push_back(makePerFile(mf.path, mf.source, headerDecls));
  }
  for (PerFile& pf : pfs) runFileRules(pf);

  ArchOptions archOptions;
  archOptions.forbidReach = forbidReach;
  runArchitecture(pfs, manifest, archOptions, nullptr);

  std::vector<Finding> all;
  for (const PerFile& pf : pfs) {
    const std::vector<Finding> kept = applySuppressions(pf, strict);
    all.insert(all.end(), kept.begin(), kept.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

int runLint(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  Options opts;
  int exitCode = 0;
  if (!parseArgs(args, &opts, err, &exitCode)) return exitCode;
  if (opts.listRules) return runListRules(out);

  std::vector<std::string> files;
  if (!collectFiles(opts, &files, err)) return 2;

  Manifest manifest;
  const bool haveManifest = !opts.manifestPath.empty();
  if (haveManifest) {
    std::string text;
    if (!readFile(opts.manifestPath, &text)) {
      err << "pscd_lint: error: cannot read manifest " << opts.manifestPath
          << "\n";
      return 2;
    }
    std::string parseError;
    if (!parseManifest(text, &manifest, &parseError)) {
      err << "pscd_lint: error: manifest " << opts.manifestPath << ": "
          << parseError << "\n";
      return 2;
    }
    for (const auto& [from, to] : opts.forbidReach) {
      for (const std::string& layer : {from, to}) {
        if (!manifest.layers.count(layer)) {
          err << "pscd_lint: error: --forbid-reach names unknown layer '"
              << layer << "'\n";
          return 2;
        }
      }
    }
  }

  std::vector<PerFile> pfs;
  pfs.reserve(files.size());
  for (const std::string& file : files) {
    std::string source;
    if (!readFile(file, &source)) {
      err << "pscd_lint: error: cannot read " << file << "\n";
      return 2;
    }
    pfs.push_back(makePerFile(file, std::move(source),
                              siblingHeaderDecls(file)));
  }
  for (PerFile& pf : pfs) runFileRules(pf);

  if (haveManifest) {
    ArchOptions archOptions;
    archOptions.forbidReach = opts.forbidReach;
    std::vector<ArchFile> graph;
    runArchitecture(pfs, manifest, archOptions, &graph);
    if (!opts.graphDotPath.empty() &&
        !writeFile(opts.graphDotPath, renderGraphDot(graph, manifest))) {
      err << "pscd_lint: error: cannot write " << opts.graphDotPath << "\n";
      return 2;
    }
    if (!opts.graphSvgPath.empty() &&
        !writeFile(opts.graphSvgPath, renderLayerSvg(graph, manifest))) {
      err << "pscd_lint: error: cannot write " << opts.graphSvgPath << "\n";
      return 2;
    }
    if (opts.printLayerEdges) {
      out << renderLayerEdges(graph, manifest);
      return 0;
    }
  }

  if (opts.checkFixtures) return runCheckFixtures(pfs, opts.fixHints, out);

  std::vector<Finding> all;
  for (const PerFile& pf : pfs) {
    const std::vector<Finding> kept = applySuppressions(pf, opts.strict);
    all.insert(all.end(), kept.begin(), kept.end());
  }
  std::sort(all.begin(), all.end());
  printFindings(all, opts.fixHints, opts.github, out);
  if (!all.empty()) {
    out << "pscd_lint: " << all.size() << " finding"
        << (all.size() == 1 ? "" : "s") << " in " << pfs.size()
        << " files\n";
    return 1;
  }
  out << "pscd_lint: clean (" << pfs.size() << " files)\n";
  return 0;
}

}  // namespace pscd_lint
