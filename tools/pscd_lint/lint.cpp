#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace pscd_lint {
namespace {

namespace fs = std::filesystem;

std::string normalize(std::string path) {
  while (path.rfind("./", 0) == 0) path.erase(0, 2);
  return path;
}

bool hasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp";
}

struct Analysis {
  std::vector<Finding> findings;  // post-suppression, sorted, deduped
  Directives directives;
  bool ioError = false;
};

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Core per-file pipeline: lex, harvest declarations (file + sibling
/// header), run in-scope rules, apply suppressions, and in strict mode
/// add suppression-hygiene findings.
Analysis analyzeSource(const std::string& displayPath,
                       const std::string& source, const DeclInfo& headerDecls,
                       bool strict) {
  Analysis a;
  LexResult lexed = lex(source);
  a.directives = lexed.directives;

  const std::string effectivePath = lexed.directives.asPath.empty()
                                        ? normalize(displayPath)
                                        : lexed.directives.asPath;
  DeclInfo decls = collectDecls(lexed.tokens);
  mergeDecls(decls, headerDecls);

  std::vector<HotRegion> hotRegions = collectHotRegions(lexed.tokens);

  FileContext ctx;
  ctx.effectivePath = effectivePath;
  ctx.tokens = &lexed.tokens;
  ctx.decls = &decls;
  ctx.hotRegions = &hotRegions;

  std::vector<Finding> raw;
  for (const Rule& rule : ruleRegistry()) {
    if (rule.inScope(effectivePath)) rule.check(ctx, raw);
  }
  for (Finding& f : raw) f.path = displayPath;

  // Pre-suppression index for unused-allow detection.
  std::set<std::pair<int, std::string>> rawIndex;
  std::set<std::string> rawRules;
  for (const Finding& f : raw) {
    rawIndex.insert({f.line, f.rule});
    rawRules.insert(f.rule);
  }

  std::set<Finding> kept;
  const Directives& d = a.directives;
  for (const Finding& f : raw) {
    if (d.allowFile.count(f.rule)) continue;
    auto it = d.allow.find(f.line);
    if (it != d.allow.end() && it->second.count(f.rule)) continue;
    kept.insert(f);
  }

  if (strict) {
    // Directive-hygiene findings are themselves suppressible: a file
    // whose comments *document* the directive syntax (this tool's own
    // sources, DESIGN.md excerpts in headers) carries
    // `allow-file(lint-directive)`. The meta-rule is exempt from
    // unused-suppression checking — its findings are synthesized here,
    // after the raw index was built.
    const bool metaAllowed = d.allowFile.count("lint-directive") > 0;
    auto addMeta = [&](int line, const std::string& message) {
      if (metaAllowed) return;
      auto it = d.allow.find(line);
      if (it != d.allow.end() && it->second.count("lint-directive")) return;
      kept.insert(Finding{displayPath, line, "lint-directive", message});
    };
    for (const auto& [line, message] : d.errors) addMeta(line, message);
    for (const Directives::AllowSite& site : d.allowSites) {
      if (site.rule == "lint-directive") continue;
      if (!isKnownRule(site.rule)) {
        addMeta(site.targetLine,
                "allow() names unknown rule '" + site.rule + "'");
      } else if (!rawIndex.count({site.targetLine, site.rule})) {
        addMeta(site.targetLine, "unused suppression: no '" + site.rule +
                                     "' finding on this line");
      }
    }
    for (const std::string& rule : d.allowFile) {
      if (rule == "lint-directive") continue;
      if (!isKnownRule(rule)) {
        addMeta(1, "allow-file() names unknown rule '" + rule + "'");
      } else if (!rawRules.count(rule)) {
        addMeta(1, "unused file-wide suppression for '" + rule + "'");
      }
    }
    for (const auto& [line, rules] : d.expect) {
      for (const std::string& rule : rules) {
        if (!isKnownRule(rule)) {
          addMeta(line, "expect() names unknown rule '" + rule + "'");
        }
      }
    }
  }

  a.findings.assign(kept.begin(), kept.end());
  return a;
}

DeclInfo siblingHeaderDecls(const std::string& path) {
  DeclInfo decls;
  fs::path p(path);
  const std::string ext = p.extension().string();
  if (ext != ".cpp" && ext != ".cc" && ext != ".cxx") return decls;
  for (const char* hext : {".h", ".hpp"}) {
    fs::path header = p;
    header.replace_extension(hext);
    std::string source;
    if (readFile(header.string(), &source)) {
      mergeDecls(decls, collectDecls(lex(source).tokens));
      break;
    }
  }
  return decls;
}

struct Options {
  bool strict = false;
  bool listRules = false;
  bool fixHints = false;
  bool checkFixtures = false;
  bool github = false;
  std::vector<std::string> excludes;
  std::vector<std::string> paths;
};

int usage(std::ostream& err, const std::string& message) {
  if (!message.empty()) err << "pscd_lint: error: " << message << "\n";
  err << "usage: pscd_lint [--strict] [--fix-hints] [--exclude PREFIX]...\n"
         "                 [--check-fixtures] [--list-rules] PATH...\n"
         "\n"
         "Lints C++ sources (files or directories, recursed) against the\n"
         "pscd determinism & correctness rules. Output lines are\n"
         "machine-readable:  file:line:rule: message\n"
         "\n"
         "  --strict          also fail on unused or unknown pscd-lint\n"
         "                    suppression directives\n"
         "  --fix-hints       print a remediation hint under each finding\n"
         "  --github          additionally emit GitHub Actions '::error'\n"
         "                    workflow commands so findings annotate the\n"
         "                    PR diff inline\n"
         "  --exclude PREFIX  skip files whose path starts with PREFIX\n"
         "  --check-fixtures  fixture mode: every '// pscd-lint: expect(r)'\n"
         "                    must fire, nothing else may, and every\n"
         "                    registered rule needs at least one firing\n"
         "                    fixture across the given paths\n"
         "  --list-rules      print the rule registry and exit\n"
         "\n"
         "exit codes: 0 clean, 1 findings, 2 usage/io error\n";
  return 2;
}

bool parseArgs(const std::vector<std::string>& args, Options* opts,
               std::ostream& err, int* exitCode) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--strict") {
      opts->strict = true;
    } else if (a == "--list-rules") {
      opts->listRules = true;
    } else if (a == "--fix-hints") {
      opts->fixHints = true;
    } else if (a == "--check-fixtures") {
      opts->checkFixtures = true;
    } else if (a == "--github") {
      opts->github = true;
    } else if (a == "--exclude") {
      if (i + 1 >= args.size()) {
        *exitCode = usage(err, "--exclude needs a path prefix");
        return false;
      }
      opts->excludes.push_back(normalize(args[++i]));
    } else if (a == "--help" || a == "-h") {
      *exitCode = usage(err, "");
      *exitCode = 0;
      return false;
    } else if (!a.empty() && a[0] == '-') {
      *exitCode = usage(err, "unknown option '" + a + "'");
      return false;
    } else {
      opts->paths.push_back(a);
    }
  }
  if (!opts->listRules && opts->paths.empty()) {
    *exitCode = usage(err, "no input paths");
    return false;
  }
  return true;
}

/// Expands files and directories into a sorted, deduplicated file list.
bool collectFiles(const Options& opts, std::vector<std::string>* files,
                  std::ostream& err) {
  std::set<std::string> found;
  for (const std::string& path : opts.paths) {
    fs::path p(path);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && hasLintableExtension(it->path())) {
          found.insert(normalize(it->path().generic_string()));
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      found.insert(normalize(p.generic_string()));
    } else {
      err << "pscd_lint: error: no such file or directory: " << path << "\n";
      return false;
    }
  }
  for (const std::string& f : found) {
    bool excluded = false;
    for (const std::string& prefix : opts.excludes) {
      if (f.rfind(prefix, 0) == 0) {
        excluded = true;
        break;
      }
    }
    if (!excluded) files->push_back(f);
  }
  return true;
}

const Rule* findRule(const std::string& name) {
  for (const Rule& r : ruleRegistry()) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

/// Escapes a GitHub Actions workflow-command *property* value
/// (file=..., title=...). Properties additionally escape ':' and ','.
std::string githubEscapeProperty(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ':': out += "%3A"; break;
      case ',': out += "%2C"; break;
      default: out += c;
    }
  }
  return out;
}

/// Escapes a workflow-command *message* (the part after `::`).
std::string githubEscapeMessage(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      default: out += c;
    }
  }
  return out;
}

void printFindings(const std::vector<Finding>& findings, bool fixHints,
                   bool github, std::ostream& out) {
  for (const Finding& f : findings) {
    out << f.path << ':' << f.line << ':' << f.rule << ": " << f.message
        << "\n";
    if (fixHints) {
      const Rule* rule = findRule(f.rule);
      if (rule != nullptr) out << "    hint: " << rule->hint << "\n";
    }
    if (github) {
      out << "::error file=" << githubEscapeProperty(f.path)
          << ",line=" << f.line
          << ",title=" << githubEscapeProperty("pscd-lint: " + f.rule)
          << "::" << githubEscapeMessage(f.message) << "\n";
    }
  }
}

int runListRules(std::ostream& out) {
  std::size_t width = 0;
  for (const Rule& r : ruleRegistry()) width = std::max(width, r.name.size());
  for (const Rule& r : ruleRegistry()) {
    out << r.name << std::string(width - r.name.size() + 2, ' ') << "["
        << r.group << "] " << r.summary << "\n";
  }
  return 0;
}

/// Fixture mode: expectations in the corpus must match findings exactly,
/// and every registered rule must fire somewhere.
int runCheckFixtures(const std::vector<std::string>& files, bool fixHints,
                     std::ostream& out, std::ostream& err) {
  int mismatches = 0;
  std::set<std::string> firedRules;
  for (const std::string& file : files) {
    std::string source;
    if (!readFile(file, &source)) {
      err << "pscd_lint: error: cannot read " << file << "\n";
      return 2;
    }
    Analysis a =
        analyzeSource(file, source, siblingHeaderDecls(file), /*strict=*/true);
    std::set<std::pair<int, std::string>> actual;
    for (const Finding& f : a.findings) actual.insert({f.line, f.rule});
    std::set<std::pair<int, std::string>> expected;
    for (const auto& [line, rules] : a.directives.expect) {
      for (const std::string& rule : rules) expected.insert({line, rule});
    }
    for (const auto& [line, rule] : expected) {
      firedRules.insert(rule);
      if (!actual.count({line, rule})) {
        out << file << ':' << line << ':' << rule
            << ": FIXTURE DID NOT FIRE (expected a finding here)\n";
        ++mismatches;
      }
    }
    for (const Finding& f : a.findings) {
      if (!expected.count({f.line, f.rule})) {
        out << f.path << ':' << f.line << ':' << f.rule
            << ": unexpected finding in fixture: " << f.message << "\n";
        if (fixHints) {
          const Rule* rule = findRule(f.rule);
          if (rule != nullptr) out << "    hint: " << rule->hint << "\n";
        }
        ++mismatches;
      }
    }
  }
  for (const Rule& r : ruleRegistry()) {
    if (!firedRules.count(r.name)) {
      out << "pscd_lint: rule '" << r.name
          << "' has no firing fixture in the corpus\n";
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    out << "pscd_lint: fixture self-test FAILED (" << mismatches
        << " mismatch" << (mismatches == 1 ? "" : "es") << ")\n";
    return 1;
  }
  out << "pscd_lint: fixture self-test ok (" << files.size() << " fixtures, "
      << ruleRegistry().size() << " rules fired)\n";
  return 0;
}

}  // namespace

std::vector<Finding> lintSource(const std::string& path,
                                const std::string& source,
                                const DeclInfo& headerDecls, bool strict) {
  return analyzeSource(path, source, headerDecls, strict).findings;
}

int runLint(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  Options opts;
  int exitCode = 0;
  if (!parseArgs(args, &opts, err, &exitCode)) return exitCode;
  if (opts.listRules) return runListRules(out);

  std::vector<std::string> files;
  if (!collectFiles(opts, &files, err)) return 2;
  if (opts.checkFixtures)
    return runCheckFixtures(files, opts.fixHints, out, err);

  std::vector<Finding> all;
  for (const std::string& file : files) {
    std::string source;
    if (!readFile(file, &source)) {
      err << "pscd_lint: error: cannot read " << file << "\n";
      return 2;
    }
    Analysis a =
        analyzeSource(file, source, siblingHeaderDecls(file), opts.strict);
    all.insert(all.end(), a.findings.begin(), a.findings.end());
  }
  std::sort(all.begin(), all.end());
  printFindings(all, opts.fixHints, opts.github, out);
  if (!all.empty()) {
    out << "pscd_lint: " << all.size() << " finding"
        << (all.size() == 1 ? "" : "s") << " in " << files.size()
        << " files\n";
    return 1;
  }
  out << "pscd_lint: clean (" << files.size() << " files)\n";
  return 0;
}

}  // namespace pscd_lint
