// pscd-lint: allow-file(lint-directive) comments below quote the syntax
#include "lexer.h"

#include <cctype>

namespace pscd_lint {
namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first. `>>` is intentionally
// absent (emitted as two `>` so template matchers never split a shift);
// everything a rule matcher cares about is here.
const char* const kPunct3[] = {"<<=", "<=>", "...", "->*"};
const char* const kPunct2[] = {"::", "->", "<<", "<=", ">=", "==", "!=",
                               "&&", "||", "+=", "-=", "*=", "/=", "%=",
                               "&=", "|=", "^=", "++", "--", ".*"};

// A raw-string prefix is one of R, uR, UR, LR, u8R.
bool isRawPrefix(const std::string& ident) {
  return ident == "R" || ident == "uR" || ident == "UR" || ident == "LR" ||
         ident == "u8R";
}

struct PendingDirective {
  int commentLine = 0;      // line the comment starts on
  bool trailing = false;    // comment shares its line with code
  std::string verb;         // allow / allow-file / expect / as-path
  std::vector<std::string> args;
};

// Parses every `verb(arg, ...)` group after a "pscd-lint:" marker.
// Returns false (with *error set) on malformed syntax.
bool parseDirectiveText(const std::string& comment, int line, bool trailing,
                        std::vector<PendingDirective>& out,
                        std::string* error) {
  const std::string marker = "pscd-lint:";
  std::size_t pos = comment.find(marker);
  if (pos == std::string::npos) return true;
  pos += marker.size();
  bool sawVerb = false;
  while (pos < comment.size()) {
    while (pos < comment.size() &&
           (comment[pos] == ' ' || comment[pos] == '\t' || comment[pos] == ','))
      ++pos;
    if (pos >= comment.size()) break;
    if (!isIdentStart(comment[pos]) && comment[pos] != '-') {
      // Anything that is not a verb ends the directive portion; trailing
      // free text is a justification, but only after at least one verb.
      if (sawVerb) return true;
      *error = "expected a directive verb after 'pscd-lint:'";
      return false;
    }
    std::size_t start = pos;
    while (pos < comment.size() &&
           (isIdentChar(comment[pos]) || comment[pos] == '-'))
      ++pos;
    std::string verb = comment.substr(start, pos - start);
    while (pos < comment.size() && comment[pos] == ' ') ++pos;
    if (pos >= comment.size() || comment[pos] != '(') {
      if (sawVerb) return true;  // justification word, not a verb
      *error = "directive verb '" + verb + "' is missing its (args)";
      return false;
    }
    ++pos;  // consume '('
    std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) {
      *error = "unterminated argument list in pscd-lint directive";
      return false;
    }
    PendingDirective d;
    d.commentLine = line;
    d.trailing = trailing;
    d.verb = verb;
    std::string arg;
    for (std::size_t i = pos; i < close; ++i) {
      char c = comment[i];
      if (c == ',') {
        if (!arg.empty()) d.args.push_back(arg);
        arg.clear();
      } else if (c != ' ' && c != '\t') {
        arg += c;
      }
    }
    if (!arg.empty()) d.args.push_back(arg);
    if (d.args.empty()) {
      *error = "pscd-lint " + verb + "() needs at least one argument";
      return false;
    }
    out.push_back(std::move(d));
    sawVerb = true;
    pos = close + 1;
    // After a directive group, everything that is not another known
    // verb-with-parens is treated as justification text on the next
    // loop iteration and ends parsing gracefully.
  }
  if (!sawVerb) {
    *error = "'pscd-lint:' marker with no directive";
    return false;
  }
  return true;
}

}  // namespace

LexResult lex(const std::string& source) {
  LexResult result;
  std::vector<PendingDirective> pending;
  std::vector<std::pair<int, std::string>> errors;

  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  bool lineHasToken = false;  // any token emitted on the current line
  // Lines that carry at least one token, for resolving standalone
  // directive comments to the next code line.
  std::set<int> tokenLines;

  auto emit = [&](Token::Kind kind, std::string text) {
    result.tokens.push_back(Token{kind, std::move(text), line});
    tokenLines.insert(line);
    lineHasToken = true;
  };
  auto newline = [&]() {
    ++line;
    lineHasToken = false;
  };

  auto handleComment = [&](const std::string& text, int startLine) {
    std::string error;
    std::vector<PendingDirective> parsed;
    // `trailing` is decided by whether the comment's first line already
    // has code on it.
    bool trailing = lineHasToken && startLine == line;
    if (!parseDirectiveText(text, startLine, trailing, parsed, &error)) {
      errors.emplace_back(startLine, error);
    }
    for (auto& d : parsed) pending.push_back(std::move(d));
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: only whitespace may precede '#'. Skip to
    // the end of the logical line, honoring backslash continuations and
    // comments (which may still carry pscd-lint directives).
    if (c == '#' && !lineHasToken) {
      // Preprocessor lines emit no tokens, but they are suppression
      // targets (the architecture rules anchor findings on #include
      // lines), so they count as token lines for directive resolution.
      tokenLines.insert(line);
      lineHasToken = true;
      ++i;
      while (i < n) {
        char p = source[i];
        if (p == '\\' && i + 1 < n && source[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        if (p == '\n') break;  // leave for main loop to count
        if (p == '/' && i + 1 < n && source[i + 1] == '/') {
          int start = line;
          std::size_t eol = source.find('\n', i);
          std::string text = source.substr(
              i + 2, eol == std::string::npos ? std::string::npos
                                              : eol - i - 2);
          handleComment(text, start);
          i = eol == std::string::npos ? n : eol;
          continue;
        }
        if (p == '/' && i + 1 < n && source[i + 1] == '*') {
          int start = line;
          std::size_t end = source.find("*/", i + 2);
          std::string text =
              source.substr(i + 2, end == std::string::npos
                                       ? std::string::npos
                                       : end - i - 2);
          handleComment(text, start);
          for (char t : text)
            if (t == '\n') newline();
          i = end == std::string::npos ? n : end + 2;
          continue;
        }
        if (p == '"') {  // e.g. #include "foo.h" or #error "text"
          ++i;
          while (i < n && source[i] != '"' && source[i] != '\n') {
            if (source[i] == '\\' && i + 1 < n) ++i;
            ++i;
          }
          if (i < n && source[i] == '"') ++i;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      int start = line;
      std::size_t eol = source.find('\n', i);
      std::string text = source.substr(
          i + 2, eol == std::string::npos ? std::string::npos : eol - i - 2);
      handleComment(text, start);
      i = eol == std::string::npos ? n : eol;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      int start = line;
      std::size_t end = source.find("*/", i + 2);
      std::string text = source.substr(
          i + 2, end == std::string::npos ? std::string::npos : end - i - 2);
      handleComment(text, start);
      for (char t : text)
        if (t == '\n') newline();
      i = end == std::string::npos ? n : end + 2;
      continue;
    }
    // String literal.
    if (c == '"') {
      ++i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        if (source[i] == '\n') newline();
        ++i;
      }
      if (i < n) ++i;  // closing quote
      emit(Token::Kind::kString, "");
      continue;
    }
    // Character literal (digit separators are consumed by the number
    // scanner below, so a bare ' here always opens a char literal).
    if (c == '\'') {
      ++i;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        if (source[i] == '\n') newline();
        ++i;
      }
      if (i < n) ++i;
      emit(Token::Kind::kChar, "");
      continue;
    }
    // Identifier / keyword — possibly a raw-string or string prefix.
    if (isIdentStart(c)) {
      std::size_t start = i;
      while (i < n && isIdentChar(source[i])) ++i;
      std::string ident = source.substr(start, i - start);
      if (isRawPrefix(ident) && i < n && source[i] == '"') {
        // Raw string: R"delim( ... )delim"
        ++i;  // consume quote
        std::string delim;
        while (i < n && source[i] != '(') delim += source[i++];
        if (i < n) ++i;  // consume '('
        std::string closer = ")" + delim + "\"";
        std::size_t end = source.find(closer, i);
        std::size_t stop = end == std::string::npos ? n : end;
        for (std::size_t k = i; k < stop; ++k)
          if (source[k] == '\n') newline();
        i = end == std::string::npos ? n : end + closer.size();
        emit(Token::Kind::kString, "");
        continue;
      }
      if ((ident == "u8" || ident == "u" || ident == "U" || ident == "L") &&
          i < n && source[i] == '"') {
        // Encoded string literal: fall through to the next loop pass,
        // which lexes the quote as an ordinary string.
        emit(Token::Kind::kString, "");
        ++i;
        while (i < n && source[i] != '"') {
          if (source[i] == '\\' && i + 1 < n) ++i;
          if (source[i] == '\n') newline();
          ++i;
        }
        if (i < n) ++i;
        continue;
      }
      emit(Token::Kind::kIdent, std::move(ident));
      continue;
    }
    // Number (pp-number): digits, identifier chars, '.', exponent signs
    // and digit separators.
    if (isDigit(c) || (c == '.' && i + 1 < n && isDigit(source[i + 1]))) {
      std::size_t start = i;
      ++i;
      while (i < n) {
        char p = source[i];
        if (isIdentChar(p) || p == '.') {
          ++i;
        } else if ((p == '+' || p == '-') && i > start &&
                   (source[i - 1] == 'e' || source[i - 1] == 'E' ||
                    source[i - 1] == 'p' || source[i - 1] == 'P')) {
          ++i;
        } else if (p == '\'' && i + 1 < n && isIdentChar(source[i + 1])) {
          i += 2;  // digit separator
        } else {
          break;
        }
      }
      emit(Token::Kind::kNumber, source.substr(start, i - start));
      continue;
    }
    // Punctuation, longest match first ('>>' stays split).
    bool matched = false;
    for (const char* p3 : kPunct3) {
      if (i + 2 < n && source.compare(i, 3, p3) == 0) {
        emit(Token::Kind::kPunct, p3);
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p2 : kPunct2) {
      if (i + 1 < n && source.compare(i, 2, p2) == 0) {
        emit(Token::Kind::kPunct, p2);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    emit(Token::Kind::kPunct, std::string(1, c));
    ++i;
  }

  // Resolve pending directives to target lines: a trailing comment
  // targets its own line; a standalone comment targets the next line
  // that carries a token (falling back to its own line at EOF).
  Directives& d = result.directives;
  d.errors = std::move(errors);
  for (const PendingDirective& p : pending) {
    int target = p.commentLine;
    if (!p.trailing) {
      auto it = tokenLines.upper_bound(p.commentLine);
      if (it != tokenLines.end()) target = *it;
    }
    if (p.verb == "allow") {
      for (const std::string& rule : p.args) {
        d.allow[target].insert(rule);
        d.allowSites.push_back({target, rule});
      }
    } else if (p.verb == "allow-file") {
      for (const std::string& rule : p.args) d.allowFile.insert(rule);
    } else if (p.verb == "expect") {
      for (const std::string& rule : p.args) d.expect[target].insert(rule);
    } else if (p.verb == "as-path") {
      d.asPath = p.args.front();
    } else {
      d.errors.emplace_back(p.commentLine,
                            "unknown pscd-lint directive '" + p.verb + "'");
    }
  }
  return result;
}

}  // namespace pscd_lint
