// Tokenizer for pscd_lint: strips comments, string literals (including
// raw strings), character literals, and preprocessor directives from a
// C++ source file, yielding a flat token stream with line numbers that
// the rule matchers (rules.h) pattern-match against.
//
// Comments are not discarded entirely: they are scanned for pscd-lint
// control directives before being dropped:
//
//   // pscd-lint: allow(rule-a, rule-b)   suppress those rules here
//   // pscd-lint: allow-file(rule-a)      suppress in the whole file
//   // pscd-lint: expect(rule-a)          fixture expectation (corpus)
//   // pscd-lint: as-path(src/pscd/x.cpp) lint as if at this path
//
// A directive in a trailing comment targets its own line; a directive
// in a comment that stands alone on its line targets the next line that
// carries any token. Free text after the closing parenthesis is a
// justification and is ignored by the parser (but encouraged in code).
//
// pscd-lint: allow-file(lint-directive) the examples above are docs
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace pscd_lint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind;
  std::string text;  // empty for kString/kChar (contents are irrelevant)
  int line = 0;
};

struct Directives {
  // Resolved target line -> rule names suppressed / expected there.
  std::map<int, std::set<std::string>> allow;
  std::map<int, std::set<std::string>> expect;
  std::set<std::string> allowFile;
  std::string asPath;  // empty when no as-path directive was seen

  // For --strict suppression hygiene: every allow() occurrence with the
  // line it targets, so unused suppressions can be reported.
  struct AllowSite {
    int targetLine = 0;
    std::string rule;
  };
  std::vector<AllowSite> allowSites;

  // Malformed / unknown directives ("line: message"), reported under
  // the meta-rule `lint-directive` in --strict mode.
  std::vector<std::pair<int, std::string>> errors;
};

struct LexResult {
  std::vector<Token> tokens;
  Directives directives;
};

/// Tokenizes `source`. `>>` is deliberately emitted as two `>` tokens so
/// template-argument matching never has to split a shift operator.
LexResult lex(const std::string& source);

}  // namespace pscd_lint
