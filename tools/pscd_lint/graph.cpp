#include "graph.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <sstream>

namespace pscd_lint {
namespace {

bool isIdentStartCh(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool isIdentCh(char c) {
  return isIdentStartCh(c) || (c >= '0' && c <= '9');
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string dirnameOf(const std::string& path) {
  std::size_t pos = path.rfind('/');
  return pos == std::string::npos ? std::string() : path.substr(0, pos);
}

/// Path with the extension removed ("src/a/b.cpp" -> "src/a/b").
std::string stemOf(const std::string& path) {
  std::size_t slash = path.rfind('/');
  std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return path;
  if (slash != std::string::npos && dot < slash) return path;
  return path.substr(0, dot);
}

bool hasSourceExtension(const std::string& path) {
  for (const char* ext : {".cpp", ".cc", ".cxx"}) {
    const std::string e(ext);
    if (path.size() >= e.size() &&
        path.compare(path.size() - e.size(), e.size(), e) == 0)
      return true;
  }
  return false;
}

/// Keywords and ubiquitous library identifiers that must never witness
/// "this file uses that header" — they appear in nearly every file.
const std::set<std::string>& symbolBlocklist() {
  static const std::set<std::string> kBlocked = {
      "alignas",   "alignof",  "assert",   "auto",      "bool",
      "break",     "case",     "catch",    "char",      "class",
      "const",     "constexpr", "continue", "decltype",  "default",
      "delete",    "do",       "double",   "else",      "enum",
      "explicit",  "extern",   "false",    "final",     "float",
      "for",       "friend",   "if",       "inline",    "int",
      "long",      "main",     "mutable",  "namespace", "new",
      "noexcept",  "nullptr",  "operator", "override",  "private",
      "protected", "public",   "return",   "short",     "signed",
      "sizeof",    "static",   "static_assert",         "static_cast",
      "std",       "struct",   "switch",   "template",  "this",
      "throw",     "true",     "try",      "typedef",   "typename",
      "union",     "unsigned", "using",    "virtual",   "void",
      "volatile",  "while"};
  return kBlocked;
}

}  // namespace

RawScan scanRaw(const std::string& source) {
  RawScan out;
  const std::size_t n = source.size();
  std::size_t i = 0;
  bool atLineStart = true;  // only whitespace/comments since the newline
  int line = 1;

  // Skips the remainder of a preprocessor logical line, honoring
  // backslash continuations, comments and string literals.
  auto skipDirectiveTail = [&]() {
    while (i < n) {
      char p = source[i];
      if (p == '\\' && i + 1 < n && source[i + 1] == '\n') {
        ++line;
        i += 2;
        continue;
      }
      if (p == '\n') return;  // main loop counts it
      if (p == '/' && i + 1 < n && source[i + 1] == '/') {
        while (i < n && source[i] != '\n') ++i;
        return;
      }
      if (p == '/' && i + 1 < n && source[i + 1] == '*') {
        i += 2;
        while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
          if (source[i] == '\n') ++line;
          ++i;
        }
        i = i + 1 < n ? i + 2 : n;
        continue;
      }
      if (p == '"') {
        ++i;
        while (i < n && source[i] != '"' && source[i] != '\n') {
          if (source[i] == '\\' && i + 1 < n) ++i;
          ++i;
        }
        if (i < n && source[i] == '"') ++i;
        continue;
      }
      ++i;
    }
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      atLineStart = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          ++line;
          atLineStart = true;
        }
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      continue;
    }
    if (c == '#' && atLineStart) {
      const int dirLine = line;
      ++i;
      while (i < n && (source[i] == ' ' || source[i] == '\t')) ++i;
      std::size_t ks = i;
      while (i < n && isIdentCh(source[i])) ++i;
      const std::string keyword = source.substr(ks, i - ks);
      if (keyword == "include" || keyword == "include_next") {
        while (i < n && (source[i] == ' ' || source[i] == '\t')) ++i;
        if (i < n && (source[i] == '<' || source[i] == '"')) {
          const bool angle = source[i] == '<';
          const char closer = angle ? '>' : '"';
          ++i;
          std::string target;
          while (i < n && source[i] != closer && source[i] != '\n')
            target += source[i++];
          if (i < n && source[i] == closer) {
            ++i;
            IncludeDirective inc;
            inc.line = dirLine;
            inc.text = target;
            inc.angle = angle;
            out.includes.push_back(inc);
          }
        }
      } else if (keyword == "define") {
        while (i < n && (source[i] == ' ' || source[i] == '\t')) ++i;
        std::size_t ms = i;
        while (i < n && isIdentCh(source[i])) ++i;
        if (i > ms) out.macros.insert(source.substr(ms, i - ms));
      }
      skipDirectiveTail();
      continue;
    }
    // Ordinary string literal (may span lines via escapes).
    if (c == '"') {
      ++i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      atLineStart = false;
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      atLineStart = false;
      continue;
    }
    // Identifier — watch for raw-string prefixes, whose bodies could
    // contain lines that look like directives.
    if (isIdentStartCh(c)) {
      std::size_t s = i;
      while (i < n && isIdentCh(source[i])) ++i;
      const std::string ident = source.substr(s, i - s);
      const bool rawPrefix = ident == "R" || ident == "uR" || ident == "UR" ||
                             ident == "LR" || ident == "u8R";
      if (rawPrefix && i < n && source[i] == '"') {
        ++i;
        std::string delim;
        while (i < n && source[i] != '(') delim += source[i++];
        if (i < n) ++i;
        const std::string closer = ")" + delim + "\"";
        std::size_t end = source.find(closer, i);
        std::size_t stop = end == std::string::npos ? n : end;
        for (std::size_t k = i; k < stop; ++k)
          if (source[k] == '\n') ++line;
        i = end == std::string::npos ? n : end + closer.size();
      }
      atLineStart = false;
      continue;
    }
    atLineStart = false;
    ++i;
  }
  return out;
}

std::set<std::string> harvestSymbols(const std::vector<Token>& tokens) {
  std::set<std::string> out;
  const std::set<std::string>& blocked = symbolBlocklist();
  const std::size_t n = tokens.size();

  auto isIdentTok = [&](std::size_t i) {
    return i < n && tokens[i].kind == Token::Kind::kIdent;
  };
  auto isPunctTok = [&](std::size_t i, const char* text) {
    return i < n && tokens[i].kind == Token::Kind::kPunct &&
           tokens[i].text == text;
  };
  auto insert = [&](const std::string& name) {
    if (!name.empty() && !blocked.count(name)) out.insert(name);
  };
  // Skips a balanced <...> starting at `i` (which must be '<').
  auto skipAngles = [&](std::size_t i) {
    int depth = 0;
    while (i < n) {
      if (isPunctTok(i, "<")) ++depth;
      if (isPunctTok(i, ">")) {
        --depth;
        if (depth == 0) return i + 1;
      }
      if (isPunctTok(i, ";")) return i;  // malformed; bail
      ++i;
    }
    return i;
  };

  // Brace stack: `true` entries are transparent (namespace / extern "C"
  // blocks), everything else is opaque — declarations inside classes and
  // function bodies are not harvested.
  std::vector<bool> braces;
  int opaqueDepth = 0;
  bool nextBraceTransparent = false;

  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = tokens[i];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "{") {
        braces.push_back(nextBraceTransparent);
        if (!nextBraceTransparent) ++opaqueDepth;
        nextBraceTransparent = false;
      } else if (t.text == "}") {
        if (!braces.empty()) {
          if (!braces.back()) --opaqueDepth;
          braces.pop_back();
        }
      } else if (t.text == ";") {
        nextBraceTransparent = false;
      }
      continue;
    }
    if (t.kind != Token::Kind::kIdent) continue;

    if (t.text == "namespace") {
      nextBraceTransparent = true;
      continue;
    }
    if (t.text == "extern" && i + 1 < n &&
        tokens[i + 1].kind == Token::Kind::kString) {
      nextBraceTransparent = true;
      continue;
    }
    if (opaqueDepth > 0) continue;

    // Skip template parameter lists so `class T` inside them does not
    // harvest the parameter name.
    if (t.text == "template" && isPunctTok(i + 1, "<")) {
      i = skipAngles(i + 1) - 1;
      continue;
    }
    // Type declarations: class/struct/union/enum [class|struct] Name.
    // Attribute-like macros may sit between the keyword and the name
    // (`class PSCD_CAPABILITY("mutex") Mutex`), so walk the idents up
    // to the first structural punctuator and keep the last one that is
    // not a keyword ("final" trails the name and is blocklisted).
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum") {
      std::size_t j = i + 1;
      std::string name;
      while (j < n) {
        if (tokens[j].kind == Token::Kind::kIdent) {
          if (isPunctTok(j + 1, "(")) {  // macro with arguments: skip them
            int d = 0;
            std::size_t k = j + 1;
            while (k < n) {
              if (isPunctTok(k, "(")) ++d;
              if (isPunctTok(k, ")")) {
                --d;
                if (d == 0) break;
              }
              ++k;
            }
            j = k + 1;
            continue;
          }
          if (!blocked.count(tokens[j].text)) name = tokens[j].text;
          ++j;
          continue;
        }
        break;  // '{', ':', ';', '<', ... end the name position
      }
      insert(name);
      continue;
    }
    // Alias: using Name = ...;  (`using namespace` handled above by the
    // namespace keyword check firing first on the next token).
    if (t.text == "using" && isIdentTok(i + 1) && isPunctTok(i + 2, "=")) {
      insert(tokens[i + 1].text);
      continue;
    }
    // Namespace-scope functions (Name followed by '(') and constants
    // (Name followed by '='). A qualifier before the name means a use
    // or an out-of-line definition of something declared elsewhere, so
    // the preceding token must not be an access punctuator.
    const bool qualified =
        i > 0 && tokens[i - 1].kind == Token::Kind::kPunct &&
        (tokens[i - 1].text == "::" || tokens[i - 1].text == "." ||
         tokens[i - 1].text == "->");
    if (!qualified && (isPunctTok(i + 1, "(") || isPunctTok(i + 1, "="))) {
      insert(t.text);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

std::string Manifest::layerOf(const std::string& path) const {
  std::string best;
  std::size_t bestLen = 0;
  for (const auto& [name, prefixes] : layers) {
    for (const std::string& prefix : prefixes) {
      if (prefix.size() >= bestLen && startsWith(path, prefix)) {
        best = name;
        bestLen = prefix.size();
      }
    }
  }
  return best;
}

bool parseManifest(const std::string& text, Manifest* manifest,
                   std::string* error) {
  *manifest = Manifest();
  std::vector<std::vector<std::string>> lines;  // tokenized, 1-based index
  {
    std::istringstream in(text);
    std::string raw;
    while (std::getline(in, raw)) {
      std::size_t hash = raw.find('#');
      if (hash != std::string::npos) raw.erase(hash);
      std::istringstream ls(raw);
      std::vector<std::string> words;
      std::string w;
      while (ls >> w) words.push_back(w);
      lines.push_back(std::move(words));
    }
  }
  auto fail = [&](std::size_t lineNo, const std::string& what) {
    *error = "line " + std::to_string(lineNo) + ": " + what;
    return false;
  };
  // First pass: layer and root declarations, so allow edges may appear
  // anywhere in the file.
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::vector<std::string>& words = lines[li];
    if (words.empty()) continue;
    if (words[0] == "layer") {
      if (words.size() < 3)
        return fail(li + 1,
                    "malformed layer line: expected 'layer <name> <prefix>...'");
      const std::string& name = words[1];
      if (manifest->layers.count(name))
        return fail(li + 1, "duplicate layer '" + name + "'");
      std::vector<std::string> prefixes(words.begin() + 2, words.end());
      manifest->layers.emplace(name, std::move(prefixes));
    } else if (words[0] == "root") {
      if (words.size() != 2)
        return fail(li + 1, "malformed root line: expected 'root <path>'");
      manifest->roots.push_back(words[1]);
    } else if (words[0] != "allow") {
      return fail(li + 1, "unknown directive '" + words[0] +
                              "' (expected layer, allow or root)");
    }
  }
  // Second pass: allow edges.
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::vector<std::string>& words = lines[li];
    if (words.empty() || words[0] != "allow") continue;
    if (words.size() != 4 || words[2] != "->")
      return fail(li + 1, "malformed allow line: expected 'allow <a> -> <b>'");
    const std::string& from = words[1];
    const std::string& to = words[3];
    for (const std::string& layer : {from, to}) {
      if (!manifest->layers.count(layer))
        return fail(li + 1, "unknown layer '" + layer + "' in allow edge");
    }
    if (from == to)
      return fail(li + 1, "allow edge '" + from + " -> " + to +
                              "' is same-layer (always allowed; drop it)");
    if (!manifest->allowedEdges.insert({from, to}).second)
      return fail(li + 1,
                  "duplicate allow edge '" + from + " -> " + to + "'");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Path resolution
// ---------------------------------------------------------------------------

std::string normalizeDots(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (part == "..") {
        if (!parts.empty() && parts.back() != "..")
          parts.pop_back();
        else
          parts.push_back(part);
      } else if (!part.empty() && part != ".") {
        parts.push_back(part);
      }
      part.clear();
    } else {
      part += path[i];
    }
  }
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += '/';
    out += parts[i];
  }
  return out;
}

std::string resolveInclude(const std::string& includerPath,
                           const std::string& text, bool angle,
                           const std::vector<std::string>& roots,
                           const std::set<std::string>& knownPaths) {
  // <pscd/x.h> and "pscd/x.h" both canonicalize under src/ — this is
  // what makes the two spellings one graph node.
  if (startsWith(text, "pscd/")) return normalizeDots("src/" + text);
  if (angle) return std::string();  // system header
  const std::string dir = dirnameOf(includerPath);
  const std::string sibling =
      normalizeDots(dir.empty() ? text : dir + "/" + text);
  if (knownPaths.count(sibling)) return sibling;
  for (const std::string& root : roots) {
    const std::string viaRoot = normalizeDots(root + "/" + text);
    if (knownPaths.count(viaRoot)) return viaRoot;
  }
  return sibling;  // best textual guess; layer checks still apply
}

// ---------------------------------------------------------------------------
// Tarjan SCC + witnesses
// ---------------------------------------------------------------------------

namespace {

struct TarjanState {
  const std::vector<std::vector<int>>& adj;
  std::vector<int> index;
  std::vector<int> low;
  std::vector<bool> onStack;
  std::vector<int> stack;
  int next = 0;
  std::vector<std::vector<int>> sccs;

  explicit TarjanState(const std::vector<std::vector<int>>& a)
      : adj(a),
        index(a.size(), -1),
        low(a.size(), 0),
        onStack(a.size(), false) {}

  void visit(int v) {
    index[v] = low[v] = next++;
    stack.push_back(v);
    onStack[v] = true;
    for (int w : adj[v]) {
      if (index[w] < 0) {
        visit(w);
        low[v] = std::min(low[v], low[w]);
      } else if (onStack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<int> scc;
      int w = -1;
      do {
        w = stack.back();
        stack.pop_back();
        onStack[w] = false;
        scc.push_back(w);
      } while (w != v);
      std::sort(scc.begin(), scc.end());
      sccs.push_back(std::move(scc));
    }
  }
};

}  // namespace

std::vector<std::vector<int>> tarjanScc(
    const std::vector<std::vector<int>>& adj) {
  TarjanState state(adj);
  for (int v = 0; v < static_cast<int>(adj.size()); ++v) {
    if (state.index[v] < 0) state.visit(v);
  }
  return state.sccs;
}

std::vector<int> minimalCycleWitness(const std::vector<std::vector<int>>& adj,
                                     const std::set<int>& members, int start) {
  std::map<int, int> parent;
  std::deque<int> queue;
  for (int w : adj[start]) {
    if (w == start) return {start, start};  // self-loop
    if (members.count(w) && !parent.count(w)) {
      parent[w] = start;
      queue.push_back(w);
    }
  }
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    for (int w : adj[v]) {
      if (w == start) {
        std::vector<int> rev;
        for (int cur = v; cur != start; cur = parent.at(cur))
          rev.push_back(cur);
        std::vector<int> path;
        path.push_back(start);
        for (auto it = rev.rbegin(); it != rev.rend(); ++it)
          path.push_back(*it);
        path.push_back(start);
        return path;
      }
      if (members.count(w) && !parent.count(w)) {
        parent[w] = v;
        queue.push_back(w);
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Architecture pass
// ---------------------------------------------------------------------------

void resolveIncludes(std::vector<ArchFile>& files, const Manifest& manifest) {
  std::set<std::string> known;
  for (const ArchFile& f : files) known.insert(f.effectivePath);
  for (ArchFile& f : files) {
    for (IncludeDirective& inc : f.raw.includes) {
      inc.resolved = resolveInclude(f.effectivePath, inc.text, inc.angle,
                                    manifest.roots, known);
    }
  }
}

namespace {

/// True when `header` is `file`'s own sibling header (same directory,
/// same stem, different extension class).
bool isOwnHeader(const std::string& file, const std::string& header) {
  return file != header && stemOf(file) == stemOf(header);
}

bool inUnusedIncludeScope(const std::string& path) {
  return startsWith(path, "src/") || startsWith(path, "tools/") ||
         startsWith(path, "bench/") || startsWith(path, "fuzz/") ||
         startsWith(path, "examples/");
}

bool inSelfIncludeScope(const std::string& path) {
  return startsWith(path, "src/") || startsWith(path, "tools/");
}

std::string joinChain(const std::vector<std::string>& chain) {
  std::string out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i > 0) out += " -> ";
    out += chain[i];
  }
  return out;
}

}  // namespace

void runArchPass(const std::vector<ArchFile>& files, const Manifest& manifest,
                 const ArchOptions& options, std::vector<Finding>& out) {
  std::map<std::string, int> index;  // effectivePath -> first file index
  for (int i = 0; i < static_cast<int>(files.size()); ++i)
    index.emplace(files[i].effectivePath, i);

  // --- layer-violation: direct cross-layer edges not in the manifest.
  for (const ArchFile& f : files) {
    const std::string from = manifest.layerOf(f.effectivePath);
    for (const IncludeDirective& inc : f.raw.includes) {
      if (inc.resolved.empty()) continue;
      const std::string to = manifest.layerOf(inc.resolved);
      if (from.empty() || to.empty() || from == to) continue;
      if (manifest.allowedEdges.count({from, to})) continue;
      out.push_back(Finding{
          f.effectivePath, inc.line, "layer-violation",
          "include of '" + inc.resolved + "' crosses layers '" + from +
              "' -> '" + to + "', an edge the layering manifest does not "
              "allow"});
    }
  }

  // Adjacency restricted to scanned files, for cycles and reachability.
  std::vector<std::vector<int>> adj(files.size());
  for (int i = 0; i < static_cast<int>(files.size()); ++i) {
    std::set<int> targets;
    for (const IncludeDirective& inc : files[i].raw.includes) {
      auto it = index.find(inc.resolved);
      if (it != index.end()) targets.insert(it->second);
    }
    adj[i].assign(targets.begin(), targets.end());
  }

  // --- include-cycle: one finding per SCC, anchored at the smallest
  // path in the cycle, with a BFS-minimal witness.
  for (const std::vector<int>& scc : tarjanScc(adj)) {
    bool selfLoop = false;
    if (scc.size() == 1) {
      for (int w : adj[scc[0]]) selfLoop = selfLoop || w == scc[0];
      if (!selfLoop) continue;
    }
    std::set<int> members(scc.begin(), scc.end());
    int rep = scc[0];
    for (int v : scc) {
      if (files[v].effectivePath < files[rep].effectivePath) rep = v;
    }
    std::vector<int> witness = minimalCycleWitness(adj, members, rep);
    std::vector<std::string> chain;
    for (int v : witness) chain.push_back(files[v].effectivePath);
    int line = 1;
    if (witness.size() >= 2) {
      for (const IncludeDirective& inc : files[rep].raw.includes) {
        if (inc.resolved == files[witness[1]].effectivePath) {
          line = inc.line;
          break;
        }
      }
    }
    out.push_back(Finding{
        files[rep].effectivePath, line, "include-cycle",
        "include cycle of " + std::to_string(scc.size()) + " file" +
            (scc.size() == 1 ? "" : "s") + ": " + joinChain(chain)});
  }

  // --- layer-violation (transitive): --forbid-reach pairs.
  for (const auto& [fromLayer, toLayer] : options.forbidReach) {
    for (int i = 0; i < static_cast<int>(files.size()); ++i) {
      if (manifest.layerOf(files[i].effectivePath) != fromLayer) continue;
      // BFS for a shortest include chain into `toLayer`.
      std::map<int, int> parent;
      parent[i] = -1;
      std::deque<int> queue;
      queue.push_back(i);
      int hitVia = -1;
      std::string hitTarget;
      while (!queue.empty() && hitVia < 0) {
        int v = queue.front();
        queue.pop_front();
        for (const IncludeDirective& inc : files[v].raw.includes) {
          if (inc.resolved.empty()) continue;
          if (manifest.layerOf(inc.resolved) == toLayer) {
            hitVia = v;
            hitTarget = inc.resolved;
            break;
          }
          auto it = index.find(inc.resolved);
          if (it != index.end() && !parent.count(it->second)) {
            parent[it->second] = v;
            queue.push_back(it->second);
          }
        }
      }
      if (hitVia < 0) continue;
      std::vector<int> nodes;
      for (int cur = hitVia; cur != -1; cur = parent.at(cur))
        nodes.push_back(cur);
      std::reverse(nodes.begin(), nodes.end());
      std::vector<std::string> chain;
      for (int v : nodes) chain.push_back(files[v].effectivePath);
      chain.push_back(hitTarget);
      // Anchor at the first include edge of the chain.
      int line = 1;
      const std::string& next = chain[1];
      for (const IncludeDirective& inc : files[i].raw.includes) {
        if (inc.resolved == next) {
          line = inc.line;
          break;
        }
      }
      out.push_back(Finding{
          files[i].effectivePath, line, "layer-violation",
          "layer '" + fromLayer + "' must not reach layer '" + toLayer +
              "', but this file transitively includes '" + hitTarget +
              "': " + joinChain(chain)});
    }
  }

  // --- unused-include: IWYU-lite over directly included project
  // headers whose harvest is visible and non-empty.
  for (const ArchFile& f : files) {
    if (!inUnusedIncludeScope(f.effectivePath)) continue;
    if (f.tokens == nullptr) continue;
    std::set<std::string> used;
    for (const Token& t : *f.tokens) {
      if (t.kind == Token::Kind::kIdent) used.insert(t.text);
    }
    for (const IncludeDirective& inc : f.raw.includes) {
      auto it = index.find(inc.resolved);
      if (it == index.end()) continue;
      const ArchFile& header = files[it->second];
      if (&header == &f) continue;
      if (isOwnHeader(f.effectivePath, header.effectivePath)) continue;
      // A header that defines macros may be used invisibly (the token
      // stream never sees preprocessor context), so stay quiet.
      if (!header.raw.macros.empty()) continue;
      if (header.symbols.empty()) continue;
      bool anyUsed = false;
      for (const std::string& sym : header.symbols) {
        if (used.count(sym)) {
          anyUsed = true;
          break;
        }
      }
      if (anyUsed) continue;
      out.push_back(Finding{
          f.effectivePath, inc.line, "unused-include",
          "no declared symbol of '" + inc.resolved +
              "' is referenced in this file"});
    }
  }

  // --- self-include-first: a .cpp with a sibling header in the scan
  // set must include it before anything else.
  for (const ArchFile& f : files) {
    if (!inSelfIncludeScope(f.effectivePath)) continue;
    if (!hasSourceExtension(f.effectivePath)) continue;
    std::string sibling;
    for (const char* ext : {".h", ".hpp"}) {
      const std::string cand = stemOf(f.effectivePath) + ext;
      if (index.count(cand)) {
        sibling = cand;
        break;
      }
    }
    if (sibling.empty()) continue;
    if (f.raw.includes.empty()) {
      out.push_back(Finding{f.effectivePath, 1, "self-include-first",
                            "this file never includes its own header '" +
                                sibling + "'"});
      continue;
    }
    const IncludeDirective& first = f.raw.includes.front();
    if (first.resolved != sibling) {
      out.push_back(Finding{
          f.effectivePath, first.line, "self-include-first",
          "own header '" + sibling + "' must be the first include (found '" +
              first.text + "')"});
    }
  }
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

std::string renderGraphDot(const std::vector<ArchFile>& files,
                           const Manifest& manifest) {
  std::map<std::string, std::vector<std::string>> byLayer;
  for (const ArchFile& f : files) {
    std::string layer = manifest.layerOf(f.effectivePath);
    if (layer.empty()) layer = "(unlayered)";
    byLayer[layer].push_back(f.effectivePath);
  }
  std::set<std::pair<std::string, std::string>> edges;
  for (const ArchFile& f : files) {
    for (const IncludeDirective& inc : f.raw.includes) {
      if (!inc.resolved.empty())
        edges.insert({f.effectivePath, inc.resolved});
    }
  }
  std::ostringstream o;
  o << "// Generated by `pscd_lint --graph-dot`; do not edit.\n"
    << "digraph pscd_includes {\n"
    << "  rankdir=LR;\n"
    << "  node [shape=box, fontsize=9];\n";
  int clusterId = 0;
  for (auto& [layer, paths] : byLayer) {
    std::sort(paths.begin(), paths.end());
    o << "  subgraph cluster_" << clusterId++ << " {\n"
      << "    label=\"" << layer << "\";\n";
    for (const std::string& p : paths) o << "    \"" << p << "\";\n";
    o << "  }\n";
  }
  for (const auto& [from, to] : edges) {
    o << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  o << "}\n";
  return o.str();
}

std::string renderLayerEdges(const std::vector<ArchFile>& files,
                             const Manifest& manifest) {
  std::set<std::string> lines;
  for (const ArchFile& f : files) {
    const std::string from = manifest.layerOf(f.effectivePath);
    if (from.empty()) continue;
    for (const IncludeDirective& inc : f.raw.includes) {
      if (inc.resolved.empty()) continue;
      const std::string to = manifest.layerOf(inc.resolved);
      if (to.empty() || to == from) continue;
      lines.insert(from + " -> " + to);
    }
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string renderLayerSvg(const std::vector<ArchFile>& files,
                           const Manifest& manifest) {
  // Depth = longest allowed-edge path to a leaf layer (util sits at
  // depth 0 and is drawn at the bottom).
  std::map<std::string, int> depth;
  std::map<std::string, int> visiting;
  // Iterative-friendly memoized recursion over a tiny DAG.
  std::function<int(const std::string&)> depthOf =
      [&](const std::string& layer) -> int {
    auto it = depth.find(layer);
    if (it != depth.end()) return it->second;
    if (visiting.count(layer)) return 0;  // manifest cycle guard
    visiting[layer] = 1;
    int d = 0;
    for (const auto& [from, to] : manifest.allowedEdges) {
      if (from == layer) d = std::max(d, 1 + depthOf(to));
    }
    visiting.erase(layer);
    depth[layer] = d;
    return d;
  };
  int maxDepth = 0;
  for (const auto& [name, prefixes] : manifest.layers)
    maxDepth = std::max(maxDepth, depthOf(name));

  std::map<int, std::vector<std::string>> rows;  // depth -> layer names
  for (const auto& [name, prefixes] : manifest.layers)
    rows[depth[name]].push_back(name);  // map iteration: already sorted

  std::map<std::string, int> fileCount;
  for (const ArchFile& f : files) {
    const std::string layer = manifest.layerOf(f.effectivePath);
    if (!layer.empty()) ++fileCount[layer];
  }
  std::set<std::pair<std::string, std::string>> actual;
  for (const ArchFile& f : files) {
    const std::string from = manifest.layerOf(f.effectivePath);
    for (const IncludeDirective& inc : f.raw.includes) {
      if (inc.resolved.empty() || from.empty()) continue;
      const std::string to = manifest.layerOf(inc.resolved);
      if (!to.empty() && to != from) actual.insert({from, to});
    }
  }

  const int width = 980;
  const int rowH = 104;
  const int nodeW = 150;
  const int nodeH = 46;
  const int marginTop = 56;
  const int height = marginTop + (maxDepth + 1) * rowH + 28;

  // Node centers, laid out deterministically per row.
  std::map<std::string, std::pair<int, int>> center;
  for (const auto& [d, names] : rows) {
    const int k = static_cast<int>(names.size());
    for (int i = 0; i < k; ++i) {
      const int cx = (i + 1) * width / (k + 1);
      const int cy = marginTop + (maxDepth - d) * rowH + nodeH / 2;
      center[names[i]] = {cx, cy};
    }
  }

  std::ostringstream o;
  o << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
    << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
    << height << "\" font-family=\"Helvetica, Arial, sans-serif\">\n"
    << "  <!-- Generated by `pscd_lint --graph-svg`; do not edit. -->\n"
    << "  <defs>\n"
    << "    <marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" "
       "refY=\"5\" markerWidth=\"7\" markerHeight=\"7\" "
       "orient=\"auto-start-reverse\">\n"
    << "      <path d=\"M 0 0 L 10 5 L 0 10 z\" fill=\"#556\"/>\n"
    << "    </marker>\n"
    << "  </defs>\n"
    << "  <text x=\"" << width / 2
    << "\" y=\"24\" text-anchor=\"middle\" font-size=\"15\" "
       "fill=\"#223\">pscd layer DAG (arrows point at dependencies; "
       "dashed = allowed but currently unused)</text>\n";
  for (const auto& [from, to] : manifest.allowedEdges) {
    auto fit = center.find(from);
    auto tit = center.find(to);
    if (fit == center.end() || tit == center.end()) continue;
    const auto [x1, y1] = fit->second;
    const auto [x2, y2] = tit->second;
    const bool used = actual.count({from, to}) > 0;
    o << "  <line x1=\"" << x1 << "\" y1=\"" << y1 + nodeH / 2 << "\" x2=\""
      << x2 << "\" y2=\"" << y2 - nodeH / 2 << "\" stroke=\""
      << (used ? "#556" : "#aab") << "\" stroke-width=\"1.3\""
      << (used ? "" : " stroke-dasharray=\"5,4\"")
      << " marker-end=\"url(#arrow)\"/>\n";
  }
  for (const auto& [name, c] : center) {
    const auto [cx, cy] = c;
    o << "  <rect x=\"" << cx - nodeW / 2 << "\" y=\"" << cy - nodeH / 2
      << "\" width=\"" << nodeW << "\" height=\"" << nodeH
      << "\" rx=\"8\" fill=\"#eef2fb\" stroke=\"#445\"/>\n"
      << "  <text x=\"" << cx << "\" y=\"" << cy - 2
      << "\" text-anchor=\"middle\" font-size=\"14\" fill=\"#112\">" << name
      << "</text>\n"
      << "  <text x=\"" << cx << "\" y=\"" << cy + 15
      << "\" text-anchor=\"middle\" font-size=\"10\" fill=\"#667\">"
      << fileCount[name] << " files</text>\n";
  }
  o << "</svg>\n";
  return o.str();
}

}  // namespace pscd_lint
