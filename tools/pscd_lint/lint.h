// Driver for pscd_lint, exposed as a library so tests/lint_test.cpp can
// exercise argument handling, exit codes, and end-to-end behavior
// without spawning processes.
//
// Exit codes: 0 clean, 1 findings (or fixture mismatches), 2 usage or
// I/O error.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "rules.h"

namespace pscd_lint {

/// Lints a single in-memory source. `path` is used for rule scoping
/// (before any as-path directive in the source) and in findings.
/// `headerDecls` supplies declarations harvested from a sibling header
/// (pass {} when there is none). Suppressions are applied; `strict`
/// additionally reports unused allow() directives and directive errors
/// under the meta-rule "lint-directive".
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& source,
                                const DeclInfo& headerDecls, bool strict);

/// An in-memory file for lintRepo (tests build whole synthetic repos
/// without touching the filesystem).
struct MemoryFile {
  std::string path;
  std::string source;
};

/// Full pipeline — per-file rules plus the whole-repo architecture
/// pass — over in-memory sources. `manifestText` is a layering
/// manifest (see tools/pscd_lint/layers.txt); a parse failure reports
/// the named diagnostic through *manifestError and returns no
/// findings. `forbidReach` lists (fromLayer, toLayer) pairs whose
/// transitive reachability is itself a layer-violation.
std::vector<Finding> lintRepo(
    const std::vector<MemoryFile>& files, const std::string& manifestText,
    const std::vector<std::pair<std::string, std::string>>& forbidReach,
    bool strict, std::string* manifestError);

/// Full command-line entry point (everything after argv[0]).
int runLint(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace pscd_lint
