// Driver for pscd_lint, exposed as a library so tests/lint_test.cpp can
// exercise argument handling, exit codes, and end-to-end behavior
// without spawning processes.
//
// Exit codes: 0 clean, 1 findings (or fixture mismatches), 2 usage or
// I/O error.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rules.h"

namespace pscd_lint {

/// Lints a single in-memory source. `path` is used for rule scoping
/// (before any as-path directive in the source) and in findings.
/// `headerDecls` supplies declarations harvested from a sibling header
/// (pass {} when there is none). Suppressions are applied; `strict`
/// additionally reports unused allow() directives and directive errors
/// under the meta-rule "lint-directive".
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& source,
                                const DeclInfo& headerDecls, bool strict);

/// Full command-line entry point (everything after argv[0]).
int runLint(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace pscd_lint
