#!/usr/bin/env bash
# Line-coverage report for the pscd library: builds an instrumented tree
# (-DPSCD_COVERAGE=ON, gcc --coverage), runs the full test suite, and
# summarizes per-file and per-subsystem line coverage with plain gcov —
# no gcovr/lcov dependency. When GITHUB_STEP_SUMMARY is set (CI), a
# markdown table is appended to the job summary.
#
#   tools/coverage.sh [build-dir]        # default build/coverage
#
# Coverage is attributed per translation unit (src/pscd/**/*.cpp);
# header-only lines are exercised through their including TUs and are
# not double-counted.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build/coverage}"

gcov_bin="${GCOV:-gcov}"
if ! command -v "$gcov_bin" >/dev/null 2>&1; then
  echo "error: $gcov_bin not found (set GCOV to your gcov binary)" >&2
  exit 2
fi

echo "coverage: configuring $build_dir"
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Debug -DPSCD_COVERAGE=ON \
      -DPSCD_BUILD_BENCH=OFF -DPSCD_BUILD_EXAMPLES=OFF >/dev/null
echo "coverage: building"
cmake --build "$build_dir" -j"$(nproc)" >/dev/null
echo "coverage: running tests"
ctest --test-dir "$build_dir" -j"$(nproc)" --output-on-failure >/dev/null

rows="$build_dir/coverage_rows.txt"
: > "$rows"
while IFS= read -r gcda; do
  rel=${gcda#*CMakeFiles/pscd.dir/}
  src="src/${rel%.gcda}"          # .../pscd/util/rng.cpp.gcda -> .cpp
  [[ -f "$src" ]] || continue
  # gcov reports one File/Lines block per contributing source (headers,
  # standard library, ...) plus a trailing whole-object aggregate line;
  # keep only the block of the TU itself (first Lines line after its
  # File header). File paths in the output are absolute.
  "$gcov_bin" -n "$gcda" 2>/dev/null |
    awk -v want="$PWD/$src" -v name="$src" '
    /^File / { f = $0; gsub(/^File '\''|'\''$/, "", f) }
    /^Lines executed:/ {
      if (f == want) {
        line = $0
        sub(/^Lines executed:/, "", line)
        split(line, parts, "% of ")
        printf "%s %s %s\n", name, parts[1], parts[2]
      }
      f = ""
    }' >> "$rows"
done < <(find "$build_dir/src" -name '*.gcda' | sort)

if [[ ! -s "$rows" ]]; then
  echo "error: no coverage data found under $build_dir/src" >&2
  exit 1
fi

summary="$build_dir/coverage_summary.txt"
# Rows arrive sorted by path, so subsystems (src/pscd/<subsystem>/...)
# form contiguous groups; subtotals are flushed on group change. Plain
# POSIX awk — no gawk asorti.
sort "$rows" | awk '
  function flush_sub() {
    if (cur != "") {
      sub_lines[++nsub] = sprintf("%-52s %8d %7.2f%%", "src/pscd/" cur,
                                  cur_tot, 100.0 * cur_cov / cur_tot)
    }
    cur_cov = 0; cur_tot = 0
  }
  BEGIN { printf "%-52s %8s %8s\n", "file", "lines", "cover" }
  {
    covered = $2 / 100.0 * $3
    printf "%-52s %8d %7.2f%%\n", $1, $3, $2
    split($1, parts, "/")              # src/pscd/<subsystem>/<file>
    if (parts[3] != cur) { flush_sub(); cur = parts[3] }
    cur_cov += covered; cur_tot += $3
    all_cov += covered; all_tot += $3
  }
  END {
    flush_sub()
    print ""
    printf "%-52s %8s %8s\n", "subsystem", "lines", "cover"
    for (i = 1; i <= nsub; ++i) print sub_lines[i]
    printf "%-52s %8d %7.2f%%\n", "TOTAL", all_tot, \
           100.0 * all_cov / all_tot
  }' | tee "$summary"

if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
  {
    echo "### Library line coverage"
    echo ""
    echo "| subsystem | lines | cover |"
    echo "|---|---:|---:|"
    sort "$rows" | awk '
      function flush_sub() {
        if (cur != "") {
          printf "| src/pscd/%s | %d | %.2f%% |\n", cur, cur_tot, \
                 100.0 * cur_cov / cur_tot
        }
        cur_cov = 0; cur_tot = 0
      }
      {
        covered = $2 / 100.0 * $3
        split($1, parts, "/")
        if (parts[3] != cur) { flush_sub(); cur = parts[3] }
        cur_cov += covered; cur_tot += $3
        all_cov += covered; all_tot += $3
      }
      END {
        flush_sub()
        printf "| **TOTAL** | %d | **%.2f%%** |\n", all_tot, \
               100.0 * all_cov / all_tot
      }'
  } >> "$GITHUB_STEP_SUMMARY"
fi

echo "coverage: summary written to $summary"
