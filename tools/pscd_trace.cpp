// pscd_trace: generate, inspect and convert workload traces.
//
//   $ pscd_trace --generate news.trace --trace NEWS --seed 42
//   $ pscd_trace --inspect news.trace
//   $ pscd_trace --inspect news.trace --export-dir csv_out
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "pscd/pscd.h"
#include "pscd/util/args.h"

using namespace pscd;

namespace {

void inspect(const Workload& w) {
  std::printf("trace parameters:\n");
  std::printf("  zipf alpha          : %.2f\n", w.params.request.zipfAlpha);
  std::printf("  subscription quality: %.2f\n",
              w.params.subscription.quality);
  std::printf("  churn per day       : %.2f\n",
              w.params.subscription.churnPerDay);
  std::printf("  seed                : %llu\n",
              static_cast<unsigned long long>(w.params.seed));
  std::printf("contents:\n");
  std::printf("  pages               : %u\n", w.numPages());
  std::printf("  publish events      : %zu\n", w.publishes.size());
  std::printf("  requests            : %zu\n", w.requests.size());
  std::printf("  proxies             : %u\n", w.numProxies());
  std::printf("  subscriptions       : %llu (%zu distinct pairs)\n",
              static_cast<unsigned long long>(w.totalSubscriptions()),
              w.subEntries.size());
  std::printf("  churn events        : %zu\n", w.churn.size());

  RunningStats sizes, versions, uniq;
  for (const auto& p : w.pages) {
    sizes.add(static_cast<double>(p.size));
    versions.add(p.numVersions);
  }
  for (const auto& b : w.uniqueBytesRequested) {
    uniq.add(static_cast<double>(b));
  }
  std::printf("statistics:\n");
  std::printf("  page size           : mean %.1f KB, max %.1f KB\n",
              sizes.mean() / 1e3, sizes.max() / 1e3);
  std::printf("  versions per page   : mean %.1f, max %.0f\n",
              versions.mean(), versions.max());
  std::printf("  unique bytes/proxy  : mean %.2f MB\n", uniq.mean() / 1e6);

  // Top pages by request volume.
  std::vector<std::pair<std::uint32_t, PageId>> top;
  for (PageId p = 0; p < w.numPages(); ++p) {
    top.emplace_back(w.pages[p].requestCount, p);
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("top pages by requests:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i) {
    const auto [count, page] = top[i];
    std::printf("  page %-5u rank %-4u class %u: %u requests, %u versions\n",
                page, w.pages[page].popularityRank,
                w.pages[page].popularityClass, count,
                w.pages[page].numVersions);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("pscd_trace", "generate, inspect and convert pscd traces");
  args.addOption("generate", "write a new trace to this path", "");
  args.addOption("inspect", "load and summarize the trace at this path", "");
  args.addOption("export-dir", "also export CSVs into this directory", "");
  args.addOption("trace", "NEWS or ALT (for --generate)", "NEWS");
  args.addOption("sq", "subscription quality (for --generate)", "1.0");
  args.addOption("churn", "subscription churn per day (for --generate)",
                 "0.0");
  args.addOption("seed", "workload seed (for --generate)", "42");
  if (!args.parse(argc, argv)) {
    if (!args.error().empty()) {
      std::fprintf(stderr, "error: %s\n\n", args.error().c_str());
    }
    std::fputs(args.help().c_str(), args.error().empty() ? stdout : stderr);
    return args.error().empty() ? 0 : 2;
  }

  try {
    if (!args.option("generate").empty()) {
      WorkloadParams params =
          args.option("trace") == "ALT" ? alternativeTraceParams()
                                        : newsTraceParams();
      params.subscription.quality = args.optionDouble("sq");
      params.subscription.churnPerDay = args.optionDouble("churn");
      params.seed = static_cast<std::uint64_t>(args.optionInt("seed"));
      const Workload w = buildWorkload(params);
      saveWorkloadFile(w, args.option("generate"));
      std::printf("wrote %s (%zu publishes, %zu requests)\n",
                  args.option("generate").c_str(), w.publishes.size(),
                  w.requests.size());
      return 0;
    }
    if (!args.option("inspect").empty()) {
      const Workload w = loadWorkloadFile(args.option("inspect"));
      inspect(w);
      if (!args.option("export-dir").empty()) {
        const std::filesystem::path dir = args.option("export-dir");
        std::filesystem::create_directories(dir);
        {
          std::ofstream out(dir / "publishes.csv");
          exportPublishesCsv(w, out);
        }
        {
          std::ofstream out(dir / "requests.csv");
          exportRequestsCsv(w, out);
        }
        {
          std::ofstream out(dir / "subscriptions.csv");
          exportSubscriptionsCsv(w, out);
        }
        std::printf("exported CSVs to %s\n", dir.c_str());
      }
      return 0;
    }
    std::fputs(args.help().c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
