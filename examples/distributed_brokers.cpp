// Distributed pub/sub demo: run the same subscription set through the
// centralized Broker and a BrokerTree overlay, verify they deliver the
// same notifications, and show what subscription covering saves.
//
//   $ ./distributed_brokers
#include <cstdio>

#include "pscd/pscd.h"

using namespace pscd;

int main() {
  // A 7-broker binary tree; broker 0 is the publisher's broker, proxies
  // attach to the four leaves.
  auto tree = BrokerTree::balanced(/*numBrokers=*/7, /*fanout=*/2,
                                   /*useCovering=*/true);
  Broker flat(/*numProxies=*/8);
  for (ProxyId p = 0; p < 8; ++p) tree.attachProxy(p, 3 + p % 4);

  // Users subscribe: category interests plus a few page-specific ones.
  // Proxy 0's users ask for sports (category 1) at several granularities
  // — covering collapses the narrower ones on the way up.
  const auto subscribe = [&](ProxyId proxy, std::vector<Predicate> preds) {
    Subscription s;
    s.proxy = proxy;
    s.conjuncts = std::move(preds);
    tree.subscribe(s);
    flat.subscribe(s);
  };
  subscribe(0, {{Predicate::Kind::kCategoryEq, 1}});
  subscribe(0, {{Predicate::Kind::kCategoryEq, 1},
                {Predicate::Kind::kKeywordContains, 42}});
  subscribe(0, {{Predicate::Kind::kCategoryEq, 1},
                {Predicate::Kind::kKeywordContains, 7}});
  subscribe(1, {{Predicate::Kind::kCategoryEq, 2}});
  subscribe(5, {{Predicate::Kind::kPageIdEq, 99}});
  subscribe(5, {{Predicate::Kind::kCategoryEq, 1}});

  std::printf("6 subscriptions registered; covering reduced upstream\n"
              "advertisements to %llu control messages.\n\n",
              static_cast<unsigned long long>(tree.controlMessages()));

  // Publish a few events and compare the two delivery paths.
  const auto publish = [&](PageId page, std::uint32_t category,
                           std::vector<std::uint32_t> keywords) {
    ContentAttributes a;
    a.page = page;
    a.category = category;
    a.keywords = std::move(keywords);
    const auto fromTree = tree.publish(a);
    const auto fromFlat = flat.publish(a);
    std::printf("publish page %u (cat %u): ", page, category);
    for (const auto& n : fromTree) {
      std::printf("proxy %u x%u  ", n.proxy, n.matchCount);
    }
    if (fromTree.empty()) std::printf("(no subscribers)");
    std::printf("%s\n", fromTree.size() == fromFlat.size()
                            ? ""
                            : "  [MISMATCH vs centralized!]");
  };
  publish(99, 3, {});
  publish(10, 1, {42});
  publish(11, 1, {7, 42});
  publish(12, 2, {});
  publish(13, 5, {});

  std::printf("\nEvent routing used %llu link transmissions; flooding the\n"
              "same events down every link would have used %llu (%.0f%%\n"
              "saved by subscription-based routing).\n",
              static_cast<unsigned long long>(tree.eventMessages()),
              static_cast<unsigned long long>(tree.floodEventMessages()),
              100.0 * (1.0 - static_cast<double>(tree.eventMessages()) /
                                 static_cast<double>(
                                     tree.floodEventMessages())));
  return 0;
}
