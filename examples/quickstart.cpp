// Quickstart: wire up a ContentDistributionEngine by hand, subscribe a
// few users, publish pages and watch match-time pushing turn would-be
// misses into local hits.
//
//   $ ./quickstart
#include <cstdio>

#include "pscd/pscd.h"

using namespace pscd;

int main() {
  // 1. An overlay network: 1 publisher, 4 proxies, Waxman topology.
  Rng rng(2024);
  const Network network(NetworkParams{.numProxies = 4, .numTransitNodes = 3},
                        rng);

  // 2. A content-distribution engine running SG2 (push-time + access-
  //    time placement, frequency factor s - a) at every proxy.
  EngineConfig config;
  config.strategy = StrategyKind::kSG2;
  config.beta = 2.0;
  config.proxyCapacities.assign(4, 256 * 1024);  // 256 KiB per proxy
  ContentDistributionEngine engine(network, std::move(config));

  // 3. Users subscribe. Proxy 0 has two users interested in sports
  //    (category 1), proxy 2 has one user following page 42 explicitly.
  for (int user = 0; user < 2; ++user) {
    Subscription s;
    s.proxy = 0;
    s.conjuncts = {{Predicate::Kind::kCategoryEq, 1}};
    engine.broker().subscribe(s);
  }
  Subscription direct;
  direct.proxy = 2;
  direct.conjuncts = {{Predicate::Kind::kPageIdEq, 42}};
  engine.broker().subscribe(direct);

  // 4. The publisher releases a sports story as page 42.
  ContentAttributes attrs;
  attrs.page = 42;
  attrs.category = 1;
  attrs.keywords = {7, 9};
  const PublishSummary pub =
      engine.publish(PublishEvent{.time = 10.0, .page = 42, .version = 0,
                                  .size = 48 * 1024},
                     attrs);
  std::printf("publish: %u proxies notified, %u stored, %llu pages pushed\n",
              pub.proxiesNotified, pub.proxiesStored,
              static_cast<unsigned long long>(pub.pagesTransferred));

  // 5. Requests: subscribers read from their local proxy cache; an
  //    unsubscribed proxy has to fetch from the publisher.
  const auto r0 = engine.request(/*proxy=*/0, /*page=*/42, /*now=*/60.0);
  const auto r2 = engine.request(2, 42, 61.0);
  const auto r3 = engine.request(3, 42, 62.0);
  std::printf("proxy 0 (subscribed):   %s\n", r0.hit ? "HIT" : "MISS");
  std::printf("proxy 2 (subscribed):   %s\n", r2.hit ? "HIT" : "MISS");
  std::printf("proxy 3 (unsubscribed): %s, fetched %llu bytes\n",
              r3.hit ? "HIT" : "MISS",
              static_cast<unsigned long long>(r3.bytesTransferred));

  // 6. The story is edited; the new version is re-pushed, so subscribed
  //    proxies never serve stale content.
  engine.publish(PublishEvent{.time = 100.0, .page = 42, .version = 1,
                              .size = 50 * 1024},
                 attrs);
  const auto fresh = engine.request(0, 42, 120.0);
  std::printf("proxy 0 after update:   %s (version %u)\n",
              fresh.hit ? "HIT" : "MISS", engine.latestVersion(42));
  return 0;
}
