// Extending the library: implement a custom DistributionStrategy and
// race it against the built-ins on a scaled-down news workload.
//
// The custom policy below ("PushLRU") stores every pushed page and every
// missed page and evicts in least-recently-*touched* order — a naive
// push-aware LRU. The example shows the full strategy surface a
// downstream user implements, and how to drive it with the simulator's
// engine replay loop.
//
//   $ ./custom_policy
#include <cstdio>
#include <list>
#include <unordered_map>

#include "pscd/pscd.h"

using namespace pscd;

namespace {

/// Push-aware LRU: admission is unconditional (like LRU), pushes count
/// as touches. Everything the interface requires in ~60 lines.
class PushLruStrategy final : public DistributionStrategy {
 public:
  explicit PushLruStrategy(Bytes capacity) : capacity_(capacity) {}

  bool pushCapable() const override { return true; }

  PushOutcome onPush(const PushContext& ctx) override {
    if (ctx.size > capacity_) return {false};
    touch(ctx.page, ctx.version, ctx.size, ctx.now);
    return {true};
  }

  RequestOutcome onRequest(const RequestContext& ctx) override {
    RequestOutcome out;
    const auto it = map_.find(ctx.page);
    if (it != map_.end() && it->second->version == ctx.latestVersion) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->lastAccess = ctx.now;
      out.hit = true;
      return out;
    }
    out.stale = it != map_.end();
    if (ctx.size <= capacity_) {
      touch(ctx.page, ctx.latestVersion, ctx.size, ctx.now);
      out.storedAfterMiss = true;
    }
    return out;
  }

  std::optional<Version> cachedVersion(PageId page) const override {
    const auto it = map_.find(page);
    return it != map_.end() ? std::optional<Version>(it->second->version)
                            : std::nullopt;
  }

  Bytes usedBytes() const override { return used_; }
  Bytes capacityBytes() const override { return capacity_; }
  std::string name() const override { return "PushLRU"; }

 private:
  void touch(PageId page, Version version, Bytes size, SimTime now) {
    if (const auto it = map_.find(page); it != map_.end()) {
      used_ -= it->second->size;
      lru_.erase(it->second);
      map_.erase(it);
    }
    while (capacity_ - used_ < size) {
      used_ -= lru_.back().size;
      map_.erase(lru_.back().page);
      lru_.pop_back();
    }
    CacheEntry e;
    e.page = page;
    e.version = version;
    e.size = size;
    e.lastAccess = now;
    lru_.push_front(e);
    map_[page] = lru_.begin();
    used_ += size;
  }

  Bytes capacity_;
  Bytes used_ = 0;
  std::list<CacheEntry> lru_;
  std::unordered_map<PageId, std::list<CacheEntry>::iterator> map_;
};

/// Replays a workload against one strategy instance per proxy and
/// returns the global hit ratio — the same loop the Simulator runs,
/// written out for custom strategies.
double replay(const Workload& w,
              const std::function<std::unique_ptr<DistributionStrategy>(
                  Bytes capacity, double fetchCost)>& make,
              const Network& network, double capacityFraction) {
  std::vector<std::unique_ptr<DistributionStrategy>> proxies;
  for (ProxyId p = 0; p < w.numProxies(); ++p) {
    const auto cap = static_cast<Bytes>(
        capacityFraction * static_cast<double>(w.uniqueBytesRequested[p]));
    proxies.push_back(make(std::max<Bytes>(cap, 1), network.fetchCost(p)));
  }
  std::vector<Version> latest(w.numPages(), 0);
  std::uint64_t hits = 0;
  std::size_t pi = 0, ri = 0;
  while (pi < w.publishes.size() || ri < w.requests.size()) {
    const bool takePublish =
        pi < w.publishes.size() &&
        (ri >= w.requests.size() ||
         w.publishes[pi].time <= w.requests[ri].time);
    if (takePublish) {
      const auto& e = w.publishes[pi++];
      latest[e.page] = e.version;
      for (const auto& n : w.subscriptions(e.page)) {
        if (proxies[n.proxy]->pushCapable()) {
          proxies[n.proxy]->onPush(
              {e.page, e.version, e.size, n.matchCount, e.time});
        }
      }
    } else {
      const auto& r = w.requests[ri++];
      hits += proxies[r.proxy]
                  ->onRequest({r.page, latest[r.page],
                               w.pages[r.page].size,
                               w.subscriptionCount(r.page, r.proxy), r.time})
                  .hit;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(w.requests.size());
}

}  // namespace

int main() {
  WorkloadParams params = newsTraceParams();
  params.publishing.numPages = 1500;
  params.publishing.numUpdatedPages = 600;
  params.request.totalRequests = 50000;
  params.request.numProxies = 25;
  const Workload w = buildWorkload(params);
  Rng rng(7);
  const Network network(NetworkParams{.numProxies = 25}, rng);

  std::printf("Scaled-down NEWS workload: %zu requests, %zu publishes, "
              "25 proxies, capacity = 5%%\n\n",
              w.requests.size(), w.publishes.size());

  const double custom = replay(
      w,
      [](Bytes cap, double) { return std::make_unique<PushLruStrategy>(cap); },
      network, 0.05);
  std::printf("  %-8s H = %.1f%%   (custom strategy)\n", "PushLRU",
              100 * custom);

  for (const StrategyKind kind :
       {StrategyKind::kGDStar, StrategyKind::kSUB, StrategyKind::kSG2,
        StrategyKind::kDCLAP}) {
    const double h = replay(
        w,
        [&](Bytes cap, double cost) {
          StrategyParams p;
          p.capacity = cap;
          p.fetchCost = cost;
          p.beta = 2.0;
          return makeStrategy(kind, p);
        },
        network, 0.05);
    std::printf("  %-8s H = %.1f%%\n",
                std::string(strategyName(kind)).c_str(), 100 * h);
  }
  std::printf(
      "\nPushLRU stores everything it sees; the paper's value-based\n"
      "schemes spend the same bytes more carefully.\n");
  return 0;
}
