// News-site scenario: generate the paper's NEWS workload (a busy
// MSNBC-like publisher, 100 proxies, 7 simulated days), run a chosen
// strategy and print a daily report plus per-proxy spread.
//
//   $ ./news_site [strategy] [capacity%] [SQ]
//   $ ./news_site SG2 5 1.0
#include <cstdio>
#include <cstdlib>
#include <string>

#include "pscd/pscd.h"

using namespace pscd;

int main(int argc, char** argv) {
  const std::string strategyArg = argc > 1 ? argv[1] : "SG2";
  const double capacityPct = argc > 2 ? std::strtod(argv[2], nullptr) : 5.0;
  const double sq = argc > 3 ? std::strtod(argv[3], nullptr) : 1.0;
  StrategyKind kind;
  try {
    kind = parseStrategyKind(strategyArg);
  } catch (const std::exception&) {
    std::fprintf(stderr,
                 "unknown strategy '%s' (try GD*, SUB, SG1, SG2, SR, DM, "
                 "DC-FP, DC-AP, DC-LAP, LRU)\n",
                 strategyArg.c_str());
    return 1;
  }

  std::printf("Building NEWS workload (SQ = %.2f)...\n", sq);
  WorkloadParams params = newsTraceParams();
  params.subscription.quality = sq;
  const Workload workload = buildWorkload(params);
  std::printf("  %u pages, %zu publish events, %zu requests, %llu "
              "subscriptions\n",
              workload.numPages(), workload.publishes.size(),
              workload.requests.size(),
              static_cast<unsigned long long>(workload.totalSubscriptions()));

  Rng rng(7);
  const Network network(NetworkParams{}, rng);

  SimConfig config;
  config.strategy = kind;
  config.beta = paperBeta(kind, TraceKind::kNews, capacityPct / 100.0);
  config.capacityFraction = capacityPct / 100.0;
  config.collectHourly = true;
  Simulator sim(workload, network, config);
  std::printf("Running %s at %.0f%% capacity...\n\n",
              std::string(strategyName(kind)).c_str(), capacityPct);
  const SimMetrics m = sim.run();

  std::printf("Global hit ratio H: %.2f%%  (%llu hits / %llu requests, "
              "%llu stale misses)\n",
              100.0 * m.hitRatio(),
              static_cast<unsigned long long>(m.hits()),
              static_cast<unsigned long long>(m.requests()),
              static_cast<unsigned long long>(m.staleMisses()));
  std::printf("Traffic: %llu pushed pages (%.1f MB), %llu fetched pages "
              "(%.1f MB)\n\n",
              static_cast<unsigned long long>(m.traffic().pushPages),
              m.traffic().pushBytes / 1e6,
              static_cast<unsigned long long>(m.traffic().fetchPages),
              m.traffic().fetchBytes / 1e6);

  AsciiTable daily({"day", "hit ratio", "traffic (pages)"});
  for (int day = 0; day < 7; ++day) {
    double hits = 0, reqs = 0, pages = 0;
    for (int h = day * 24; h < (day + 1) * 24; ++h) {
      const auto hour = static_cast<std::size_t>(h);
      hits += m.hourlyHitRatio(hour) > 0
                  ? m.hourlyHitRatio(hour)  // ratio; weight below
                  : 0.0;
      reqs += 1.0;
      pages += m.hourlyTrafficPages(hour);
    }
    daily.row()
        .cell("day " + std::to_string(day + 1))
        .cell(formatFixed(100.0 * hits / reqs, 1) + "%")
        .cell(formatFixed(pages, 0));
  }
  std::printf("%s", daily.render().c_str());

  RunningStats perProxy;
  for (ProxyId p = 0; p < workload.numProxies(); ++p) {
    perProxy.add(m.proxyHitRatio(p));
  }
  std::printf("\nPer-proxy hit ratio: mean %.1f%%, min %.1f%%, max %.1f%%, "
              "stddev %.1f%%\n",
              100 * perProxy.mean(), 100 * perProxy.min(),
              100 * perProxy.max(), 100 * perProxy.stddev());
  return 0;
}
