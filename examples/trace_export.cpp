// Workload tooling: generate a trace, persist it in the binary format,
// reload it, and export CSVs for external analysis (plotting, spreadsheet
// inspection of the publishing dynamics, etc.).
//
//   $ ./trace_export [output-dir]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "pscd/pscd.h"

using namespace pscd;

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "trace_out";
  std::filesystem::create_directories(dir);

  WorkloadParams params = newsTraceParams();
  params.publishing.numPages = 2000;
  params.publishing.numUpdatedPages = 800;
  params.request.totalRequests = 60000;
  params.request.numProxies = 30;
  std::printf("Generating workload (seed %llu)...\n",
              static_cast<unsigned long long>(params.seed));
  const Workload w = buildWorkload(params);

  const auto tracePath = dir / "news.trace";
  saveWorkloadFile(w, tracePath.string());
  const Workload reloaded = loadWorkloadFile(tracePath.string());
  std::printf("Binary trace round-trip: %zu publishes, %zu requests -> %s\n",
              reloaded.publishes.size(), reloaded.requests.size(),
              tracePath.c_str());

  const auto writeCsv = [&](const char* name, auto&& exporter) {
    const auto path = dir / name;
    std::ofstream out(path);
    exporter(reloaded, out);
    std::printf("  wrote %s\n", path.c_str());
  };
  writeCsv("publishes.csv", [](const Workload& wl, std::ostream& os) {
    exportPublishesCsv(wl, os);
  });
  writeCsv("requests.csv", [](const Workload& wl, std::ostream& os) {
    exportRequestsCsv(wl, os);
  });
  writeCsv("subscriptions.csv", [](const Workload& wl, std::ostream& os) {
    exportSubscriptionsCsv(wl, os);
  });

  // A few summary statistics of the generated trace.
  RunningStats sizes, versions;
  for (const auto& p : reloaded.pages) {
    sizes.add(static_cast<double>(p.size));
    versions.add(p.numVersions);
  }
  std::printf("\nPage sizes: mean %.1f KB (min %.1f, max %.1f)\n",
              sizes.mean() / 1e3, sizes.min() / 1e3, sizes.max() / 1e3);
  std::printf("Versions per page: mean %.1f, max %.0f\n", versions.mean(),
              versions.max());
  Histogram hourly(0.0, reloaded.params.publishing.horizon, 7 * 24);
  for (const auto& r : reloaded.requests) hourly.add(r.time);
  double peak = 0.0;
  std::size_t peakHour = 0;
  for (std::size_t h = 0; h < hourly.bins(); ++h) {
    if (hourly.count(h) > peak) {
      peak = hourly.count(h);
      peakHour = h;
    }
  }
  std::printf("Request peak: hour %zu (%0.f requests); diurnal swing is\n"
              "visible in requests.csv.\n",
              peakHour, peak);
  return 0;
}
