#include "pscd/oracle/reference_paths.h"

#include <limits>
#include <stdexcept>

namespace pscd {

std::vector<double> bellmanFordPaths(const Graph& g, NodeId src) {
  if (src >= g.numNodes()) {
    throw std::out_of_range("bellmanFordPaths: src out of range");
  }
  std::vector<double> dist(g.numNodes(),
                           std::numeric_limits<double>::infinity());
  dist[src] = 0.0;
  // Up to |V| - 1 full relaxation sweeps; stop early once a sweep makes
  // no progress.
  for (NodeId round = 1; round < g.numNodes(); ++round) {
    bool changed = false;
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      // pscd-lint: allow(float-compare) infinity is an exact sentinel
      if (dist[u] == std::numeric_limits<double>::infinity()) continue;
      for (const Graph::Edge& e : g.neighbors(u)) {
        const double nd = dist[u] + e.weight;
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace pscd
