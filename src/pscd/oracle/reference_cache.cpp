#include "pscd/oracle/reference_cache.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace pscd {

// ---------------------------------------------------------------- LRU --

Bytes ReferenceLruStrategy::usedBytes() const {
  Bytes total = 0;
  for (const Slot& s : slots_) total += s.entry.size;
  return total;
}

RequestOutcome ReferenceLruStrategy::onRequest(const RequestContext& ctx) {
  RequestOutcome out;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].entry.page != ctx.page) continue;
    if (slots_[i].entry.version == ctx.latestVersion) {
      ++slots_[i].entry.accessCount;
      slots_[i].entry.lastAccess = ctx.now;
      slots_[i].touched = ++clock_;
      out.hit = true;
      return out;
    }
    out.stale = true;
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
    break;
  }
  if (ctx.size > capacity_) return out;
  while (capacity_ - usedBytes() < ctx.size) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].touched < slots_[victim].touched) victim = i;
    }
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  Slot s;
  s.entry.page = ctx.page;
  s.entry.version = ctx.latestVersion;
  s.entry.size = ctx.size;
  s.entry.subCount = ctx.subCount;
  s.entry.accessCount = 1;
  s.entry.lastAccess = ctx.now;
  s.touched = ++clock_;
  slots_.push_back(s);
  out.storedAfterMiss = true;
  return out;
}

// --------------------------------------------------------- GDS family --

ReferenceGdsFamilyStrategy::ReferenceGdsFamilyStrategy(
    Bytes capacity, double fetchCost, const GdsFamilyConfig& config)
    : config_(config), fetchCost_(fetchCost), capacity_(capacity) {
  if (config.beta <= 0 || fetchCost <= 0) {
    throw std::invalid_argument("ReferenceGdsFamilyStrategy: bad config");
  }
}

double ReferenceGdsFamilyStrategy::frequency(
    std::uint32_t subCount, std::uint32_t accessCount) const {
  using FreqMode = GdsFamilyConfig::FreqMode;
  switch (config_.freqMode) {
    case FreqMode::kAccessOnly:
      return accessCount;
    case FreqMode::kSubPlusAccess:
      return static_cast<double>(subCount) + accessCount;
    case FreqMode::kSubMinusAccess:
      return std::max(static_cast<double>(subCount) - accessCount, 0.0);
    case FreqMode::kConstantOne:
      return 1.0;
  }
  return 0.0;
}

double ReferenceGdsFamilyStrategy::value(double frequency, Bytes size) const {
  double utility = frequency;
  if (config_.useCost) utility *= fetchCost_;
  if (config_.useSize) utility /= static_cast<double>(size);
  const double term = std::pow(std::max(utility, 0.0), 1.0 / config_.beta);
  return (config_.useInflation ? inflation_ : 0.0) + term;
}

std::uint32_t ReferenceGdsFamilyStrategy::effectiveAccessCount(
    const CacheEntry& entry) const {
  if (!config_.persistentAccessCounts) return entry.accessCount;
  const auto it = accessHistory_.find(entry.page);
  return it == accessHistory_.end() ? 0 : it->second;
}

Bytes ReferenceGdsFamilyStrategy::usedBytes() const {
  Bytes total = 0;
  for (const Slot& s : slots_) total += s.entry.size;
  return total;
}

Bytes ReferenceGdsFamilyStrategy::freeBytes() const {
  return capacity_ - usedBytes();
}

std::size_t ReferenceGdsFamilyStrategy::lowestSlot() const {
  std::size_t low = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].value < slots_[low].value ||
        // pscd-lint: allow(float-compare) exact tie-break mirrors the primary
        (slots_[i].value == slots_[low].value &&
         slots_[i].entry.page < slots_[low].entry.page)) {
      low = i;
    }
  }
  return low;
}

bool ReferenceGdsFamilyStrategy::eraseSlot(PageId page, CacheEntry* out) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].entry.page == page) {
      if (out != nullptr) *out = slots_[i].entry;
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool ReferenceGdsFamilyStrategy::insert(const CacheEntry& entry) {
  const double v =
      value(frequency(entry.subCount, effectiveAccessCount(entry)),
            entry.size);
  double lastEvictedValue = 0.0;
  bool evictedAny = false;
  if (config_.valueBasedAdmission) {
    if (freeBytes() < entry.size) {
      // Feasibility: can candidates strictly below v free enough space?
      // Scan in ascending (value, page) order, as the production index
      // would surface them.
      std::vector<std::size_t> order(slots_.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        // pscd-lint: allow(float-compare) exact tie-break mirrors the primary
        if (slots_[a].value != slots_[b].value) {
          return slots_[a].value < slots_[b].value;
        }
        return slots_[a].entry.page < slots_[b].entry.page;
      });
      Bytes reclaimable = freeBytes();
      bool feasible = false;
      for (const std::size_t i : order) {
        if (!(slots_[i].value < v)) break;
        reclaimable += slots_[i].entry.size;
        if (reclaimable >= entry.size) {
          feasible = true;
          break;
        }
      }
      if (!feasible) return false;
      while (freeBytes() < entry.size) {
        const std::size_t victim = lowestSlot();
        lastEvictedValue = slots_[victim].value;
        evictedAny = true;
        slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }
  } else {
    if (entry.size > capacity_) return false;
    while (freeBytes() < entry.size) {
      const std::size_t victim = lowestSlot();
      lastEvictedValue = slots_[victim].value;
      evictedAny = true;
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  if (config_.useInflation && evictedAny) inflation_ = lastEvictedValue;
  Slot s;
  s.entry = entry;
  // Re-evaluate with the post-eviction inflation, as the production
  // pseudo-code does (evict first, then V(p) <- L + ...).
  s.value = value(frequency(entry.subCount, effectiveAccessCount(entry)),
                  entry.size);
  slots_.push_back(s);
  return true;
}

PushOutcome ReferenceGdsFamilyStrategy::onPush(const PushContext& ctx) {
  if (!config_.pushEnabled) return {false};
  CacheEntry entry;
  eraseSlot(ctx.page, &entry);  // refresh in place, keep access history
  entry.page = ctx.page;
  entry.version = ctx.version;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  return {insert(entry)};
}

RequestOutcome ReferenceGdsFamilyStrategy::onRequest(
    const RequestContext& ctx) {
  RequestOutcome out;
  if (config_.persistentAccessCounts) ++accessHistory_[ctx.page];
  for (Slot& s : slots_) {
    if (s.entry.page != ctx.page) continue;
    if (s.entry.version == ctx.latestVersion) {
      ++s.entry.accessCount;
      s.entry.lastAccess = ctx.now;
      s.value = value(
          frequency(s.entry.subCount, effectiveAccessCount(s.entry)),
          s.entry.size);
      out.hit = true;
      return out;
    }
    out.stale = true;
    break;
  }
  CacheEntry entry;
  eraseSlot(ctx.page, &entry);
  entry.page = ctx.page;
  entry.version = ctx.latestVersion;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  ++entry.accessCount;
  entry.lastAccess = ctx.now;
  out.storedAfterMiss = insert(entry);
  return out;
}

// ---------------------------------------------------------------- SUB --

double ReferenceSubStrategy::value(std::uint32_t subCount, Bytes size) const {
  return static_cast<double>(subCount) * fetchCost_ /
         static_cast<double>(size);
}

Bytes ReferenceSubStrategy::usedBytes() const {
  Bytes total = 0;
  for (const Slot& s : slots_) total += s.entry.size;
  return total;
}

std::size_t ReferenceSubStrategy::lowestSlot() const {
  std::size_t low = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].value < slots_[low].value ||
        // pscd-lint: allow(float-compare) exact tie-break mirrors the primary
        (slots_[i].value == slots_[low].value &&
         slots_[i].entry.page < slots_[low].entry.page)) {
      low = i;
    }
  }
  return low;
}

PushOutcome ReferenceSubStrategy::onPush(const PushContext& ctx) {
  CacheEntry entry;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].entry.page == ctx.page) {
      entry = slots_[i].entry;
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  entry.page = ctx.page;
  entry.version = ctx.version;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  const double v = value(ctx.subCount, ctx.size);
  if (capacity_ - usedBytes() < ctx.size) {
    Bytes reclaimable = capacity_ - usedBytes();
    bool feasible = false;
    std::vector<std::size_t> order(slots_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      // pscd-lint: allow(float-compare) exact tie-break mirrors the primary
      if (slots_[a].value != slots_[b].value) {
        return slots_[a].value < slots_[b].value;
      }
      return slots_[a].entry.page < slots_[b].entry.page;
    });
    for (const std::size_t i : order) {
      if (!(slots_[i].value < v)) break;
      reclaimable += slots_[i].entry.size;
      if (reclaimable >= ctx.size) {
        feasible = true;
        break;
      }
    }
    if (!feasible) return {false};
    while (capacity_ - usedBytes() < ctx.size) {
      slots_.erase(slots_.begin() +
                   static_cast<std::ptrdiff_t>(lowestSlot()));
    }
  }
  Slot s;
  s.entry = entry;
  s.value = v;
  slots_.push_back(s);
  return {true};
}

RequestOutcome ReferenceSubStrategy::onRequest(const RequestContext& ctx) {
  RequestOutcome out;
  for (Slot& s : slots_) {
    if (s.entry.page != ctx.page) continue;
    if (s.entry.version == ctx.latestVersion) {
      ++s.entry.accessCount;  // bookkeeping only, value unchanged
      s.entry.lastAccess = ctx.now;
      out.hit = true;
      return out;
    }
    // Stale copy stays; the next push of the page refreshes it.
    out.stale = true;
    break;
  }
  return out;  // push-time-only: fetch and forward without caching
}

// ----------------------------------------------------------------- DM --

ReferenceDualMethodsStrategy::ReferenceDualMethodsStrategy(Bytes capacity,
                                                           double fetchCost,
                                                           double beta)
    : capacity_(capacity), fetchCost_(fetchCost), beta_(beta) {
  if (fetchCost <= 0 || beta <= 0) {
    throw std::invalid_argument("ReferenceDualMethodsStrategy: bad config");
  }
}

double ReferenceDualMethodsStrategy::subValue(std::uint32_t subCount,
                                              Bytes size) const {
  return static_cast<double>(subCount) * fetchCost_ /
         static_cast<double>(size);
}

double ReferenceDualMethodsStrategy::gdValue(std::uint32_t accessCount,
                                             Bytes size) const {
  const double utility = static_cast<double>(accessCount) * fetchCost_ /
                         static_cast<double>(size);
  return inflation_ + std::pow(utility, 1.0 / beta_);
}

Bytes ReferenceDualMethodsStrategy::usedBytes() const {
  Bytes total = 0;
  for (const Slot& s : slots_) total += s.entry.size;
  return total;
}

std::size_t ReferenceDualMethodsStrategy::lowestBySub() const {
  std::size_t low = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].subValue < slots_[low].subValue ||
        // pscd-lint: allow(float-compare) exact tie-break mirrors the primary
        (slots_[i].subValue == slots_[low].subValue &&
         slots_[i].entry.page < slots_[low].entry.page)) {
      low = i;
    }
  }
  return low;
}

std::size_t ReferenceDualMethodsStrategy::lowestByGd() const {
  std::size_t low = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].gdValue < slots_[low].gdValue ||
        // pscd-lint: allow(float-compare) exact tie-break mirrors the primary
        (slots_[i].gdValue == slots_[low].gdValue &&
         slots_[i].entry.page < slots_[low].entry.page)) {
      low = i;
    }
  }
  return low;
}

bool ReferenceDualMethodsStrategy::eraseSlot(PageId page, Slot* out) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].entry.page == page) {
      if (out != nullptr) *out = slots_[i];
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

PushOutcome ReferenceDualMethodsStrategy::onPush(const PushContext& ctx) {
  Slot entry;
  eraseSlot(ctx.page, &entry);  // refresh in place, keep access history
  entry.entry.page = ctx.page;
  entry.entry.version = ctx.version;
  entry.entry.size = ctx.size;
  entry.entry.subCount = ctx.subCount;
  entry.subValue = subValue(ctx.subCount, ctx.size);
  entry.gdValue = gdValue(entry.entry.accessCount, ctx.size);

  // SUB admission over the subscription ordering; push-time evictions
  // do not advance L.
  Bytes reclaimable = capacity_ - usedBytes();
  bool feasible = reclaimable >= ctx.size;
  if (!feasible) {
    std::vector<std::size_t> order(slots_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      // pscd-lint: allow(float-compare) exact tie-break mirrors the primary
      if (slots_[a].subValue != slots_[b].subValue) {
        return slots_[a].subValue < slots_[b].subValue;
      }
      return slots_[a].entry.page < slots_[b].entry.page;
    });
    for (const std::size_t i : order) {
      if (!(slots_[i].subValue < entry.subValue)) break;
      reclaimable += slots_[i].entry.size;
      if (reclaimable >= ctx.size) {
        feasible = true;
        break;
      }
    }
  }
  if (!feasible) return {false};
  while (capacity_ - usedBytes() < ctx.size) {
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(lowestBySub()));
  }
  slots_.push_back(entry);
  return {true};
}

RequestOutcome ReferenceDualMethodsStrategy::onRequest(
    const RequestContext& ctx) {
  RequestOutcome out;
  Slot entry;
  bool hadStale = false;
  for (Slot& s : slots_) {
    if (s.entry.page != ctx.page) continue;
    if (s.entry.version == ctx.latestVersion) {
      ++s.entry.accessCount;
      s.entry.lastAccess = ctx.now;
      s.gdValue = gdValue(s.entry.accessCount, s.entry.size);
      out.hit = true;
      return out;
    }
    out.stale = true;
    hadStale = true;
    break;
  }
  if (hadStale) eraseSlot(ctx.page, &entry);
  // Miss: classic GD* placement over the access ordering (always admit).
  if (ctx.size > capacity_) return out;
  while (capacity_ - usedBytes() < ctx.size) {
    const std::size_t victim = lowestByGd();
    inflation_ = slots_[victim].gdValue;
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  entry.entry.page = ctx.page;
  entry.entry.version = ctx.latestVersion;
  entry.entry.size = ctx.size;
  entry.entry.subCount = ctx.subCount;
  ++entry.entry.accessCount;
  entry.entry.lastAccess = ctx.now;
  entry.subValue = subValue(ctx.subCount, ctx.size);
  entry.gdValue = gdValue(entry.entry.accessCount, ctx.size);
  slots_.push_back(entry);
  out.storedAfterMiss = true;
  return out;
}

}  // namespace pscd
