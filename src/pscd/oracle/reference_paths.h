// Bellman–Ford single-source shortest paths: the naive O(V*E) reference
// for the production Dijkstra implementation that derives the
// publisher->proxy fetch costs c(p). Shares no code with shortestPaths()
// beyond the Graph type.
#pragma once

#include <vector>

#include "pscd/topology/graph.h"

namespace pscd {

/// Distances from src to every node; unreachable nodes get +infinity.
/// All edge weights are positive (Graph::addEdge enforces it), so no
/// negative-cycle handling is needed.
std::vector<double> bellmanFordPaths(const Graph& g, NodeId src);

}  // namespace pscd
