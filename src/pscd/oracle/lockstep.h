// Lockstep differential drivers: each runs a seeded randomized operation
// stream against a production implementation and its naive reference
// model (oracle/reference_*.h), comparing observable outputs after every
// step. On the first mismatch — or on any exception, including a
// CheckFailure from the production invariant validators — the driver
// stops and returns a minimal replayable trace: the seed plus the
// 0-based step index of the divergence. Re-running the same driver with
// the same config replays the identical stream, so `seed + step` is a
// complete bug report.
//
// Every config carries an optional sabotage hook (invoked once, before
// the operation at `sabotageStep` executes). Tests use it to mutate the
// production state through the InvariantCorrupter friend backdoor and
// assert that the driver actually detects a broken implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pscd/cache/strategy.h"
#include "pscd/pubsub/covering.h"
#include "pscd/pubsub/matcher.h"
#include "pscd/util/types.h"

namespace pscd {

inline constexpr std::size_t kNoSabotage = static_cast<std::size_t>(-1);

/// Outcome of one lockstep run. `step` is only meaningful when
/// `diverged` is set; `what` describes the first mismatch.
struct LockstepReport {
  bool diverged = false;
  std::uint64_t seed = 0;
  std::size_t step = 0;
  std::size_t stepsRun = 0;
  std::string what;

  explicit operator bool() const { return diverged; }
};

/// "<subsystem> diverged at seed=S step=N: <what>" (or an all-clear).
std::string toString(const LockstepReport& report);

// ------------------------------------------------------------ matcher --

struct MatcherLockstepConfig {
  std::uint64_t seed = 1;
  std::size_t steps = 1000;
  std::uint32_t numProxies = 8;
  std::uint32_t numPages = 32;
  std::uint32_t numCategories = 6;
  std::uint32_t numKeywords = 16;
  std::size_t sabotageStep = kNoSabotage;
  std::function<void(MatchingEngine&)> sabotage;
};

/// Ops: add subscription (compares ids), remove (compares success),
/// publish (compares the matched id set and per-proxy counts). The
/// production invariants are validated periodically.
LockstepReport runMatcherLockstep(const MatcherLockstepConfig& config);

// ----------------------------------------------------------- covering --

struct CoveringLockstepConfig {
  std::uint64_t seed = 1;
  std::size_t steps = 1000;
  /// Small vocabulary so absorption/eviction happens constantly.
  std::uint32_t numCategories = 3;
  std::uint32_t numKeywords = 5;
  std::size_t sabotageStep = kNoSabotage;
  std::function<void(CoveringSet&)> sabotage;
};

/// Ops: add (compares the accepted flag, the size, and the full member
/// multiset in canonical form), isCovered probe, matches probe.
LockstepReport runCoveringLockstep(const CoveringLockstepConfig& config);

// -------------------------------------------------------------- cache --

struct CacheLockstepConfig {
  std::uint64_t seed = 1;
  std::size_t steps = 1000;
  std::uint32_t numPages = 48;
  Bytes minPageSize = 1;
  Bytes maxPageSize = 64;
  /// Deliberately tight so eviction churn dominates.
  Bytes capacity = 256;
  double pushProbability = 0.45;
  std::function<std::unique_ptr<DistributionStrategy>()> makeProduction;
  std::function<std::unique_ptr<DistributionStrategy>()> makeReference;
  std::size_t sabotageStep = kNoSabotage;
  std::function<void(DistributionStrategy&)> sabotage;
};

/// Ops: push (new version, redrawn size) or request of a random page;
/// after every op the Push/RequestOutcome and usedBytes() of both sides
/// must agree. Production invariants are validated periodically. Pushes
/// are only generated for pages with at least one matching subscription,
/// mirroring the engine (proxies without matches are not notified).
LockstepReport runCacheLockstep(const CacheLockstepConfig& config);

/// Runs a batch of cache lockstep configs across `jobs` worker threads
/// (0 = hardware_concurrency, 1 = inline on the calling thread) and
/// returns the reports in input order. Every run is self-contained and
/// fully determined by its config, so the reports — including the exact
/// (seed, step) divergence coordinates — match a one-by-one serial run.
std::vector<LockstepReport> runCacheLockstepBatch(
    const std::vector<CacheLockstepConfig>& configs, unsigned jobs = 0);

// ------------------------------------------------------ shortest paths --

struct PathsLockstepConfig {
  std::uint64_t seed = 1;
  std::size_t steps = 1000;
  std::uint32_t minNodes = 2;
  std::uint32_t maxNodes = 40;
  /// Per-pair edge probability; low enough that some graphs come out
  /// disconnected, so the +infinity contract is exercised too.
  double edgeProbability = 0.12;
  /// A fresh random graph is generated every `graphEvery` steps.
  std::size_t graphEvery = 8;
  std::size_t sabotageStep = kNoSabotage;
  /// Applied to the production (Dijkstra) distance vector — simulates a
  /// broken shortest-path implementation.
  std::function<void(std::vector<double>&)> sabotage;
};

/// Each step: run Dijkstra and Bellman–Ford from a random source on the
/// current random graph and compare all distances (relative tolerance
/// 1e-9); additionally validates the Dijkstra output with
/// checkShortestPathTree().
LockstepReport runPathsLockstep(const PathsLockstepConfig& config);

}  // namespace pscd
