#include "pscd/oracle/reference_covering.h"

#include <algorithm>

namespace pscd {

bool coversNaive(const Subscription& a, const Subscription& b) {
  if (a.conjuncts.empty()) return false;  // empty matches nothing
  for (const Predicate& pa : a.conjuncts) {
    bool found = false;
    for (const Predicate& pb : b.conjuncts) {
      if (pa == pb) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool ReferenceCoveringSet::add(Subscription sub) {
  for (const Subscription& m : members_) {
    if (coversNaive(m, sub)) return false;
  }
  std::erase_if(members_,
                [&](const Subscription& m) { return coversNaive(sub, m); });
  members_.push_back(std::move(sub));
  return true;
}

bool ReferenceCoveringSet::isCovered(const Subscription& sub) const {
  return std::any_of(
      members_.begin(), members_.end(),
      [&](const Subscription& m) { return coversNaive(m, sub); });
}

bool ReferenceCoveringSet::matches(const ContentAttributes& attrs) const {
  return std::any_of(members_.begin(), members_.end(),
                     [&](const Subscription& m) { return m.matches(attrs); });
}

}  // namespace pscd
