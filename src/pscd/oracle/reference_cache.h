// Linear-scan reference models for the replacement strategies. Each
// mirrors the *specified* behaviour of its production counterpart —
// same value formulas, same admission rules, same (value, page)
// eviction tie-break — but stores entries in a flat vector and finds
// every eviction victim with a full scan instead of maintaining the
// ordered std::set indexes of ValueCache / DualMethodsStrategy. They
// implement DistributionStrategy so the lockstep driver can compare
// push/request outcomes and byte accounting step by step.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "pscd/cache/entry.h"
#include "pscd/cache/gds_family.h"
#include "pscd/cache/strategy.h"

namespace pscd {

/// Reference LRU: recency tracked with a monotonic touch counter, the
/// victim is the entry with the smallest counter.
class ReferenceLruStrategy final : public DistributionStrategy {
 public:
  explicit ReferenceLruStrategy(Bytes capacity) : capacity_(capacity) {}

  bool pushCapable() const override { return false; }
  PushOutcome onPush(const PushContext&) override { return {false}; }
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    for (const Slot& s : slots_) {
      if (s.entry.page == page) return s.entry.version;
    }
    return std::nullopt;
  }
  Bytes usedBytes() const override;
  Bytes capacityBytes() const override { return capacity_; }
  std::string name() const override { return "ref-LRU"; }

 private:
  struct Slot {
    CacheEntry entry;
    std::uint64_t touched = 0;
  };

  Bytes capacity_;
  std::uint64_t clock_ = 0;
  std::vector<Slot> slots_;
};

/// Reference for the whole GreedyDual* family (GD*, SG1, SG2, SR, GDS,
/// LFU-DA): identical GdsFamilyConfig semantics, flat-vector storage.
class ReferenceGdsFamilyStrategy final : public DistributionStrategy {
 public:
  ReferenceGdsFamilyStrategy(Bytes capacity, double fetchCost,
                             const GdsFamilyConfig& config);

  bool pushCapable() const override { return config_.pushEnabled; }
  PushOutcome onPush(const PushContext& ctx) override;
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    for (const Slot& s : slots_) {
      if (s.entry.page == page) return s.entry.version;
    }
    return std::nullopt;
  }
  Bytes usedBytes() const override;
  Bytes capacityBytes() const override { return capacity_; }
  std::string name() const override {
    return "ref-" + config_.displayName;
  }

 private:
  struct Slot {
    CacheEntry entry;
    double value = 0.0;
  };

  double frequency(std::uint32_t subCount, std::uint32_t accessCount) const;
  double value(double frequency, Bytes size) const;
  std::uint32_t effectiveAccessCount(const CacheEntry& entry) const;
  Bytes freeBytes() const;
  /// Index of the entry with the smallest (value, page); requires a
  /// non-empty cache.
  std::size_t lowestSlot() const;
  /// Removes a cached page if present, returning its entry.
  bool eraseSlot(PageId page, CacheEntry* out);
  bool insert(const CacheEntry& entry);

  GdsFamilyConfig config_;
  double fetchCost_;
  Bytes capacity_;
  double inflation_ = 0.0;  // L
  std::vector<Slot> slots_;
  std::unordered_map<PageId, std::uint32_t> accessHistory_;
};

/// Reference SUB: push-time-only placement, value-based admission,
/// never caches on a miss, leaves stale copies for the next push.
class ReferenceSubStrategy final : public DistributionStrategy {
 public:
  ReferenceSubStrategy(Bytes capacity, double fetchCost)
      : fetchCost_(fetchCost), capacity_(capacity) {}

  bool pushCapable() const override { return true; }
  PushOutcome onPush(const PushContext& ctx) override;
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    for (const Slot& s : slots_) {
      if (s.entry.page == page) return s.entry.version;
    }
    return std::nullopt;
  }
  Bytes usedBytes() const override;
  Bytes capacityBytes() const override { return capacity_; }
  std::string name() const override { return "ref-SUB"; }

 private:
  struct Slot {
    CacheEntry entry;
    double value = 0.0;
  };

  double value(std::uint32_t subCount, Bytes size) const;
  std::size_t lowestSlot() const;

  double fetchCost_;
  Bytes capacity_;
  std::vector<Slot> slots_;
};

/// Reference Dual-Methods: one shared store, two values per page; the
/// push module evicts by the SUB ordering, the access module by the GD*
/// ordering (only access-time evictions advance L).
class ReferenceDualMethodsStrategy final : public DistributionStrategy {
 public:
  ReferenceDualMethodsStrategy(Bytes capacity, double fetchCost, double beta);

  bool pushCapable() const override { return true; }
  PushOutcome onPush(const PushContext& ctx) override;
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    for (const Slot& s : slots_) {
      if (s.entry.page == page) return s.entry.version;
    }
    return std::nullopt;
  }
  Bytes usedBytes() const override;
  Bytes capacityBytes() const override { return capacity_; }
  std::string name() const override { return "ref-DM"; }

 private:
  struct Slot {
    CacheEntry entry;
    double subValue = 0.0;
    double gdValue = 0.0;
  };

  double subValue(std::uint32_t subCount, Bytes size) const;
  double gdValue(std::uint32_t accessCount, Bytes size) const;
  std::size_t lowestBySub() const;
  std::size_t lowestByGd() const;
  bool eraseSlot(PageId page, Slot* out);

  Bytes capacity_;
  double fetchCost_;
  double beta_;
  double inflation_ = 0.0;
  std::vector<Slot> slots_;
};

}  // namespace pscd
