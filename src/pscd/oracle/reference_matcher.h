// Deliberately naive reference model of the counting-based matching
// engine: subscriptions are stored verbatim and every publish event is
// matched by a brute-force scan calling Subscription::matches. No
// inverted index, no epoch-stamped scratch space, no lazy deletion —
// nothing that could share a bug with the production MatchingEngine.
// Differential tests drive both in lockstep (see oracle/lockstep.h).
#pragma once

#include <optional>
#include <vector>

#include "pscd/pubsub/matcher.h"
#include "pscd/pubsub/subscription.h"
#include "pscd/util/types.h"

namespace pscd {

class ReferenceMatcher {
 public:
  /// Same id assignment and empty-conjunction rejection as the
  /// production engine, so returned ids can be compared directly.
  SubscriptionId addSubscription(Subscription sub);

  /// Returns false if the id is unknown or already removed.
  bool removeSubscription(SubscriptionId id);

  /// Brute-force match; `subscriptions` comes back sorted by id.
  MatchResult match(const ContentAttributes& attrs) const;

  std::size_t size() const { return liveCount_; }

 private:
  std::vector<std::optional<Subscription>> subs_;  // nullopt = removed
  std::size_t liveCount_ = 0;
};

}  // namespace pscd
