#include "pscd/oracle/lockstep.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "pscd/oracle/reference_covering.h"
#include "pscd/oracle/reference_matcher.h"
#include "pscd/oracle/reference_paths.h"
#include "pscd/topology/shortest_path.h"
#include "pscd/util/rng.h"
#include "pscd/util/thread_pool.h"

namespace pscd {

namespace {

constexpr std::size_t kInvariantEvery = 64;

/// Runs `step(i)` for every step, converting the first non-empty
/// mismatch description — or any escaped exception, e.g. a CheckFailure
/// from a production invariant validator — into a replayable report.
template <typename StepFn>
LockstepReport runSteps(std::uint64_t seed, std::size_t steps,
                        StepFn&& step) {
  LockstepReport report;
  report.seed = seed;
  for (std::size_t i = 0; i < steps; ++i) {
    report.stepsRun = i + 1;
    try {
      std::string what = step(i);
      if (!what.empty()) {
        report.diverged = true;
        report.step = i;
        report.what = std::move(what);
        return report;
      }
    } catch (const std::exception& e) {
      report.diverged = true;
      report.step = i;
      report.what = std::string("exception: ") + e.what();
      return report;
    }
  }
  return report;
}

std::string describeIds(const std::vector<SubscriptionId>& got,
                        const std::vector<SubscriptionId>& want) {
  std::ostringstream os;
  os << "got {";
  for (const auto id : got) os << ' ' << id;
  os << " } want {";
  for (const auto id : want) os << ' ' << id;
  os << " }";
  return os.str();
}

}  // namespace

std::string toString(const LockstepReport& report) {
  std::ostringstream os;
  if (!report.diverged) {
    os << "lockstep ok after " << report.stepsRun << " steps (seed="
       << report.seed << ")";
  } else {
    os << "lockstep diverged at seed=" << report.seed << " step="
       << report.step << ": " << report.what
       << " — replay with the same config and this seed; the step index "
          "identifies the first mismatching operation";
  }
  return os.str();
}

// ------------------------------------------------------------ matcher --

LockstepReport runMatcherLockstep(const MatcherLockstepConfig& config) {
  Rng rng(config.seed);
  MatchingEngine prod;
  ReferenceMatcher ref;
  std::vector<SubscriptionId> ids;  // every id ever issued

  auto randomSubscription = [&] {
    Subscription sub;
    sub.proxy = static_cast<ProxyId>(rng.uniformInt(config.numProxies));
    const std::uint64_t n = 1 + rng.uniformInt(3);
    for (std::uint64_t i = 0; i < n; ++i) {
      Predicate p;
      switch (rng.uniformInt(3)) {
        case 0:
          p.kind = Predicate::Kind::kPageIdEq;
          p.value = static_cast<std::uint32_t>(
              rng.uniformInt(config.numPages));
          break;
        case 1:
          p.kind = Predicate::Kind::kCategoryEq;
          p.value = static_cast<std::uint32_t>(
              rng.uniformInt(config.numCategories));
          break;
        default:
          p.kind = Predicate::Kind::kKeywordContains;
          p.value = static_cast<std::uint32_t>(
              rng.uniformInt(config.numKeywords));
          break;
      }
      sub.conjuncts.push_back(p);  // duplicates are deliberate
    }
    return sub;
  };

  return runSteps(config.seed, config.steps, [&](std::size_t step) {
    if (step == config.sabotageStep && config.sabotage) {
      config.sabotage(prod);
    }
    const double roll = rng.uniform();
    if (roll < 0.45 || ids.empty()) {
      const Subscription sub = randomSubscription();
      const SubscriptionId got = prod.addSubscription(sub);
      const SubscriptionId want = ref.addSubscription(sub);
      if (got != want) {
        std::ostringstream os;
        os << "addSubscription id mismatch: got " << got << " want "
           << want;
        return os.str();
      }
      ids.push_back(got);
    } else if (roll < 0.60) {
      // May target an already-removed id: both sides must refuse.
      const SubscriptionId id = ids[rng.uniformInt(ids.size())];
      const bool got = prod.removeSubscription(id);
      const bool want = ref.removeSubscription(id);
      if (got != want) {
        std::ostringstream os;
        os << "removeSubscription(" << id << ") mismatch: got " << got
           << " want " << want;
        return os.str();
      }
    } else {
      ContentAttributes attrs;
      attrs.page = static_cast<PageId>(rng.uniformInt(config.numPages));
      attrs.category =
          static_cast<std::uint32_t>(rng.uniformInt(config.numCategories));
      const std::uint64_t nkw = rng.uniformInt(5);
      for (std::uint64_t i = 0; i < nkw; ++i) {
        // Duplicate keywords are deliberate: they must not advance a
        // subscription's conjunct counter twice.
        attrs.keywords.push_back(
            static_cast<std::uint32_t>(rng.uniformInt(config.numKeywords)));
      }
      MatchResult got = prod.match(attrs);
      const MatchResult want = ref.match(attrs);
      // The production engine reports ids in index-scan order; compare
      // as sets.
      std::sort(got.subscriptions.begin(), got.subscriptions.end());
      if (got.subscriptions != want.subscriptions) {
        return "match subscription set mismatch: " +
               describeIds(got.subscriptions, want.subscriptions);
      }
      if (got.proxyCounts != want.proxyCounts) {
        return std::string("match proxyCounts mismatch");
      }
    }
    if (prod.size() != ref.size()) {
      std::ostringstream os;
      os << "live-count mismatch: got " << prod.size() << " want "
         << ref.size();
      return os.str();
    }
    if (step % kInvariantEvery == 0) prod.checkInvariants();
    return std::string();
  });
}

// ----------------------------------------------------------- covering --

namespace {

/// Canonical view of a member set: (proxy, normalized conjuncts) rows,
/// sorted, so production and reference member order is irrelevant.
std::vector<std::pair<ProxyId, std::vector<Predicate>>> canonicalMembers(
    const std::vector<Subscription>& members) {
  std::vector<std::pair<ProxyId, std::vector<Predicate>>> rows;
  rows.reserve(members.size());
  for (const Subscription& m : members) {
    rows.emplace_back(m.proxy, normalizeConjuncts(m.conjuncts));
  }
  auto predKey = [](const Predicate& p) {
    return (static_cast<std::uint64_t>(p.kind) << 32) | p.value;
  };
  std::sort(rows.begin(), rows.end(), [&](const auto& a, const auto& b) {
    // pscd-lint: allow(float-compare) comparator tie-break on exact values
    if (a.first != b.first) return a.first < b.first;
    return std::lexicographical_compare(
        a.second.begin(), a.second.end(), b.second.begin(), b.second.end(),
        [&](const Predicate& x, const Predicate& y) {
          return predKey(x) < predKey(y);
        });
  });
  return rows;
}

}  // namespace

LockstepReport runCoveringLockstep(const CoveringLockstepConfig& config) {
  Rng rng(config.seed);
  CoveringSet prod;
  ReferenceCoveringSet ref;

  auto randomSubscription = [&] {
    Subscription sub;
    sub.proxy = static_cast<ProxyId>(rng.uniformInt(4));
    const std::uint64_t n = 1 + rng.uniformInt(3);
    for (std::uint64_t i = 0; i < n; ++i) {
      Predicate p;
      switch (rng.uniformInt(3)) {
        case 0:
          p.kind = Predicate::Kind::kPageIdEq;
          p.value = static_cast<std::uint32_t>(rng.uniformInt(2));
          break;
        case 1:
          p.kind = Predicate::Kind::kCategoryEq;
          p.value = static_cast<std::uint32_t>(
              rng.uniformInt(config.numCategories));
          break;
        default:
          p.kind = Predicate::Kind::kKeywordContains;
          p.value = static_cast<std::uint32_t>(
              rng.uniformInt(config.numKeywords));
          break;
      }
      sub.conjuncts.push_back(p);
    }
    return sub;
  };

  return runSteps(config.seed, config.steps, [&](std::size_t step) {
    if (step == config.sabotageStep && config.sabotage) {
      config.sabotage(prod);
    }
    const double roll = rng.uniform();
    if (roll < 0.55) {
      const Subscription sub = randomSubscription();
      const bool got = prod.add(sub);
      const bool want = ref.add(sub);
      if (got != want) {
        return "add(" + pscd::toString(sub) + ") mismatch: got " +
               (got ? "extended" : "absorbed") + " want " +
               (want ? "extended" : "absorbed");
      }
    } else if (roll < 0.80) {
      const Subscription sub = randomSubscription();
      const bool got = prod.isCovered(sub);
      const bool want = ref.isCovered(sub);
      if (got != want) {
        return "isCovered(" + pscd::toString(sub) + ") mismatch";
      }
    } else {
      ContentAttributes attrs;
      attrs.page = static_cast<PageId>(rng.uniformInt(2));
      attrs.category =
          static_cast<std::uint32_t>(rng.uniformInt(config.numCategories));
      const std::uint64_t nkw = rng.uniformInt(4);
      for (std::uint64_t i = 0; i < nkw; ++i) {
        attrs.keywords.push_back(
            static_cast<std::uint32_t>(rng.uniformInt(config.numKeywords)));
      }
      if (prod.matches(attrs) != ref.matches(attrs)) {
        return std::string("matches(attrs) mismatch");
      }
    }
    if (prod.size() != ref.size()) {
      std::ostringstream os;
      os << "frontier size mismatch: got " << prod.size() << " want "
         << ref.size();
      return os.str();
    }
    if (canonicalMembers(prod.members()) != canonicalMembers(ref.members())) {
      return std::string("frontier member sets differ");
    }
    return std::string();
  });
}

// -------------------------------------------------------------- cache --

LockstepReport runCacheLockstep(const CacheLockstepConfig& config) {
  Rng rng(config.seed);
  auto prod = config.makeProduction();
  auto ref = config.makeReference();

  struct PageState {
    Bytes size = 1;
    std::uint32_t nextVersion = 0;
    std::uint32_t subCount = 0;
  };
  std::vector<PageState> pages(config.numPages);
  const Bytes sizeSpan = config.maxPageSize - config.minPageSize + 1;
  for (PageState& p : pages) {
    p.size = config.minPageSize + rng.uniformInt(sizeSpan);
    // A quarter of the pages have no local subscribers: they are never
    // pushed and exercise the subCount==0 corners of the value formulas.
    p.subCount = rng.uniform() < 0.25
                     ? 0
                     : 1 + static_cast<std::uint32_t>(rng.uniformInt(6));
  }
  pages.front().subCount = 1;  // at least one pushable page

  SimTime now = 0.0;

  return runSteps(config.seed, config.steps, [&](std::size_t step) {
    if (step == config.sabotageStep && config.sabotage) {
      config.sabotage(*prod);
    }
    now += rng.exponential(1.0);
    const bool doPush =
        prod->pushCapable() && rng.uniform() < config.pushProbability;
    PageId page = static_cast<PageId>(rng.uniformInt(config.numPages));
    std::ostringstream os;
    if (doPush) {
      while (pages[page].subCount == 0) {
        page = static_cast<PageId>(rng.uniformInt(config.numPages));
      }
      PageState& state = pages[page];
      if (state.nextVersion > 0 && rng.uniform() < 0.3) {
        // A modified version may change the page's size.
        state.size = config.minPageSize + rng.uniformInt(sizeSpan);
      }
      PushContext ctx;
      ctx.page = page;
      ctx.version = state.nextVersion++;
      ctx.size = state.size;
      ctx.subCount = state.subCount;
      ctx.now = now;
      const PushOutcome got = prod->onPush(ctx);
      const PushOutcome want = ref->onPush(ctx);
      if (got.stored != want.stored) {
        os << "onPush(page=" << page << " v=" << ctx.version
           << " size=" << ctx.size << " s=" << ctx.subCount
           << ") stored mismatch: got " << got.stored << " want "
           << want.stored;
        return os.str();
      }
    } else {
      const PageState& state = pages[page];
      RequestContext ctx;
      ctx.page = page;
      ctx.latestVersion =
          state.nextVersion > 0 ? state.nextVersion - 1 : 0;
      ctx.size = state.size;
      ctx.subCount = state.subCount;
      ctx.now = now;
      const RequestOutcome got = prod->onRequest(ctx);
      const RequestOutcome want = ref->onRequest(ctx);
      if (got.hit != want.hit || got.stale != want.stale ||
          got.storedAfterMiss != want.storedAfterMiss) {
        os << "onRequest(page=" << page << " v=" << ctx.latestVersion
           << " size=" << ctx.size << ") outcome mismatch: got {hit="
           << got.hit << " stale=" << got.stale << " stored="
           << got.storedAfterMiss << "} want {hit=" << want.hit
           << " stale=" << want.stale << " stored=" << want.storedAfterMiss
           << "}";
        return os.str();
      }
    }
    if (prod->usedBytes() != ref->usedBytes()) {
      os << "usedBytes mismatch: got " << prod->usedBytes() << " want "
         << ref->usedBytes();
      return os.str();
    }
    if (step % kInvariantEvery == 0) prod->checkInvariants();
    return std::string();
  });
}

std::vector<LockstepReport> runCacheLockstepBatch(
    const std::vector<CacheLockstepConfig>& configs, unsigned jobs) {
  // Each run writes into a slot fixed at batch-build time, so the
  // output order (and every report's seed/step coordinates) is exactly
  // what a serial loop over `configs` would produce.
  std::vector<LockstepReport> reports(configs.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    tasks.push_back([&configs, &reports, i] {
      reports[i] = runCacheLockstep(configs[i]);
    });
  }
  if (configs.size() <= 1 || resolveJobs(jobs) <= 1) {
    runAll(nullptr, std::move(tasks));
  } else {
    ThreadPool pool(jobs);
    runAll(&pool, std::move(tasks));
  }
  return reports;
}

// ------------------------------------------------------ shortest paths --

namespace {

Graph randomOverlay(Rng& rng, const PathsLockstepConfig& config) {
  const std::uint32_t n =
      config.minNodes +
      static_cast<std::uint32_t>(
          rng.uniformInt(config.maxNodes - config.minNodes + 1));
  Graph g(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (rng.bernoulli(config.edgeProbability)) {
        g.addEdge(a, b, rng.uniform(0.1, 10.0));
      }
    }
  }
  return g;
}

bool sameDistance(double a, double b) {
  if (std::isinf(a) || std::isinf(b)) return std::isinf(a) && std::isinf(b);
  return std::abs(a - b) <= 1e-9 * (1.0 + std::max(std::abs(a), std::abs(b)));
}

}  // namespace

LockstepReport runPathsLockstep(const PathsLockstepConfig& config) {
  Rng rng(config.seed);
  Graph g = randomOverlay(rng, config);

  return runSteps(config.seed, config.steps, [&](std::size_t step) {
    if (step > 0 && step % config.graphEvery == 0) {
      g = randomOverlay(rng, config);
    }
    const NodeId src = static_cast<NodeId>(rng.uniformInt(g.numNodes()));
    std::vector<double> dist = shortestPaths(g, src);
    if (step == config.sabotageStep && config.sabotage) {
      config.sabotage(dist);
    }
    const std::vector<double> want = bellmanFordPaths(g, src);
    if (dist.size() != want.size()) {
      return std::string("distance vector size mismatch");
    }
    for (NodeId v = 0; v < dist.size(); ++v) {
      if (!sameDistance(dist[v], want[v])) {
        std::ostringstream os;
        os << "distance to node " << v << " (src=" << src
           << ") mismatch: got " << dist[v] << " want " << want[v];
        return os.str();
      }
    }
    checkShortestPathTree(g, src, dist);
    return std::string();
  });
}

}  // namespace pscd
