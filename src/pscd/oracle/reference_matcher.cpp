#include "pscd/oracle/reference_matcher.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace pscd {

SubscriptionId ReferenceMatcher::addSubscription(Subscription sub) {
  if (sub.conjuncts.empty()) {
    throw std::invalid_argument("addSubscription: empty conjunction");
  }
  const SubscriptionId id = subs_.size();
  subs_.push_back(std::move(sub));
  ++liveCount_;
  return id;
}

bool ReferenceMatcher::removeSubscription(SubscriptionId id) {
  if (id >= subs_.size() || !subs_[id].has_value()) return false;
  subs_[id].reset();
  --liveCount_;
  return true;
}

MatchResult ReferenceMatcher::match(const ContentAttributes& attrs) const {
  MatchResult result;
  // Ordered map so proxyCounts comes out sorted by proxy, matching the
  // production engine's post-sorted aggregation.
  std::map<ProxyId, std::uint32_t> counts;
  for (SubscriptionId id = 0; id < subs_.size(); ++id) {
    const auto& sub = subs_[id];
    if (!sub.has_value()) continue;
    if (sub->matches(attrs)) {
      result.subscriptions.push_back(id);
      ++counts[sub->proxy];
    }
  }
  result.proxyCounts.assign(counts.begin(), counts.end());
  return result;
}

}  // namespace pscd
