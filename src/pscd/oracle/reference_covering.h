// Naive reference model of the covering relation and the
// covering-minimal frontier: `coversNaive` tests conjunct containment
// with an O(n*m) double loop over the *unnormalized* inputs, and
// ReferenceCoveringSet maintains its frontier by re-running the pairwise
// test against every member. The production CoveringSet must agree on
// add/isCovered/matches outcomes and on the surviving member set.
#pragma once

#include <vector>

#include "pscd/pubsub/subscription.h"

namespace pscd {

/// True when every conjunct of `a` also appears in `b` (and `a` is
/// nonempty): fewer constraints match more events. Quadratic on purpose.
bool coversNaive(const Subscription& a, const Subscription& b);

class ReferenceCoveringSet {
 public:
  /// Mirrors CoveringSet::add: false when an existing member already
  /// covers `sub`, otherwise evicts members `sub` covers and keeps it.
  bool add(Subscription sub);

  bool isCovered(const Subscription& sub) const;

  bool matches(const ContentAttributes& attrs) const;

  std::size_t size() const { return members_.size(); }
  const std::vector<Subscription>& members() const { return members_; }

 private:
  std::vector<Subscription> members_;  // conjuncts kept as given
};

}  // namespace pscd
