// Byte-capacity page store ordered by a per-page value, the common
// substrate of every replacement strategy in the paper: GD* evicts the
// least-valued pages until a new page fits; SUB-style admission evicts
// only pages whose value is strictly below the incoming page's value and
// otherwise refuses the insert.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "pscd/cache/entry.h"
#include "pscd/util/types.h"

namespace pscd {

/// Value-ordered cache. Mutations that affect ordering go through
/// updateValue(); entries are exposed read-only.
class ValueCache {
 public:
  struct StoredEntry : CacheEntry {
    double value = 0.0;
  };

  explicit ValueCache(Bytes capacity);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free() const { return capacity_ - used_; }
  std::size_t size() const { return entries_.size(); }

  /// Adjusts the capacity (used by the adaptive dual-cache partitions).
  /// The new capacity must not be below the currently used bytes.
  void setCapacity(Bytes capacity);

  bool contains(PageId page) const { return entries_.contains(page); }

  /// nullptr when the page is not cached.
  const StoredEntry* find(PageId page) const;

  /// GD*-style eviction: removes lowest-valued entries until `size`
  /// bytes are free, in eviction order. Returns std::nullopt (and evicts
  /// nothing) when size exceeds the capacity.
  std::optional<std::vector<StoredEntry>> evictFor(Bytes size);

  /// SUB-style admission check: evicts entries with value strictly below
  /// `value` (lowest first) until `size` bytes are free. If even
  /// evicting all such candidates cannot free enough space, evicts
  /// nothing and returns std::nullopt.
  std::optional<std::vector<StoredEntry>> tryEvictLowerThan(double value,
                                                            Bytes size);

  /// Inserts without evicting; requires free() >= entry.size and the
  /// page not already present.
  void insertNoEvict(const CacheEntry& entry, double value);

  /// Removes a page, returning its entry if it was present.
  std::optional<StoredEntry> erase(PageId page);

  /// Re-keys an existing page's ordering value.
  void updateValue(PageId page, double value);

  /// Bumps the access bookkeeping of a cached page (accessCount +1,
  /// lastAccess = now). Ordering is unchanged; call updateValue() after
  /// recomputing the value. Returns the updated entry.
  const StoredEntry& recordAccess(PageId page, SimTime now);

  /// Smallest value currently cached; requires a non-empty cache.
  double minValue() const;

  /// Applies fn to every entry in ascending (value, page) order — a
  /// deterministic order, so callers may fold into output-visible state.
  /// fn must not mutate the cache.
  void forEach(const std::function<void(const StoredEntry&)>& fn) const;

  /// Applies fn to every entry in ascending value order; stops early when
  /// fn returns false.
  void forEachByValue(const std::function<bool(const StoredEntry&)>& fn) const;

  /// Test hook: validates the internal index against the entry map.
  void checkInvariants() const;

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  using Key = std::pair<double, PageId>;

  StoredEntry removeLowest(std::set<Key>::iterator it);

  Bytes capacity_;
  Bytes used_ = 0;
  std::unordered_map<PageId, StoredEntry> entries_;
  std::set<Key> index_;  // (value, page), ascending
};

}  // namespace pscd
