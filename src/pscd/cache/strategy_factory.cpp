#include "pscd/cache/strategy_factory.h"

#include <stdexcept>

#include "pscd/cache/dual_cache.h"
#include "pscd/cache/dual_methods.h"
#include "pscd/cache/gds_family.h"
#include "pscd/cache/lru_strategy.h"
#include "pscd/cache/sub_strategy.h"

namespace pscd {

namespace {
std::unique_ptr<DistributionStrategy> makeDualCache(PartitionMode mode,
                                                    const StrategyParams& p) {
  DualCacheConfig config;
  config.mode = mode;
  config.initialPcFraction = p.dcInitialPcFraction;
  config.minPcFraction = p.dcMinPcFraction;
  config.maxPcFraction = p.dcMaxPcFraction;
  config.beta = p.beta;
  return std::make_unique<DualCacheStrategy>(p.capacity, p.fetchCost, config);
}
}  // namespace

std::unique_ptr<DistributionStrategy> makeStrategy(StrategyKind kind,
                                                   const StrategyParams& p) {
  switch (kind) {
    case StrategyKind::kGDStar:
      return std::make_unique<GdsFamilyStrategy>(p.capacity, p.fetchCost,
                                                 gdStarConfig(p.beta));
    case StrategyKind::kSUB:
      return std::make_unique<SubStrategy>(p.capacity, p.fetchCost);
    case StrategyKind::kSG1:
      return std::make_unique<GdsFamilyStrategy>(p.capacity, p.fetchCost,
                                                 sg1Config(p.beta));
    case StrategyKind::kSG2:
      return std::make_unique<GdsFamilyStrategy>(p.capacity, p.fetchCost,
                                                 sg2Config(p.beta));
    case StrategyKind::kSR:
      return std::make_unique<GdsFamilyStrategy>(p.capacity, p.fetchCost,
                                                 srConfig());
    case StrategyKind::kDM:
      return std::make_unique<DualMethodsStrategy>(p.capacity, p.fetchCost,
                                                   p.beta);
    case StrategyKind::kDCFP:
      return makeDualCache(PartitionMode::kFixed, p);
    case StrategyKind::kDCAP:
      return makeDualCache(PartitionMode::kAdaptive, p);
    case StrategyKind::kDCLAP:
      return makeDualCache(PartitionMode::kLimitedAdaptive, p);
    case StrategyKind::kLRU:
      return std::make_unique<LruStrategy>(p.capacity);
    case StrategyKind::kGDS:
      return std::make_unique<GdsFamilyStrategy>(p.capacity, p.fetchCost,
                                                 gdsConfig());
    case StrategyKind::kLFUDA:
      return std::make_unique<GdsFamilyStrategy>(p.capacity, p.fetchCost,
                                                 lfuDaConfig());
  }
  throw std::invalid_argument("makeStrategy: unknown kind");
}

std::string_view strategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kGDStar:
      return "GD*";
    case StrategyKind::kSUB:
      return "SUB";
    case StrategyKind::kSG1:
      return "SG1";
    case StrategyKind::kSG2:
      return "SG2";
    case StrategyKind::kSR:
      return "SR";
    case StrategyKind::kDM:
      return "DM";
    case StrategyKind::kDCFP:
      return "DC-FP";
    case StrategyKind::kDCAP:
      return "DC-AP";
    case StrategyKind::kDCLAP:
      return "DC-LAP";
    case StrategyKind::kLRU:
      return "LRU";
    case StrategyKind::kGDS:
      return "GDS";
    case StrategyKind::kLFUDA:
      return "LFU-DA";
  }
  return "?";
}

StrategyKind parseStrategyKind(std::string_view name) {
  for (const StrategyKind kind :
       {StrategyKind::kGDStar, StrategyKind::kSUB, StrategyKind::kSG1,
        StrategyKind::kSG2, StrategyKind::kSR, StrategyKind::kDM,
        StrategyKind::kDCFP, StrategyKind::kDCAP, StrategyKind::kDCLAP,
        StrategyKind::kLRU, StrategyKind::kGDS, StrategyKind::kLFUDA}) {
    if (strategyName(kind) == name) return kind;
  }
  throw std::invalid_argument("parseStrategyKind: unknown strategy name");
}

}  // namespace pscd
