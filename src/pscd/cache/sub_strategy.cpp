#include "pscd/cache/sub_strategy.h"

#include <stdexcept>

#include "pscd/util/hot.h"

namespace pscd {

SubStrategy::SubStrategy(Bytes capacity, double fetchCost)
    : fetchCost_(fetchCost), cache_(capacity) {
  if (fetchCost <= 0) {
    throw std::invalid_argument("SubStrategy: fetchCost must be > 0");
  }
}

PSCD_HOT double SubStrategy::value(std::uint32_t subCount, Bytes size) const {
  return static_cast<double>(subCount) * fetchCost_ /
         static_cast<double>(size);
}

PSCD_HOT PushOutcome SubStrategy::onPush(const PushContext& ctx) {
  CacheEntry entry;
  if (const auto prior = cache_.erase(ctx.page)) entry = *prior;
  entry.page = ctx.page;
  entry.version = ctx.version;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  // SUB may decide not to store the page when the candidate pages
  // (those with smaller value) cannot free enough space.
  const double v = value(ctx.subCount, ctx.size);
  if (const auto evicted = cache_.tryEvictLowerThan(v, ctx.size)) {
    cache_.insertNoEvict(entry, v);
    return {true};
  }
  return {false};
}

PSCD_HOT RequestOutcome SubStrategy::onRequest(const RequestContext& ctx) {
  RequestOutcome out;
  if (const auto* cached = cache_.find(ctx.page)) {
    if (cached->version == ctx.latestVersion) {
      cache_.recordAccess(ctx.page, ctx.now);  // bookkeeping only
      out.hit = true;
      return out;
    }
    // Stale copy: miss. The copy is left in place; the next push of the
    // page will refresh it (SUB never reacts to accesses).
    out.stale = true;
  }
  // Push-time-only strategy: fetch and forward without caching.
  return out;
}

}  // namespace pscd
