// DM — Dual-Methods (section 3.3): a single shared cache in which the
// push-time placement module runs SUB (eviction ordered by the
// subscription value) and the access-time module runs classic GD*
// (eviction ordered by the access value). Each cached page therefore
// carries two values, and each module considers only its own ordering —
// which is exactly the overlap problem that motivates the Dual-Caches
// schemes.
#pragma once

#include <set>
#include <string>
#include <unordered_map>

#include "pscd/cache/entry.h"
#include "pscd/cache/strategy.h"

namespace pscd {

class DualMethodsStrategy final : public DistributionStrategy {
 public:
  DualMethodsStrategy(Bytes capacity, double fetchCost, double beta);

  bool pushCapable() const override { return true; }
  PushOutcome onPush(const PushContext& ctx) override;
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    const auto it = entries_.find(page);
    return it != entries_.end() ? std::optional<Version>(it->second.version)
                                : std::nullopt;
  }
  Bytes usedBytes() const override { return used_; }
  Bytes capacityBytes() const override { return capacity_; }
  std::string name() const override { return "DM"; }
  void checkInvariants() const override;

  std::size_t size() const { return entries_.size(); }
  double inflation() const { return inflation_; }

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  struct DmEntry : CacheEntry {
    double subValue = 0.0;  // SUB ordering (push module)
    double gdValue = 0.0;   // GD* ordering (access module)
  };
  using Key = std::pair<double, PageId>;

  double subValue(std::uint32_t subCount, Bytes size) const;
  double gdValue(std::uint32_t accessCount, Bytes size) const;
  void removeEntry(std::unordered_map<PageId, DmEntry>::iterator it);
  void store(const DmEntry& entry);

  Bytes capacity_;
  Bytes used_ = 0;
  double fetchCost_;
  double beta_;
  double inflation_ = 0.0;  // L of the access-time GD* module
  std::unordered_map<PageId, DmEntry> entries_;
  std::set<Key> subIndex_;
  std::set<Key> gdIndex_;
};

}  // namespace pscd
