#include "pscd/cache/dual_methods.h"

#include <cmath>
#include <stdexcept>

#include "pscd/util/check.h"
#include "pscd/util/hot.h"

namespace pscd {

DualMethodsStrategy::DualMethodsStrategy(Bytes capacity, double fetchCost,
                                         double beta)
    : capacity_(capacity), fetchCost_(fetchCost), beta_(beta) {
  if (fetchCost <= 0 || beta <= 0) {
    throw std::invalid_argument("DualMethodsStrategy: bad fetchCost/beta");
  }
}

PSCD_HOT double DualMethodsStrategy::subValue(std::uint32_t subCount,
                                              Bytes size) const {
  return static_cast<double>(subCount) * fetchCost_ /
         static_cast<double>(size);
}

PSCD_HOT double DualMethodsStrategy::gdValue(std::uint32_t accessCount,
                                             Bytes size) const {
  const double utility =
      static_cast<double>(accessCount) * fetchCost_ / static_cast<double>(size);
  return inflation_ + std::pow(utility, 1.0 / beta_);
}

PSCD_HOT void DualMethodsStrategy::removeEntry(
    std::unordered_map<PageId, DmEntry>::iterator it) {
  subIndex_.erase({it->second.subValue, it->first});
  gdIndex_.erase({it->second.gdValue, it->first});
  used_ -= it->second.size;
  entries_.erase(it);
}

PSCD_HOT void DualMethodsStrategy::store(const DmEntry& entry) {
  PSCD_DCHECK_LE(used_ + entry.size, capacity_)
      << "DualMethodsStrategy::store without room for page " << entry.page;
  entries_.emplace(entry.page, entry);
  subIndex_.emplace(entry.subValue, entry.page);
  gdIndex_.emplace(entry.gdValue, entry.page);
  used_ += entry.size;
}

PSCD_HOT PushOutcome DualMethodsStrategy::onPush(const PushContext& ctx) {
  DmEntry entry;
  if (const auto it = entries_.find(ctx.page); it != entries_.end()) {
    entry = it->second;  // refresh in place, keep access history
    removeEntry(it);
  }
  entry.page = ctx.page;
  entry.version = ctx.version;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  entry.subValue = subValue(ctx.subCount, ctx.size);
  entry.gdValue = gdValue(entry.accessCount, ctx.size);

  // SUB admission over the subscription ordering.
  Bytes reclaimable = capacity_ - used_;
  bool feasible = reclaimable >= ctx.size;
  for (auto it = subIndex_.begin();
       !feasible && it != subIndex_.end() && it->first < entry.subValue;
       ++it) {
    reclaimable += entries_.at(it->second).size;
    feasible = reclaimable >= ctx.size;
  }
  if (!feasible) return {false};
  while (capacity_ - used_ < ctx.size) {
    const auto low = subIndex_.begin();
    PSCD_DCHECK(low != subIndex_.end() && low->first < entry.subValue)
        << "DualMethodsStrategy: SUB admission evicting non-candidate";
    removeEntry(entries_.find(low->second));
  }
  store(entry);
  return {true};
}

PSCD_HOT RequestOutcome DualMethodsStrategy::onRequest(
    const RequestContext& ctx) {
  RequestOutcome out;
  DmEntry entry;
  if (const auto it = entries_.find(ctx.page); it != entries_.end()) {
    if (it->second.version == ctx.latestVersion) {
      // Hit: the access module re-evaluates under the current L. Re-key
      // the GD* index by node extraction — the hit path runs per
      // request, and erase+emplace would churn a tree node each time.
      auto node = gdIndex_.extract({it->second.gdValue, ctx.page});
      PSCD_DCHECK(!node.empty())
          << "DualMethodsStrategy: GD* index missing page " << ctx.page;
      ++it->second.accessCount;
      it->second.lastAccess = ctx.now;
      it->second.gdValue = gdValue(it->second.accessCount, it->second.size);
      node.value().first = it->second.gdValue;
      gdIndex_.insert(std::move(node));
      out.hit = true;
      return out;
    }
    out.stale = true;
    entry = it->second;
    removeEntry(it);
  }
  // Miss: classic GD* placement over the access ordering (always admit).
  if (ctx.size > capacity_) return out;
  while (capacity_ - used_ < ctx.size) {
    const auto low = gdIndex_.begin();
    inflation_ = low->first;
    removeEntry(entries_.find(low->second));
  }
  entry.page = ctx.page;
  entry.version = ctx.latestVersion;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  ++entry.accessCount;
  entry.lastAccess = ctx.now;
  entry.subValue = subValue(ctx.subCount, ctx.size);
  entry.gdValue = gdValue(entry.accessCount, ctx.size);
  store(entry);
  out.storedAfterMiss = true;
  return out;
}

void DualMethodsStrategy::checkInvariants() const {
  PSCD_CHECK_EQ(entries_.size(), subIndex_.size())
      << "DualMethodsStrategy: SUB index size mismatch";
  PSCD_CHECK_EQ(entries_.size(), gdIndex_.size())
      << "DualMethodsStrategy: GD* index size mismatch";
  Bytes total = 0;
  // pscd-lint: allow(unordered-iter) per-entry assertions + commutative sum
  for (const auto& [page, e] : entries_) {
    PSCD_CHECK_EQ(e.page, page) << "DualMethodsStrategy: entry id mismatch";
    PSCD_CHECK(std::isfinite(e.subValue) && std::isfinite(e.gdValue))
        << "DualMethodsStrategy: non-finite value for page " << page;
    PSCD_CHECK(subIndex_.contains({e.subValue, page}))
        << "DualMethodsStrategy: SUB index missing page " << page;
    PSCD_CHECK(gdIndex_.contains({e.gdValue, page}))
        << "DualMethodsStrategy: GD* index missing page " << page;
    total += e.size;
  }
  PSCD_CHECK_EQ(total, used_) << "DualMethodsStrategy: byte accounting drift";
  PSCD_CHECK_LE(used_, capacity_) << "DualMethodsStrategy: over capacity";
  PSCD_CHECK(std::isfinite(inflation_) && inflation_ >= 0.0)
      << "DualMethodsStrategy: bad inflation value L";
}

}  // namespace pscd
