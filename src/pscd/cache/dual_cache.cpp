#include "pscd/cache/dual_cache.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "pscd/util/check.h"

namespace pscd {

namespace {
Bytes pcBytesFor(double fraction, Bytes total) {
  return static_cast<Bytes>(fraction * static_cast<double>(total) + 0.5);
}
}  // namespace

DualCacheStrategy::DualCacheStrategy(Bytes capacity, double fetchCost,
                                     const DualCacheConfig& config)
    : config_(config),
      totalCapacity_(capacity),
      fetchCost_(fetchCost),
      pc_(pcBytesFor(config.initialPcFraction, capacity)),
      ac_(capacity - pcBytesFor(config.initialPcFraction, capacity)) {
  if (fetchCost <= 0 || config.beta <= 0) {
    throw std::invalid_argument("DualCacheStrategy: bad fetchCost/beta");
  }
  if (config.initialPcFraction < 0 || config.initialPcFraction > 1 ||
      config.minPcFraction < 0 || config.maxPcFraction > 1 ||
      config.minPcFraction > config.maxPcFraction) {
    throw std::invalid_argument("DualCacheStrategy: bad fractions");
  }
  if (config.mode == PartitionMode::kLimitedAdaptive &&
      (config.initialPcFraction < config.minPcFraction ||
       config.initialPcFraction > config.maxPcFraction)) {
    throw std::invalid_argument(
        "DualCacheStrategy: initial fraction outside LAP bounds");
  }
}

std::string DualCacheStrategy::name() const {
  switch (config_.mode) {
    case PartitionMode::kFixed:
      return "DC-FP";
    case PartitionMode::kAdaptive:
      return "DC-AP";
    case PartitionMode::kLimitedAdaptive:
      return "DC-LAP";
  }
  return "DC";
}

double DualCacheStrategy::subValue(std::uint32_t subCount, Bytes size) const {
  return static_cast<double>(subCount) * fetchCost_ /
         static_cast<double>(size);
}

double DualCacheStrategy::gdValue(std::uint32_t accessCount,
                                  Bytes size) const {
  const double utility =
      static_cast<double>(accessCount) * fetchCost_ / static_cast<double>(size);
  return inflation_ + std::pow(utility, 1.0 / config_.beta);
}

bool DualCacheStrategy::acForceInsert(CacheEntry entry, SimTime now) {
  const auto evicted = ac_.evictFor(entry.size);
  if (!evicted) return false;
  if (!evicted->empty()) {
    inflation_ = evicted->back().value;
    lastAcReplacement_ = now;
  }
  ac_.insertNoEvict(entry, gdValue(entry.accessCount, entry.size));
  return true;
}

bool DualCacheStrategy::pcInsert(const CacheEntry& entry) {
  const double v = subValue(entry.subCount, entry.size);
  if (const auto evicted = pc_.tryEvictLowerThan(v, entry.size)) {
    pc_.insertNoEvict(entry, v);
    return true;
  }
  return false;
}

bool DualCacheStrategy::claimFromAccessCache(Bytes size) {
  // LAP bound: PC capacity may grow at most to maxPcFraction of the
  // total. (AP is unbounded.)
  Bytes claimLimit = totalCapacity_ - pc_.capacity();
  if (config_.mode == PartitionMode::kLimitedAdaptive) {
    const Bytes maxPc = pcBytesFor(config_.maxPcFraction, totalCapacity_);
    claimLimit = maxPc > pc_.capacity() ? maxPc - pc_.capacity() : 0;
  }
  // Pages in AC not referenced since the last replacement in AC are
  // assumed less important than the incoming page; claim the least
  // valuable ones first. The claim set is computed up front so an
  // infeasible claim has no side effects.
  std::vector<PageId> claim;
  Bytes claimed = 0;
  ac_.forEachByValue([&](const ValueCache::StoredEntry& e) {
    if (pc_.free() + claimed >= size) return false;
    if (e.lastAccess <= lastAcReplacement_ &&
        claimed + e.size <= claimLimit) {
      claim.push_back(e.page);
      claimed += e.size;
    }
    return true;
  });
  if (pc_.free() + claimed < size) return false;
  for (const PageId page : claim) {
    const auto victim = ac_.erase(page);
    ac_.setCapacity(ac_.capacity() - victim->size);
    pc_.setCapacity(pc_.capacity() + victim->size);
  }
  return true;
}

bool DualCacheStrategy::shiftBudgetToAc(Bytes size) {
  if (config_.mode == PartitionMode::kFixed) return false;
  if (config_.mode == PartitionMode::kLimitedAdaptive) {
    const Bytes minPc = pcBytesFor(config_.minPcFraction, totalCapacity_);
    if (pc_.capacity() < minPc + size) return false;
  }
  if (pc_.capacity() < size) return false;
  pc_.setCapacity(pc_.capacity() - size);
  ac_.setCapacity(ac_.capacity() + size);
  return true;
}

PushOutcome DualCacheStrategy::onPush(const PushContext& ctx) {
  // A new version of a page already under access-time management stays
  // in AC and is refreshed there.
  if (ac_.contains(ctx.page)) {
    CacheEntry entry = *ac_.erase(ctx.page);
    entry.version = ctx.version;
    entry.size = ctx.size;
    entry.subCount = ctx.subCount;
    return {acForceInsert(entry, ctx.now)};
  }
  CacheEntry entry;
  if (const auto prior = pc_.erase(ctx.page)) entry = *prior;
  entry.page = ctx.page;
  entry.version = ctx.version;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  if (pcInsert(entry)) return {true};
  // "Placing in DC-AP": claim idle AC storage for the push cache.
  if (config_.mode != PartitionMode::kFixed &&
      claimFromAccessCache(ctx.size)) {
    pc_.insertNoEvict(entry, subValue(entry.subCount, entry.size));
    return {true};
  }
  return {false};
}

RequestOutcome DualCacheStrategy::onRequest(const RequestContext& ctx) {
  RequestOutcome out;

  if (const auto* inPc = pc_.find(ctx.page)) {
    if (inPc->version == ctx.latestVersion) {
      // First access of a pushed page: henceforth evaluate it by access
      // pattern. AP/LAP relabel the storage (budget shift); FP (or a
      // bound violation) moves the page, possibly evicting in AC.
      out.hit = true;
      CacheEntry entry = *pc_.erase(ctx.page);
      ++entry.accessCount;
      entry.lastAccess = ctx.now;
      if (shiftBudgetToAc(entry.size)) {
        ac_.insertNoEvict(entry, gdValue(entry.accessCount, entry.size));
      } else {
        acForceInsert(entry, ctx.now);  // page dropped if it cannot fit
      }
      return out;
    }
    // Stale pushed copy: miss; refetch and hand the fresh copy to the
    // access module (the user has now shown interest in it).
    out.stale = true;
    CacheEntry entry = *pc_.erase(ctx.page);
    entry.version = ctx.latestVersion;
    entry.size = ctx.size;
    ++entry.accessCount;
    entry.lastAccess = ctx.now;
    out.storedAfterMiss = acForceInsert(entry, ctx.now);
    return out;
  }

  if (const auto* inAc = ac_.find(ctx.page)) {
    if (inAc->version == ctx.latestVersion) {
      const auto& entry = ac_.recordAccess(ctx.page, ctx.now);
      ac_.updateValue(ctx.page, gdValue(entry.accessCount, entry.size));
      out.hit = true;
      return out;
    }
    out.stale = true;
    CacheEntry entry = *ac_.erase(ctx.page);
    entry.version = ctx.latestVersion;
    entry.size = ctx.size;
    ++entry.accessCount;
    entry.lastAccess = ctx.now;
    out.storedAfterMiss = acForceInsert(entry, ctx.now);
    return out;
  }

  // Cold miss: classic GD* placement in AC.
  CacheEntry entry;
  entry.page = ctx.page;
  entry.version = ctx.latestVersion;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  entry.accessCount = 1;
  entry.lastAccess = ctx.now;
  out.storedAfterMiss = acForceInsert(entry, ctx.now);
  return out;
}

void DualCacheStrategy::checkInvariants() const {
  pc_.checkInvariants();
  ac_.checkInvariants();
  PSCD_CHECK_EQ(pc_.capacity() + ac_.capacity(), totalCapacity_)
      << "DualCacheStrategy: partition budgets do not sum to the total";
  if (config_.mode == PartitionMode::kFixed) {
    PSCD_CHECK_EQ(pc_.capacity(),
                  pcBytesFor(config_.initialPcFraction, totalCapacity_))
        << "DualCacheStrategy: fixed partition moved";
  }
  if (config_.mode == PartitionMode::kLimitedAdaptive) {
    PSCD_CHECK_GE(pc_.capacity(),
                  pcBytesFor(config_.minPcFraction, totalCapacity_))
        << "DualCacheStrategy: PC below the LAP lower bound";
    PSCD_CHECK_LE(pc_.capacity(),
                  pcBytesFor(config_.maxPcFraction, totalCapacity_))
        << "DualCacheStrategy: PC above the LAP upper bound";
  }
  PSCD_CHECK(std::isfinite(inflation_) && inflation_ >= 0.0)
      << "DualCacheStrategy: bad inflation value L";
  // A page must never be in both portions.
  pc_.forEach([&](const ValueCache::StoredEntry& e) {
    PSCD_CHECK(!ac_.contains(e.page))
        << "DualCacheStrategy: page " << e.page << " in both caches";
  });
}

}  // namespace pscd
