// Classic LRU web cache, provided as an extra access-time-only baseline
// for the ablation benches (the paper adopts GD* because it beats LRU,
// GDS and LFU-DA in Jin & Bestavros's study; bench_ablation_baselines
// re-checks that premise on our workload).
#pragma once

#include <list>
#include <string>
#include <unordered_map>

#include "pscd/cache/entry.h"
#include "pscd/cache/strategy.h"

namespace pscd {

class LruStrategy final : public DistributionStrategy {
 public:
  explicit LruStrategy(Bytes capacity);

  bool pushCapable() const override { return false; }
  PushOutcome onPush(const PushContext& ctx) override;
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    const auto it = map_.find(page);
    return it != map_.end() ? std::optional<Version>(it->second->version)
                            : std::nullopt;
  }
  Bytes usedBytes() const override { return used_; }
  Bytes capacityBytes() const override { return capacity_; }
  std::string name() const override { return "LRU"; }
  void checkInvariants() const override;

  std::size_t size() const { return map_.size(); }

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  void evictUntil(Bytes size);

  Bytes capacity_;
  Bytes used_ = 0;
  std::list<CacheEntry> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<CacheEntry>::iterator> map_;
};

}  // namespace pscd
