// Clairvoyant upper bound (not in the paper): a Belady-style strategy
// that knows the proxy's full future request schedule. At any decision
// point a page's value is the reciprocal of the time until its next
// request for the *current* version; eviction removes the page whose
// next use is farthest away, and pushes are admitted exactly when the
// page will be requested again. No online strategy can beat it, so it
// bounds how much of SG2/SR's gap to 100% is closable at a given
// capacity (bench_ablation_oracle).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "pscd/cache/strategy.h"
#include "pscd/cache/value_cache.h"

namespace pscd {

/// Future request times of one proxy, per page, sorted ascending.
struct RequestSchedule {
  std::unordered_map<PageId, std::vector<SimTime>> times;
};

class OracleStrategy final : public DistributionStrategy {
 public:
  /// The schedule must contain every request this proxy will receive;
  /// requests must then be replayed in nondecreasing time order.
  OracleStrategy(Bytes capacity, RequestSchedule schedule);

  bool pushCapable() const override { return true; }
  PushOutcome onPush(const PushContext& ctx) override;
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    const auto* e = cache_.find(page);
    return e ? std::optional<Version>(e->version) : std::nullopt;
  }
  Bytes usedBytes() const override { return cache_.used(); }
  Bytes capacityBytes() const override { return cache_.capacity(); }
  std::string name() const override { return "ORACLE"; }
  void checkInvariants() const override { cache_.checkInvariants(); }

 private:
  /// Time of the next request of `page` strictly after `now`
  /// (+infinity when there is none).
  SimTime nextUse(PageId page, SimTime now) const;
  /// Value of caching the page now: 1 / (nextUse - now).
  double value(PageId page, SimTime now) const;
  /// Re-keys all cached pages whose next use has passed. The cache is
  /// small, so a full refresh per event is affordable and keeps the
  /// eviction order exact.
  void refreshValues(SimTime now);
  bool insert(const CacheEntry& entry, SimTime now);

  ValueCache cache_;
  RequestSchedule schedule_;
};

struct Workload;  // workload/workload.h

/// Builds one per-proxy schedule from a generated workload (helper for
/// driving OracleStrategy through the simulator's replay loop).
std::vector<RequestSchedule> buildRequestSchedules(const Workload& workload);

}  // namespace pscd
