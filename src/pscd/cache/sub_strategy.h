// SUB (section 3.2): push-time-only placement driven purely by
// subscription matching. Page value is V(p) = f_S(p) * c(p) / s(p)
// (eq. 2) where f_S is the number of matching subscriptions at the
// proxy. On a cache miss the requested page is fetched and forwarded to
// the user WITHOUT being cached locally.
#pragma once

#include <string>

#include "pscd/cache/strategy.h"
#include "pscd/cache/value_cache.h"

namespace pscd {

class SubStrategy final : public DistributionStrategy {
 public:
  SubStrategy(Bytes capacity, double fetchCost);

  bool pushCapable() const override { return true; }
  PushOutcome onPush(const PushContext& ctx) override;
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    const auto* e = cache_.find(page);
    return e ? std::optional<Version>(e->version) : std::nullopt;
  }
  Bytes usedBytes() const override { return cache_.used(); }
  Bytes capacityBytes() const override { return cache_.capacity(); }
  std::string name() const override { return "SUB"; }
  void checkInvariants() const override { cache_.checkInvariants(); }

  const ValueCache& cache() const { return cache_; }

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  double value(std::uint32_t subCount, Bytes size) const;

  double fetchCost_;
  ValueCache cache_;
};

}  // namespace pscd
