#include "pscd/cache/lru_strategy.h"

#include <stdexcept>

namespace pscd {

LruStrategy::LruStrategy(Bytes capacity) : capacity_(capacity) {}

PushOutcome LruStrategy::onPush(const PushContext&) { return {false}; }

void LruStrategy::evictUntil(Bytes size) {
  while (capacity_ - used_ < size) {
    const CacheEntry& victim = lru_.back();
    used_ -= victim.size;
    map_.erase(victim.page);
    lru_.pop_back();
  }
}

RequestOutcome LruStrategy::onRequest(const RequestContext& ctx) {
  RequestOutcome out;
  const auto it = map_.find(ctx.page);
  if (it != map_.end()) {
    if (it->second->version == ctx.latestVersion) {
      ++it->second->accessCount;
      it->second->lastAccess = ctx.now;
      lru_.splice(lru_.begin(), lru_, it->second);
      out.hit = true;
      return out;
    }
    // Stale: drop and refetch.
    out.stale = true;
    used_ -= it->second->size;
    lru_.erase(it->second);
    map_.erase(it);
  }
  if (ctx.size > capacity_) return out;
  evictUntil(ctx.size);
  CacheEntry entry;
  entry.page = ctx.page;
  entry.version = ctx.latestVersion;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  entry.accessCount = 1;
  entry.lastAccess = ctx.now;
  lru_.push_front(entry);
  map_[ctx.page] = lru_.begin();
  used_ += ctx.size;
  out.storedAfterMiss = true;
  return out;
}

void LruStrategy::checkInvariants() const {
  if (map_.size() != lru_.size()) {
    throw std::logic_error("LruStrategy: map/list size mismatch");
  }
  Bytes total = 0;
  for (const auto& e : lru_) total += e.size;
  if (total != used_) throw std::logic_error("LruStrategy: used mismatch");
  if (used_ > capacity_) throw std::logic_error("LruStrategy: over capacity");
}

}  // namespace pscd
