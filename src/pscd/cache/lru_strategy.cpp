#include "pscd/cache/lru_strategy.h"

#include <stdexcept>

#include "pscd/util/check.h"

namespace pscd {

LruStrategy::LruStrategy(Bytes capacity) : capacity_(capacity) {}

PushOutcome LruStrategy::onPush(const PushContext&) { return {false}; }

void LruStrategy::evictUntil(Bytes size) {
  while (capacity_ - used_ < size) {
    const CacheEntry& victim = lru_.back();
    used_ -= victim.size;
    map_.erase(victim.page);
    lru_.pop_back();
  }
}

RequestOutcome LruStrategy::onRequest(const RequestContext& ctx) {
  RequestOutcome out;
  const auto it = map_.find(ctx.page);
  if (it != map_.end()) {
    if (it->second->version == ctx.latestVersion) {
      ++it->second->accessCount;
      it->second->lastAccess = ctx.now;
      lru_.splice(lru_.begin(), lru_, it->second);
      out.hit = true;
      return out;
    }
    // Stale: drop and refetch.
    out.stale = true;
    used_ -= it->second->size;
    lru_.erase(it->second);
    map_.erase(it);
  }
  if (ctx.size > capacity_) return out;
  evictUntil(ctx.size);
  CacheEntry entry;
  entry.page = ctx.page;
  entry.version = ctx.latestVersion;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  entry.accessCount = 1;
  entry.lastAccess = ctx.now;
  lru_.push_front(entry);
  map_[ctx.page] = lru_.begin();
  used_ += ctx.size;
  out.storedAfterMiss = true;
  return out;
}

void LruStrategy::checkInvariants() const {
  PSCD_CHECK_EQ(map_.size(), lru_.size())
      << "LruStrategy: map and recency list disagree";
  Bytes total = 0;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const auto mapIt = map_.find(it->page);
    PSCD_CHECK(mapIt != map_.end() && mapIt->second == it)
        << "LruStrategy: map does not point at list node for page "
        << it->page;
    total += it->size;
  }
  PSCD_CHECK_EQ(total, used_) << "LruStrategy: byte accounting drifted";
  PSCD_CHECK_LE(used_, capacity_) << "LruStrategy: over capacity";
}

}  // namespace pscd
