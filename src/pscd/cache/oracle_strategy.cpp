#include "pscd/cache/oracle_strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "pscd/workload/workload.h"

namespace pscd {

OracleStrategy::OracleStrategy(Bytes capacity, RequestSchedule schedule)
    : cache_(capacity), schedule_(std::move(schedule)) {
  for (const auto& [page, times] : schedule_.times) {
    if (!std::is_sorted(times.begin(), times.end())) {
      throw std::invalid_argument("OracleStrategy: schedule not sorted");
    }
  }
}

SimTime OracleStrategy::nextUse(PageId page, SimTime now) const {
  const auto it = schedule_.times.find(page);
  if (it == schedule_.times.end()) {
    return std::numeric_limits<SimTime>::infinity();
  }
  const auto& times = it->second;
  const auto next = std::upper_bound(times.begin(), times.end(), now);
  return next == times.end() ? std::numeric_limits<SimTime>::infinity()
                             : *next;
}

double OracleStrategy::value(PageId page, SimTime now) const {
  const SimTime next = nextUse(page, now);
  if (std::isinf(next)) return 0.0;
  return 1.0 / std::max(next - now, 1e-9);
}

void OracleStrategy::refreshValues(SimTime now) {
  std::vector<std::pair<PageId, double>> updates;
  cache_.forEach([&](const ValueCache::StoredEntry& e) {
    const double v = value(e.page, now);
    // pscd-lint: allow(float-compare) exact compare only skips no-op updates
    if (v != e.value) updates.emplace_back(e.page, v);
  });
  for (const auto& [page, v] : updates) cache_.updateValue(page, v);
}

bool OracleStrategy::insert(const CacheEntry& entry, SimTime now) {
  const double v = value(entry.page, now);
  if (v <= 0.0) return false;  // never requested again: don't store
  if (const auto evicted = cache_.tryEvictLowerThan(v, entry.size)) {
    cache_.insertNoEvict(entry, v);
    return true;
  }
  return false;
}

PushOutcome OracleStrategy::onPush(const PushContext& ctx) {
  refreshValues(ctx.now);
  CacheEntry entry;
  if (const auto prior = cache_.erase(ctx.page)) entry = *prior;
  entry.page = ctx.page;
  entry.version = ctx.version;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  return {insert(entry, ctx.now)};
}

RequestOutcome OracleStrategy::onRequest(const RequestContext& ctx) {
  refreshValues(ctx.now);
  RequestOutcome out;
  if (const auto* cached = cache_.find(ctx.page)) {
    if (cached->version == ctx.latestVersion) {
      cache_.recordAccess(ctx.page, ctx.now);
      // Re-evaluate against the request after this one.
      cache_.updateValue(ctx.page, value(ctx.page, ctx.now));
      out.hit = true;
      return out;
    }
    out.stale = true;
  }
  CacheEntry entry;
  if (const auto prior = cache_.erase(ctx.page)) entry = *prior;
  entry.page = ctx.page;
  entry.version = ctx.latestVersion;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  ++entry.accessCount;
  entry.lastAccess = ctx.now;
  out.storedAfterMiss = insert(entry, ctx.now);
  return out;
}

std::vector<RequestSchedule> buildRequestSchedules(const Workload& workload) {
  std::vector<RequestSchedule> schedules(workload.numProxies());
  for (const RequestEvent& r : workload.requests) {
    schedules[r.proxy].times[r.page].push_back(r.time);
  }
  return schedules;
}

}  // namespace pscd
