// Cached-page bookkeeping shared by all replacement strategies.
#pragma once

#include "pscd/util/types.h"

namespace pscd {

/// Metadata of one cached page at one proxy. The counters follow the
/// paper's In-Cache semantics: accessCount is discarded when the page is
/// evicted; subCount is the (static) number of end-user subscriptions at
/// this proxy matching the page.
struct CacheEntry {
  PageId page = kInvalidPage;
  Version version = 0;
  Bytes size = 0;
  std::uint32_t accessCount = 0;  // a: in-cache accesses
  std::uint32_t subCount = 0;     // s: matching subscriptions at the proxy
  SimTime lastAccess = 0.0;
};

}  // namespace pscd
