#include "pscd/cache/gds_family.h"

#include <cmath>
#include <stdexcept>

#include "pscd/util/check.h"
#include "pscd/util/hot.h"

namespace pscd {

GdsFamilyConfig gdStarConfig(double beta) {
  GdsFamilyConfig c;
  c.freqMode = GdsFamilyConfig::FreqMode::kAccessOnly;
  c.beta = beta;
  c.displayName = "GD*";
  return c;
}

GdsFamilyConfig sg1Config(double beta) {
  GdsFamilyConfig c;
  c.freqMode = GdsFamilyConfig::FreqMode::kSubPlusAccess;
  c.pushEnabled = true;
  c.valueBasedAdmission = true;
  c.persistentAccessCounts = true;
  c.beta = beta;
  c.displayName = "SG1";
  return c;
}

GdsFamilyConfig sg2Config(double beta) {
  GdsFamilyConfig c;
  c.freqMode = GdsFamilyConfig::FreqMode::kSubMinusAccess;
  c.pushEnabled = true;
  c.valueBasedAdmission = true;
  c.persistentAccessCounts = true;
  c.beta = beta;
  c.displayName = "SG2";
  return c;
}

GdsFamilyConfig srConfig() {
  GdsFamilyConfig c;
  c.freqMode = GdsFamilyConfig::FreqMode::kSubMinusAccess;
  c.pushEnabled = true;
  c.valueBasedAdmission = true;
  c.persistentAccessCounts = true;
  c.useInflation = false;
  c.beta = 1.0;
  c.displayName = "SR";
  return c;
}

GdsFamilyConfig gdsConfig() {
  GdsFamilyConfig c;
  c.freqMode = GdsFamilyConfig::FreqMode::kConstantOne;
  c.beta = 1.0;
  c.displayName = "GDS";
  return c;
}

GdsFamilyConfig lfuDaConfig() {
  GdsFamilyConfig c;
  c.freqMode = GdsFamilyConfig::FreqMode::kAccessOnly;
  c.beta = 1.0;
  c.useCost = false;
  c.useSize = false;
  c.displayName = "LFU-DA";
  return c;
}

GdsFamilyStrategy::GdsFamilyStrategy(Bytes capacity, double fetchCost,
                                     const GdsFamilyConfig& config)
    : config_(config), fetchCost_(fetchCost), cache_(capacity) {
  if (config.beta <= 0) {
    throw std::invalid_argument("GdsFamilyStrategy: beta must be > 0");
  }
  if (fetchCost <= 0) {
    throw std::invalid_argument("GdsFamilyStrategy: fetchCost must be > 0");
  }
}

PSCD_HOT double GdsFamilyStrategy::frequency(std::uint32_t subCount,
                                             std::uint32_t accessCount) const {
  using FreqMode = GdsFamilyConfig::FreqMode;
  switch (config_.freqMode) {
    case FreqMode::kAccessOnly:
      return accessCount;
    case FreqMode::kSubPlusAccess:
      return static_cast<double>(subCount) + accessCount;
    case FreqMode::kSubMinusAccess:
      return std::max(static_cast<double>(subCount) - accessCount, 0.0);
    case FreqMode::kConstantOne:
      return 1.0;
  }
  return 0.0;
}

PSCD_HOT double GdsFamilyStrategy::value(double frequency, Bytes size) const {
  double utility = frequency;
  if (config_.useCost) utility *= fetchCost_;
  if (config_.useSize) utility /= static_cast<double>(size);
  const double term = std::pow(std::max(utility, 0.0), 1.0 / config_.beta);
  return (config_.useInflation ? inflation_ : 0.0) + term;
}

void GdsFamilyStrategy::noteEvictions(
    const std::vector<ValueCache::StoredEntry>& evicted) {
  // GD* pseudo-code: L ends up as the value of the page evicted last.
  if (config_.useInflation && !evicted.empty()) {
    inflation_ = evicted.back().value;
  }
}

PSCD_HOT std::uint32_t GdsFamilyStrategy::effectiveAccessCount(
    const CacheEntry& entry) const {
  if (!config_.persistentAccessCounts) return entry.accessCount;
  const auto it = accessHistory_.find(entry.page);
  return it == accessHistory_.end() ? 0 : it->second;
}

PSCD_HOT void GdsFamilyStrategy::noteAccess(PageId page) {
  if (config_.persistentAccessCounts) ++accessHistory_[page];
}

PSCD_HOT bool GdsFamilyStrategy::insert(const CacheEntry& entry) {
  // The frequency term is identical before and after eviction (only the
  // inflation offset inside value() moves), so probe the access-history
  // hash once and reuse the result for both valuations.
  const double freq = frequency(entry.subCount, effectiveAccessCount(entry));
  const double v = value(freq, entry.size);
  std::optional<std::vector<ValueCache::StoredEntry>> evicted;
  if (config_.valueBasedAdmission) {
    evicted = cache_.tryEvictLowerThan(v, entry.size);
  } else {
    evicted = cache_.evictFor(entry.size);
  }
  if (!evicted) return false;
  noteEvictions(*evicted);
  // Assign the value with the post-eviction inflation, as in the
  // pseudo-code (evict first, then V(p) <- L + ...).
  cache_.insertNoEvict(entry, value(freq, entry.size));
  return true;
}

PSCD_HOT PushOutcome GdsFamilyStrategy::onPush(const PushContext& ctx) {
  if (!config_.pushEnabled) return {false};
  CacheEntry entry;
  if (const auto prior = cache_.erase(ctx.page)) {
    // A version update of a cached page: refresh content in place,
    // keeping the in-cache access history.
    entry = *prior;
  }
  entry.page = ctx.page;
  entry.version = ctx.version;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  return {insert(entry)};
}

PSCD_HOT RequestOutcome GdsFamilyStrategy::onRequest(
    const RequestContext& ctx) {
  RequestOutcome out;
  noteAccess(ctx.page);
  if (const auto* cached = cache_.find(ctx.page)) {
    if (cached->version == ctx.latestVersion) {
      // Hit: bump f(p) and re-evaluate with the current inflation value.
      const auto& entry = cache_.recordAccess(ctx.page, ctx.now);
      cache_.updateValue(
          ctx.page,
          value(frequency(entry.subCount, effectiveAccessCount(entry)),
                entry.size));
      out.hit = true;
      return out;
    }
    out.stale = true;
  }
  // Miss (page absent or stale): fetch from the publisher, then evaluate
  // the fresh copy for placement. A stale copy is refreshed in place,
  // keeping its access history.
  CacheEntry entry;
  if (const auto prior = cache_.erase(ctx.page)) entry = *prior;
  entry.page = ctx.page;
  entry.version = ctx.latestVersion;
  entry.size = ctx.size;
  entry.subCount = ctx.subCount;
  ++entry.accessCount;
  entry.lastAccess = ctx.now;
  out.storedAfterMiss = insert(entry);
  return out;
}

void GdsFamilyStrategy::checkInvariants() const {
  cache_.checkInvariants();
  PSCD_CHECK(std::isfinite(inflation_) && inflation_ >= 0.0)
      << "GdsFamilyStrategy: bad inflation value L";
  if (!config_.persistentAccessCounts) {
    PSCD_CHECK(accessHistory_.empty())
        << "GdsFamilyStrategy: access history populated without "
           "persistentAccessCounts";
  }
}

}  // namespace pscd
