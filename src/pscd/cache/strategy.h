// The content-distribution strategy interface: every scheme in the paper
// (table 1) is a DistributionStrategy deployed at one proxy. The engine
// calls onPush() when the matching engine determines a newly published
// page matches local subscriptions (match-time placement opportunity)
// and onRequest() when a local user asks for a page (access-time
// placement opportunity).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "pscd/util/types.h"

namespace pscd {

/// Match-time placement opportunity for one page at one proxy.
struct PushContext {
  PageId page = kInvalidPage;
  Version version = 0;
  Bytes size = 0;
  /// Number of end-user subscriptions at this proxy matching the page
  /// (always >= 1; proxies without matches are not notified).
  std::uint32_t subCount = 0;
  SimTime now = 0.0;
};

/// A user request arriving at the proxy.
struct RequestContext {
  PageId page = kInvalidPage;
  /// Version currently live at the publisher; a cached older version is
  /// stale and must not be served.
  Version latestVersion = 0;
  Bytes size = 0;
  /// Matching subscriptions at this proxy (0 if none), available because
  /// the proxy aggregates its users' subscriptions.
  std::uint32_t subCount = 0;
  SimTime now = 0.0;
};

struct PushOutcome {
  /// True when the proxy stored (or refreshed) the pushed page. Under
  /// Pushing-When-Necessary only stored pages are transferred.
  bool stored = false;
};

struct RequestOutcome {
  /// Fresh copy served from the local cache.
  bool hit = false;
  /// A stale version was cached at request time (diagnostic).
  bool stale = false;
  /// The page was cached after fetching it on a miss.
  bool storedAfterMiss = false;
};

/// Per-proxy content distribution strategy. Implementations own their
/// cache storage; the engine provides page sizes and subscription counts
/// through the contexts.
class DistributionStrategy {
 public:
  virtual ~DistributionStrategy() = default;

  DistributionStrategy(const DistributionStrategy&) = delete;
  DistributionStrategy& operator=(const DistributionStrategy&) = delete;

  /// False for access-time-only schemes (GD*, LRU, ...); the engine then
  /// sends no pushes and accounts no push traffic for this proxy.
  virtual bool pushCapable() const = 0;

  virtual PushOutcome onPush(const PushContext& ctx) = 0;

  virtual RequestOutcome onRequest(const RequestContext& ctx) = 0;

  /// Version of `page` currently cached at this proxy (std::nullopt
  /// when absent). Non-mutating — no recency or frequency bookkeeping
  /// is touched — so the failure layer can probe for a (possibly
  /// stale) copy to serve degraded when the publisher is unreachable.
  virtual std::optional<Version> cachedVersion(PageId page) const = 0;

  virtual Bytes usedBytes() const = 0;
  virtual Bytes capacityBytes() const = 0;

  virtual std::string name() const = 0;

  /// Test hook: throws std::logic_error on any violated invariant.
  virtual void checkInvariants() const {}

 protected:
  DistributionStrategy() = default;
};

}  // namespace pscd
