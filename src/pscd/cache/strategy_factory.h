// Construction of the named strategies from table 1 (plus the ablation
// baselines) behind a single enum, used by the engine, the simulator and
// the benchmark harness.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "pscd/cache/strategy.h"

namespace pscd {

enum class StrategyKind {
  kGDStar,  // access-time baseline (section 3.1)
  kSUB,     // push-time only (section 3.2)
  kSG1,     // single cache, GD* with f = s + a
  kSG2,     // single cache, GD* with f = s - a
  kSR,      // single cache, frequency-only prediction
  kDM,      // single cache, dual replacement methods
  kDCFP,    // dual caches, fixed partition
  kDCAP,    // dual caches, adaptive partition
  kDCLAP,   // dual caches, limited adaptive partition
  kLRU,     // ablation baseline
  kGDS,     // ablation baseline (GreedyDual-Size)
  kLFUDA,   // ablation baseline (LFU with dynamic aging)
};

/// All strategies the paper evaluates, in figure order.
inline constexpr StrategyKind kPaperStrategies[] = {
    StrategyKind::kGDStar, StrategyKind::kSUB,  StrategyKind::kSG1,
    StrategyKind::kSG2,    StrategyKind::kSR,   StrategyKind::kDM,
    StrategyKind::kDCFP,   StrategyKind::kDCAP, StrategyKind::kDCLAP,
};

struct StrategyParams {
  Bytes capacity = 0;
  /// Network distance from the publisher to this proxy (c(p)).
  double fetchCost = 1.0;
  /// GD*'s balance factor between long-term popularity and short-term
  /// temporal correlation (used by GD*, SG1, SG2, DM, DC-*).
  double beta = 1.0;
  /// Dual-cache partition parameters.
  double dcInitialPcFraction = 0.5;
  double dcMinPcFraction = 0.25;
  double dcMaxPcFraction = 0.75;
};

std::unique_ptr<DistributionStrategy> makeStrategy(StrategyKind kind,
                                                   const StrategyParams& p);

std::string_view strategyName(StrategyKind kind);

/// Parses a name as printed by strategyName ("GD*", "SUB", "DC-LAP", ...).
/// Throws std::invalid_argument for unknown names.
StrategyKind parseStrategyKind(std::string_view name);

}  // namespace pscd
