#include "pscd/cache/value_cache.h"

#include <cmath>
#include <stdexcept>

#include "pscd/util/check.h"
#include "pscd/util/hot.h"

namespace pscd {

ValueCache::ValueCache(Bytes capacity) : capacity_(capacity) {}

void ValueCache::setCapacity(Bytes capacity) {
  if (capacity < used_) {
    throw std::invalid_argument("ValueCache::setCapacity below used bytes");
  }
  capacity_ = capacity;
}

PSCD_HOT const ValueCache::StoredEntry* ValueCache::find(PageId page) const {
  const auto it = entries_.find(page);
  return it == entries_.end() ? nullptr : &it->second;
}

PSCD_HOT ValueCache::StoredEntry ValueCache::removeLowest(
    std::set<Key>::iterator it) {
  const PageId page = it->second;
  index_.erase(it);
  const auto entryIt = entries_.find(page);
  PSCD_CHECK(entryIt != entries_.end())
      << "ValueCache: index references unknown page " << page;
  StoredEntry removed = entryIt->second;
  used_ -= removed.size;
  entries_.erase(entryIt);
  return removed;
}

PSCD_HOT std::optional<std::vector<ValueCache::StoredEntry>>
ValueCache::evictFor(Bytes size) {
  if (size > capacity_) return std::nullopt;
  // pscd-lint: allow(alloc-in-hot) the eviction list escapes to the caller; empty when nothing is evicted
  std::vector<StoredEntry> evicted;
  while (free() < size) {
    PSCD_DCHECK(!index_.empty()) << "ValueCache::evictFor ran out of victims";
    // pscd-lint: allow(grow-without-reserve) victim count depends on entry sizes and is unknowable before the walk
    evicted.push_back(removeLowest(index_.begin()));
  }
  return evicted;
}

PSCD_HOT std::optional<std::vector<ValueCache::StoredEntry>>
ValueCache::tryEvictLowerThan(double value, Bytes size) {
  // pscd-lint: allow(alloc-in-hot) empty-vector return on the fast path does not allocate
  if (free() >= size) return std::vector<StoredEntry>{};
  // First pass: can the candidates free enough space?
  Bytes reclaimable = free();
  bool feasible = false;
  for (auto it = index_.begin(); it != index_.end() && it->first < value;
       ++it) {
    reclaimable += entries_.at(it->second).size;
    if (reclaimable >= size) {
      feasible = true;
      break;
    }
  }
  if (!feasible) return std::nullopt;
  // pscd-lint: allow(alloc-in-hot) the eviction list escapes to the caller
  std::vector<StoredEntry> evicted;
  while (free() < size) {
    PSCD_DCHECK(!index_.empty() && index_.begin()->first < value)
        << "ValueCache::tryEvictLowerThan evicting non-candidate";
    // pscd-lint: allow(grow-without-reserve) victim count depends on entry sizes and is unknowable before the walk
    evicted.push_back(removeLowest(index_.begin()));
  }
  return evicted;
}

PSCD_HOT void ValueCache::insertNoEvict(const CacheEntry& entry,
                                        double value) {
  if (entry.size > free()) {
    throw std::logic_error("ValueCache::insertNoEvict: no room");
  }
  if (entries_.contains(entry.page)) {
    throw std::logic_error("ValueCache::insertNoEvict: page already cached");
  }
  StoredEntry stored;
  static_cast<CacheEntry&>(stored) = entry;
  stored.value = value;
  entries_.emplace(entry.page, stored);
  index_.emplace(value, entry.page);
  used_ += entry.size;
}

PSCD_HOT std::optional<ValueCache::StoredEntry> ValueCache::erase(
    PageId page) {
  const auto it = entries_.find(page);
  if (it == entries_.end()) return std::nullopt;
  StoredEntry removed = it->second;
  index_.erase({removed.value, page});
  used_ -= removed.size;
  entries_.erase(it);
  return removed;
}

PSCD_HOT void ValueCache::updateValue(PageId page, double value) {
  const auto it = entries_.find(page);
  if (it == entries_.end()) {
    throw std::out_of_range("ValueCache::updateValue: page not cached");
  }
  // Re-key by extracting and reinserting the index node: every strategy
  // touch lands here, and erase+emplace would free and reallocate a
  // tree node per touch.
  auto node = index_.extract(Key{it->second.value, page});
  PSCD_DCHECK(!node.empty())
      << "ValueCache::updateValue: index missing page " << page;
  it->second.value = value;
  node.value().first = value;
  index_.insert(std::move(node));
}

PSCD_HOT const ValueCache::StoredEntry& ValueCache::recordAccess(
    PageId page, SimTime now) {
  const auto it = entries_.find(page);
  if (it == entries_.end()) {
    throw std::out_of_range("ValueCache::recordAccess: page not cached");
  }
  ++it->second.accessCount;
  it->second.lastAccess = now;
  return it->second;
}

PSCD_HOT double ValueCache::minValue() const {
  if (index_.empty()) throw std::logic_error("ValueCache::minValue: empty");
  return index_.begin()->first;
}

void ValueCache::forEach(
    const std::function<void(const StoredEntry&)>& fn) const {
  // Walk the ordered (value, page) index rather than the hash map: the
  // callback sees a deterministic order, so refresh passes and
  // diagnostics built on forEach stay reproducible across standard
  // libraries and hash seeds.
  for (const auto& [value, page] : index_) fn(entries_.at(page));
}

void ValueCache::forEachByValue(
    const std::function<bool(const StoredEntry&)>& fn) const {
  for (const auto& [value, page] : index_) {
    if (!fn(entries_.at(page))) return;
  }
}

void ValueCache::checkInvariants() const {
  PSCD_CHECK_EQ(entries_.size(), index_.size())
      << "ValueCache: entry map and value index disagree";
  Bytes total = 0;
  // pscd-lint: allow(unordered-iter) per-entry assertions + commutative sum
  for (const auto& [page, entry] : entries_) {
    PSCD_CHECK_EQ(entry.page, page) << "ValueCache: entry id mismatch";
    PSCD_CHECK_GT(entry.size, 0u) << "ValueCache: zero-sized page " << page;
    PSCD_CHECK(std::isfinite(entry.value))
        << "ValueCache: non-finite value for page " << page;
    PSCD_CHECK(index_.contains({entry.value, page}))
        << "ValueCache: index missing page " << page;
    total += entry.size;
  }
  // The index carries exactly the same keys (sizes match and every entry
  // was found), so the eviction order is a permutation of the entries.
  PSCD_CHECK_EQ(total, used_) << "ValueCache: byte accounting drifted";
  PSCD_CHECK_LE(used_, capacity_) << "ValueCache: over capacity";
}

}  // namespace pscd
