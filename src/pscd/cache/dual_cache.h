// Dual-Caches (section 3.3): the proxy cache is divided into a Push
// Cache (PC) managed by SUB and an Access Cache (AC) managed by GD*.
//
//  * DC-FP  — fixed 50/50 partition; a PC page is moved into AC on its
//    first access (possibly triggering an AC replacement).
//  * DC-AP  — adaptive partition: a PC hit relabels the page's storage
//    as AC instead of moving it, and a push that SUB cannot place may
//    claim AC pages that have not been referenced since the last AC
//    replacement (the "Placing in DC-AP" algorithm).
//  * DC-LAP — DC-AP with the PC fraction bounded (default [25%, 75%]);
//    re-partitions that would violate the bounds fall back to the
//    fixed-partition behaviour.
#pragma once

#include <string>

#include "pscd/cache/strategy.h"
#include "pscd/cache/value_cache.h"

namespace pscd {

enum class PartitionMode { kFixed, kAdaptive, kLimitedAdaptive };

struct DualCacheConfig {
  PartitionMode mode = PartitionMode::kFixed;
  double initialPcFraction = 0.5;
  /// Bounds on the PC fraction; only used by kLimitedAdaptive.
  double minPcFraction = 0.25;
  double maxPcFraction = 0.75;
  /// beta of the AC-side GD*.
  double beta = 1.0;
};

class DualCacheStrategy final : public DistributionStrategy {
 public:
  DualCacheStrategy(Bytes capacity, double fetchCost,
                    const DualCacheConfig& config);

  bool pushCapable() const override { return true; }
  PushOutcome onPush(const PushContext& ctx) override;
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    const auto* e = pc_.find(page);
    if (!e) e = ac_.find(page);
    return e ? std::optional<Version>(e->version) : std::nullopt;
  }
  Bytes usedBytes() const override { return pc_.used() + ac_.used(); }
  Bytes capacityBytes() const override { return totalCapacity_; }
  std::string name() const override;
  void checkInvariants() const override;

  const ValueCache& pushCache() const { return pc_; }
  const ValueCache& accessCache() const { return ac_; }
  double inflation() const { return inflation_; }
  SimTime lastAcReplacement() const { return lastAcReplacement_; }

 private:
  double subValue(std::uint32_t subCount, Bytes size) const;
  double gdValue(std::uint32_t accessCount, Bytes size) const;
  /// Classic GD* insert into AC: evicts by value until the page fits,
  /// updating L and the last-replacement timestamp. False when the page
  /// exceeds AC's capacity.
  bool acForceInsert(CacheEntry entry, SimTime now);
  /// SUB insert into PC; false when refused.
  bool pcInsert(const CacheEntry& entry);
  /// DC-AP placing algorithm: claim idle AC pages' storage for PC so
  /// that `size` more bytes fit. False when infeasible (or would break
  /// the LAP bounds).
  bool claimFromAccessCache(Bytes size);
  /// Shift `size` bytes of capacity PC -> AC if bounds allow.
  bool shiftBudgetToAc(Bytes size);

  DualCacheConfig config_;
  Bytes totalCapacity_;
  double fetchCost_;
  ValueCache pc_;
  ValueCache ac_;
  double inflation_ = 0.0;            // L of the AC-side GD*
  SimTime lastAcReplacement_ = -1.0;  // time of the last AC eviction
};

}  // namespace pscd
