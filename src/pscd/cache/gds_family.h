// The GreedyDual* family of strategies. GD* (Jin & Bestavros) is the
// paper's access-time baseline:
//
//   V(p) = L + (f(p) * c(p) / s(p))^(1/beta)          (eq. 1)
//
// with inflation value L, frequency factor f, fetch cost c and size s.
// The paper derives its combined push+access schemes by swapping the
// frequency factor:
//
//   SG1: f = s_sub + a   (eq. 3)     SG2: f = max(s_sub - a, 0)  (eq. 4)
//   SR : V = f * c / s with f = max(s_sub - a, 0), no L (eq. 5)
//
// and the ablation baselines GDS (f = 1, beta = 1) and LFU-DA
// (V = L + f) are the degenerate corners of the same formula, so the
// whole family shares this implementation.
#pragma once

#include <string>
#include <unordered_map>

#include "pscd/cache/strategy.h"
#include "pscd/cache/value_cache.h"

namespace pscd {

struct GdsFamilyConfig {
  enum class FreqMode {
    kAccessOnly,      // f = a              (GD*, LFU-DA)
    kSubPlusAccess,   // f = s_sub + a      (SG1)
    kSubMinusAccess,  // f = max(s_sub - a, 0)   (SG2, SR)
    kConstantOne,     // f = 1              (GDS)
  };

  FreqMode freqMode = FreqMode::kAccessOnly;
  /// Push-time placement module present (SG1/SG2/SR).
  bool pushEnabled = false;
  /// SUB-style admission (store only if lower-valued candidates free
  /// enough space) instead of GD*'s unconditional admission.
  bool valueBasedAdmission = false;
  /// Include the inflation value L (aging); SR switches it off.
  bool useInflation = true;
  /// Balance factor between long-term popularity and short-term
  /// temporal correlation; the value term is raised to 1/beta.
  double beta = 1.0;
  /// Multiply by the fetch cost c(p).
  bool useCost = true;
  /// Divide by the page size s(p).
  bool useSize = true;
  /// Track the access count a(p) across evictions. GD*'s f(p) follows
  /// In-Cache LFU (discarded on eviction, as the paper states), but the
  /// subscription-based schemes compare a(p) against the subscription
  /// count, and the proxy knows its full access history for that — so
  /// SG1/SG2/SR keep a persistent per-page counter.
  bool persistentAccessCounts = false;

  std::string displayName = "GD*";
};

/// Canonical configurations for the named strategies.
GdsFamilyConfig gdStarConfig(double beta);
GdsFamilyConfig sg1Config(double beta);
GdsFamilyConfig sg2Config(double beta);
GdsFamilyConfig srConfig();
GdsFamilyConfig gdsConfig();
GdsFamilyConfig lfuDaConfig();

class GdsFamilyStrategy final : public DistributionStrategy {
 public:
  GdsFamilyStrategy(Bytes capacity, double fetchCost,
                    const GdsFamilyConfig& config);

  bool pushCapable() const override { return config_.pushEnabled; }
  PushOutcome onPush(const PushContext& ctx) override;
  RequestOutcome onRequest(const RequestContext& ctx) override;
  std::optional<Version> cachedVersion(PageId page) const override {
    const auto* e = cache_.find(page);
    return e ? std::optional<Version>(e->version) : std::nullopt;
  }
  Bytes usedBytes() const override { return cache_.used(); }
  Bytes capacityBytes() const override { return cache_.capacity(); }
  std::string name() const override { return config_.displayName; }
  void checkInvariants() const override;

  /// Current inflation value (exposed for tests).
  double inflation() const { return inflation_; }
  const ValueCache& cache() const { return cache_; }

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  double frequency(std::uint32_t subCount, std::uint32_t accessCount) const;
  double value(double frequency, Bytes size) const;
  void noteEvictions(const std::vector<ValueCache::StoredEntry>& evicted);
  /// Inserts honoring the admission mode; updates L from evictions.
  bool insert(const CacheEntry& entry);
  /// Access count seen by the evaluation function (persistent or
  /// in-cache depending on the configuration).
  std::uint32_t effectiveAccessCount(const CacheEntry& entry) const;
  void noteAccess(PageId page);

  GdsFamilyConfig config_;
  double fetchCost_;
  ValueCache cache_;
  double inflation_ = 0.0;  // L
  /// Persistent access history (only populated when
  /// config_.persistentAccessCounts is set).
  std::unordered_map<PageId, std::uint32_t> accessHistory_;
};

}  // namespace pscd
