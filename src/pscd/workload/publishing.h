// Publishing-stream generator (section 4.1): first-publish times uniform
// over the horizon, step-wise modification intervals for the updated
// pages, log-normal sizes.
//
// The generator also plans each page's static popularity rank so that
// update behaviour and popularity can be correlated: the top ranks are
// biased towards updated pages, and among the updated pages the shortest
// modification intervals go to the most popular ones (breaking news is
// both read most and edited most). The request generator consumes the
// planned ranks.
#pragma once

#include <vector>

#include "pscd/pubsub/attributes.h"
#include "pscd/util/rng.h"
#include "pscd/workload/params.h"
#include "pscd/workload/workload.h"

namespace pscd {

struct PublishingStream {
  std::vector<PageInfo> pages;
  std::vector<PublishEvent> events;  // sorted by time
};

/// zipfAlpha fixes the popularity-class boundaries stored on the pages;
/// updatedPopularityBias is the probability that each top rank is held
/// by an updated page.
PublishingStream generatePublishing(const PublishingParams& params,
                                    double zipfAlpha,
                                    double updatedPopularityBias, Rng& rng);

}  // namespace pscd
