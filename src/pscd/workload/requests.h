// Request-stream generator (section 4.2): Zipf popularity with random
// rank assignment, four popularity classes with age-correlated request
// times (plus a diurnal intensity swing), and per-page daily server
// pools of size S_i = numProxies * (P_i/P_max)^0.5 with 60% day-to-day
// overlap (eq. 6).
#pragma once

#include <vector>

#include "pscd/util/rng.h"
#include "pscd/workload/params.h"
#include "pscd/workload/workload.h"

namespace pscd {

/// Popularity class (0..3) for a Zipf rank: class k contains the ranks
/// whose request rate is within 10^-k .. 10^-(k+1) of the rank-1 rate,
/// so rates drop about one order of magnitude from class to class.
std::uint8_t popularityClassForRank(std::uint32_t rank, double alpha);

/// Fills pages[*].popularityRank/popularityClass/requestCount and
/// returns the time-sorted request stream. `horizon` must match the
/// publishing generator's.
std::vector<RequestEvent> generateRequests(const RequestParams& params,
                                           SimTime horizon,
                                           std::vector<PageInfo>& pages,
                                           Rng& rng);

}  // namespace pscd
