// Parameters of the synthetic news-delivery workload (section 4 of the
// paper). Defaults reproduce the paper's setup, which is itself derived
// from Padmanabhan & Qiu's study of MSNBC (SIGCOMM 2000).
#pragma once

#include <array>
#include <cstdint>

#include "pscd/util/types.h"

namespace pscd {

struct PublishingParams {
  /// Distinct pages (the paper: 6000 distinct, ~30k publish events).
  std::uint32_t numPages = 6000;
  /// Pages that receive modified versions (the paper: 2400).
  std::uint32_t numUpdatedPages = 2400;
  /// Simulation horizon (7 days).
  SimTime horizon = 7 * kDay;
  /// Step-wise modification-interval distribution: 5% shorter than an
  /// hour, 5% longer than a day, the rest in between (section 4.1).
  double shortIntervalWeight = 0.05;
  double shortIntervalLo = 10 * kMinute;
  double shortIntervalHi = 1 * kHour;
  double midIntervalWeight = 0.90;
  double midIntervalLo = 1 * kHour;
  double midIntervalHi = 1 * kDay;
  double longIntervalWeight = 0.05;
  double longIntervalLo = 1 * kDay;
  double longIntervalHi = 3 * kDay;
  /// Cap on the versions of one page: a breaking story is edited
  /// intensively for a bounded spell, not for the whole week. Without a
  /// cap the 5% of pages with sub-hour intervals would publish hundreds
  /// of versions each; see DESIGN.md for the calibration.
  std::uint32_t maxVersionsPerPage = 100;
  /// Log-normal page sizes (footnote 1: mu = 9.357, sigma^2 = 1.318).
  double sizeMu = 9.357;
  double sizeSigma = 1.14804;  // sqrt(1.318)
  Bytes minPageSize = 128;
  Bytes maxPageSize = 8u << 20;  // clamp pathological tail draws
};

struct RequestParams {
  /// ~1/1000 of MSNBC's 7-day volume (section 4.2).
  std::uint64_t totalRequests = 195000;
  std::uint32_t numProxies = 100;
  /// Zipf homogeneity: 1.5 for NEWS, 1.0 for ALTERNATIVE.
  double zipfAlpha = 1.5;
  /// Age-decay exponents of the four popularity classes (class 0 = most
  /// popular). Class boundaries are the ranks where the Zipf rate drops
  /// by another order of magnitude; a larger gamma concentrates requests
  /// on fresh pages ("the more popular a page is, the stronger the
  /// negative correlation between access probability and age").
  std::array<double, 4> classGamma = {3.5, 3.0, 2.5, 2.0};
  /// Scale of the age decay (1 + age/tau)^-gamma.
  SimTime ageTau = 1 * kHour;
  /// Lifecycle envelope: interest in a page dies off over its whole
  /// lifetime even though each modified version rekindles it. A request
  /// targets version k with weight (1 + (t_k - t_0)/lifecycleTau)
  /// ^-lifecycleGamma; its time then decays from t_k per classGamma.
  double lifecycleGamma = 2.0;
  SimTime lifecycleTau = 6 * kHour;
  /// Floor on the per-page daily server pool (eq. 6 yields 1 for the
  /// tail; the MSNBC study observes even unpopular objects shared by
  /// several organizations).
  std::uint32_t minServerPool = 10;
  /// Zipf exponent of the per-page affinity across its pool members:
  /// requests are split across the pool non-uniformly because the
  /// organizations behind different proxies care about a story to very
  /// different degrees (organization-based sharing, Wolman et al.).
  /// 0 restores the paper's uniform split.
  double poolAffinityAlpha = 0.0;
  /// Day/night swing of the request intensity; 0 disables it.
  double diurnalAmplitude = 0.6;
  /// Local time of the daily traffic peak.
  SimTime diurnalPeak = 14 * kHour;
  /// S_i = numProxies * (P_i / P_max)^serverPoolExponent (eq. 6).
  double serverPoolExponent = 0.5;
  /// Fraction of a page's server pool kept from one day to the next.
  double poolOverlap = 0.6;
  /// Probability that each of the top-numUpdatedPages popularity ranks
  /// is held by an updated page. News popularity and update frequency
  /// are strongly correlated (breaking stories are edited repeatedly —
  /// Padmanabhan & Qiu; Gadde et al. note content distribution matters
  /// most when popular objects update frequently), and this correlation
  /// is what makes pure access-based caching pay stale-miss penalties.
  double updatedPopularityBias = 0.85;
  /// Fraction of requests driven by notifications; < 1 enables the
  /// paper's future-work scenario where some readers are not
  /// subscribers (their requests do not contribute subscriptions).
  double notificationDrivenFraction = 1.0;
};

struct SubscriptionParams {
  /// Subscription quality SQ (eq. 7): probability that a subscriber of
  /// a page actually requests it; 1 = subscriptions perfectly reflect
  /// accesses.
  double quality = 1.0;
  /// Lower clamp for the per-(page, proxy) quality draw, which protects
  /// against division by ~0 when quality <= 0.5.
  double minQuality = 0.05;
  /// Extension beyond the paper's static-subscription assumption:
  /// fraction of all subscriptions that migrate per simulated day (a
  /// user drops one interest and picks up another at the same proxy).
  /// 0 restores the paper's static model.
  double churnPerDay = 0.0;
};

struct WorkloadParams {
  PublishingParams publishing;
  RequestParams request;
  SubscriptionParams subscription;
  std::uint64_t seed = 42;
};

/// The two request traces evaluated in the paper.
WorkloadParams newsTraceParams();
WorkloadParams alternativeTraceParams();

}  // namespace pscd
