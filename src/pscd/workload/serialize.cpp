#include "pscd/workload/serialize.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "pscd/util/csv.h"

namespace pscd {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'C', 'D', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kFormatVersion = 2;

/// Total payload cap per vector (1 GiB); a length field pointing past
/// this is malformed, not merely large.
constexpr std::uint64_t kMaxVecBytes = 1ull << 30;

/// On-disk mirror of RequestEvent. The in-memory struct carries a
/// `bool`, and reading a raw byte other than 0/1 into a bool is
/// undefined behaviour — so the disk side uses uint8_t and the loader
/// validates the byte. The explicit pad keeps the layout identical to
/// RequestEvent (same field offsets, no implicit tail padding), which
/// keeps the format compatible and makes the written bytes fully
/// deterministic.
struct RequestEventDisk {
  SimTime time = 0.0;
  PageId page = kInvalidPage;
  ProxyId proxy = 0;
  std::uint8_t notificationDriven = 1;
  std::uint8_t pad[7] = {};
};
static_assert(sizeof(RequestEventDisk) == sizeof(RequestEvent));
static_assert(offsetof(RequestEventDisk, notificationDriven) ==
              offsetof(RequestEvent, notificationDriven));

void writeBytes(std::ostream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out) throw std::runtime_error("saveWorkload: write failed");
}

void readBytes(std::istream& in, void* data, std::size_t n,
               const char* field) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (in.gcount() != static_cast<std::streamsize>(n)) {
    throw std::runtime_error(
        std::string("loadWorkload: truncated input reading ") + field);
  }
}

template <typename T>
void writePod(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  writeBytes(out, &v, sizeof(T));
}

template <typename T>
T readPod(std::istream& in, const char* field) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  readBytes(in, &v, sizeof(T), field);
  return v;
}

template <typename T>
void writeVec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  writePod<std::uint64_t>(out, v.size());
  if (!v.empty()) writeBytes(out, v.data(), v.size() * sizeof(T));
}

template <typename T>
std::vector<T> readVec(std::istream& in, const char* field) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = readPod<std::uint64_t>(in, field);
  if (n > kMaxVecBytes / sizeof(T)) {
    throw std::runtime_error(std::string("loadWorkload: bad length for ") +
                             field);
  }
  // Read in bounded chunks instead of allocating the full claimed size
  // up front: a corrupt length field then fails on the first short read
  // rather than committing gigabytes for data that is not there.
  constexpr std::size_t kChunkBytes = 1 << 20;
  const std::size_t chunkElems =
      kChunkBytes / sizeof(T) > 0 ? kChunkBytes / sizeof(T) : 1;
  std::vector<T> v;
  std::size_t got = 0;
  while (got < n) {
    const std::size_t take =
        std::min<std::size_t>(chunkElems, static_cast<std::size_t>(n) - got);
    v.resize(got + take);
    readBytes(in, v.data() + got, take * sizeof(T), field);
    got += take;
  }
  return v;
}

std::vector<RequestEventDisk> toDisk(const std::vector<RequestEvent>& v) {
  std::vector<RequestEventDisk> disk(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    disk[i].time = v[i].time;
    disk[i].page = v[i].page;
    disk[i].proxy = v[i].proxy;
    disk[i].notificationDriven = v[i].notificationDriven ? 1 : 0;
  }
  return disk;
}

std::vector<RequestEvent> fromDisk(const std::vector<RequestEventDisk>& v) {
  std::vector<RequestEvent> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i].notificationDriven > 1) {
      throw std::runtime_error(
          "loadWorkload: invalid notificationDriven byte in requests");
    }
    out[i].time = v[i].time;
    out[i].page = v[i].page;
    out[i].proxy = v[i].proxy;
    out[i].notificationDriven = v[i].notificationDriven != 0;
  }
  return out;
}

}  // namespace

void saveWorkload(const Workload& w, std::ostream& out) {
  writeBytes(out, kMagic, sizeof(kMagic));
  writePod(out, kFormatVersion);
  static_assert(std::is_trivially_copyable_v<WorkloadParams>);
  writePod(out, w.params);
  writeVec(out, w.pages);
  writeVec(out, w.publishes);
  writeVec(out, toDisk(w.requests));
  writeVec(out, w.subOffsets);
  writeVec(out, w.subEntries);
  writeVec(out, w.churn);
  writeVec(out, w.uniqueBytesRequested);
}

Workload loadWorkload(std::istream& in) {
  char magic[sizeof(kMagic)];
  readBytes(in, magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("loadWorkload: bad magic");
  }
  if (readPod<std::uint32_t>(in, "format version") != kFormatVersion) {
    throw std::runtime_error("loadWorkload: unsupported format version");
  }
  Workload w;
  w.params = readPod<WorkloadParams>(in, "params");
  w.pages = readVec<PageInfo>(in, "pages");
  w.publishes = readVec<PublishEvent>(in, "publishes");
  w.requests = fromDisk(readVec<RequestEventDisk>(in, "requests"));
  w.subOffsets = readVec<std::uint32_t>(in, "subOffsets");
  w.subEntries = readVec<Notification>(in, "subEntries");
  w.churn = readVec<SubscriptionChurnEvent>(in, "churn");
  w.uniqueBytesRequested = readVec<Bytes>(in, "uniqueBytesRequested");
  w.validate();
  return w;
}

void saveWorkloadFile(const Workload& w, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("saveWorkloadFile: cannot open " + path);
  saveWorkload(w, out);
}

Workload loadWorkloadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("loadWorkloadFile: cannot open " + path);
  return loadWorkload(in);
}

void exportPublishesCsv(const Workload& w, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"time", "page", "version", "size"});
  for (const auto& e : w.publishes) {
    csv.field(e.time)
        .field(static_cast<std::uint64_t>(e.page))
        .field(static_cast<std::uint64_t>(e.version))
        .field(static_cast<std::uint64_t>(e.size));
    csv.endRow();
  }
}

void exportRequestsCsv(const Workload& w, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"time", "page", "proxy", "notification_driven"});
  for (const auto& r : w.requests) {
    csv.field(r.time)
        .field(static_cast<std::uint64_t>(r.page))
        .field(static_cast<std::uint64_t>(r.proxy))
        .field(static_cast<std::uint64_t>(r.notificationDriven ? 1 : 0));
    csv.endRow();
  }
}

void exportSubscriptionsCsv(const Workload& w, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"page", "proxy", "subscriptions"});
  for (PageId page = 0; page < w.numPages(); ++page) {
    for (const auto& n : w.subscriptions(page)) {
      csv.field(static_cast<std::uint64_t>(page))
          .field(static_cast<std::uint64_t>(n.proxy))
          .field(static_cast<std::uint64_t>(n.matchCount));
      csv.endRow();
    }
  }
}

}  // namespace pscd
