#include "pscd/workload/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "pscd/util/csv.h"

namespace pscd {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'C', 'D', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kFormatVersion = 2;

void writeBytes(std::ostream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out) throw std::runtime_error("saveWorkload: write failed");
}

void readBytes(std::istream& in, void* data, std::size_t n) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (in.gcount() != static_cast<std::streamsize>(n)) {
    throw std::runtime_error("loadWorkload: truncated input");
  }
}

template <typename T>
void writePod(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  writeBytes(out, &v, sizeof(T));
}

template <typename T>
T readPod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  readBytes(in, &v, sizeof(T));
  return v;
}

template <typename T>
void writeVec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  writePod<std::uint64_t>(out, v.size());
  if (!v.empty()) writeBytes(out, v.data(), v.size() * sizeof(T));
}

template <typename T>
std::vector<T> readVec(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = readPod<std::uint64_t>(in);
  // Sanity cap: no trace component exceeds a billion elements.
  if (n > (1ull << 30)) throw std::runtime_error("loadWorkload: bad length");
  std::vector<T> v(n);
  if (n > 0) readBytes(in, v.data(), n * sizeof(T));
  return v;
}

}  // namespace

void saveWorkload(const Workload& w, std::ostream& out) {
  writeBytes(out, kMagic, sizeof(kMagic));
  writePod(out, kFormatVersion);
  static_assert(std::is_trivially_copyable_v<WorkloadParams>);
  writePod(out, w.params);
  writeVec(out, w.pages);
  writeVec(out, w.publishes);
  writeVec(out, w.requests);
  writeVec(out, w.subOffsets);
  writeVec(out, w.subEntries);
  writeVec(out, w.churn);
  writeVec(out, w.uniqueBytesRequested);
}

Workload loadWorkload(std::istream& in) {
  char magic[sizeof(kMagic)];
  readBytes(in, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("loadWorkload: bad magic");
  }
  if (readPod<std::uint32_t>(in) != kFormatVersion) {
    throw std::runtime_error("loadWorkload: unsupported format version");
  }
  Workload w;
  w.params = readPod<WorkloadParams>(in);
  w.pages = readVec<PageInfo>(in);
  w.publishes = readVec<PublishEvent>(in);
  w.requests = readVec<RequestEvent>(in);
  w.subOffsets = readVec<std::uint32_t>(in);
  w.subEntries = readVec<Notification>(in);
  w.churn = readVec<SubscriptionChurnEvent>(in);
  w.uniqueBytesRequested = readVec<Bytes>(in);
  w.validate();
  return w;
}

void saveWorkloadFile(const Workload& w, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("saveWorkloadFile: cannot open " + path);
  saveWorkload(w, out);
}

Workload loadWorkloadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("loadWorkloadFile: cannot open " + path);
  return loadWorkload(in);
}

void exportPublishesCsv(const Workload& w, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"time", "page", "version", "size"});
  for (const auto& e : w.publishes) {
    csv.field(e.time)
        .field(static_cast<std::uint64_t>(e.page))
        .field(static_cast<std::uint64_t>(e.version))
        .field(static_cast<std::uint64_t>(e.size));
    csv.endRow();
  }
}

void exportRequestsCsv(const Workload& w, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"time", "page", "proxy", "notification_driven"});
  for (const auto& r : w.requests) {
    csv.field(r.time)
        .field(static_cast<std::uint64_t>(r.page))
        .field(static_cast<std::uint64_t>(r.proxy))
        .field(static_cast<std::uint64_t>(r.notificationDriven ? 1 : 0));
    csv.endRow();
  }
}

void exportSubscriptionsCsv(const Workload& w, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"page", "proxy", "subscriptions"});
  for (PageId page = 0; page < w.numPages(); ++page) {
    for (const auto& n : w.subscriptions(page)) {
      csv.field(static_cast<std::uint64_t>(page))
          .field(static_cast<std::uint64_t>(n.proxy))
          .field(static_cast<std::uint64_t>(n.matchCount));
      csv.endRow();
    }
  }
}

}  // namespace pscd
