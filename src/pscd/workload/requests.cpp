#include "pscd/workload/requests.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "pscd/util/distributions.h"

namespace pscd {

std::uint8_t popularityClassForRank(std::uint32_t rank, double alpha) {
  if (rank == 0) throw std::invalid_argument("rank must be >= 1");
  // rate(rank) / rate(1) = rank^-alpha; class k while the ratio is above
  // 10^-(k+1).
  const double drop = alpha * std::log10(static_cast<double>(rank));
  if (drop < 1.0) return 0;
  if (drop < 2.0) return 1;
  if (drop < 3.0) return 2;
  return 3;
}

namespace {

/// Diurnal intensity factor in [1-A, 1+A], peaking at params.diurnalPeak.
double diurnalFactor(const RequestParams& params, SimTime t) {
  if (params.diurnalAmplitude <= 0) return 1.0;
  const double phase =
      2.0 * std::numbers::pi * (std::fmod(t, kDay) - params.diurnalPeak) /
      kDay;
  return 1.0 + params.diurnalAmplitude * std::cos(phase);
}

/// Samples a request time for a page: age-decayed from the first publish
/// time, thinned by the diurnal factor (rejection sampling).
SimTime sampleRequestTime(const RequestParams& params,
                          const TruncatedPowerLawAge& ageDist,
                          SimTime firstPublish, Rng& rng) {
  const double maxFactor = 1.0 + params.diurnalAmplitude;
  SimTime t = firstPublish;
  for (int attempt = 0; attempt < 64; ++attempt) {
    t = firstPublish + ageDist.sample(rng);
    if (rng.uniform() * maxFactor <= diurnalFactor(params, t)) return t;
  }
  return t;  // extremely unlikely; keep the last candidate
}

/// Per-page daily pool of candidate proxies (eq. 6 + the 60% overlap
/// rule). Pools are generated lazily per day.
class ServerPool {
 public:
  ServerPool(std::uint32_t poolSize, std::uint32_t numProxies,
             double affinityAlpha, Rng& rng)
      : poolSize_(std::min(poolSize, numProxies)), numProxies_(numProxies) {
    pool_.reserve(poolSize_);
    member_.assign(numProxies_, false);
    while (pool_.size() < poolSize_) addRandomNonMember(rng);
    day_ = 0;
    // Pool position i carries affinity weight (i+1)^-alpha: the pool is
    // in random order, so the "high affinity" proxies of each page are
    // random, and requests split non-uniformly across the pool.
    cumWeight_.resize(poolSize_);
    double acc = 0.0;
    for (std::uint32_t i = 0; i < poolSize_; ++i) {
      acc += std::pow(static_cast<double>(i + 1), -affinityAlpha);
      cumWeight_[i] = acc;
    }
  }

  ProxyId pick(std::uint32_t day, Rng& rng, double overlap) {
    while (day_ < day) {
      advanceDay(rng, overlap);
      ++day_;
    }
    const double u = rng.uniform() * cumWeight_.back();
    const auto it = std::lower_bound(cumWeight_.begin(), cumWeight_.end(), u);
    return pool_[static_cast<std::size_t>(it - cumWeight_.begin())];
  }

 private:
  void addRandomNonMember(Rng& rng) {
    for (;;) {
      const auto cand = static_cast<ProxyId>(rng.uniformInt(numProxies_));
      if (!member_[cand]) {
        member_[cand] = true;
        pool_.push_back(cand);
        return;
      }
    }
  }

  void advanceDay(Rng& rng, double overlap) {
    // Replace (1 - overlap) of the pool with proxies not currently in it.
    const auto keep = static_cast<std::uint32_t>(
        std::lround(overlap * static_cast<double>(pool_.size())));
    const std::uint32_t replace =
        static_cast<std::uint32_t>(pool_.size()) - keep;
    if (replace == 0 || poolSize_ >= numProxies_) return;
    // Shuffle, drop the tail, then refill with non-members.
    for (std::uint32_t i = static_cast<std::uint32_t>(pool_.size()) - 1; i > 0;
         --i) {
      std::swap(pool_[i],
                pool_[rng.uniformInt(static_cast<std::uint64_t>(i) + 1)]);
    }
    for (std::uint32_t i = 0; i < replace; ++i) {
      member_[pool_.back()] = false;
      pool_.pop_back();
    }
    while (pool_.size() < poolSize_) addRandomNonMember(rng);
  }

  std::uint32_t poolSize_;
  std::uint32_t numProxies_;
  std::uint32_t day_ = 0;
  std::vector<ProxyId> pool_;
  std::vector<bool> member_;
  std::vector<double> cumWeight_;
};

}  // namespace

std::vector<RequestEvent> generateRequests(const RequestParams& params,
                                           SimTime horizon,
                                           std::vector<PageInfo>& pages,
                                           Rng& rng) {
  const auto numPages = static_cast<std::uint32_t>(pages.size());
  if (numPages == 0 || params.numProxies == 0) {
    throw std::invalid_argument("generateRequests: empty pages/proxies");
  }

  // 1. Popularity ranks are planned by the publishing generator (they
  //    are correlated with update behaviour); derive the Zipf weights.
  std::vector<double> weight(numPages);
  for (PageId page = 0; page < numPages; ++page) {
    if (pages[page].popularityRank == 0 ||
        pages[page].popularityRank > numPages) {
      throw std::invalid_argument("generateRequests: pages lack ranks");
    }
    weight[page] = std::pow(static_cast<double>(pages[page].popularityRank),
                            -params.zipfAlpha);
  }

  // 2. Multinomial assignment of the total request volume to pages.
  const DiscreteSampler pageSampler(weight);
  std::vector<std::uint32_t> perPage(numPages, 0);
  for (std::uint64_t r = 0; r < params.totalRequests; ++r) {
    ++perPage[pageSampler.sample(rng)];
  }
  std::uint32_t maxCount = 0;
  for (PageId page = 0; page < numPages; ++page) {
    pages[page].requestCount = perPage[page];
    maxCount = std::max(maxCount, perPage[page]);
  }
  if (maxCount == 0) return {};

  // 3. Request times and server pools, page by page.
  std::vector<RequestEvent> requests;
  requests.reserve(params.totalRequests);
  for (PageId page = 0; page < numPages; ++page) {
    const std::uint32_t n = perPage[page];
    if (n == 0) continue;
    const PageInfo& info = pages[page];

    // Eq. 6: maximum number of servers requesting the page in a day.
    const double share = static_cast<double>(n) / maxCount;
    const auto poolSize = static_cast<std::uint32_t>(std::max<std::int64_t>(
        params.minServerPool,
        std::lround(params.numProxies *
                    std::pow(share, params.serverPoolExponent))));
    ServerPool pool(poolSize, params.numProxies, params.poolAffinityAlpha,
                    rng);

    // Request times: every modified version rekindles interest ("most
    // news pages are requested when they are fresh"), but under a
    // lifecycle envelope that dies off over the page's lifetime — a
    // story is read most around its early versions and fades even while
    // it keeps being edited. A request picks a version under the
    // envelope and then decays from that version's publish time.
    const double gamma = params.classGamma[info.popularityClass];
    std::vector<double> versionWeight(info.numVersions);
    for (std::uint32_t k = 0; k < info.numVersions; ++k) {
      const SimTime sincebirth = k * info.modificationInterval;
      versionWeight[k] = std::pow(
          1.0 + sincebirth / static_cast<double>(params.lifecycleTau),
          -params.lifecycleGamma);
    }
    const DiscreteSampler versionSampler(versionWeight);
    std::vector<SimTime> times(n);
    for (auto& t : times) {
      const std::uint32_t version =
          info.numVersions > 1 ? versionSampler.sample(rng) : 0;
      const SimTime versionTime =
          info.firstPublish + version * info.modificationInterval;
      // The floor keeps the sampler well-defined for pages published in
      // the horizon's last moments; the final clamp keeps such requests
      // inside the simulated week.
      const double maxAge = std::max(horizon - versionTime, kMinute);
      const TruncatedPowerLawAge ageDist(
          gamma, static_cast<double>(params.ageTau), maxAge);
      t = std::min(sampleRequestTime(params, ageDist, versionTime, rng),
                   horizon);
    }
    std::sort(times.begin(), times.end());
    for (const SimTime t : times) {
      const auto day = static_cast<std::uint32_t>(t / kDay);
      RequestEvent ev;
      ev.time = t;
      ev.page = page;
      ev.proxy = pool.pick(day, rng, params.poolOverlap);
      ev.notificationDriven =
          params.notificationDrivenFraction >= 1.0 ||
          rng.bernoulli(params.notificationDrivenFraction);
      requests.push_back(ev);
    }
  }

  std::sort(requests.begin(), requests.end(),
            [](const RequestEvent& a, const RequestEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.page != b.page) return a.page < b.page;
              return a.proxy < b.proxy;
            });
  return requests;
}

}  // namespace pscd
