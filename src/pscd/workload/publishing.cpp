#include "pscd/workload/publishing.h"

#include <algorithm>
#include <stdexcept>

#include "pscd/util/distributions.h"
#include "pscd/workload/requests.h"

namespace pscd {

namespace {

/// Fisher-Yates shuffle driven by our deterministic Rng.
void shufflePages(std::vector<PageId>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.uniformInt(i)]);
  }
}

}  // namespace

PublishingStream generatePublishing(const PublishingParams& params,
                                    double zipfAlpha,
                                    double updatedPopularityBias, Rng& rng) {
  if (params.numPages == 0 || params.numUpdatedPages > params.numPages) {
    throw std::invalid_argument("generatePublishing: bad page counts");
  }
  if (params.horizon <= 0) {
    throw std::invalid_argument("generatePublishing: bad horizon");
  }
  if (params.maxVersionsPerPage == 0) {
    throw std::invalid_argument("generatePublishing: version cap must be > 0");
  }

  const LogNormalDistribution sizeDist(params.sizeMu, params.sizeSigma);
  const StepwiseDistribution intervalDist({
      {params.shortIntervalWeight, params.shortIntervalLo,
       params.shortIntervalHi},
      {params.midIntervalWeight, params.midIntervalLo, params.midIntervalHi},
      {params.longIntervalWeight, params.longIntervalLo,
       params.longIntervalHi},
  });

  PublishingStream stream;
  stream.pages.resize(params.numPages);

  // Choose the updated pages uniformly at random.
  std::vector<PageId> perm(params.numPages);
  for (PageId i = 0; i < params.numPages; ++i) perm[i] = i;
  shufflePages(perm, rng);
  std::vector<PageId> updatedPages(perm.begin(),
                                   perm.begin() + params.numUpdatedPages);
  std::vector<PageId> staticPages(perm.begin() + params.numUpdatedPages,
                                  perm.end());

  // Deal the popularity ranks: with probability updatedPopularityBias a
  // top rank draws from the updated pages (popular news is edited
  // repeatedly), otherwise from the never-updated pool.
  shufflePages(updatedPages, rng);
  shufflePages(staticPages, rng);
  std::size_t ui = 0, si = 0;
  std::vector<PageId> pageAtRank(params.numPages);
  for (std::uint32_t rank = 1; rank <= params.numPages; ++rank) {
    const bool preferUpdated = rng.bernoulli(updatedPopularityBias);
    PageId page;
    if (si >= staticPages.size() ||
        (preferUpdated && ui < updatedPages.size())) {
      page = updatedPages[ui++];
    } else {
      page = staticPages[si++];
    }
    pageAtRank[rank - 1] = page;
    stream.pages[page].popularityRank = rank;
    stream.pages[page].popularityClass =
        popularityClassForRank(rank, zipfAlpha);
  }

  // Draw the modification intervals (their marginal distribution is the
  // paper's step-wise one), then assign them assortatively: the most
  // popular updated page receives the shortest interval.
  std::vector<double> intervals(params.numUpdatedPages);
  for (auto& iv : intervals) iv = intervalDist.sample(rng);
  std::sort(intervals.begin(), intervals.end());
  std::vector<bool> isUpdated(params.numPages, false);
  for (const PageId page : updatedPages) isUpdated[page] = true;
  std::size_t nextInterval = 0;
  for (std::uint32_t rank = 1;
       rank <= params.numPages && nextInterval < intervals.size(); ++rank) {
    const PageId page = pageAtRank[rank - 1];
    if (isUpdated[page]) {
      stream.pages[page].modificationInterval = intervals[nextInterval++];
    }
  }

  // Sizes, first-publish times and the event expansion.
  for (PageId page = 0; page < params.numPages; ++page) {
    PageInfo& info = stream.pages[page];
    const double raw = sizeDist.sample(rng);
    info.size = std::clamp<Bytes>(static_cast<Bytes>(raw),
                                  params.minPageSize, params.maxPageSize);
    info.firstPublish = rng.uniform(0.0, params.horizon);

    // Accumulating while-loop rather than a float-induction for-loop
    // (cert-flp30-c); the accumulation itself is intentional and must
    // stay bit-identical across refactors to keep seeds reproducible.
    Version version = 0;
    SimTime t = info.firstPublish;
    while (t < params.horizon && version < params.maxVersionsPerPage) {
      stream.events.push_back({t, page, version++, info.size});
      if (info.modificationInterval <= 0) break;
      t += info.modificationInterval;
    }
    info.numVersions = version;
  }

  std::sort(stream.events.begin(), stream.events.end(),
            [](const PublishEvent& a, const PublishEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.page < b.page;
            });
  return stream;
}

}  // namespace pscd
