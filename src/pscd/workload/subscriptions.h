// Subscription generator (section 4.3, eq. 7): given the request trace,
// infer per-(page, proxy) subscription counts from a target subscription
// quality SQ. SQ = 1 reproduces the ideal case where subscriptions
// perfectly reflect accesses; lower SQ over-subscribes (users request
// only a subset of what they subscribe to).
#pragma once

#include <cstdint>
#include <vector>

#include "pscd/pubsub/broker.h"
#include "pscd/util/rng.h"
#include "pscd/workload/params.h"
#include "pscd/workload/workload.h"

namespace pscd {

struct SubscriptionTable {
  /// CSR: row per page, entries sorted by proxy.
  std::vector<std::uint32_t> offsets;  // numPages + 1
  std::vector<Notification> entries;
};

/// Only notification-driven requests contribute to P_{i,j}.
SubscriptionTable generateSubscriptions(const SubscriptionParams& params,
                                        const std::vector<RequestEvent>& requests,
                                        std::uint32_t numPages,
                                        std::uint32_t numProxies, Rng& rng);

/// Generates churn events for params.churnPerDay: each event moves one
/// subscription from a (count-weighted) random existing entry to a
/// popularity-weighted random other page at the same proxy. Events are
/// sorted by time. pages[*].popularityRank must be set.
std::vector<SubscriptionChurnEvent> generateSubscriptionChurn(
    const SubscriptionParams& params, const SubscriptionTable& table,
    const std::vector<PageInfo>& pages, double zipfAlpha, SimTime horizon,
    Rng& rng);

}  // namespace pscd
