#include "pscd/workload/workload.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <stdexcept>

#include "pscd/util/rng.h"
#include "pscd/workload/publishing.h"
#include "pscd/workload/requests.h"
#include "pscd/workload/subscriptions.h"

namespace pscd {

WorkloadParams newsTraceParams() {
  WorkloadParams p;
  p.request.zipfAlpha = 1.5;
  return p;
}

WorkloadParams alternativeTraceParams() {
  WorkloadParams p;
  p.request.zipfAlpha = 1.0;
  return p;
}

std::span<const Notification> Workload::subscriptions(PageId page) const {
  if (page >= numPages()) {
    throw std::out_of_range("Workload::subscriptions: page out of range");
  }
  return {subEntries.data() + subOffsets[page],
          subEntries.data() + subOffsets[page + 1]};
}

std::uint32_t Workload::subscriptionCount(PageId page, ProxyId proxy) const {
  const auto row = subscriptions(page);
  const auto it = std::lower_bound(
      row.begin(), row.end(), proxy,
      [](const Notification& n, ProxyId p) { return n.proxy < p; });
  return (it != row.end() && it->proxy == proxy) ? it->matchCount : 0;
}

std::uint64_t Workload::totalSubscriptions() const {
  std::uint64_t total = 0;
  for (const auto& e : subEntries) total += e.matchCount;
  return total;
}

void Workload::validate() const {
  if (!std::isfinite(params.publishing.horizon) ||
      params.publishing.horizon < 0.0) {
    throw std::logic_error("Workload: horizon not finite");
  }
  if (pages.size() != params.publishing.numPages) {
    throw std::logic_error("Workload: page count mismatch");
  }
  for (const auto& p : pages) {
    if (!std::isfinite(p.firstPublish) || p.firstPublish < 0.0) {
      throw std::logic_error("Workload: page firstPublish not finite");
    }
    if (!std::isfinite(p.modificationInterval) ||
        p.modificationInterval < 0.0) {
      throw std::logic_error(
          "Workload: page modificationInterval not finite");
    }
    if (p.numVersions < 1) {
      throw std::logic_error("Workload: page numVersions < 1");
    }
  }
  if (subOffsets.size() != pages.size() + 1 ||
      subOffsets.back() != subEntries.size() || subOffsets.front() != 0) {
    throw std::logic_error("Workload: CSR shape invalid");
  }
  for (std::size_t i = 0; i + 1 < subOffsets.size(); ++i) {
    if (subOffsets[i] > subOffsets[i + 1]) {
      throw std::logic_error("Workload: CSR offsets not monotone");
    }
    for (std::uint32_t k = subOffsets[i]; k + 1 < subOffsets[i + 1]; ++k) {
      if (subEntries[k].proxy >= subEntries[k + 1].proxy) {
        throw std::logic_error("Workload: CSR row not sorted by proxy");
      }
    }
  }
  const SimTime horizon = params.publishing.horizon;
  SimTime prev = 0.0;
  for (const auto& e : publishes) {
    // NaN compares false against every bound, so reject it explicitly.
    if (!std::isfinite(e.time) || e.time < prev || e.time > horizon ||
        e.page >= numPages()) {
      throw std::logic_error("Workload: bad publish event");
    }
    prev = e.time;
  }
  prev = 0.0;
  for (const auto& r : requests) {
    if (!std::isfinite(r.time) || r.time < prev || r.time > horizon ||
        r.page >= numPages() || r.proxy >= numProxies()) {
      throw std::logic_error("Workload: bad request event");
    }
    if (r.time < pages[r.page].firstPublish) {
      throw std::logic_error("Workload: request precedes first publish");
    }
    prev = r.time;
  }
  if (uniqueBytesRequested.size() != numProxies()) {
    throw std::logic_error("Workload: uniqueBytesRequested size mismatch");
  }
  prev = 0.0;
  for (const auto& c : churn) {
    if (!std::isfinite(c.time) || c.time < prev || c.time > horizon ||
        c.proxy >= numProxies() || c.fromPage >= numPages() ||
        c.toPage >= numPages()) {
      throw std::logic_error("Workload: bad churn event");
    }
    prev = c.time;
  }
}

Workload buildWorkload(const WorkloadParams& params) {
  Rng master(params.seed);
  // Independent streams per component: tweaking one generator does not
  // perturb the randomness of the others.
  Rng publishRng = master.split();
  Rng requestRng = master.split();
  Rng subscriptionRng = master.split();

  Workload w;
  w.params = params;

  PublishingStream publishing = generatePublishing(
      params.publishing, params.request.zipfAlpha,
      params.request.updatedPopularityBias, publishRng);
  w.pages = std::move(publishing.pages);
  w.publishes = std::move(publishing.events);

  w.requests = generateRequests(params.request, params.publishing.horizon,
                                w.pages, requestRng);

  SubscriptionTable subs = generateSubscriptions(
      params.subscription, w.requests, w.numPages(), w.numProxies(),
      subscriptionRng);
  w.churn = generateSubscriptionChurn(params.subscription, subs, w.pages,
                                      params.request.zipfAlpha,
                                      params.publishing.horizon,
                                      subscriptionRng);
  w.subOffsets = std::move(subs.offsets);
  w.subEntries = std::move(subs.entries);

  // Unique bytes requested per proxy (for the capacity settings): the
  // total size of the distinct pages each proxy requests over the whole
  // trace, as in section 5.1.
  w.uniqueBytesRequested.assign(w.numProxies(), 0);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(w.requests.size());
  for (const RequestEvent& r : w.requests) {
    const std::uint64_t key = (static_cast<std::uint64_t>(r.page) << 32) |
                              r.proxy;
    if (seen.insert(key).second) {
      w.uniqueBytesRequested[r.proxy] += w.pages[r.page].size;
    }
  }
  return w;
}

}  // namespace pscd
