// The complete generated workload: publishing stream, request stream and
// static subscription counts, plus the derived per-proxy statistics the
// simulator needs (unique requested bytes for capacity sizing).
#pragma once

#include <span>
#include <vector>

#include "pscd/pubsub/attributes.h"
#include "pscd/pubsub/broker.h"
#include "pscd/util/types.h"
#include "pscd/workload/params.h"

namespace pscd {

/// Static properties of one distinct page.
struct PageInfo {
  Bytes size = 0;
  SimTime firstPublish = 0.0;
  /// 0 when the page is never modified.
  SimTime modificationInterval = 0.0;
  /// Total versions published within the horizon (>= 1).
  std::uint32_t numVersions = 1;
  /// Zipf popularity rank (1 = most popular).
  std::uint32_t popularityRank = 0;
  /// Popularity class 0..3 (0 = most popular; rates drop ~10x per class).
  std::uint8_t popularityClass = 3;
  /// Requests this page receives in the trace.
  std::uint32_t requestCount = 0;
};

struct RequestEvent {
  SimTime time = 0.0;
  PageId page = kInvalidPage;
  ProxyId proxy = 0;
  /// False for the future-work scenario of readers who never subscribed.
  bool notificationDriven = true;
};

/// A user at `proxy` drops one subscription to `fromPage` and subscribes
/// to `toPage` instead (extension: the paper assumes static
/// subscriptions).
struct SubscriptionChurnEvent {
  SimTime time = 0.0;
  ProxyId proxy = 0;
  PageId fromPage = kInvalidPage;
  PageId toPage = kInvalidPage;
};

struct Workload {
  WorkloadParams params;
  std::vector<PageInfo> pages;
  std::vector<PublishEvent> publishes;  // sorted by time
  std::vector<RequestEvent> requests;   // sorted by time

  // Subscription counts in CSR form: row per page, entries sorted by
  // proxy. subOffsets has numPages + 1 elements.
  std::vector<std::uint32_t> subOffsets;
  std::vector<Notification> subEntries;

  /// Subscription churn events, sorted by time (empty when
  /// params.subscription.churnPerDay is 0).
  std::vector<SubscriptionChurnEvent> churn;

  /// Unique bytes requested per proxy over the whole trace; cache
  /// capacities are a percentage of this (section 5.1).
  std::vector<Bytes> uniqueBytesRequested;

  std::uint32_t numPages() const {
    return static_cast<std::uint32_t>(pages.size());
  }
  std::uint32_t numProxies() const { return params.request.numProxies; }

  /// (proxy, count) rows of one page, sorted by proxy.
  std::span<const Notification> subscriptions(PageId page) const;

  /// Matching subscriptions of `page` at `proxy` (0 when none).
  std::uint32_t subscriptionCount(PageId page, ProxyId proxy) const;

  /// Sum of all subscription counts.
  std::uint64_t totalSubscriptions() const;

  /// Internal consistency check (sorted streams, CSR shape, events in
  /// range); throws std::logic_error on violations. Used by tests.
  void validate() const;
};

/// Generates the full workload from the parameters (deterministic in
/// params.seed).
Workload buildWorkload(const WorkloadParams& params);

}  // namespace pscd
