// Binary serialization of generated workloads (so expensive traces can
// be produced once and replayed) and CSV export for external analysis.
#pragma once

#include <iosfwd>
#include <string>

#include "pscd/workload/workload.h"

namespace pscd {

/// Writes the workload in the versioned binary trace format.
void saveWorkload(const Workload& workload, std::ostream& out);

/// Reads a workload written by saveWorkload. Throws std::runtime_error
/// on magic/version mismatch or truncation.
Workload loadWorkload(std::istream& in);

/// Convenience file wrappers.
void saveWorkloadFile(const Workload& workload, const std::string& path);
Workload loadWorkloadFile(const std::string& path);

/// CSV exports (one row per event; header included).
void exportPublishesCsv(const Workload& workload, std::ostream& out);
void exportRequestsCsv(const Workload& workload, std::ostream& out);
void exportSubscriptionsCsv(const Workload& workload, std::ostream& out);

}  // namespace pscd
