#include "pscd/workload/subscriptions.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pscd/util/distributions.h"

namespace pscd {

SubscriptionTable generateSubscriptions(
    const SubscriptionParams& params,
    const std::vector<RequestEvent>& requests, std::uint32_t numPages,
    std::uint32_t numProxies, Rng& rng) {
  if (params.quality <= 0 || params.quality > 1) {
    throw std::invalid_argument("generateSubscriptions: SQ must be in (0,1]");
  }

  // P_{i,j}: requests of page i from proxy j (notification-driven only).
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(numPages) *
                                    numProxies);
  for (const RequestEvent& r : requests) {
    if (!r.notificationDriven) continue;
    if (r.page >= numPages || r.proxy >= numProxies) {
      throw std::out_of_range("generateSubscriptions: event out of range");
    }
    ++counts[static_cast<std::size_t>(r.page) * numProxies + r.proxy];
  }

  const double sq = params.quality;
  SubscriptionTable table;
  table.offsets.resize(numPages + 1, 0);
  for (PageId page = 0; page < numPages; ++page) {
    table.offsets[page] = static_cast<std::uint32_t>(table.entries.size());
    for (ProxyId proxy = 0; proxy < numProxies; ++proxy) {
      const std::uint32_t p =
          counts[static_cast<std::size_t>(page) * numProxies + proxy];
      if (p == 0) continue;
      // Eq. 7: SQ_{i,j} uniform in [2SQ-1, 1] when SQ > 0.5, else in
      // [0, 2SQ] (clamped away from 0).
      const double sqij =
          sq > 0.5 ? rng.uniform(2.0 * sq - 1.0, 1.0)
                   : std::max(rng.uniform(0.0, 2.0 * sq), params.minQuality);
      const auto subs = static_cast<std::uint32_t>(std::max<std::int64_t>(
          1, std::lround(static_cast<double>(p) / sqij)));
      table.entries.push_back({proxy, subs});
    }
  }
  table.offsets[numPages] = static_cast<std::uint32_t>(table.entries.size());
  return table;
}

std::vector<SubscriptionChurnEvent> generateSubscriptionChurn(
    const SubscriptionParams& params, const SubscriptionTable& table,
    const std::vector<PageInfo>& pages, double zipfAlpha, SimTime horizon,
    Rng& rng) {
  if (params.churnPerDay < 0) {
    throw std::invalid_argument("generateSubscriptionChurn: negative rate");
  }
  std::vector<SubscriptionChurnEvent> events;
  // pscd-lint: allow(float-compare) 0.0 is the exact "disabled" sentinel
  if (params.churnPerDay == 0.0 || table.entries.empty()) return events;

  std::uint64_t totalSubs = 0;
  for (const auto& e : table.entries) totalSubs += e.matchCount;
  const auto numEvents = static_cast<std::uint64_t>(
      params.churnPerDay * static_cast<double>(totalSubs) *
      (horizon / kDay));

  // Source sampling: entries weighted by their subscription count.
  std::vector<double> sourceWeight(table.entries.size());
  for (std::size_t i = 0; i < table.entries.size(); ++i) {
    sourceWeight[i] = table.entries[i].matchCount;
  }
  const DiscreteSampler sourceSampler(sourceWeight);

  // Target sampling: pages weighted by Zipf popularity (users migrate
  // toward what is popular).
  std::vector<double> targetWeight(pages.size());
  for (std::size_t p = 0; p < pages.size(); ++p) {
    targetWeight[p] =
        std::pow(static_cast<double>(pages[p].popularityRank), -zipfAlpha);
  }
  const DiscreteSampler targetSampler(targetWeight);

  // Map each source entry back to its page via the CSR offsets.
  std::vector<PageId> entryPage(table.entries.size());
  for (PageId page = 0; page + 1 < table.offsets.size(); ++page) {
    for (std::uint32_t k = table.offsets[page]; k < table.offsets[page + 1];
         ++k) {
      entryPage[k] = page;
    }
  }

  events.reserve(numEvents);
  for (std::uint64_t i = 0; i < numEvents; ++i) {
    const std::uint32_t source = sourceSampler.sample(rng);
    SubscriptionChurnEvent ev;
    ev.time = rng.uniform(0.0, horizon);
    ev.proxy = table.entries[source].proxy;
    ev.fromPage = entryPage[source];
    ev.toPage = targetSampler.sample(rng);
    events.push_back(ev);
  }
  std::sort(events.begin(), events.end(),
            [](const SubscriptionChurnEvent& a,
               const SubscriptionChurnEvent& b) { return a.time < b.time; });
  return events;
}

}  // namespace pscd
