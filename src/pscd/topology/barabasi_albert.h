// Barabasi-Albert preferential-attachment generator (BRITE's alternative
// router model). Produces scale-free degree distributions; provided so
// that topology sensitivity can be studied alongside Waxman.
#pragma once

#include "pscd/topology/graph.h"
#include "pscd/util/rng.h"

namespace pscd {

struct BarabasiAlbertParams {
  std::uint32_t numNodes = 100;
  // Edges added per new node (also the size of the initial clique).
  std::uint32_t edgesPerNode = 2;
  // Weight assigned to every edge (hop metric).
  double edgeWeight = 1.0;
};

/// Generates a connected scale-free graph: start from a clique of
/// (edgesPerNode + 1) nodes, then attach each new node to edgesPerNode
/// distinct existing nodes chosen with probability proportional to their
/// degree.
Graph generateBarabasiAlbert(const BarabasiAlbertParams& params, Rng& rng);

}  // namespace pscd
