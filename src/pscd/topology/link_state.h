// Dynamic link-state overlay on the immutable seed Network: the failure
// layer marks proxies crashed and links down/up during a simulation, and
// this class answers residual reachability and fetch-cost queries
// against the damaged topology. While no link is down every query hits
// the seed fast path (the exact doubles stored in Network), so a
// fault-free run is bit-identical to one that never constructed an
// overlay; once links fail, residual shortest paths are recomputed
// lazily under the seed normalization constant, and proxies partitioned
// from the publisher get c(p) = +infinity.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "pscd/topology/network.h"
#include "pscd/util/types.h"

namespace pscd {

class LinkState {
 public:
  /// The network must outlive the overlay.
  explicit LinkState(const Network& network);

  const Network& network() const { return *network_; }

  /// Marks the undirected edge {a, b} down / back up. The edge must
  /// exist in the seed graph; marking twice is idempotent.
  void setLinkDown(NodeId a, NodeId b);
  void setLinkUp(NodeId a, NodeId b);
  bool linkDown(NodeId a, NodeId b) const;
  std::size_t downLinkCount() const { return downLinks_.size(); }

  /// Marks the proxy process crashed / restarted. A crashed proxy
  /// serves no requests and receives no pushes; its fetch cost is
  /// unaffected (the path may be intact even while the process is down).
  void setProxyDown(ProxyId proxy);
  void setProxyUp(ProxyId proxy);
  bool proxyDown(ProxyId proxy) const;
  std::uint32_t downProxyCount() const { return downProxies_; }

  /// True when any link is currently down (the residual recompute is
  /// only ever needed in this state).
  bool anyLinkDown() const { return !downLinks_.empty(); }

  /// Residual publisher -> proxy fetch cost: the seed cost while no
  /// link is down, otherwise the damaged-graph shortest path divided by
  /// the seed normalization mean (floored at 0.01 like the seed costs);
  /// +infinity when the proxy is partitioned from the publisher.
  double fetchCost(ProxyId proxy) const;

  /// True when the proxy process is up AND a residual publisher path
  /// exists. The publisher itself never crashes in this model (the
  /// paper's publisher is the source of truth); total publisher loss is
  /// expressed as partitioning every proxy.
  bool reachable(ProxyId proxy) const;

  /// True when a residual publisher -> proxy path exists, regardless of
  /// the proxy process state (used for direct-to-publisher failover).
  bool pathToPublisher(ProxyId proxy) const;

  /// Validates the overlay against the seed network: down links all
  /// exist in the seed graph, the down-proxy counter matches the mask,
  /// and the cached residual costs (when valid) equal a fresh
  /// damaged-graph recompute — finite exactly for connected proxies.
  /// Throws CheckFailure on any violation.
  void checkInvariants() const;

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  using LinkKey = std::pair<NodeId, NodeId>;  // normalized a < b

  static LinkKey linkKey(NodeId a, NodeId b);
  /// Recomputes residualCost_ from the damaged graph if stale.
  void refreshResidual() const;

  const Network* network_;
  std::vector<std::uint8_t> proxyDownMask_;
  std::uint32_t downProxies_ = 0;
  std::set<LinkKey> downLinks_;

  /// Lazily maintained residual costs; only consulted while a link is
  /// down. `residualDirty_` is set by every link toggle.
  mutable bool residualDirty_ = false;
  mutable std::vector<double> residualCost_;
};

}  // namespace pscd
