// Single-source shortest paths (Dijkstra) over the overlay graph; used to
// derive the publisher->proxy fetch costs c(p).
#pragma once

#include <vector>

#include "pscd/topology/graph.h"

namespace pscd {

/// Distances from src to every node; unreachable nodes get +infinity.
std::vector<double> shortestPaths(const Graph& g, NodeId src);

}  // namespace pscd
