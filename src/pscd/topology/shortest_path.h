// Single-source shortest paths (Dijkstra) over the overlay graph; used to
// derive the publisher->proxy fetch costs c(p).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "pscd/topology/graph.h"

namespace pscd {

/// Distances from src to every node; unreachable nodes get +infinity.
std::vector<double> shortestPaths(const Graph& g, NodeId src);

/// Residual-graph variant for the failure layer: edges for which
/// skipEdge(u, v) returns true are treated as removed (the predicate is
/// consulted once per traversal direction). With an always-false
/// predicate the result equals shortestPaths(g, src) exactly — same
/// relaxation order, same float arithmetic.
std::vector<double> shortestPaths(
    const Graph& g, NodeId src,
    const std::function<bool(NodeId, NodeId)>& skipEdge);

/// Validates a distance vector as a shortest-path solution for (g, src):
/// dist[src] == 0, every edge satisfies the relaxation inequality
/// dist[v] <= dist[u] + w, and every finite non-source distance is
/// witnessed by a tight incoming edge (the Dijkstra tree property).
/// Throws CheckFailure on any violation.
void checkShortestPathTree(const Graph& g, NodeId src,
                           std::span<const double> dist);

}  // namespace pscd
