// Network facade: builds an overlay topology, places the publisher and
// the proxy servers on its nodes, and exposes the per-proxy fetch cost
// c(p) (network distance publisher -> proxy) used by the cache value
// functions, as suggested by Cao & Irani for GreedyDual-Size.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "pscd/topology/barabasi_albert.h"
#include "pscd/topology/graph.h"
#include "pscd/topology/waxman.h"
#include "pscd/util/rng.h"
#include "pscd/util/types.h"

namespace pscd {

enum class TopologyModel { kWaxman, kBarabasiAlbert };

struct NetworkParams {
  std::uint32_t numProxies = 100;
  // Extra transit nodes that host neither the publisher nor a proxy.
  std::uint32_t numTransitNodes = 49;
  TopologyModel model = TopologyModel::kWaxman;
  WaxmanParams waxman{};
  BarabasiAlbertParams barabasiAlbert{};
};

/// Immutable view of the overlay used by the simulator and the engine:
/// fetch costs are normalized so their mean over reachable proxies is 1,
/// keeping the absolute value scale of the replacement algorithms
/// comparable across topologies. Proxies with no publisher path (only
/// possible with a custom, disconnected graph) get an infinite cost;
/// reachable() distinguishes them. Dynamic failures are layered on top
/// by LinkState (topology/link_state.h) without mutating this seed
/// state.
class Network {
 public:
  Network(const NetworkParams& params, Rng& rng);

  /// Custom-topology constructor (tests, hand-built overlays): places
  /// the publisher and the proxies on the given nodes of an explicit
  /// graph. Nodes must be distinct and in range; the graph may be
  /// disconnected, in which case partitioned proxies get an infinite
  /// fetch cost. At least one proxy must be reachable.
  Network(Graph graph, NodeId publisherNode, std::vector<NodeId> proxyNodes);

  std::uint32_t numProxies() const {
    return static_cast<std::uint32_t>(fetchCost_.size());
  }

  /// Normalized network distance from the publisher to the proxy
  /// (+infinity when the proxy has no path to the publisher).
  double fetchCost(ProxyId proxy) const { return fetchCost_[proxy]; }

  const std::vector<double>& fetchCosts() const { return fetchCost_; }

  /// True when a publisher -> proxy path exists in the seed topology;
  /// equivalently, fetchCost(proxy) is finite.
  bool reachable(ProxyId proxy) const {
    return std::isfinite(fetchCost_[proxy]);
  }

  /// Mean raw publisher->proxy distance over reachable proxies — the
  /// constant dividing every fetch cost. The failure layer reuses it so
  /// residual costs stay on the seed scale.
  double normalizationMean() const { return normMean_; }

  NodeId publisherNode() const { return publisherNode_; }
  NodeId proxyNode(ProxyId proxy) const { return proxyNode_[proxy]; }

  const Graph& graph() const { return graph_; }

  /// Validates the overlay end to end: graph invariants, role placement
  /// (publisher and proxies on distinct in-range nodes), a re-run of
  /// Dijkstra against the stored fetch costs (finite exactly for the
  /// reachable proxies), and the mean-1 normalization. Throws
  /// CheckFailure on any violation.
  void checkInvariants() const;

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  /// Derives fetch costs and the normalization mean from graph_ and the
  /// role placement; shared by both constructors.
  void computeFetchCosts();

  Graph graph_;
  NodeId publisherNode_ = 0;
  std::vector<NodeId> proxyNode_;
  std::vector<double> fetchCost_;
  double normMean_ = 1.0;
};

}  // namespace pscd
