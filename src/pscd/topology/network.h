// Network facade: builds an overlay topology, places the publisher and
// the proxy servers on its nodes, and exposes the per-proxy fetch cost
// c(p) (network distance publisher -> proxy) used by the cache value
// functions, as suggested by Cao & Irani for GreedyDual-Size.
#pragma once

#include <cstdint>
#include <vector>

#include "pscd/topology/barabasi_albert.h"
#include "pscd/topology/graph.h"
#include "pscd/topology/waxman.h"
#include "pscd/util/rng.h"
#include "pscd/util/types.h"

namespace pscd {

enum class TopologyModel { kWaxman, kBarabasiAlbert };

struct NetworkParams {
  std::uint32_t numProxies = 100;
  // Extra transit nodes that host neither the publisher nor a proxy.
  std::uint32_t numTransitNodes = 49;
  TopologyModel model = TopologyModel::kWaxman;
  WaxmanParams waxman{};
  BarabasiAlbertParams barabasiAlbert{};
};

/// Immutable view of the overlay used by the simulator and the engine:
/// fetch costs are normalized so their mean is 1, keeping the absolute
/// value scale of the replacement algorithms comparable across
/// topologies.
class Network {
 public:
  Network(const NetworkParams& params, Rng& rng);

  std::uint32_t numProxies() const {
    return static_cast<std::uint32_t>(fetchCost_.size());
  }

  /// Normalized network distance from the publisher to the proxy.
  double fetchCost(ProxyId proxy) const { return fetchCost_[proxy]; }

  const std::vector<double>& fetchCosts() const { return fetchCost_; }

  NodeId publisherNode() const { return publisherNode_; }
  NodeId proxyNode(ProxyId proxy) const { return proxyNode_[proxy]; }

  const Graph& graph() const { return graph_; }

  /// Validates the overlay end to end: graph invariants, role placement
  /// (publisher and proxies on distinct in-range nodes), a re-run of
  /// Dijkstra against the stored fetch costs, and the mean-1
  /// normalization. Throws CheckFailure on any violation.
  void checkInvariants() const;

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  Graph graph_;
  NodeId publisherNode_ = 0;
  std::vector<NodeId> proxyNode_;
  std::vector<double> fetchCost_;
};

}  // namespace pscd
