// Waxman random-topology generator (the flat-router model BRITE uses by
// default). Nodes are placed uniformly on a square plane; an edge between
// u and v exists with probability alpha * exp(-d(u,v) / (beta * L)),
// where d is the Euclidean distance and L the plane diagonal. Edge
// weights are the Euclidean distances, so shortest-path distances serve
// as the fetch cost c(p) in the cache value functions.
#pragma once

#include <vector>

#include "pscd/topology/graph.h"
#include "pscd/util/rng.h"

namespace pscd {

struct WaxmanParams {
  std::uint32_t numNodes = 100;
  double alpha = 0.25;  // overall edge density
  double beta = 0.2;    // distance sensitivity (larger = longer edges)
  double plane = 1000.0;  // side of the placement square
};

struct WaxmanTopology {
  Graph graph;
  // Node coordinates on the plane, index = NodeId.
  std::vector<double> x;
  std::vector<double> y;
};

/// Generates a connected Waxman topology: after the probabilistic pass,
/// remaining components are joined via their closest node pairs.
WaxmanTopology generateWaxman(const WaxmanParams& params, Rng& rng);

}  // namespace pscd
