#include "pscd/topology/link_state.h"

#include <algorithm>
#include <cmath>

#include "pscd/topology/shortest_path.h"
#include "pscd/util/check.h"
#include "pscd/util/hot.h"

namespace pscd {

LinkState::LinkState(const Network& network)
    : network_(&network), proxyDownMask_(network.numProxies(), 0) {}

LinkState::LinkKey LinkState::linkKey(NodeId a, NodeId b) {
  return a < b ? LinkKey{a, b} : LinkKey{b, a};
}

void LinkState::setLinkDown(NodeId a, NodeId b) {
  PSCD_CHECK(network_->graph().hasEdge(a, b))
      << "LinkState: no seed link " << a << " <-> " << b << " to fail";
  if (downLinks_.insert(linkKey(a, b)).second) residualDirty_ = true;
}

void LinkState::setLinkUp(NodeId a, NodeId b) {
  PSCD_CHECK(network_->graph().hasEdge(a, b))
      << "LinkState: no seed link " << a << " <-> " << b << " to restore";
  if (downLinks_.erase(linkKey(a, b)) > 0) residualDirty_ = true;
}

PSCD_HOT bool LinkState::linkDown(NodeId a, NodeId b) const {
  return downLinks_.contains(linkKey(a, b));
}

void LinkState::setProxyDown(ProxyId proxy) {
  PSCD_CHECK_LT(proxy, proxyDownMask_.size())
      << "LinkState: proxy off the overlay";
  if (!proxyDownMask_[proxy]) {
    proxyDownMask_[proxy] = 1;
    ++downProxies_;
  }
}

void LinkState::setProxyUp(ProxyId proxy) {
  PSCD_CHECK_LT(proxy, proxyDownMask_.size())
      << "LinkState: proxy off the overlay";
  if (proxyDownMask_[proxy]) {
    proxyDownMask_[proxy] = 0;
    --downProxies_;
  }
}

PSCD_HOT bool LinkState::proxyDown(ProxyId proxy) const {
  PSCD_CHECK_LT(proxy, proxyDownMask_.size())
      << "LinkState: proxy off the overlay";
  return proxyDownMask_[proxy] != 0;
}

PSCD_HOT void LinkState::refreshResidual() const {
  if (!residualDirty_) return;
  // pscd-lint: allow(alloc-in-hot) one residual Dijkstra per topology change, gated by residualDirty_ above
  const std::vector<double> dist = shortestPaths(
      network_->graph(), network_->publisherNode(),
      [this](NodeId u, NodeId v) { return downLinks_.contains(linkKey(u, v)); });
  const double mean = network_->normalizationMean();
  residualCost_.resize(network_->numProxies());
  for (ProxyId p = 0; p < network_->numProxies(); ++p) {
    const double d = dist[network_->proxyNode(p)];
    residualCost_[p] = std::isfinite(d) ? std::max(d / mean, 0.01) : d;
  }
  residualDirty_ = false;
}

PSCD_HOT double LinkState::fetchCost(ProxyId proxy) const {
  PSCD_CHECK_LT(proxy, proxyDownMask_.size())
      << "LinkState: proxy off the overlay";
  if (downLinks_.empty()) return network_->fetchCost(proxy);  // seed fast path
  refreshResidual();
  return residualCost_[proxy];
}

PSCD_HOT bool LinkState::pathToPublisher(ProxyId proxy) const {
  return std::isfinite(fetchCost(proxy));
}

PSCD_HOT bool LinkState::reachable(ProxyId proxy) const {
  return !proxyDown(proxy) && pathToPublisher(proxy);
}

void LinkState::checkInvariants() const {
  PSCD_CHECK_EQ(proxyDownMask_.size(), network_->numProxies())
      << "LinkState: proxy mask size drifted from the network";
  std::uint32_t down = 0;
  // Named `bit`, not `d`: this file declares double `d` elsewhere and
  // pscd-lint's declaration harvest is name-based, not type-resolved.
  for (const std::uint8_t bit : proxyDownMask_) down += bit != 0 ? 1 : 0;
  PSCD_CHECK_EQ(down, downProxies_)
      << "LinkState: down-proxy counter disagrees with the mask";
  for (const auto& [a, b] : downLinks_) {
    PSCD_CHECK_LT(a, b) << "LinkState: unnormalized down-link key";
    PSCD_CHECK(network_->graph().hasEdge(a, b))
        << "LinkState: down link " << a << " <-> " << b
        << " does not exist in the seed graph";
  }
  if (!downLinks_.empty() && !residualDirty_) {
    // The cached residual costs must match a fresh damaged-graph run,
    // finite exactly for the proxies still connected to the publisher.
    const std::vector<double> dist =
        shortestPaths(network_->graph(), network_->publisherNode(),
                      [this](NodeId u, NodeId v) {
                        return downLinks_.contains(linkKey(u, v));
                      });
    PSCD_CHECK_EQ(residualCost_.size(), network_->numProxies())
        << "LinkState: residual cost vector size drifted";
    for (ProxyId p = 0; p < network_->numProxies(); ++p) {
      const double d = dist[network_->proxyNode(p)];
      PSCD_CHECK_EQ(std::isfinite(residualCost_[p]), std::isfinite(d))
          << "LinkState: proxy " << p
          << " residual reachability disagrees with the damaged graph";
      if (!std::isfinite(d)) continue;
      const double expected =
          std::max(d / network_->normalizationMean(), 0.01);
      PSCD_CHECK(std::abs(residualCost_[p] - expected) <=
                 1e-9 * (1.0 + expected))
          << "LinkState: stale residual cost for proxy " << p;
    }
  }
}

}  // namespace pscd
