#include "pscd/topology/graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pscd {

Graph::Graph(std::uint32_t numNodes) : adj_(numNodes) {}

void Graph::addEdge(NodeId a, NodeId b, double weight) {
  if (a >= numNodes() || b >= numNodes()) {
    throw std::out_of_range("Graph::addEdge: node out of range");
  }
  if (a == b) throw std::invalid_argument("Graph::addEdge: self loop");
  if (weight <= 0) throw std::invalid_argument("Graph::addEdge: weight <= 0");
  adj_[a].push_back({b, weight});
  adj_[b].push_back({a, weight});
  ++edges_;
}

bool Graph::hasEdge(NodeId a, NodeId b) const {
  if (a >= numNodes() || b >= numNodes()) return false;
  const auto& na = adj_[a];
  return std::any_of(na.begin(), na.end(),
                     [b](const Edge& e) { return e.to == b; });
}

std::span<const Graph::Edge> Graph::neighbors(NodeId n) const {
  assert(n < numNodes());
  return adj_[n];
}

std::vector<std::vector<NodeId>> Graph::components() const {
  std::vector<std::vector<NodeId>> comps;
  std::vector<bool> seen(numNodes(), false);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < numNodes(); ++start) {
    if (seen[start]) continue;
    comps.emplace_back();
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      comps.back().push_back(n);
      for (const Edge& e : adj_[n]) {
        if (!seen[e.to]) {
          seen[e.to] = true;
          stack.push_back(e.to);
        }
      }
    }
  }
  return comps;
}

bool Graph::isConnected() const {
  if (numNodes() == 0) return true;
  return components().size() == 1;
}

}  // namespace pscd
