#include "pscd/topology/graph.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

#include "pscd/util/check.h"

namespace pscd {

Graph::Graph(std::uint32_t numNodes) : adj_(numNodes) {}

void Graph::addEdge(NodeId a, NodeId b, double weight) {
  if (a >= numNodes() || b >= numNodes()) {
    throw std::out_of_range("Graph::addEdge: node out of range");
  }
  if (a == b) throw std::invalid_argument("Graph::addEdge: self loop");
  if (weight <= 0) throw std::invalid_argument("Graph::addEdge: weight <= 0");
  adj_[a].push_back({b, weight});
  adj_[b].push_back({a, weight});
  ++edges_;
}

bool Graph::hasEdge(NodeId a, NodeId b) const {
  if (a >= numNodes() || b >= numNodes()) return false;
  const auto& na = adj_[a];
  return std::any_of(na.begin(), na.end(),
                     [b](const Edge& e) { return e.to == b; });
}

std::span<const Graph::Edge> Graph::neighbors(NodeId n) const {
  PSCD_DCHECK_LT(n, numNodes()) << "Graph::neighbors node out of range";
  return adj_[n];
}

std::vector<std::vector<NodeId>> Graph::components() const {
  std::vector<std::vector<NodeId>> comps;
  std::vector<bool> seen(numNodes(), false);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < numNodes(); ++start) {
    if (seen[start]) continue;
    comps.emplace_back();
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      comps.back().push_back(n);
      for (const Edge& e : adj_[n]) {
        if (!seen[e.to]) {
          seen[e.to] = true;
          stack.push_back(e.to);
        }
      }
    }
  }
  return comps;
}

bool Graph::isConnected() const {
  if (numNodes() == 0) return true;
  return components().size() == 1;
}

void Graph::checkInvariants() const {
  std::vector<std::tuple<NodeId, NodeId, double>> directed;
  directed.reserve(2 * edges_);
  for (NodeId n = 0; n < numNodes(); ++n) {
    for (const Edge& e : adj_[n]) {
      PSCD_CHECK_LT(e.to, numNodes())
          << "Graph: edge from " << n << " to out-of-range node";
      PSCD_CHECK_NE(e.to, n) << "Graph: self loop";
      PSCD_CHECK(std::isfinite(e.weight) && e.weight > 0)
          << "Graph: bad weight on edge " << n << " -> " << e.to;
      directed.emplace_back(n, e.to, e.weight);
    }
  }
  PSCD_CHECK_EQ(directed.size(), 2 * edges_)
      << "Graph: edge counter disagrees with adjacency lists";
  // Symmetry: the multiset of (a, b, w) entries must equal the multiset
  // of reversed (b, a, w) entries.
  auto reversed = directed;
  for (auto& [a, b, w] : reversed) std::swap(a, b);
  std::sort(directed.begin(), directed.end());
  std::sort(reversed.begin(), reversed.end());
  PSCD_CHECK(directed == reversed) << "Graph: asymmetric adjacency";
}

}  // namespace pscd
