#include "pscd/topology/waxman.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace pscd {

namespace {
double dist(const WaxmanTopology& t, NodeId a, NodeId b) {
  const double dx = t.x[a] - t.x[b];
  const double dy = t.y[a] - t.y[b];
  return std::sqrt(dx * dx + dy * dy);
}
}  // namespace

WaxmanTopology generateWaxman(const WaxmanParams& params, Rng& rng) {
  if (params.numNodes == 0) {
    throw std::invalid_argument("generateWaxman: numNodes must be > 0");
  }
  if (params.alpha <= 0 || params.alpha > 1 || params.beta <= 0) {
    throw std::invalid_argument("generateWaxman: bad alpha/beta");
  }
  WaxmanTopology t{Graph(params.numNodes), {}, {}};
  t.x.resize(params.numNodes);
  t.y.resize(params.numNodes);
  for (NodeId n = 0; n < params.numNodes; ++n) {
    t.x[n] = rng.uniform(0.0, params.plane);
    t.y[n] = rng.uniform(0.0, params.plane);
  }
  const double L = params.plane * std::numbers::sqrt2;
  for (NodeId a = 0; a < params.numNodes; ++a) {
    for (NodeId b = a + 1; b < params.numNodes; ++b) {
      const double d = dist(t, a, b);
      const double p = params.alpha * std::exp(-d / (params.beta * L));
      if (rng.bernoulli(p)) t.graph.addEdge(a, b, std::max(d, 1e-9));
    }
  }
  // Patch connectivity: repeatedly join the first component to the
  // closest node of another component.
  for (;;) {
    const auto comps = t.graph.components();
    if (comps.size() <= 1) break;
    double best = std::numeric_limits<double>::infinity();
    NodeId bestA = 0, bestB = 0;
    for (const NodeId a : comps[0]) {
      for (std::size_t c = 1; c < comps.size(); ++c) {
        for (const NodeId b : comps[c]) {
          const double d = dist(t, a, b);
          if (d < best) {
            best = d;
            bestA = a;
            bestB = b;
          }
        }
      }
    }
    t.graph.addEdge(bestA, bestB, std::max(best, 1e-9));
  }
  return t;
}

}  // namespace pscd
