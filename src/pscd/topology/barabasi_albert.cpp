#include "pscd/topology/barabasi_albert.h"

#include <stdexcept>
#include <vector>

namespace pscd {

Graph generateBarabasiAlbert(const BarabasiAlbertParams& params, Rng& rng) {
  const std::uint32_t m = params.edgesPerNode;
  if (m == 0) {
    throw std::invalid_argument("generateBarabasiAlbert: edgesPerNode > 0");
  }
  if (params.numNodes < m + 1) {
    throw std::invalid_argument(
        "generateBarabasiAlbert: numNodes must exceed edgesPerNode");
  }
  Graph g(params.numNodes);
  // Endpoint multiset: node appears once per incident edge, which makes
  // degree-proportional sampling O(1).
  std::vector<NodeId> endpoints;
  for (NodeId a = 0; a <= m; ++a) {
    for (NodeId b = a + 1; b <= m; ++b) {
      g.addEdge(a, b, params.edgeWeight);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  std::vector<NodeId> chosen;
  for (NodeId n = m + 1; n < params.numNodes; ++n) {
    chosen.clear();
    while (chosen.size() < m) {
      const NodeId cand = endpoints[rng.uniformInt(endpoints.size())];
      bool dup = false;
      for (const NodeId c : chosen) dup |= (c == cand);
      if (!dup) chosen.push_back(cand);
    }
    for (const NodeId c : chosen) {
      g.addEdge(n, c, params.edgeWeight);
      endpoints.push_back(n);
      endpoints.push_back(c);
    }
  }
  return g;
}

}  // namespace pscd
