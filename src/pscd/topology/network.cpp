#include "pscd/topology/network.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "pscd/topology/shortest_path.h"

namespace pscd {

Network::Network(const NetworkParams& params, Rng& rng) {
  if (params.numProxies == 0) {
    throw std::invalid_argument("Network: numProxies must be > 0");
  }
  const std::uint32_t numNodes =
      params.numProxies + params.numTransitNodes + 1;
  switch (params.model) {
    case TopologyModel::kWaxman: {
      WaxmanParams wp = params.waxman;
      wp.numNodes = numNodes;
      graph_ = generateWaxman(wp, rng).graph;
      break;
    }
    case TopologyModel::kBarabasiAlbert: {
      BarabasiAlbertParams bp = params.barabasiAlbert;
      bp.numNodes = numNodes;
      graph_ = generateBarabasiAlbert(bp, rng);
      break;
    }
  }
  // Assign roles to a random permutation of the nodes: one publisher,
  // numProxies proxies, the rest transit.
  std::vector<NodeId> perm(numNodes);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint32_t i = numNodes - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.uniformInt(static_cast<std::uint64_t>(i) + 1)]);
  }
  publisherNode_ = perm[0];
  proxyNode_.assign(perm.begin() + 1, perm.begin() + 1 + params.numProxies);

  const std::vector<double> dist = shortestPaths(graph_, publisherNode_);
  fetchCost_.resize(params.numProxies);
  double sum = 0.0;
  for (std::uint32_t p = 0; p < params.numProxies; ++p) {
    fetchCost_[p] = dist[proxyNode_[p]];
    sum += fetchCost_[p];
  }
  const double mean = sum / params.numProxies;
  if (mean <= 0) throw std::logic_error("Network: degenerate distances");
  for (auto& c : fetchCost_) {
    c = std::max(c / mean, 0.01);  // normalize; publisher-colocated
                                   // proxies keep a small positive cost
  }
}

}  // namespace pscd
