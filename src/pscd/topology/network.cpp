#include "pscd/topology/network.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "pscd/topology/shortest_path.h"
#include "pscd/util/check.h"

namespace pscd {

Network::Network(const NetworkParams& params, Rng& rng) {
  if (params.numProxies == 0) {
    throw std::invalid_argument("Network: numProxies must be > 0");
  }
  const std::uint32_t numNodes =
      params.numProxies + params.numTransitNodes + 1;
  switch (params.model) {
    case TopologyModel::kWaxman: {
      WaxmanParams wp = params.waxman;
      wp.numNodes = numNodes;
      graph_ = generateWaxman(wp, rng).graph;
      break;
    }
    case TopologyModel::kBarabasiAlbert: {
      BarabasiAlbertParams bp = params.barabasiAlbert;
      bp.numNodes = numNodes;
      graph_ = generateBarabasiAlbert(bp, rng);
      break;
    }
  }
  // Assign roles to a random permutation of the nodes: one publisher,
  // numProxies proxies, the rest transit.
  std::vector<NodeId> perm(numNodes);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint32_t i = numNodes - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.uniformInt(static_cast<std::uint64_t>(i) + 1)]);
  }
  publisherNode_ = perm[0];
  proxyNode_.assign(perm.begin() + 1, perm.begin() + 1 + params.numProxies);
  computeFetchCosts();
}

Network::Network(Graph graph, NodeId publisherNode,
                 std::vector<NodeId> proxyNodes)
    : graph_(std::move(graph)),
      publisherNode_(publisherNode),
      proxyNode_(std::move(proxyNodes)) {
  if (proxyNode_.empty()) {
    throw std::invalid_argument("Network: at least one proxy required");
  }
  PSCD_CHECK_LT(publisherNode_, graph_.numNodes())
      << "Network: publisher node off the graph";
  std::vector<bool> taken(graph_.numNodes(), false);
  taken[publisherNode_] = true;
  for (const NodeId n : proxyNode_) {
    PSCD_CHECK_LT(n, graph_.numNodes()) << "Network: proxy node off the graph";
    PSCD_CHECK(!taken[n]) << "Network: node " << n << " hosts two roles";
    taken[n] = true;
  }
  computeFetchCosts();
}

void Network::computeFetchCosts() {
  const std::vector<double> dist = shortestPaths(graph_, publisherNode_);
  const std::size_t numProxies = proxyNode_.size();
  fetchCost_.resize(numProxies);
  double sum = 0.0;
  std::size_t reachable = 0;
  for (std::size_t p = 0; p < numProxies; ++p) {
    fetchCost_[p] = dist[proxyNode_[p]];
    if (std::isfinite(fetchCost_[p])) {
      sum += fetchCost_[p];
      ++reachable;
    }
  }
  if (reachable == 0) {
    throw std::logic_error("Network: no proxy can reach the publisher");
  }
  const double mean = sum / static_cast<double>(reachable);
  if (mean <= 0) throw std::logic_error("Network: degenerate distances");
  normMean_ = mean;
  for (auto& c : fetchCost_) {
    if (!std::isfinite(c)) continue;  // partitioned proxies keep c = inf
    c = std::max(c / mean, 0.01);     // normalize; publisher-colocated
                                      // proxies keep a small positive cost
  }
}

void Network::checkInvariants() const {
  graph_.checkInvariants();
  PSCD_CHECK_LT(publisherNode_, graph_.numNodes())
      << "Network: publisher off the graph";
  PSCD_CHECK(!proxyNode_.empty()) << "Network: no proxies placed";
  PSCD_CHECK_EQ(proxyNode_.size(), fetchCost_.size())
      << "Network: one fetch cost per proxy required";
  std::vector<bool> taken(graph_.numNodes(), false);
  taken[publisherNode_] = true;
  for (const NodeId n : proxyNode_) {
    PSCD_CHECK_LT(n, graph_.numNodes()) << "Network: proxy off the graph";
    PSCD_CHECK(!taken[n]) << "Network: node " << n << " hosts two roles";
    taken[n] = true;
  }
  // Re-derive the fetch costs from a fresh Dijkstra run and compare
  // against the stored, normalized values. Stored costs must be finite
  // exactly for the proxies the fresh run can reach.
  const std::vector<double> dist = shortestPaths(graph_, publisherNode_);
  checkShortestPathTree(graph_, publisherNode_, dist);
  double sum = 0.0;
  std::size_t reachableCount = 0;
  for (std::size_t p = 0; p < proxyNode_.size(); ++p) {
    PSCD_CHECK_EQ(std::isfinite(fetchCost_[p]),
                  std::isfinite(dist[proxyNode_[p]]))
        << "Network: proxy " << p
        << " finite-cost/reachability mismatch with the topology";
    PSCD_CHECK_EQ(reachable(static_cast<ProxyId>(p)),
                  std::isfinite(dist[proxyNode_[p]]))
        << "Network: reachable(" << p << ") disagrees with the topology";
    if (std::isfinite(dist[proxyNode_[p]])) {
      sum += dist[proxyNode_[p]];
      ++reachableCount;
    }
  }
  PSCD_CHECK_GT(reachableCount, 0u)
      << "Network: no proxy can reach the publisher";
  const double mean = sum / static_cast<double>(reachableCount);
  PSCD_CHECK_GT(mean, 0.0) << "Network: degenerate distances";
  PSCD_CHECK(std::abs(normMean_ - mean) <= 1e-9 * (1.0 + mean))
      << "Network: stored normalization mean drifted from the topology";
  for (std::size_t p = 0; p < proxyNode_.size(); ++p) {
    if (!std::isfinite(dist[proxyNode_[p]])) continue;
    const double expected = std::max(dist[proxyNode_[p]] / mean, 0.01);
    PSCD_CHECK(std::abs(fetchCost_[p] - expected) <=
               1e-9 * (1.0 + expected))
        << "Network: fetch cost of proxy " << p
        << " inconsistent with the topology";
  }
}

}  // namespace pscd
