// Weighted undirected graph used to model the publisher/proxy overlay
// network. The paper uses a BRITE-generated random topology; we provide
// Waxman and Barabasi-Albert generators over this graph type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pscd {

using NodeId = std::uint32_t;

/// Adjacency-list weighted undirected graph. Nodes are dense ids
/// [0, numNodes). Parallel edges are not deduplicated (generators avoid
/// creating them); self-loops are rejected.
class Graph {
 public:
  struct Edge {
    NodeId to;
    double weight;
  };

  explicit Graph(std::uint32_t numNodes = 0);

  std::uint32_t numNodes() const {
    return static_cast<std::uint32_t>(adj_.size());
  }
  std::size_t numEdges() const { return edges_; }

  /// Adds an undirected edge; weight must be positive.
  void addEdge(NodeId a, NodeId b, double weight);

  bool hasEdge(NodeId a, NodeId b) const;

  std::span<const Edge> neighbors(NodeId n) const;

  std::uint32_t degree(NodeId n) const {
    return static_cast<std::uint32_t>(adj_[n].size());
  }

  /// True when every node is reachable from node 0 (or the graph is empty).
  bool isConnected() const;

  /// Ids of the connected components, one representative list per
  /// component (used by generators to patch connectivity).
  std::vector<std::vector<NodeId>> components() const;

  /// Throws CheckFailure unless the adjacency is symmetric (every a->b
  /// entry has a matching b->a entry with the same weight), all weights
  /// are positive and finite, there are no self loops, and the edge
  /// counter matches the adjacency lists.
  void checkInvariants() const;

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  std::vector<std::vector<Edge>> adj_;
  std::size_t edges_ = 0;
};

}  // namespace pscd
