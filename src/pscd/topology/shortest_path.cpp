#include "pscd/topology/shortest_path.h"

#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace pscd {

std::vector<double> shortestPaths(const Graph& g, NodeId src) {
  if (src >= g.numNodes()) {
    throw std::out_of_range("shortestPaths: src out of range");
  }
  std::vector<double> dist(g.numNodes(),
                           std::numeric_limits<double>::infinity());
  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, n] = pq.top();
    pq.pop();
    if (d > dist[n]) continue;  // stale entry
    for (const Graph::Edge& e : g.neighbors(n)) {
      const double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        pq.emplace(nd, e.to);
      }
    }
  }
  return dist;
}

}  // namespace pscd
