#include "pscd/topology/shortest_path.h"

#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "pscd/util/check.h"

namespace pscd {

namespace {

/// Skip = anything callable as bool(NodeId, NodeId); the unfiltered
/// entry point instantiates it with a no-op lambda so the hot path pays
/// no std::function indirection.
template <typename Skip>
std::vector<double> dijkstra(const Graph& g, NodeId src, Skip&& skipEdge) {
  if (src >= g.numNodes()) {
    throw std::out_of_range("shortestPaths: src out of range");
  }
  std::vector<double> dist(g.numNodes(),
                           std::numeric_limits<double>::infinity());
  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, n] = pq.top();
    pq.pop();
    if (d > dist[n]) continue;  // stale entry
    for (const Graph::Edge& e : g.neighbors(n)) {
      if (skipEdge(n, e.to)) continue;
      const double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        pq.emplace(nd, e.to);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<double> shortestPaths(const Graph& g, NodeId src) {
  return dijkstra(g, src, [](NodeId, NodeId) { return false; });
}

std::vector<double> shortestPaths(
    const Graph& g, NodeId src,
    const std::function<bool(NodeId, NodeId)>& skipEdge) {
  PSCD_CHECK(skipEdge != nullptr) << "shortestPaths: null edge filter";
  return dijkstra(g, src, skipEdge);
}

void checkShortestPathTree(const Graph& g, NodeId src,
                           std::span<const double> dist) {
  PSCD_CHECK_EQ(dist.size(), g.numNodes())
      << "shortest-path check: one distance per node required";
  PSCD_CHECK_LT(src, g.numNodes()) << "shortest-path check: bad source";
  PSCD_CHECK_EQ(dist[src], 0.0) << "shortest-path check: nonzero source";
  // Relative tolerance for the float additions along a path.
  constexpr double kEps = 1e-9;
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    PSCD_CHECK(dist[u] >= 0.0) << "shortest-path check: negative distance";
    if (std::isinf(dist[u])) continue;
    const double slack = kEps * (1.0 + dist[u]);
    for (const Graph::Edge& e : g.neighbors(u)) {
      PSCD_CHECK_LE(dist[e.to], dist[u] + e.weight + slack)
          << "shortest-path check: relaxable edge " << u << " -> " << e.to;
    }
    if (u == src) continue;
    // Tree property: some neighbor must witness this distance exactly.
    bool witnessed = false;
    for (const Graph::Edge& e : g.neighbors(u)) {
      if (std::abs(dist[e.to] + e.weight - dist[u]) <= slack) {
        witnessed = true;
        break;
      }
    }
    PSCD_CHECK(witnessed)
        << "shortest-path check: node " << u << " has no tight predecessor";
  }
}

}  // namespace pscd
