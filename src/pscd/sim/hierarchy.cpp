#include "pscd/sim/hierarchy.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pscd {

namespace {

Bytes fractionOf(double fraction, Bytes total) {
  return std::max<Bytes>(
      static_cast<Bytes>(std::llround(fraction * static_cast<double>(total))),
      1);
}

}  // namespace

HierarchyResult runHierarchical(const Workload& workload,
                                const Network& network,
                                const HierarchyConfig& config) {
  if (workload.numProxies() != network.numProxies()) {
    throw std::invalid_argument("runHierarchical: proxy count mismatch");
  }
  if (config.numParents == 0) {
    throw std::invalid_argument("runHierarchical: numParents must be > 0");
  }
  const std::uint32_t numProxies = workload.numProxies();
  const std::uint32_t numParents = config.numParents;

  // Leaf -> parent assignment (round-robin) and subtree unique bytes.
  std::vector<std::uint32_t> parentOf(numProxies);
  std::vector<Bytes> subtreeBytes(numParents, 0);
  for (ProxyId p = 0; p < numProxies; ++p) {
    parentOf[p] = p % numParents;
    subtreeBytes[parentOf[p]] += workload.uniqueBytesRequested[p];
  }

  // Strategies.
  std::vector<std::unique_ptr<DistributionStrategy>> leaves;
  leaves.reserve(numProxies);
  for (ProxyId p = 0; p < numProxies; ++p) {
    StrategyParams sp;
    sp.capacity = fractionOf(config.leafCapacityFraction,
                             workload.uniqueBytesRequested[p]);
    sp.fetchCost = network.fetchCost(p);
    sp.beta = config.beta;
    leaves.push_back(makeStrategy(config.leafStrategy, sp));
  }
  std::vector<std::unique_ptr<DistributionStrategy>> parents;
  parents.reserve(numParents);
  for (std::uint32_t g = 0; g < numParents; ++g) {
    StrategyParams sp;
    sp.capacity = fractionOf(config.parentCapacityFraction, subtreeBytes[g]);
    sp.fetchCost = 1.0;  // parents sit at the mean publisher distance
    sp.beta = config.beta;
    parents.push_back(makeStrategy(config.parentStrategy, sp));
  }

  HierarchyResult result;
  std::vector<Version> latest(workload.numPages(), 0);
  std::vector<std::uint32_t> parentMatch(numParents);

  // Subtree-aggregated subscription counts per (page, parent), used as
  // the parents' subscription factor at access time.
  std::vector<std::uint32_t> parentSubs(
      static_cast<std::size_t>(workload.numPages()) * numParents, 0);
  for (PageId page = 0; page < workload.numPages(); ++page) {
    for (const Notification& n : workload.subscriptions(page)) {
      parentSubs[static_cast<std::size_t>(page) * numParents +
                 parentOf[n.proxy]] += n.matchCount;
    }
  }

  std::size_t pi = 0, ri = 0;
  while (pi < workload.publishes.size() || ri < workload.requests.size()) {
    const bool takePublish =
        pi < workload.publishes.size() &&
        (ri >= workload.requests.size() ||
         workload.publishes[pi].time <= workload.requests[ri].time);
    if (takePublish) {
      const PublishEvent& ev = workload.publishes[pi++];
      latest[ev.page] = ev.version;
      // Leaf pushes, plus per-parent aggregation of the subtree counts.
      std::fill(parentMatch.begin(), parentMatch.end(), 0u);
      for (const Notification& n : workload.subscriptions(ev.page)) {
        parentMatch[parentOf[n.proxy]] += n.matchCount;
        if (leaves[n.proxy]->pushCapable()) {
          if (leaves[n.proxy]
                  ->onPush({ev.page, ev.version, ev.size, n.matchCount,
                            ev.time})
                  .stored) {
            ++result.publisherPages;  // leaf pushes come from the
                                      // publisher (when-necessary scheme)
          }
        }
      }
      for (std::uint32_t g = 0; g < numParents; ++g) {
        if (parentMatch[g] == 0 || !parents[g]->pushCapable()) continue;
        if (parents[g]
                ->onPush(
                    {ev.page, ev.version, ev.size, parentMatch[g], ev.time})
                .stored) {
          ++result.publisherPages;
        }
      }
    } else {
      const RequestEvent& ev = workload.requests[ri++];
      ++result.requests;
      const Bytes size = workload.pages[ev.page].size;
      const std::uint32_t subs =
          workload.subscriptionCount(ev.page, ev.proxy);
      const auto leafOut = leaves[ev.proxy]->onRequest(
          {ev.page, latest[ev.page], size, subs, ev.time});
      if (leafOut.hit) {
        ++result.leafHits;
        result.meanResponseTimeMs += config.leafLatencyMs;
        continue;
      }
      // Leaf miss: consult the regional parent (its access state is
      // driven by exactly this filtered miss stream).
      const std::uint32_t g = parentOf[ev.proxy];
      const auto parentOut = parents[g]->onRequest(
          {ev.page, latest[ev.page], size,
           parentSubs[static_cast<std::size_t>(ev.page) * numParents + g],
           ev.time});
      if (parentOut.hit) {
        ++result.parentHits;
        result.meanResponseTimeMs += config.parentLatencyMs;
      } else {
        ++result.publisherPages;  // fetched from the origin
        result.meanResponseTimeMs += config.publisherLatencyMs;
      }
    }
  }
  if (result.requests > 0) {
    result.meanResponseTimeMs /= static_cast<double>(result.requests);
  }
  return result;
}

}  // namespace pscd
