#include "pscd/sim/parallel_runner.h"

#include <functional>
#include <utility>

#include "pscd/util/check.h"
#include "pscd/util/rng.h"
#include "pscd/util/thread_pool.h"

namespace pscd {

std::uint64_t cellSeed(std::uint64_t baseSeed, std::uint64_t cellIndex) {
  // SplitMix64 over (base, index): two rounds decorrelate neighbouring
  // indices; the golden-ratio increment keeps distinct bases disjoint.
  std::uint64_t state = baseSeed + (cellIndex + 1) * 0x9e3779b97f4a7c15ull;
  splitmix64(state);
  return splitmix64(state);
}

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(resolveJobs(jobs)) {}

std::size_t ParallelRunner::schedule(ExperimentContext& context,
                                     const ExperimentCell& cell) {
  cells_.push_back(Scheduled{&context, cell});
  return cells_.size() - 1;
}

void ParallelRunner::runAll() {
  {
    MutexLock lock(mu_);
    results_.resize(cells_.size());
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(cells_.size() - nextToRun_);
  for (std::size_t i = nextToRun_; i < cells_.size(); ++i) {
    tasks.push_back([this, i] {
      const Scheduled& s = cells_[i];
      const double beta =
          s.cell.beta ? *s.cell.beta
                      : paperBeta(s.cell.strategy, s.cell.trace,
                                  s.cell.capacityFraction);
      SimMetrics metrics = s.context->runWithBeta(
          s.cell.trace, s.cell.subscriptionQuality, s.cell.strategy,
          s.cell.capacityFraction, beta, s.cell.scheme, s.cell.collectHourly,
          s.cell.faults);
      MutexLock lock(mu_);
      results_[i] = std::move(metrics);
    });
  }
  nextToRun_ = cells_.size();
  if (jobs_ <= 1) {
    pscd::runAll(nullptr, std::move(tasks));
    return;
  }
  ThreadPool pool(jobs_);
  pscd::runAll(&pool, std::move(tasks));
}

SimMetrics ParallelRunner::result(std::size_t index) const {
  PSCD_CHECK(index < cells_.size())
      << "ParallelRunner::result index " << index << " out of range ("
      << cells_.size() << " cells)";
  MutexLock lock(mu_);
  PSCD_CHECK(index < results_.size() && results_[index].has_value())
      << "ParallelRunner::result(" << index << ") before runAll()";
  return *results_[index];
}

}  // namespace pscd
