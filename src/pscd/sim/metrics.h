// Simulation metrics: the global hit ratio H over all proxies (eq. 8),
// per-proxy hit ratios, and the publisher->proxy traffic split into push
// transfers and miss fetches, with hourly series for figures 6 and 7.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pscd/util/stats.h"
#include "pscd/util/types.h"

namespace pscd {

struct TrafficTotals {
  std::uint64_t pushPages = 0;
  Bytes pushBytes = 0;
  std::uint64_t fetchPages = 0;
  Bytes fetchBytes = 0;

  std::uint64_t totalPages() const { return pushPages + fetchPages; }
  Bytes totalBytes() const { return pushBytes + fetchBytes; }
};

class SimMetrics {
 public:
  /// hours > 0 enables the hourly series.
  SimMetrics(std::uint32_t numProxies, std::size_t hours);

  /// responseTime is the user-perceived latency of this request under
  /// the simulator's latency model (hits are served locally, misses pay
  /// the publisher round trip scaled by the proxy's network distance).
  void recordRequest(ProxyId proxy, SimTime t, bool hit, bool stale,
                     Bytes fetchedBytes, double responseTime = 0.0);
  void recordPush(SimTime t, std::uint64_t pages, Bytes bytes);

  std::uint64_t requests() const { return requests_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t staleMisses() const { return staleMisses_; }

  /// Global hit ratio H in [0, 1]; 0 when no requests were issued.
  double hitRatio() const;
  double proxyHitRatio(ProxyId proxy) const;

  /// Mean user-perceived response time (the paper's motivating metric:
  /// "a high hit ratio in a local server generally means a smaller
  /// response time").
  double meanResponseTime() const;

  const TrafficTotals& traffic() const { return traffic_; }

  bool hasHourly() const { return hourlyHits_.has_value(); }
  /// Hit ratio of one hour (fig. 6).
  double hourlyHitRatio(std::size_t hour) const;
  /// Pages transferred publisher->proxies in one hour (fig. 7).
  double hourlyTrafficPages(std::size_t hour) const;
  Bytes hourlyTrafficBytes(std::size_t hour) const;
  std::size_t hours() const;

 private:
  std::uint64_t requests_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t staleMisses_ = 0;
  double responseTimeSum_ = 0.0;
  TrafficTotals traffic_;
  std::vector<std::uint64_t> proxyRequests_;
  std::vector<std::uint64_t> proxyHits_;
  std::optional<HourlySeries> hourlyHits_;     // hits / requests
  std::optional<HourlySeries> hourlyPages_;    // push+fetch pages
  std::optional<HourlySeries> hourlyBytes_;    // push+fetch bytes
};

}  // namespace pscd
