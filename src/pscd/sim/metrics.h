// Simulation metrics: the global hit ratio H over all proxies (eq. 8),
// per-proxy hit ratios, and the publisher->proxy traffic split into push
// transfers and miss fetches, with hourly series for figures 6 and 7.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pscd/util/stats.h"
#include "pscd/util/types.h"

namespace pscd {

struct TrafficTotals {
  std::uint64_t pushPages = 0;
  Bytes pushBytes = 0;
  std::uint64_t fetchPages = 0;
  Bytes fetchBytes = 0;
  /// Push transfers that never arrived (failure layer); the bytes were
  /// sent by the publisher but wasted. Not part of totalBytes().
  std::uint64_t lostPushPages = 0;
  Bytes lostPushBytes = 0;

  std::uint64_t totalPages() const { return pushPages + fetchPages; }
  Bytes totalBytes() const { return pushBytes + fetchBytes; }
};

/// Failure-layer observations of one request (all defaults describe the
/// ideal fault-free overlay).
struct RequestFaultStats {
  std::uint32_t retries = 0;
  bool servedStale = false;
  bool failover = false;
  bool unavailable = false;
};

class SimMetrics {
 public:
  /// hours > 0 enables the hourly series.
  SimMetrics(std::uint32_t numProxies, std::size_t hours);

  /// responseTime is the user-perceived latency of this request under
  /// the simulator's latency model (hits are served locally, misses pay
  /// the publisher round trip scaled by the proxy's network distance,
  /// and failed fetch attempts add their backoff). For an unavailable
  /// request the responseTime argument is ignored — it has no response.
  void recordRequest(ProxyId proxy, SimTime t, bool hit, bool stale,
                     Bytes fetchedBytes, double responseTime = 0.0,
                     const RequestFaultStats& faults = {});
  void recordPush(SimTime t, std::uint64_t pages, Bytes bytes,
                  std::uint64_t lostPages = 0, Bytes lostBytes = 0);

  std::uint64_t requests() const { return requests_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t staleMisses() const { return staleMisses_; }

  /// Failure-layer counters (all zero on a fault-free run).
  std::uint64_t staleServes() const { return staleServes_; }
  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t unavailableRequests() const { return unavailable_; }
  std::uint64_t totalRetries() const { return retries_; }
  std::uint64_t servedRequests() const { return requests_ - unavailable_; }

  /// Fraction of requests that received *any* response — fresh, stale
  /// or failover (1 when no requests were issued).
  double availability() const;
  /// Fraction of served requests answered with a stale copy after the
  /// publisher fetch was abandoned.
  double staleServeRate() const;
  /// Mean failed-then-retried fetch attempts per request.
  double retriesPerRequest() const;

  /// Global hit ratio H in [0, 1]; 0 when no requests were issued.
  double hitRatio() const;
  double proxyHitRatio(ProxyId proxy) const;

  /// Mean user-perceived response time over the *served* requests (the
  /// paper's motivating metric: "a high hit ratio in a local server
  /// generally means a smaller response time"). Unavailable requests
  /// have no response and are excluded; on a fault-free run every
  /// request is served, so the value is unchanged from the
  /// pre-failure-layer definition.
  double meanResponseTime() const;

  const TrafficTotals& traffic() const { return traffic_; }

  /// Publisher->proxy traffic weighted by unavailability: total bytes
  /// (including lost pushes) divided by availability, so a scheme
  /// cannot look cheap by simply failing its users. +infinity when
  /// traffic flowed but no request was ever served.
  double unavailabilityWeightedBytes() const;

  bool hasHourly() const { return hourlyHits_.has_value(); }
  /// Hit ratio of one hour (fig. 6).
  double hourlyHitRatio(std::size_t hour) const;
  /// Pages transferred publisher->proxies in one hour (fig. 7).
  double hourlyTrafficPages(std::size_t hour) const;
  Bytes hourlyTrafficBytes(std::size_t hour) const;
  std::size_t hours() const;

 private:
  std::uint64_t requests_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t staleMisses_ = 0;
  std::uint64_t staleServes_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t unavailable_ = 0;
  std::uint64_t retries_ = 0;
  double responseTimeSum_ = 0.0;
  TrafficTotals traffic_;
  std::vector<std::uint64_t> proxyRequests_;
  std::vector<std::uint64_t> proxyHits_;
  std::optional<HourlySeries> hourlyHits_;     // hits / requests
  std::optional<HourlySeries> hourlyPages_;    // push+fetch pages
  std::optional<HourlySeries> hourlyBytes_;    // push+fetch bytes
};

}  // namespace pscd
