// Shared experiment harness for the benchmark binaries: canonical trace
// construction (NEWS / ALTERNATIVE at a given subscription quality), a
// cached workload/network store so sweeps do not regenerate traces, and
// the per-trace beta settings the paper reports in section 5.1.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "pscd/cache/strategy_factory.h"
#include "pscd/core/engine.h"
#include "pscd/core/fault_plan.h"
#include "pscd/sim/metrics.h"
#include "pscd/topology/network.h"
#include "pscd/util/mutex.h"
#include "pscd/workload/workload.h"

namespace pscd {

enum class TraceKind { kNews, kAlternative };

inline constexpr double kCapacityFractions[] = {0.01, 0.05, 0.10};

std::string_view traceName(TraceKind trace);

/// Workload parameters of a canonical trace at the given subscription
/// quality (NEWS: Zipf alpha 1.5; ALTERNATIVE: alpha 1.0), optionally
/// shrunk by `scale` in (0, 1] (requests/pages scaled together, proxy
/// count untouched so the trace still matches the canonical network).
/// scale = 1 is the paper's full setup.
WorkloadParams traceParams(TraceKind trace, double subscriptionQuality,
                           double scale = 1.0);

/// Beta used for a strategy in the headline experiments, following the
/// paper's tuning: beta = 2 throughout for NEWS; for ALTERNATIVE beta =
/// 0.5 in SG2 and 2 elsewhere (1 at the 1% capacity setting). Strategies
/// without a beta (SUB, SR, LRU) return 1.
double paperBeta(StrategyKind strategy, TraceKind trace,
                 double capacityFraction);

/// Builds and memoizes canonical workloads, the overlay network, and
/// finished simulation results so a bench can sweep strategies without
/// regenerating traces or re-running cells it already rendered once.
///
/// Thread-safe: the memo maps (the experiment registry) live behind one
/// annotated mutex, so ParallelRunner can fan independent cells out
/// across a ThreadPool. Workload/network construction happens under the
/// lock (built exactly once, then read concurrently as const);
/// simulations run outside it and merge their metrics back under it.
/// Every run is deterministic in (seeds, scale, cell parameters) alone,
/// so serial and parallel sweeps produce identical results.
class ExperimentContext {
 public:
  explicit ExperimentContext(std::uint64_t workloadSeed = 42,
                             std::uint64_t topologySeed = 7,
                             double scale = 1.0);

  const Workload& workload(TraceKind trace, double subscriptionQuality)
      PSCD_EXCLUDES(mu_);
  const Network& network() PSCD_EXCLUDES(mu_);

  /// Runs one simulation with the paper's beta for the setting; pass a
  /// FaultConfig to run the cell under the failure model (the default
  /// disables it).
  SimMetrics run(TraceKind trace, double subscriptionQuality,
                 StrategyKind strategy, double capacityFraction,
                 PushScheme scheme = PushScheme::kAlwaysPushing,
                 bool collectHourly = false,
                 const FaultConfig& faults = {}) PSCD_EXCLUDES(mu_);

  /// Same but with an explicit beta (used by the beta-sweep bench).
  SimMetrics runWithBeta(TraceKind trace, double subscriptionQuality,
                         StrategyKind strategy, double capacityFraction,
                         double beta,
                         PushScheme scheme = PushScheme::kAlwaysPushing,
                         bool collectHourly = false,
                         const FaultConfig& faults = {}) PSCD_EXCLUDES(mu_);

  std::uint64_t workloadSeed() const { return workloadSeed_; }
  std::uint64_t topologySeed() const { return topologySeed_; }
  double scale() const { return scale_; }

 private:
  /// Every FaultConfig field, flattened so distinct failure settings
  /// memoize as distinct cells.
  using FaultKey =
      std::tuple<std::uint64_t, double, double, bool, double, double, double,
                 double, bool, std::uint32_t, double, double>;
  static FaultKey faultKey(const FaultConfig& faults);

  /// One simulation setting; doubles are compared bit-exactly, which is
  /// fine because keys are always rebuilt from the same literals.
  using CellKey =
      std::tuple<int, double, int, double, double, int, bool, FaultKey>;

  std::uint64_t workloadSeed_;
  std::uint64_t topologySeed_;
  double scale_;

  mutable Mutex mu_;
  std::map<std::pair<int, double>, std::unique_ptr<Workload>> workloads_
      PSCD_GUARDED_BY(mu_);
  std::unique_ptr<Network> network_ PSCD_GUARDED_BY(mu_);
  std::map<CellKey, SimMetrics> results_ PSCD_GUARDED_BY(mu_);
};

}  // namespace pscd
