// Shared experiment harness for the benchmark binaries: canonical trace
// construction (NEWS / ALTERNATIVE at a given subscription quality), a
// cached workload/network store so sweeps do not regenerate traces, and
// the per-trace beta settings the paper reports in section 5.1.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "pscd/sim/simulator.h"
#include "pscd/topology/network.h"
#include "pscd/workload/workload.h"

namespace pscd {

enum class TraceKind { kNews, kAlternative };

inline constexpr double kCapacityFractions[] = {0.01, 0.05, 0.10};

std::string_view traceName(TraceKind trace);

/// Workload parameters of a canonical trace at the given subscription
/// quality (NEWS: Zipf alpha 1.5; ALTERNATIVE: alpha 1.0).
WorkloadParams traceParams(TraceKind trace, double subscriptionQuality);

/// Beta used for a strategy in the headline experiments, following the
/// paper's tuning: beta = 2 throughout for NEWS; for ALTERNATIVE beta =
/// 0.5 in SG2 and 2 elsewhere (1 at the 1% capacity setting). Strategies
/// without a beta (SUB, SR, LRU) return 1.
double paperBeta(StrategyKind strategy, TraceKind trace,
                 double capacityFraction);

/// Builds and memoizes canonical workloads and the overlay network so a
/// bench can sweep strategies without regenerating traces. Not
/// thread-safe (benches are single-threaded).
class ExperimentContext {
 public:
  explicit ExperimentContext(std::uint64_t workloadSeed = 42,
                             std::uint64_t topologySeed = 7);

  const Workload& workload(TraceKind trace, double subscriptionQuality);
  const Network& network();

  /// Runs one simulation with the paper's beta for the setting.
  SimMetrics run(TraceKind trace, double subscriptionQuality,
                 StrategyKind strategy, double capacityFraction,
                 PushScheme scheme = PushScheme::kAlwaysPushing,
                 bool collectHourly = false);

  /// Same but with an explicit beta (used by the beta-sweep bench).
  SimMetrics runWithBeta(TraceKind trace, double subscriptionQuality,
                         StrategyKind strategy, double capacityFraction,
                         double beta,
                         PushScheme scheme = PushScheme::kAlwaysPushing,
                         bool collectHourly = false);

 private:
  std::uint64_t workloadSeed_;
  std::uint64_t topologySeed_;
  std::map<std::pair<int, double>, std::unique_ptr<Workload>> workloads_;
  std::unique_ptr<Network> network_;
};

}  // namespace pscd
