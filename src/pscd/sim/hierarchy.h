// Hierarchical (two-tier) content distribution: regional parent caches
// sit between the publisher and groups of leaf proxies, as in the
// redirection-based hierarchical CDNs the paper discusses in section 6
// (Gadde et al.). A leaf miss is retried at the leaf's parent before the
// publisher; parents see only the leaves' miss streams and aggregate
// their children's subscriptions for push-time placement.
//
// The paper argues server-initiated pushing "helps to improve the hit
// ratio even when passive caching achieves its upper limit" — i.e. a
// parent tier should rescue the access-only baseline far more than the
// push-based schemes, which already place content ahead of demand
// (bench_hierarchy quantifies this).
#pragma once

#include <memory>
#include <vector>

#include "pscd/cache/strategy_factory.h"
#include "pscd/topology/network.h"
#include "pscd/workload/workload.h"

namespace pscd {

struct HierarchyConfig {
  /// Strategy run at the leaf proxies and at the regional parents.
  StrategyKind leafStrategy = StrategyKind::kGDStar;
  StrategyKind parentStrategy = StrategyKind::kGDStar;
  double beta = 2.0;
  /// Number of regional parent caches; leaves are assigned round-robin.
  std::uint32_t numParents = 5;
  /// Leaf capacity as a fraction of the leaf's unique requested bytes.
  double leafCapacityFraction = 0.05;
  /// Parent capacity as a fraction of the unique bytes of its subtree.
  double parentCapacityFraction = 0.05;
  /// Latency model: leaf hit, parent hit, publisher fetch.
  double leafLatencyMs = 5.0;
  double parentLatencyMs = 30.0;
  double publisherLatencyMs = 105.0;
};

struct HierarchyResult {
  std::uint64_t requests = 0;
  std::uint64_t leafHits = 0;
  std::uint64_t parentHits = 0;  // misses served by the parent tier
  double meanResponseTimeMs = 0.0;
  /// Pages transferred publisher -> parents/leaves (pushes + fetches).
  std::uint64_t publisherPages = 0;

  double leafHitRatio() const {
    return requests ? static_cast<double>(leafHits) / requests : 0.0;
  }
  /// Fraction of requests served inside the hierarchy (leaf or parent).
  double combinedHitRatio() const {
    return requests
               ? static_cast<double>(leafHits + parentHits) / requests
               : 0.0;
  }
};

/// Replays the workload over the two-tier hierarchy. Push-capable leaf
/// strategies receive per-leaf matched pushes; push-capable parent
/// strategies receive one push per parent with the subtree's aggregated
/// match count. Parent access state is driven by leaf misses only.
HierarchyResult runHierarchical(const Workload& workload,
                                const Network& network,
                                const HierarchyConfig& config);

}  // namespace pscd
