// Parallel experiment runner: fans independent (seed x strategy x
// config) simulation cells out across a ThreadPool and collects their
// metrics in schedule order.
//
// Determinism contract (DESIGN.md section 8): a cell's result depends
// only on its ExperimentContext seeds/scale and its own parameters —
// never on scheduling. Each cell that needs randomness derives a
// private seed from its index via cellSeed() instead of drawing from a
// shared RNG, and results are merged under an annotated mutex into a
// slot fixed at schedule time. Serial (jobs = 1, which runs inline on
// the calling thread) and parallel runs therefore produce bit-identical
// metrics, CSVs, and tables.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pscd/sim/experiment.h"
#include "pscd/util/mutex.h"

namespace pscd {

/// Derives the private RNG seed of cell `cellIndex` from a base seed:
/// deterministic, order-free, and decorrelated across indices
/// (SplitMix64 over the index stream). Use this — never a shared Rng —
/// when generating per-cell randomness.
std::uint64_t cellSeed(std::uint64_t baseSeed, std::uint64_t cellIndex);

/// One simulation setting to run under an ExperimentContext.
struct ExperimentCell {
  TraceKind trace = TraceKind::kNews;
  double subscriptionQuality = 1.0;
  StrategyKind strategy = StrategyKind::kGDStar;
  double capacityFraction = 0.05;
  PushScheme scheme = PushScheme::kAlwaysPushing;
  bool collectHourly = false;
  /// When set, overrides paperBeta() for this cell.
  std::optional<double> beta;
  /// Failure model of this cell (default: disabled, ideal overlay). A
  /// cell wanting stochastic faults should set faults.seed from its own
  /// cellSeed() so the schedule stays order-free.
  FaultConfig faults{};
};

class ParallelRunner {
 public:
  /// jobs = 0 resolves to hardware_concurrency; jobs = 1 never spawns a
  /// thread (the benches' serial baseline).
  explicit ParallelRunner(unsigned jobs = 0);

  /// Registers a cell (cells may target different contexts, e.g. one
  /// per workload seed). Returns its index; results keep this order.
  /// The context must outlive runAll().
  std::size_t schedule(ExperimentContext& context, const ExperimentCell& cell);

  /// Runs every scheduled cell, fanning out across `jobs` workers, and
  /// blocks until all are done. The first cell failure is rethrown
  /// after the batch drains. May be called repeatedly as more cells are
  /// scheduled; already-finished cells are not re-run.
  void runAll() PSCD_EXCLUDES(mu_);

  /// Metrics of cell `index`; requires runAll() to have covered it.
  SimMetrics result(std::size_t index) const PSCD_EXCLUDES(mu_);

  unsigned jobs() const { return jobs_; }
  std::size_t cellCount() const { return cells_.size(); }

 private:
  struct Scheduled {
    ExperimentContext* context;
    ExperimentCell cell;
  };

  unsigned jobs_;
  std::vector<Scheduled> cells_;
  std::size_t nextToRun_ = 0;
  mutable Mutex mu_;
  std::vector<std::optional<SimMetrics>> results_ PSCD_GUARDED_BY(mu_);
};

}  // namespace pscd
