#include "pscd/sim/metrics.h"

#include <stdexcept>

namespace pscd {

SimMetrics::SimMetrics(std::uint32_t numProxies, std::size_t hours)
    : proxyRequests_(numProxies, 0), proxyHits_(numProxies, 0) {
  if (hours > 0) {
    hourlyHits_.emplace(hours);
    hourlyPages_.emplace(hours);
    hourlyBytes_.emplace(hours);
  }
}

void SimMetrics::recordRequest(ProxyId proxy, SimTime t, bool hit, bool stale,
                               Bytes fetchedBytes, double responseTime) {
  if (proxy >= proxyRequests_.size()) {
    throw std::out_of_range("SimMetrics::recordRequest: proxy out of range");
  }
  ++requests_;
  responseTimeSum_ += responseTime;
  ++proxyRequests_[proxy];
  if (hit) {
    ++hits_;
    ++proxyHits_[proxy];
  } else {
    ++traffic_.fetchPages;
    traffic_.fetchBytes += fetchedBytes;
  }
  if (stale) ++staleMisses_;
  if (hourlyHits_) {
    hourlyHits_->add(t, hit ? 1.0 : 0.0, 1.0);
    if (!hit) {
      hourlyPages_->add(t, 1.0);
      hourlyBytes_->add(t, static_cast<double>(fetchedBytes));
    }
  }
}

void SimMetrics::recordPush(SimTime t, std::uint64_t pages, Bytes bytes) {
  traffic_.pushPages += pages;
  traffic_.pushBytes += bytes;
  if (hourlyPages_) {
    hourlyPages_->add(t, static_cast<double>(pages));
    hourlyBytes_->add(t, static_cast<double>(bytes));
  }
}

double SimMetrics::hitRatio() const {
  return requests_ > 0 ? static_cast<double>(hits_) / requests_ : 0.0;
}

double SimMetrics::meanResponseTime() const {
  return requests_ > 0 ? responseTimeSum_ / static_cast<double>(requests_)
                       : 0.0;
}

double SimMetrics::proxyHitRatio(ProxyId proxy) const {
  if (proxy >= proxyRequests_.size()) {
    throw std::out_of_range("SimMetrics::proxyHitRatio: proxy out of range");
  }
  return proxyRequests_[proxy] > 0
             ? static_cast<double>(proxyHits_[proxy]) / proxyRequests_[proxy]
             : 0.0;
}

double SimMetrics::hourlyHitRatio(std::size_t hour) const {
  if (!hourlyHits_) throw std::logic_error("SimMetrics: hourly disabled");
  return hourlyHits_->ratio(hour);
}

double SimMetrics::hourlyTrafficPages(std::size_t hour) const {
  if (!hourlyPages_) throw std::logic_error("SimMetrics: hourly disabled");
  return hourlyPages_->numerator(hour);
}

Bytes SimMetrics::hourlyTrafficBytes(std::size_t hour) const {
  if (!hourlyBytes_) throw std::logic_error("SimMetrics: hourly disabled");
  return static_cast<Bytes>(hourlyBytes_->numerator(hour));
}

std::size_t SimMetrics::hours() const {
  return hourlyHits_ ? hourlyHits_->hours() : 0;
}

}  // namespace pscd
