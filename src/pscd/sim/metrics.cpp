#include "pscd/sim/metrics.h"

#include <limits>
#include <stdexcept>

namespace pscd {

SimMetrics::SimMetrics(std::uint32_t numProxies, std::size_t hours)
    : proxyRequests_(numProxies, 0), proxyHits_(numProxies, 0) {
  if (hours > 0) {
    hourlyHits_.emplace(hours);
    hourlyPages_.emplace(hours);
    hourlyBytes_.emplace(hours);
  }
}

void SimMetrics::recordRequest(ProxyId proxy, SimTime t, bool hit, bool stale,
                               Bytes fetchedBytes, double responseTime,
                               const RequestFaultStats& faults) {
  if (proxy >= proxyRequests_.size()) {
    throw std::out_of_range("SimMetrics::recordRequest: proxy out of range");
  }
  ++requests_;
  ++proxyRequests_[proxy];
  retries_ += faults.retries;
  if (faults.unavailable) ++unavailable_;
  if (faults.servedStale) ++staleServes_;
  if (faults.failover) ++failovers_;
  // A publisher fetch happened only when the request missed AND was
  // actually served with fresh bytes (stale serving reuses the local
  // copy; an unavailable request transferred nothing).
  const bool served = !faults.unavailable;
  const bool fetched = !hit && served && !faults.servedStale;
  if (served) responseTimeSum_ += responseTime;
  if (hit) {
    ++hits_;
    ++proxyHits_[proxy];
  } else if (fetched) {
    ++traffic_.fetchPages;
    traffic_.fetchBytes += fetchedBytes;
  }
  if (stale) ++staleMisses_;
  if (hourlyHits_) {
    hourlyHits_->add(t, hit ? 1.0 : 0.0, 1.0);
    if (fetched) {
      hourlyPages_->add(t, 1.0);
      hourlyBytes_->add(t, static_cast<double>(fetchedBytes));
    }
  }
}

void SimMetrics::recordPush(SimTime t, std::uint64_t pages, Bytes bytes,
                            std::uint64_t lostPages, Bytes lostBytes) {
  traffic_.pushPages += pages;
  traffic_.pushBytes += bytes;
  traffic_.lostPushPages += lostPages;
  traffic_.lostPushBytes += lostBytes;
  if (hourlyPages_) {
    hourlyPages_->add(t, static_cast<double>(pages));
    hourlyBytes_->add(t, static_cast<double>(bytes));
  }
}

double SimMetrics::hitRatio() const {
  return requests_ > 0 ? static_cast<double>(hits_) / requests_ : 0.0;
}

double SimMetrics::meanResponseTime() const {
  const std::uint64_t served = servedRequests();
  return served > 0 ? responseTimeSum_ / static_cast<double>(served) : 0.0;
}

double SimMetrics::availability() const {
  return requests_ > 0
             ? static_cast<double>(servedRequests()) / requests_
             : 1.0;
}

double SimMetrics::staleServeRate() const {
  const std::uint64_t served = servedRequests();
  return served > 0 ? static_cast<double>(staleServes_) / served : 0.0;
}

double SimMetrics::retriesPerRequest() const {
  return requests_ > 0 ? static_cast<double>(retries_) / requests_ : 0.0;
}

double SimMetrics::unavailabilityWeightedBytes() const {
  const double total = static_cast<double>(traffic_.totalBytes()) +
                       static_cast<double>(traffic_.lostPushBytes);
  // pscd-lint: allow(float-compare) exact-zero guards before division
  if (total == 0.0) return 0.0;
  const double a = availability();
  // pscd-lint: allow(float-compare) exact-zero guards before division
  if (a == 0.0) return std::numeric_limits<double>::infinity();
  return total / a;
}

double SimMetrics::proxyHitRatio(ProxyId proxy) const {
  if (proxy >= proxyRequests_.size()) {
    throw std::out_of_range("SimMetrics::proxyHitRatio: proxy out of range");
  }
  return proxyRequests_[proxy] > 0
             ? static_cast<double>(proxyHits_[proxy]) / proxyRequests_[proxy]
             : 0.0;
}

double SimMetrics::hourlyHitRatio(std::size_t hour) const {
  if (!hourlyHits_) throw std::logic_error("SimMetrics: hourly disabled");
  return hourlyHits_->ratio(hour);
}

double SimMetrics::hourlyTrafficPages(std::size_t hour) const {
  if (!hourlyPages_) throw std::logic_error("SimMetrics: hourly disabled");
  return hourlyPages_->numerator(hour);
}

Bytes SimMetrics::hourlyTrafficBytes(std::size_t hour) const {
  if (!hourlyBytes_) throw std::logic_error("SimMetrics: hourly disabled");
  return static_cast<Bytes>(hourlyBytes_->numerator(hour));
}

std::size_t SimMetrics::hours() const {
  return hourlyHits_ ? hourlyHits_->hours() : 0;
}

}  // namespace pscd
