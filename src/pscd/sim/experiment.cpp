#include "pscd/sim/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "pscd/sim/simulator.h"
#include "pscd/util/check.h"
#include "pscd/util/rng.h"

namespace pscd {

std::string_view traceName(TraceKind trace) {
  return trace == TraceKind::kNews ? "NEWS" : "ALTERNATIVE";
}

WorkloadParams traceParams(TraceKind trace, double subscriptionQuality,
                           double scale) {
  PSCD_CHECK(scale > 0.0 && scale <= 1.0)
      << "trace scale must be in (0, 1], got " << scale;
  WorkloadParams p = trace == TraceKind::kNews ? newsTraceParams()
                                               : alternativeTraceParams();
  p.subscription.quality = subscriptionQuality;
  // pscd-lint: allow(float-compare) 1.0 is the exact "unscaled" sentinel
  if (scale != 1.0) {
    const auto scaled = [scale](auto value, auto floor) {
      using T = decltype(value);
      return std::max<T>(floor, static_cast<T>(static_cast<double>(value) *
                                               scale));
    };
    p.request.totalRequests = scaled(p.request.totalRequests,
                                     std::uint64_t{2000});
    p.publishing.numPages = scaled(p.publishing.numPages, 200u);
    p.publishing.numUpdatedPages =
        std::min(p.publishing.numPages,
                 scaled(p.publishing.numUpdatedPages, 80u));
  }
  return p;
}

double paperBeta(StrategyKind strategy, TraceKind trace,
                 double capacityFraction) {
  switch (strategy) {
    case StrategyKind::kSUB:
    case StrategyKind::kSR:
    case StrategyKind::kLRU:
    case StrategyKind::kGDS:
    case StrategyKind::kLFUDA:
      return 1.0;
    default:
      break;
  }
  if (trace == TraceKind::kNews) return 2.0;
  // ALTERNATIVE trace (section 5.1): beta is always 0.5 in SG2; for GD*
  // and SG1 (and the schemes built on GD*) beta is 2 at the 5%/10%
  // settings and 1 at 1%.
  if (strategy == StrategyKind::kSG2) return 0.5;
  return capacityFraction < 0.025 ? 1.0 : 2.0;
}

ExperimentContext::ExperimentContext(std::uint64_t workloadSeed,
                                     std::uint64_t topologySeed, double scale)
    : workloadSeed_(workloadSeed), topologySeed_(topologySeed),
      scale_(scale) {
  PSCD_CHECK(scale_ > 0.0 && scale_ <= 1.0)
      << "experiment scale must be in (0, 1], got " << scale_;
}

const Workload& ExperimentContext::workload(TraceKind trace,
                                            double subscriptionQuality) {
  const auto key = std::make_pair(static_cast<int>(trace),
                                  subscriptionQuality);
  MutexLock lock(mu_);
  auto it = workloads_.find(key);
  if (it == workloads_.end()) {
    // Built under the lock: a second thread asking for the same trace
    // blocks until the one build finishes, then reads the const result.
    WorkloadParams params = traceParams(trace, subscriptionQuality, scale_);
    params.seed = workloadSeed_;
    it = workloads_
             .emplace(key, std::make_unique<Workload>(buildWorkload(params)))
             .first;
  }
  return *it->second;
}

const Network& ExperimentContext::network() {
  MutexLock lock(mu_);
  if (!network_) {
    Rng rng(topologySeed_);
    NetworkParams np;  // defaults: 100 proxies, Waxman
    network_ = std::make_unique<Network>(np, rng);
  }
  return *network_;
}

ExperimentContext::FaultKey ExperimentContext::faultKey(
    const FaultConfig& faults) {
  return FaultKey{faults.seed,
                  faults.proxyFailuresPerDay,
                  faults.proxyMeanDowntimeHours,
                  faults.warmRestart,
                  faults.linkFailuresPerDay,
                  faults.linkMeanDowntimeHours,
                  faults.pushLossProbability,
                  faults.fetchFailureProbability,
                  faults.publisherFailover,
                  faults.retry.maxRetries,
                  faults.retry.backoffBaseMs,
                  faults.retry.backoffFactor};
}

SimMetrics ExperimentContext::run(TraceKind trace, double subscriptionQuality,
                                  StrategyKind strategy,
                                  double capacityFraction, PushScheme scheme,
                                  bool collectHourly,
                                  const FaultConfig& faults) {
  return runWithBeta(trace, subscriptionQuality, strategy, capacityFraction,
                     paperBeta(strategy, trace, capacityFraction), scheme,
                     collectHourly, faults);
}

SimMetrics ExperimentContext::runWithBeta(TraceKind trace,
                                          double subscriptionQuality,
                                          StrategyKind strategy,
                                          double capacityFraction, double beta,
                                          PushScheme scheme,
                                          bool collectHourly,
                                          const FaultConfig& faults) {
  const CellKey key{static_cast<int>(trace),    subscriptionQuality,
                    static_cast<int>(strategy), capacityFraction,
                    beta,                       static_cast<int>(scheme),
                    collectHourly,              faultKey(faults)};
  {
    MutexLock lock(mu_);
    auto it = results_.find(key);
    if (it != results_.end()) return it->second;
  }
  // Resolve the shared inputs first (each briefly takes the lock), then
  // simulate outside it so independent cells overlap.
  const Workload& w = workload(trace, subscriptionQuality);
  const Network& n = network();
  SimConfig config;
  config.strategy = strategy;
  config.beta = beta;
  config.capacityFraction = capacityFraction;
  config.pushScheme = scheme;
  config.collectHourly = collectHourly;
  config.faults = faults;
  Simulator sim(w, n, config);
  SimMetrics metrics = sim.run();
  {
    // Merge: the simulation is deterministic in the key, so if another
    // thread raced us to the same cell both results are identical and
    // either copy may win.
    MutexLock lock(mu_);
    results_.emplace(key, metrics);
  }
  return metrics;
}

}  // namespace pscd
