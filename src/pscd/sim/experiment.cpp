#include "pscd/sim/experiment.h"

#include <stdexcept>

#include "pscd/util/rng.h"

namespace pscd {

std::string_view traceName(TraceKind trace) {
  return trace == TraceKind::kNews ? "NEWS" : "ALTERNATIVE";
}

WorkloadParams traceParams(TraceKind trace, double subscriptionQuality) {
  WorkloadParams p = trace == TraceKind::kNews ? newsTraceParams()
                                               : alternativeTraceParams();
  p.subscription.quality = subscriptionQuality;
  return p;
}

double paperBeta(StrategyKind strategy, TraceKind trace,
                 double capacityFraction) {
  switch (strategy) {
    case StrategyKind::kSUB:
    case StrategyKind::kSR:
    case StrategyKind::kLRU:
    case StrategyKind::kGDS:
    case StrategyKind::kLFUDA:
      return 1.0;
    default:
      break;
  }
  if (trace == TraceKind::kNews) return 2.0;
  // ALTERNATIVE trace (section 5.1): beta is always 0.5 in SG2; for GD*
  // and SG1 (and the schemes built on GD*) beta is 2 at the 5%/10%
  // settings and 1 at 1%.
  if (strategy == StrategyKind::kSG2) return 0.5;
  return capacityFraction < 0.025 ? 1.0 : 2.0;
}

ExperimentContext::ExperimentContext(std::uint64_t workloadSeed,
                                     std::uint64_t topologySeed)
    : workloadSeed_(workloadSeed), topologySeed_(topologySeed) {}

const Workload& ExperimentContext::workload(TraceKind trace,
                                            double subscriptionQuality) {
  const auto key = std::make_pair(static_cast<int>(trace),
                                  subscriptionQuality);
  auto it = workloads_.find(key);
  if (it == workloads_.end()) {
    WorkloadParams params = traceParams(trace, subscriptionQuality);
    params.seed = workloadSeed_;
    it = workloads_
             .emplace(key, std::make_unique<Workload>(buildWorkload(params)))
             .first;
  }
  return *it->second;
}

const Network& ExperimentContext::network() {
  if (!network_) {
    Rng rng(topologySeed_);
    NetworkParams np;  // defaults: 100 proxies, Waxman
    network_ = std::make_unique<Network>(np, rng);
  }
  return *network_;
}

SimMetrics ExperimentContext::run(TraceKind trace, double subscriptionQuality,
                                  StrategyKind strategy,
                                  double capacityFraction, PushScheme scheme,
                                  bool collectHourly) {
  return runWithBeta(trace, subscriptionQuality, strategy, capacityFraction,
                     paperBeta(strategy, trace, capacityFraction), scheme,
                     collectHourly);
}

SimMetrics ExperimentContext::runWithBeta(TraceKind trace,
                                          double subscriptionQuality,
                                          StrategyKind strategy,
                                          double capacityFraction, double beta,
                                          PushScheme scheme,
                                          bool collectHourly) {
  SimConfig config;
  config.strategy = strategy;
  config.beta = beta;
  config.capacityFraction = capacityFraction;
  config.pushScheme = scheme;
  config.collectHourly = collectHourly;
  Simulator sim(workload(trace, subscriptionQuality), network(), config);
  return sim.run();
}

}  // namespace pscd
