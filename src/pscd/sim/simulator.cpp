#include "pscd/sim/simulator.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pscd {

Simulator::Simulator(const Workload& workload, const Network& network,
                     const SimConfig& config)
    : workload_(workload), network_(network), config_(config) {
  if (workload.numProxies() != network.numProxies()) {
    throw std::invalid_argument("Simulator: proxy count mismatch");
  }
  if (config.capacityFraction <= 0 || config.capacityFraction > 1) {
    throw std::invalid_argument("Simulator: capacityFraction in (0, 1]");
  }
}

Bytes Simulator::proxyCapacity(ProxyId proxy) const {
  const auto bytes = static_cast<Bytes>(
      std::llround(config_.capacityFraction *
                   static_cast<double>(workload_.uniqueBytesRequested[proxy])));
  // Pages larger than the resulting capacity are simply never cached
  // (as in a real small cache); only guard against a zero-byte cache.
  return std::max<Bytes>(bytes, 1);
}

SimMetrics Simulator::run() {
  EngineConfig ec;
  ec.strategy = config_.strategy;
  ec.beta = config_.beta;
  ec.pushScheme = config_.pushScheme;
  ec.dcInitialPcFraction = config_.dcInitialPcFraction;
  ec.dcMinPcFraction = config_.dcMinPcFraction;
  ec.dcMaxPcFraction = config_.dcMaxPcFraction;
  ec.proxyCapacities.reserve(workload_.numProxies());
  for (ProxyId p = 0; p < workload_.numProxies(); ++p) {
    ec.proxyCapacities.push_back(proxyCapacity(p));
  }
  ContentDistributionEngine engine(network_, std::move(ec));

  // Register the aggregated subscriptions (static for the whole run).
  for (PageId page = 0; page < workload_.numPages(); ++page) {
    for (const Notification& n : workload_.subscriptions(page)) {
      engine.broker().subscribeAggregated(n.proxy, page, n.matchCount);
    }
  }

  const std::size_t hours =
      config_.collectHourly
          ? static_cast<std::size_t>(
                std::ceil(workload_.params.publishing.horizon / kHour))
          : 0;
  SimMetrics metrics(workload_.numProxies(), hours);

#ifdef NDEBUG
  const bool selfCheck = config_.selfCheckHourly;
#else
  const bool selfCheck = true;  // debug builds always self-check
#endif
  if (selfCheck) network_.checkInvariants();

  // Merge the time-sorted streams (publishes, requests, and optional
  // subscription churn); publishes win ties so a request issued at
  // publish time sees the fresh version, and churn applies before the
  // publishes it should affect.
  std::size_t pi = 0, ri = 0, ci = 0;
  std::uint64_t eventCount = 0;
  SimTime checkedUpTo = 0.0;  // hour boundary already validated
  const auto maybeCheck = [&](SimTime now) {
    if (config_.invariantCheckInterval > 0 &&
        ++eventCount % config_.invariantCheckInterval == 0) {
      engine.checkInvariants();
    }
    if (selfCheck && now >= checkedUpTo + kHour) {
      // Validate once per simulated hour, however far the clock jumped.
      checkedUpTo += kHour * std::floor((now - checkedUpTo) / kHour);
      engine.checkInvariants();
    }
  };
  while (pi < workload_.publishes.size() || ri < workload_.requests.size() ||
         ci < workload_.churn.size()) {
    const SimTime nextPublish = pi < workload_.publishes.size()
                                    ? workload_.publishes[pi].time
                                    : std::numeric_limits<SimTime>::infinity();
    const SimTime nextRequest = ri < workload_.requests.size()
                                    ? workload_.requests[ri].time
                                    : std::numeric_limits<SimTime>::infinity();
    const SimTime nextChurn = ci < workload_.churn.size()
                                  ? workload_.churn[ci].time
                                  : std::numeric_limits<SimTime>::infinity();
    if (nextChurn <= nextPublish && nextChurn <= nextRequest) {
      const SubscriptionChurnEvent& ev = workload_.churn[ci++];
      engine.broker().unsubscribeAggregated(ev.proxy, ev.fromPage, 1);
      engine.broker().subscribeAggregated(ev.proxy, ev.toPage, 1);
      maybeCheck(ev.time);
      continue;
    }
    const bool takePublish = nextPublish <= nextRequest;
    SimTime now = 0.0;
    if (takePublish) {
      const PublishEvent& ev = workload_.publishes[pi++];
      const PublishSummary s = engine.publish(ev);
      metrics.recordPush(ev.time, s.pagesTransferred, s.bytesTransferred);
      now = ev.time;
    } else {
      const RequestEvent& ev = workload_.requests[ri++];
      const RequestSummary s = engine.request(ev.proxy, ev.page, ev.time);
      const double responseTime =
          config_.localLatencyMs +
          (s.hit ? 0.0
                 : config_.remoteLatencyMsPerUnit *
                       network_.fetchCost(ev.proxy));
      metrics.recordRequest(ev.proxy, ev.time, s.hit, s.stale,
                            s.bytesTransferred, responseTime);
      now = ev.time;
    }
    maybeCheck(now);
  }
  if (config_.invariantCheckInterval > 0 || selfCheck) {
    engine.checkInvariants();
  }
  return metrics;
}

}  // namespace pscd
