#include "pscd/sim/simulator.h"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "pscd/topology/link_state.h"
#include "pscd/util/check.h"
#include "pscd/util/rng.h"

namespace pscd {

Simulator::Simulator(const Workload& workload, const Network& network,
                     const SimConfig& config)
    : workload_(workload), network_(network), config_(config) {
  if (workload.numProxies() != network.numProxies()) {
    throw std::invalid_argument("Simulator: proxy count mismatch");
  }
  if (config.capacityFraction <= 0 || config.capacityFraction > 1) {
    throw std::invalid_argument("Simulator: capacityFraction in (0, 1]");
  }
  // NaN slips through both comparisons above; reject it explicitly.
  PSCD_CHECK(std::isfinite(config.capacityFraction))
      << "Simulator: capacityFraction must be finite";
  PSCD_CHECK(std::isfinite(config.localLatencyMs) &&
             config.localLatencyMs >= 0.0)
      << "Simulator: localLatencyMs must be finite and >= 0, got "
      << config.localLatencyMs;
  PSCD_CHECK(std::isfinite(config.remoteLatencyMsPerUnit) &&
             config.remoteLatencyMsPerUnit >= 0.0)
      << "Simulator: remoteLatencyMsPerUnit must be finite and >= 0, got "
      << config.remoteLatencyMsPerUnit;
  PSCD_CHECK(std::isfinite(config.beta))
      << "Simulator: beta must be finite, got " << config.beta;
  const auto checkFraction = [](double value, const char* name) {
    PSCD_CHECK(std::isfinite(value) && value >= 0.0 && value <= 1.0)
        << "Simulator: " << name << " must be in [0, 1], got " << value;
  };
  checkFraction(config.dcInitialPcFraction, "dcInitialPcFraction");
  checkFraction(config.dcMinPcFraction, "dcMinPcFraction");
  checkFraction(config.dcMaxPcFraction, "dcMaxPcFraction");
  PSCD_CHECK(config.dcMinPcFraction <= config.dcInitialPcFraction &&
             config.dcInitialPcFraction <= config.dcMaxPcFraction)
      << "Simulator: dc pc fractions must satisfy min <= initial <= max";
  config.faults.validate();
}

Bytes Simulator::proxyCapacity(ProxyId proxy) const {
  const auto bytes = static_cast<Bytes>(
      std::llround(config_.capacityFraction *
                   static_cast<double>(workload_.uniqueBytesRequested[proxy])));
  // Pages larger than the resulting capacity are simply never cached
  // (as in a real small cache); only guard against a zero-byte cache.
  return std::max<Bytes>(bytes, 1);
}

SimMetrics Simulator::run() {
  EngineConfig ec;
  ec.strategy = config_.strategy;
  ec.beta = config_.beta;
  ec.pushScheme = config_.pushScheme;
  ec.dcInitialPcFraction = config_.dcInitialPcFraction;
  ec.dcMinPcFraction = config_.dcMinPcFraction;
  ec.dcMaxPcFraction = config_.dcMaxPcFraction;
  ec.proxyCapacities.reserve(workload_.numProxies());
  for (ProxyId p = 0; p < workload_.numProxies(); ++p) {
    ec.proxyCapacities.push_back(proxyCapacity(p));
  }
  ContentDistributionEngine engine(network_, std::move(ec));

  // Register the aggregated subscriptions (static for the whole run).
  for (PageId page = 0; page < workload_.numPages(); ++page) {
    for (const Notification& n : workload_.subscriptions(page)) {
      engine.broker().subscribeAggregated(n.proxy, page, n.matchCount);
    }
  }

  const std::size_t hours =
      config_.collectHourly
          ? static_cast<std::size_t>(
                std::ceil(workload_.params.publishing.horizon / kHour))
          : 0;
  SimMetrics metrics(workload_.numProxies(), hours);

#ifdef NDEBUG
  const bool selfCheck = config_.selfCheckHourly;
#else
  const bool selfCheck = true;  // debug builds always self-check
#endif
  if (selfCheck) network_.checkInvariants();

  // Failure layer. When no failure process is enabled the plan is empty,
  // no link-state overlay or fault RNG is even constructed, and every
  // event below takes the exact pre-failure-layer code path.
  const bool faultsOn = config_.faults.enabled();
  FaultPlan plan;
  std::optional<LinkState> linkState;
  std::optional<Rng> faultRng;
  if (faultsOn) {
    plan = buildFaultPlan(config_.faults, network_,
                          workload_.params.publishing.horizon);
    if (selfCheck) plan.checkInvariants(network_);
    linkState.emplace(network_);
    // Per-operation loss draws use their own stream (stream 2 of the
    // fault seed; streams 0/1 feed the proxy/link schedules).
    std::uint64_t s = config_.faults.seed + 3 * 0x9e3779b97f4a7c15ull;
    splitmix64(s);
    faultRng.emplace(splitmix64(s));
  }

  // Merge the time-sorted streams (publishes, requests, optional
  // subscription churn, and the fault schedule); publishes win ties so a
  // request issued at publish time sees the fresh version, churn applies
  // before the publishes it should affect, and fault events beat every
  // workload event at the same instant (a crash at time t means the
  // proxy is already down for t's requests).
  std::size_t pi = 0, ri = 0, ci = 0, fi = 0;
  std::uint64_t eventCount = 0;
  SimTime checkedUpTo = 0.0;  // hour boundary already validated
  const auto maybeCheck = [&](SimTime now) {
    if (config_.invariantCheckInterval > 0 &&
        ++eventCount % config_.invariantCheckInterval == 0) {
      engine.checkInvariants();
      if (linkState) linkState->checkInvariants();
    }
    if (selfCheck && now >= checkedUpTo + kHour) {
      // Validate once per simulated hour, however far the clock jumped.
      checkedUpTo += kHour * std::floor((now - checkedUpTo) / kHour);
      engine.checkInvariants();
      if (linkState) linkState->checkInvariants();
    }
  };
  while (pi < workload_.publishes.size() || ri < workload_.requests.size() ||
         ci < workload_.churn.size()) {
    const SimTime nextPublish = pi < workload_.publishes.size()
                                    ? workload_.publishes[pi].time
                                    : std::numeric_limits<SimTime>::infinity();
    const SimTime nextRequest = ri < workload_.requests.size()
                                    ? workload_.requests[ri].time
                                    : std::numeric_limits<SimTime>::infinity();
    const SimTime nextChurn = ci < workload_.churn.size()
                                  ? workload_.churn[ci].time
                                  : std::numeric_limits<SimTime>::infinity();
    const SimTime nextFault = fi < plan.events.size()
                                  ? plan.events[fi].time
                                  : std::numeric_limits<SimTime>::infinity();
    if (nextFault <= nextChurn && nextFault <= nextPublish &&
        nextFault <= nextRequest) {
      const FaultEvent& ev = plan.events[fi++];
      switch (ev.kind) {
        case FaultEventKind::kProxyDown:
          linkState->setProxyDown(ev.proxy);
          break;
        case FaultEventKind::kProxyUp:
          linkState->setProxyUp(ev.proxy);
          engine.restartProxy(ev.proxy, config_.faults.warmRestart);
          break;
        case FaultEventKind::kLinkDown:
          linkState->setLinkDown(ev.linkA, ev.linkB);
          break;
        case FaultEventKind::kLinkUp:
          linkState->setLinkUp(ev.linkA, ev.linkB);
          break;
      }
      maybeCheck(ev.time);
      continue;
    }
    if (nextChurn <= nextPublish && nextChurn <= nextRequest) {
      const SubscriptionChurnEvent& ev = workload_.churn[ci++];
      engine.broker().unsubscribeAggregated(ev.proxy, ev.fromPage, 1);
      engine.broker().subscribeAggregated(ev.proxy, ev.toPage, 1);
      maybeCheck(ev.time);
      continue;
    }
    const bool takePublish = nextPublish <= nextRequest;
    SimTime now = 0.0;
    if (takePublish) {
      const PublishEvent& ev = workload_.publishes[pi++];
      if (!faultsOn) {
        const PublishSummary s = engine.publish(ev);
        metrics.recordPush(ev.time, s.pagesTransferred, s.bytesTransferred);
      } else {
        // Pushes to a crashed or partitioned proxy are always lost; a
        // reachable proxy additionally loses pushes with the configured
        // in-flight probability (one draw per notified push-capable
        // proxy, in ascending proxy order).
        const double lossP = config_.faults.pushLossProbability;
        PushFaults pf;
        pf.lost = [&](ProxyId p) {
          if (linkState->proxyDown(p) || !linkState->pathToPublisher(p)) {
            return true;
          }
          return lossP > 0.0 && faultRng->bernoulli(lossP);
        };
        const PublishSummary s = engine.publish(ev, &pf);
        metrics.recordPush(ev.time, s.pagesTransferred, s.bytesTransferred,
                           s.pagesLost, s.bytesLost);
      }
      now = ev.time;
    } else {
      const RequestEvent& ev = workload_.requests[ri++];
      if (!faultsOn) {
        const RequestSummary s = engine.request(ev.proxy, ev.page, ev.time);
        const double responseTime =
            config_.localLatencyMs +
            (s.hit ? 0.0
                   : config_.remoteLatencyMsPerUnit *
                         network_.fetchCost(ev.proxy));
        metrics.recordRequest(ev.proxy, ev.time, s.hit, s.stale,
                              s.bytesTransferred, responseTime);
      } else {
        RequestFaults rf;
        rf.proxyDown = linkState->proxyDown(ev.proxy);
        rf.pathToPublisher = linkState->pathToPublisher(ev.proxy);
        rf.publisherFailover = config_.faults.publisherFailover;
        rf.maxRetries = config_.faults.retry.maxRetries;
        const double failP = config_.faults.fetchFailureProbability;
        if (failP > 0.0) {
          rf.fetchAttemptFails = [&]() { return faultRng->bernoulli(failP); };
        }
        const RequestSummary s =
            engine.request(ev.proxy, ev.page, ev.time, &rf);
        // Served requests pay the local hop, the residual-path publisher
        // round trip when fresh bytes were fetched (miss or failover),
        // and the backoff of every failed attempt. An unavailable
        // request has no response time.
        double responseTime = 0.0;
        if (!s.unavailable) {
          responseTime = config_.localLatencyMs +
                         config_.faults.retry.totalBackoffMs(s.retries);
          if (!s.hit && !s.servedStale) {
            responseTime += config_.remoteLatencyMsPerUnit *
                            linkState->fetchCost(ev.proxy);
          }
        }
        RequestFaultStats fs;
        fs.retries = s.retries;
        fs.servedStale = s.servedStale;
        fs.failover = s.failover;
        fs.unavailable = s.unavailable;
        metrics.recordRequest(ev.proxy, ev.time, s.hit, s.stale,
                              s.bytesTransferred, responseTime, fs);
      }
      now = ev.time;
    }
    maybeCheck(now);
  }
  if (config_.invariantCheckInterval > 0 || selfCheck) {
    engine.checkInvariants();
    if (linkState) linkState->checkInvariants();
  }
  return metrics;
}

}  // namespace pscd
