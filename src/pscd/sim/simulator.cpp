#include "pscd/sim/simulator.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "pscd/core/latency.h"
#include "pscd/core/runtime.h"
#include "pscd/core/service.h"
#include "pscd/util/check.h"

namespace pscd {

namespace {

// The simulator's half of the core/runtime.h seam: virtual time owned
// by the merge loop below, and delivery records folded into SimMetrics.
// Core code only ever sees the Clock/EventSink interfaces — the
// layering manifest forbids core from reaching back into sim.
class SimClock final : public Clock {
 public:
  SimTime now() const override { return now_; }
  void advance(SimTime t) { now_ = t; }

 private:
  SimTime now_ = 0.0;
};

class MetricsSink final : public EventSink {
 public:
  explicit MetricsSink(SimMetrics& metrics) : metrics_(metrics) {}

  void onPush(const PushDelivery& d) override {
    metrics_.recordPush(d.time, d.pages, d.bytes, d.pagesLost, d.bytesLost);
  }

  void onRequest(const RequestDelivery& d) override {
    RequestFaultStats fs;
    fs.retries = d.retries;
    fs.servedStale = d.servedStale;
    fs.failover = d.failover;
    fs.unavailable = d.unavailable;
    metrics_.recordRequest(d.proxy, d.time, d.hit, d.stale,
                           d.bytesTransferred, d.responseTimeMs, fs);
  }

 private:
  SimMetrics& metrics_;
};

}  // namespace

Simulator::Simulator(const Workload& workload, const Network& network,
                     const SimConfig& config)
    : workload_(workload), network_(network), config_(config) {
  if (workload.numProxies() != network.numProxies()) {
    throw std::invalid_argument("Simulator: proxy count mismatch");
  }
  if (config.capacityFraction <= 0 || config.capacityFraction > 1) {
    throw std::invalid_argument("Simulator: capacityFraction in (0, 1]");
  }
  // NaN slips through both comparisons above; reject it explicitly.
  PSCD_CHECK(std::isfinite(config.capacityFraction))
      << "Simulator: capacityFraction must be finite";
  LatencyModel{config.localLatencyMs, config.remoteLatencyMsPerUnit}
      .validate();
  PSCD_CHECK(std::isfinite(config.beta))
      << "Simulator: beta must be finite, got " << config.beta;
  const auto checkFraction = [](double value, const char* name) {
    PSCD_CHECK(std::isfinite(value) && value >= 0.0 && value <= 1.0)
        << "Simulator: " << name << " must be in [0, 1], got " << value;
  };
  checkFraction(config.dcInitialPcFraction, "dcInitialPcFraction");
  checkFraction(config.dcMinPcFraction, "dcMinPcFraction");
  checkFraction(config.dcMaxPcFraction, "dcMaxPcFraction");
  PSCD_CHECK(config.dcMinPcFraction <= config.dcInitialPcFraction &&
             config.dcInitialPcFraction <= config.dcMaxPcFraction)
      << "Simulator: dc pc fractions must satisfy min <= initial <= max";
  config.faults.validate();
}

Bytes Simulator::proxyCapacity(ProxyId proxy) const {
  const auto bytes = static_cast<Bytes>(
      std::llround(config_.capacityFraction *
                   static_cast<double>(workload_.uniqueBytesRequested[proxy])));
  // Pages larger than the resulting capacity are simply never cached
  // (as in a real small cache); only guard against a zero-byte cache.
  return std::max<Bytes>(bytes, 1);
}

SimMetrics Simulator::run() {
#ifdef NDEBUG
  const bool selfCheck = config_.selfCheckHourly;
#else
  const bool selfCheck = true;  // debug builds always self-check
#endif
  if (selfCheck) network_.checkInvariants();

  ServiceConfig sc;
  sc.engine.strategy = config_.strategy;
  sc.engine.beta = config_.beta;
  sc.engine.pushScheme = config_.pushScheme;
  sc.engine.dcInitialPcFraction = config_.dcInitialPcFraction;
  sc.engine.dcMinPcFraction = config_.dcMinPcFraction;
  sc.engine.dcMaxPcFraction = config_.dcMaxPcFraction;
  sc.engine.proxyCapacities.reserve(workload_.numProxies());
  for (ProxyId p = 0; p < workload_.numProxies(); ++p) {
    sc.engine.proxyCapacities.push_back(proxyCapacity(p));
  }
  sc.latency.localLatencyMs = config_.localLatencyMs;
  sc.latency.remoteLatencyMsPerUnit = config_.remoteLatencyMsPerUnit;
  sc.faults = config_.faults;
  sc.faultHorizon = workload_.params.publishing.horizon;
  sc.validateFaultPlan = selfCheck;

  const std::size_t hours =
      config_.collectHourly
          ? static_cast<std::size_t>(
                std::ceil(workload_.params.publishing.horizon / kHour))
          : 0;
  SimMetrics metrics(workload_.numProxies(), hours);

  SimClock clock;
  MetricsSink sink(metrics);
  DistributionService service(network_, clock, sink, std::move(sc));

  // Register the aggregated subscriptions (static modulo churn).
  for (PageId page = 0; page < workload_.numPages(); ++page) {
    for (const Notification& n : workload_.subscriptions(page)) {
      service.broker().subscribeAggregated(n.proxy, page, n.matchCount);
    }
  }

  // The scheduled fault timeline (empty when the failure layer is off);
  // each event is handed back to the service at its due time.
  const FaultPlan& plan = service.faultPlan();

  // Merge the time-sorted streams (publishes, requests, optional
  // subscription churn, and the fault schedule); publishes win ties so a
  // request issued at publish time sees the fresh version, churn applies
  // before the publishes it should affect, and fault events beat every
  // workload event at the same instant (a crash at time t means the
  // proxy is already down for t's requests).
  std::size_t pi = 0, ri = 0, ci = 0, fi = 0;
  std::uint64_t eventCount = 0;
  SimTime checkedUpTo = 0.0;  // hour boundary already validated
  const auto maybeCheck = [&](SimTime now) {
    if (config_.invariantCheckInterval > 0 &&
        ++eventCount % config_.invariantCheckInterval == 0) {
      service.checkInvariants();
    }
    if (selfCheck && now >= checkedUpTo + kHour) {
      // Validate once per simulated hour, however far the clock jumped.
      checkedUpTo += kHour * std::floor((now - checkedUpTo) / kHour);
      service.checkInvariants();
    }
  };
  while (pi < workload_.publishes.size() || ri < workload_.requests.size() ||
         ci < workload_.churn.size()) {
    const SimTime nextPublish = pi < workload_.publishes.size()
                                    ? workload_.publishes[pi].time
                                    : std::numeric_limits<SimTime>::infinity();
    const SimTime nextRequest = ri < workload_.requests.size()
                                    ? workload_.requests[ri].time
                                    : std::numeric_limits<SimTime>::infinity();
    const SimTime nextChurn = ci < workload_.churn.size()
                                  ? workload_.churn[ci].time
                                  : std::numeric_limits<SimTime>::infinity();
    const SimTime nextFault = fi < plan.events.size()
                                  ? plan.events[fi].time
                                  : std::numeric_limits<SimTime>::infinity();
    if (nextFault <= nextChurn && nextFault <= nextPublish &&
        nextFault <= nextRequest) {
      const FaultEvent& ev = plan.events[fi++];
      clock.advance(ev.time);
      service.handleFault(ev);
      maybeCheck(ev.time);
      continue;
    }
    if (nextChurn <= nextPublish && nextChurn <= nextRequest) {
      const SubscriptionChurnEvent& ev = workload_.churn[ci++];
      clock.advance(ev.time);
      service.handleChurn(ev.proxy, ev.fromPage, ev.toPage);
      maybeCheck(ev.time);
      continue;
    }
    if (nextPublish <= nextRequest) {
      const PublishEvent& ev = workload_.publishes[pi++];
      clock.advance(ev.time);
      service.handlePublish(ev);
      maybeCheck(ev.time);
    } else {
      const RequestEvent& ev = workload_.requests[ri++];
      clock.advance(ev.time);
      service.handleRequest(ev.proxy, ev.page);
      maybeCheck(ev.time);
    }
  }
  if (config_.invariantCheckInterval > 0 || selfCheck) {
    service.checkInvariants();
  }
  return metrics;
}

}  // namespace pscd
