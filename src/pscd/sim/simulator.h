// Discrete-event simulator (section 4, figure 2): merges the publishing
// stream and the request streams in time order and drives one
// ContentDistributionEngine over them. Proxy cache capacities are a
// fraction of the unique bytes each proxy requests over the whole trace
// (section 5.1).
#pragma once

#include "pscd/core/engine.h"
#include "pscd/core/fault_plan.h"
#include "pscd/sim/metrics.h"
#include "pscd/topology/network.h"
#include "pscd/workload/workload.h"

namespace pscd {

struct SimConfig {
  StrategyKind strategy = StrategyKind::kGDStar;
  double beta = 1.0;
  /// Cache capacity as a fraction of the proxy's unique requested bytes
  /// (the paper evaluates 0.01, 0.05 and 0.10).
  double capacityFraction = 0.05;
  PushScheme pushScheme = PushScheme::kAlwaysPushing;
  /// Collect the hourly series needed by figures 6 and 7.
  bool collectHourly = false;
  double dcInitialPcFraction = 0.5;
  double dcMinPcFraction = 0.25;
  double dcMaxPcFraction = 0.75;
  /// Strategy invariants re-checked every N events (0 = never); used by
  /// integration tests, far too slow for benches.
  std::uint64_t invariantCheckInterval = 0;
  /// Deep self-check mode (pscd_sim --self-check): validates the network
  /// once up front and the whole engine (broker, matcher, every proxy
  /// strategy) after each simulated hour and at the end of the run.
  /// Debug (!NDEBUG) builds always run these checks.
  bool selfCheckHourly = false;
  /// Latency model for the response-time metric: a hit is served from
  /// the local proxy in localLatency ms; a miss additionally pays the
  /// publisher round trip scaled by the proxy's normalized network
  /// distance (mean distance = 1).
  double localLatencyMs = 5.0;
  double remoteLatencyMsPerUnit = 100.0;
  /// Failure model (DESIGN.md section 9). The default config disables
  /// every failure process, and the simulator then takes the exact
  /// pre-failure-layer code path (bit-identical metrics).
  FaultConfig faults{};
};

class Simulator {
 public:
  /// The workload's proxy count must match the network's.
  Simulator(const Workload& workload, const Network& network,
            const SimConfig& config);

  /// Runs the whole trace and returns the collected metrics. The engine
  /// is rebuilt on every call, so run() is repeatable.
  SimMetrics run();

  /// Capacity the given proxy gets under the configured fraction.
  Bytes proxyCapacity(ProxyId proxy) const;

 private:
  const Workload& workload_;
  const Network& network_;
  SimConfig config_;
};

}  // namespace pscd
