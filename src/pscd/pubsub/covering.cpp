#include "pscd/pubsub/covering.h"

#include <algorithm>

namespace pscd {

namespace {
bool predicateLess(const Predicate& a, const Predicate& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.value < b.value;
}
}  // namespace

std::vector<Predicate> normalizeConjuncts(std::vector<Predicate> conjuncts) {
  std::sort(conjuncts.begin(), conjuncts.end(), predicateLess);
  conjuncts.erase(std::unique(conjuncts.begin(), conjuncts.end()),
                  conjuncts.end());
  return conjuncts;
}

bool covers(const Subscription& a, const Subscription& b) {
  if (a.conjuncts.empty()) return false;  // empty matches nothing
  const auto na = normalizeConjuncts(a.conjuncts);
  const auto nb = normalizeConjuncts(b.conjuncts);
  // a covers b iff a's constraints are a subset of b's.
  return std::includes(nb.begin(), nb.end(), na.begin(), na.end(),
                       predicateLess);
}

bool CoveringSet::add(Subscription sub) {
  sub.conjuncts = normalizeConjuncts(std::move(sub.conjuncts));
  for (const Subscription& m : members_) {
    if (covers(m, sub)) return false;
  }
  // The newcomer may cover existing members: drop them.
  std::erase_if(members_,
                [&](const Subscription& m) { return covers(sub, m); });
  members_.push_back(std::move(sub));
  return true;
}

bool CoveringSet::isCovered(const Subscription& sub) const {
  return std::any_of(members_.begin(), members_.end(),
                     [&](const Subscription& m) { return covers(m, sub); });
}

bool CoveringSet::matches(const ContentAttributes& attrs) const {
  return std::any_of(members_.begin(), members_.end(),
                     [&](const Subscription& m) { return m.matches(attrs); });
}

}  // namespace pscd
