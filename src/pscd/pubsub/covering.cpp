#include "pscd/pubsub/covering.h"

#include <algorithm>

#include "pscd/util/hot.h"

namespace pscd {

namespace {
bool predicateLess(const Predicate& a, const Predicate& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.value < b.value;
}
}  // namespace

std::vector<Predicate> normalizeConjuncts(std::vector<Predicate> conjuncts) {
  std::sort(conjuncts.begin(), conjuncts.end(), predicateLess);
  conjuncts.erase(std::unique(conjuncts.begin(), conjuncts.end()),
                  conjuncts.end());
  return conjuncts;
}

bool covers(const Subscription& a, const Subscription& b) {
  if (a.conjuncts.empty()) return false;  // empty matches nothing
  const auto na = normalizeConjuncts(a.conjuncts);
  const auto nb = normalizeConjuncts(b.conjuncts);
  // a covers b iff a's constraints are a subset of b's.
  return std::includes(nb.begin(), nb.end(), na.begin(), na.end(),
                       predicateLess);
}

PSCD_HOT bool coversNormalized(const std::vector<Predicate>& na,
                               const std::vector<Predicate>& nb) {
  if (na.empty()) return false;  // empty matches nothing
  return std::includes(nb.begin(), nb.end(), na.begin(), na.end(),
                       predicateLess);
}

PSCD_HOT bool CoveringSet::add(Subscription sub) {
  // Normalize the newcomer once; members_ are canonical by construction,
  // so every pairwise test below is an allocation-free std::includes
  // (covers() would re-sort two fresh vectors per member).
  sub.conjuncts = normalizeConjuncts(std::move(sub.conjuncts));
  for (const Subscription& m : members_) {
    if (coversNormalized(m.conjuncts, sub.conjuncts)) return false;
  }
  // The newcomer may cover existing members: drop them.
  std::erase_if(members_, [&](const Subscription& m) {
    return coversNormalized(sub.conjuncts, m.conjuncts);
  });
  members_.push_back(std::move(sub));
  return true;
}

PSCD_HOT bool CoveringSet::isCovered(const Subscription& sub) const {
  // One normalization of the probe, then allocation-free member tests.
  const auto nsub = normalizeConjuncts(sub.conjuncts);
  return std::any_of(members_.begin(), members_.end(),
                     [&](const Subscription& m) {
                       return coversNormalized(m.conjuncts, nsub);
                     });
}

PSCD_HOT bool CoveringSet::matches(const ContentAttributes& attrs) const {
  return std::any_of(members_.begin(), members_.end(),
                     [&](const Subscription& m) { return m.matches(attrs); });
}

}  // namespace pscd
