// Counting-based content matching engine (in the style of Fabret et al.,
// SIGMOD 2001): subscriptions are conjunctions of equality/containment
// predicates; an inverted index maps each predicate key to the
// subscriptions containing it, and a publish event matches a subscription
// when all of its conjuncts are satisfied.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pscd/pubsub/attributes.h"
#include "pscd/pubsub/subscription.h"
#include "pscd/util/types.h"

namespace pscd {

/// Result of matching one publish event.
struct MatchResult {
  /// Ids of all matching subscriptions.
  std::vector<SubscriptionId> subscriptions;
  /// Number of matching subscriptions per proxy, sorted by proxy id.
  /// This is exactly the f_S(p) / s factor the push-time strategies use.
  std::vector<std::pair<ProxyId, std::uint32_t>> proxyCounts;
};

class MatchingEngine {
 public:
  /// Registers a subscription; duplicate predicates within one
  /// subscription are collapsed. Throws on an empty conjunction.
  SubscriptionId addSubscription(Subscription sub);

  /// Removes a subscription; returns false if the id is unknown.
  bool removeSubscription(SubscriptionId id);

  /// Matches the attributes against all live subscriptions.
  MatchResult match(const ContentAttributes& attrs) const;

  /// Number of live subscriptions.
  std::size_t size() const { return liveCount_; }

  /// Validates the inverted index against the registered subscriptions:
  /// every posting references a known subscription, postings are unique
  /// per key, each subscription is referenced by exactly numConjuncts
  /// postings, and the live counter matches the records. Throws
  /// CheckFailure on any violation.
  void checkInvariants() const;

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  struct SubRecord {
    ProxyId proxy = 0;
    std::uint32_t numConjuncts = 0;
    bool live = false;
  };

  static std::uint64_t key(Predicate::Kind kind, std::uint32_t value) {
    return (static_cast<std::uint64_t>(kind) << 32) | value;
  }

  std::vector<SubRecord> subs_;
  std::unordered_map<std::uint64_t, std::vector<SubscriptionId>> index_;
  std::size_t liveCount_ = 0;

  // Scratch space for the counting algorithm (epoch-stamped so it never
  // needs clearing); mutable because match() is logically const.
  mutable std::vector<std::uint32_t> hitCount_;
  mutable std::vector<std::uint64_t> stamp_;
  mutable std::uint64_t epoch_ = 0;
  // Reused keyword-dedup buffer: match() assigns into it instead of
  // constructing a fresh vector per event.
  mutable std::vector<std::uint32_t> keywordScratch_;
};

}  // namespace pscd
