// Subscription language: a subscription is a conjunction of predicates
// over the content attributes. Subscriptions are registered on behalf of
// end-users attached to a proxy; the proxy aggregates them (section 2 of
// the paper: "a proxy server aggregates its users' subscriptions").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pscd/pubsub/attributes.h"
#include "pscd/util/types.h"

namespace pscd {

struct Predicate {
  enum class Kind : std::uint8_t {
    kPageIdEq,         // page id equals value
    kCategoryEq,       // category equals value
    kKeywordContains,  // keyword list contains value
  };

  Kind kind = Kind::kCategoryEq;
  std::uint32_t value = 0;

  bool matches(const ContentAttributes& attrs) const;

  friend bool operator==(const Predicate&, const Predicate&) = default;
};

struct Subscription {
  ProxyId proxy = 0;
  std::vector<Predicate> conjuncts;

  /// True when every conjunct matches; an empty conjunction matches
  /// nothing (a subscription must state at least one interest).
  bool matches(const ContentAttributes& attrs) const;
};

/// Human-readable rendering ("proxy 3: category==7 AND keyword~42").
std::string toString(const Subscription& sub);

}  // namespace pscd
