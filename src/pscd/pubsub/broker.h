// Broker: the publish/subscribe brokering system of figure 1. It owns
// the matching engine, accepts subscriptions (either as full predicate
// subscriptions or pre-aggregated per-proxy counts, mirroring the
// "subscription aggregator" each proxy runs), and on publish produces
// the per-proxy notification fan-out consumed by the content
// distribution engine.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pscd/pubsub/attributes.h"
#include "pscd/pubsub/matcher.h"
#include "pscd/pubsub/subscription.h"
#include "pscd/util/types.h"

namespace pscd {

struct Notification {
  ProxyId proxy = 0;
  /// Number of end-user subscriptions at this proxy matching the page.
  std::uint32_t matchCount = 0;

  friend bool operator==(const Notification&, const Notification&) = default;
};

class Broker {
 public:
  explicit Broker(std::uint32_t numProxies);

  std::uint32_t numProxies() const { return numProxies_; }

  /// Registers one end-user subscription (predicate form).
  SubscriptionId subscribe(Subscription sub);

  bool unsubscribe(SubscriptionId id);

  /// Registers `count` end-user subscriptions at `proxy` that match
  /// exactly page `page`; counts accumulate across calls. This is the
  /// aggregated form a proxy's subscription aggregator reports upstream.
  void subscribeAggregated(ProxyId proxy, PageId page, std::uint32_t count);

  /// Removes up to `count` aggregated subscriptions (clamping at zero);
  /// returns the number actually removed. Supports subscription churn.
  std::uint32_t unsubscribeAggregated(ProxyId proxy, PageId page,
                                      std::uint32_t count);

  /// Matches a publish event against all subscriptions; returns the
  /// per-proxy notification list sorted by proxy id (proxies with zero
  /// matches are omitted). Updates fan-out statistics.
  std::vector<Notification> publish(const ContentAttributes& attrs);

  /// Total subscriptions matching `page` at `proxy` via the aggregated
  /// path (the predicate path is dynamic and not included).
  std::uint32_t aggregatedCount(ProxyId proxy, PageId page) const;

  std::uint64_t publishCount() const { return publishCount_; }
  std::uint64_t notificationCount() const { return notificationCount_; }

  const MatchingEngine& engine() const { return engine_; }

  /// Validates the matching engine plus the aggregated-subscription
  /// tables (sorted per page, positive counts, proxies in range).
  /// Throws CheckFailure on any violation.
  void checkInvariants() const;

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  std::uint32_t numProxies_;
  MatchingEngine engine_;
  // page -> (proxy -> count), kept sorted by proxy id.
  std::unordered_map<PageId, std::vector<Notification>> aggregated_;
  std::uint64_t publishCount_ = 0;
  std::uint64_t notificationCount_ = 0;
};

}  // namespace pscd
