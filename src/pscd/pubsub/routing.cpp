#include "pscd/pubsub/routing.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace pscd {

BrokerTree::BrokerTree(std::vector<BrokerId> parents, bool useCovering)
    : useCovering_(useCovering) {
  if (parents.empty()) {
    throw std::invalid_argument("BrokerTree: at least one broker required");
  }
  nodes_.resize(parents.size());
  for (BrokerId b = 1; b < parents.size(); ++b) {
    if (parents[b] >= b) {
      throw std::invalid_argument(
          "BrokerTree: parents must be topologically ordered");
    }
    nodes_[b].parent = parents[b];
    nodes_[parents[b]].children.push_back(b);
  }
}

BrokerTree BrokerTree::balanced(std::uint32_t numBrokers,
                                std::uint32_t fanout, bool useCovering) {
  if (numBrokers == 0 || fanout == 0) {
    throw std::invalid_argument("BrokerTree::balanced: bad shape");
  }
  std::vector<BrokerId> parents(numBrokers, 0);
  for (BrokerId b = 1; b < numBrokers; ++b) parents[b] = (b - 1) / fanout;
  return BrokerTree(std::move(parents), useCovering);
}

void BrokerTree::attachProxy(ProxyId proxy, BrokerId broker) {
  if (broker >= nodes_.size()) {
    throw std::out_of_range("BrokerTree::attachProxy: unknown broker");
  }
  if (proxy >= proxyBroker_.size()) proxyBroker_.resize(proxy + 1, -1);
  if (proxyBroker_[proxy] >= 0) {
    throw std::logic_error("BrokerTree::attachProxy: proxy already attached");
  }
  proxyBroker_[proxy] = broker;
}

void BrokerTree::installAt(BrokerId broker, const Subscription& sub,
                           const Node::Origin& origin) {
  Node& node = nodes_[broker];
  const SubscriptionId id = node.engine.addSubscription(sub);
  if (node.origins.size() <= id) node.origins.resize(id + 1);
  node.origins[id] = origin;
}

void BrokerTree::subscribe(const Subscription& sub) {
  if (sub.proxy >= proxyBroker_.size() || proxyBroker_[sub.proxy] < 0) {
    throw std::logic_error("BrokerTree::subscribe: proxy not attached");
  }
  ++subscriptions_;
  auto broker = static_cast<BrokerId>(proxyBroker_[sub.proxy]);
  installAt(broker, sub, {.local = true, .proxy = sub.proxy, .child = 0});

  // Advertise hop by hop toward the root.
  while (broker != 0) {
    if (useCovering_ && !nodes_[broker].advertised.add(sub)) {
      return;  // an already-advertised subscription covers this one
    }
    const BrokerId up = nodes_[broker].parent;
    ++controlMessages_;
    const auto& siblings = nodes_[up].children;
    const auto childIdx = static_cast<std::uint32_t>(
        std::find(siblings.begin(), siblings.end(), broker) -
        siblings.begin());
    installAt(up, sub, {.local = false, .proxy = 0, .child = childIdx});
    broker = up;
  }
}

void BrokerTree::route(BrokerId broker, const ContentAttributes& attrs,
                       std::vector<Notification>& out) {
  const Node& node = nodes_[broker];
  const MatchResult result = node.engine.match(attrs);
  std::vector<bool> childMatched(node.children.size(), false);
  std::unordered_map<ProxyId, std::uint32_t> local;
  for (const SubscriptionId id : result.subscriptions) {
    const Node::Origin& origin = node.origins[id];
    if (origin.local) {
      ++local[origin.proxy];
    } else {
      childMatched[origin.child] = true;
    }
  }
  for (const auto& [proxy, count] : local) {
    out.push_back({proxy, count});
  }
  for (std::size_t c = 0; c < node.children.size(); ++c) {
    if (childMatched[c]) {
      ++eventMessages_;
      route(node.children[c], attrs, out);
    }
  }
}

std::vector<Notification> BrokerTree::publish(const ContentAttributes& attrs) {
  floodEventMessages_ += nodes_.size() - 1;
  std::vector<Notification> out;
  route(0, attrs, out);
  std::sort(out.begin(), out.end(),
            [](const Notification& a, const Notification& b) {
              return a.proxy < b.proxy;
            });
  return out;
}

}  // namespace pscd
