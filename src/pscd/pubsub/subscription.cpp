#include "pscd/pubsub/subscription.h"

#include <algorithm>
#include <sstream>

namespace pscd {

bool Predicate::matches(const ContentAttributes& attrs) const {
  switch (kind) {
    case Kind::kPageIdEq:
      return attrs.page == value;
    case Kind::kCategoryEq:
      return attrs.category == value;
    case Kind::kKeywordContains:
      return std::find(attrs.keywords.begin(), attrs.keywords.end(), value) !=
             attrs.keywords.end();
  }
  return false;
}

bool Subscription::matches(const ContentAttributes& attrs) const {
  if (conjuncts.empty()) return false;
  return std::all_of(conjuncts.begin(), conjuncts.end(),
                     [&](const Predicate& p) { return p.matches(attrs); });
}

std::string toString(const Subscription& sub) {
  std::ostringstream os;
  os << "proxy " << sub.proxy << ": ";
  for (std::size_t i = 0; i < sub.conjuncts.size(); ++i) {
    if (i > 0) os << " AND ";
    const auto& p = sub.conjuncts[i];
    switch (p.kind) {
      case Predicate::Kind::kPageIdEq:
        os << "page==" << p.value;
        break;
      case Predicate::Kind::kCategoryEq:
        os << "category==" << p.value;
        break;
      case Predicate::Kind::kKeywordContains:
        os << "keyword~" << p.value;
        break;
    }
  }
  if (sub.conjuncts.empty()) os << "<empty>";
  return os.str();
}

}  // namespace pscd
