// Subscription covering (as exploited by Siena, which the paper cites
// for its distributed routing engine): subscription A *covers* B when
// every event matching B also matches A. For conjunctions of exact-match
// predicates this is simply conjunct-set inclusion — fewer constraints
// match more events. Covering lets a broker advertise only a minimal
// frontier of its subtree's subscriptions to its parent.
#pragma once

#include <vector>

#include "pscd/pubsub/subscription.h"

namespace pscd {

/// Canonical form of a conjunction: sorted, deduplicated predicates.
std::vector<Predicate> normalizeConjuncts(std::vector<Predicate> conjuncts);

/// True when `a` covers `b` (proxy fields are ignored): a's conjuncts
/// are a subset of b's. Both inputs may be unnormalized.
bool covers(const Subscription& a, const Subscription& b);

/// Allocation-free covering test over conjunct lists that are already
/// in canonical form (sorted + deduplicated, as normalizeConjuncts
/// produces and CoveringSet maintains). The hot-path twin of covers().
bool coversNormalized(const std::vector<Predicate>& na,
                      const std::vector<Predicate>& nb);

/// Maintains a covering-minimal set of subscriptions: add() absorbs new
/// subscriptions that are already covered and evicts members the new
/// subscription covers.
class CoveringSet {
 public:
  /// Returns true when the subscription extends the frontier (i.e. it
  /// was not already covered); false when absorbed.
  bool add(Subscription sub);

  /// True when some member covers `sub`.
  bool isCovered(const Subscription& sub) const;

  /// True when some member matches the attributes.
  bool matches(const ContentAttributes& attrs) const;

  std::size_t size() const { return members_.size(); }
  const std::vector<Subscription>& members() const { return members_; }

 private:
  friend class InvariantCorrupter;  // test-only state corruption hook

  std::vector<Subscription> members_;  // conjuncts kept normalized
};

}  // namespace pscd
