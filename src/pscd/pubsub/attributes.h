// Content model for published pages. A page (identified by PageId) is
// published as a sequence of versions; each publish event carries the
// content attributes the matching engine evaluates subscriptions against.
#pragma once

#include <vector>

#include "pscd/util/types.h"

namespace pscd {

/// Attributes describing one published page, used by the matching engine.
/// The attribute vocabulary is deliberately small (category + keywords);
/// it mirrors the topic/keyword subscriptions of news notification
/// services described in the paper's introduction.
struct ContentAttributes {
  PageId page = kInvalidPage;
  std::uint32_t category = 0;
  std::vector<std::uint32_t> keywords;
};

/// One event in the publishing stream.
struct PublishEvent {
  SimTime time = 0.0;
  PageId page = kInvalidPage;
  Version version = 0;  // 0 = original, >0 = modified versions
  Bytes size = 0;
};

}  // namespace pscd
