#include "pscd/pubsub/matcher.h"

#include <algorithm>
#include <stdexcept>

#include "pscd/util/check.h"
#include "pscd/util/hot.h"

namespace pscd {

PSCD_HOT SubscriptionId MatchingEngine::addSubscription(Subscription sub) {
  if (sub.conjuncts.empty()) {
    throw std::invalid_argument("addSubscription: empty conjunction");
  }
  std::sort(sub.conjuncts.begin(), sub.conjuncts.end(),
            [](const Predicate& a, const Predicate& b) {
              return key(a.kind, a.value) < key(b.kind, b.value);
            });
  sub.conjuncts.erase(std::unique(sub.conjuncts.begin(), sub.conjuncts.end()),
                      sub.conjuncts.end());

  const SubscriptionId id = subs_.size();
  subs_.push_back({sub.proxy,
                   static_cast<std::uint32_t>(sub.conjuncts.size()), true});
  for (const Predicate& p : sub.conjuncts) {
    // pscd-lint: allow(map-bracket-insert) find-or-create is the intent: a miss must create the empty postings list
    index_[key(p.kind, p.value)].push_back(id);
  }
  ++liveCount_;
  return id;
}

bool MatchingEngine::removeSubscription(SubscriptionId id) {
  if (id >= subs_.size() || !subs_[id].live) return false;
  // Lazy deletion: postings keep the id but match() skips dead records.
  subs_[id].live = false;
  --liveCount_;
  return true;
}

PSCD_HOT MatchResult MatchingEngine::match(
    const ContentAttributes& attrs) const {
  MatchResult result;
  if (subs_.empty()) return result;

  hitCount_.resize(subs_.size());
  stamp_.resize(subs_.size());
  ++epoch_;

  auto scan = [&](std::uint64_t k) {
    const auto it = index_.find(k);
    if (it == index_.end()) return;
    for (const SubscriptionId id : it->second) {
      const SubRecord& rec = subs_[id];
      if (!rec.live) continue;
      if (stamp_[id] != epoch_) {
        stamp_[id] = epoch_;
        hitCount_[id] = 0;
      }
      if (++hitCount_[id] == rec.numConjuncts) {
        // pscd-lint: allow(grow-without-reserve) match cardinality is unknowable a priori; growth is amortized O(1)
        result.subscriptions.push_back(id);
      }
    }
  };

  scan(key(Predicate::Kind::kPageIdEq, attrs.page));
  scan(key(Predicate::Kind::kCategoryEq, attrs.category));
  // Deduplicate the keyword list: a keyword occurring twice in the
  // attributes must not advance a subscription's conjunct counter twice.
  // keywordScratch_ is a reused member, so steady-state matching does
  // not allocate here.
  keywordScratch_.assign(attrs.keywords.begin(), attrs.keywords.end());
  std::sort(keywordScratch_.begin(), keywordScratch_.end());
  keywordScratch_.erase(
      std::unique(keywordScratch_.begin(), keywordScratch_.end()),
      keywordScratch_.end());
  for (const std::uint32_t kw : keywordScratch_) {
    scan(key(Predicate::Kind::kKeywordContains, kw));
  }

  // Aggregate per proxy: collect (proxy, 1) pairs, sort, merge runs.
  // One exact reserve + sort of a small vector replaces the previous
  // per-event unordered_map (a rehashing allocation per match call).
  auto& pc = result.proxyCounts;
  pc.reserve(result.subscriptions.size());
  for (const SubscriptionId id : result.subscriptions) {
    pc.emplace_back(subs_[id].proxy, 1u);
  }
  std::sort(pc.begin(), pc.end());
  std::size_t w = 0;
  for (std::size_t r = 0; r < pc.size(); ++r) {
    if (w > 0 && pc[w - 1].first == pc[r].first) {
      pc[w - 1].second += pc[r].second;
    } else {
      pc[w++] = pc[r];
    }
  }
  pc.resize(w);
  return result;
}

void MatchingEngine::checkInvariants() const {
  // Count the postings per subscription while validating each postings
  // list (ids in range, no duplicate posting of one sub under one key).
  std::vector<std::uint32_t> postings(subs_.size(), 0);
  // pscd-lint: allow(unordered-iter) per-list assertions + commutative count
  for (const auto& [key, list] : index_) {
    PSCD_CHECK(!list.empty()) << "MatchingEngine: empty postings list";
    for (const SubscriptionId id : list) {
      PSCD_CHECK_LT(id, subs_.size())
          << "MatchingEngine: posting references unknown subscription";
      ++postings[id];
    }
    auto sorted = list;
    std::sort(sorted.begin(), sorted.end());
    PSCD_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) ==
               sorted.end())
        << "MatchingEngine: duplicate posting under one key";
  }
  std::size_t live = 0;
  for (SubscriptionId id = 0; id < subs_.size(); ++id) {
    const SubRecord& rec = subs_[id];
    PSCD_CHECK_GT(rec.numConjuncts, 0u)
        << "MatchingEngine: subscription " << id << " has no conjuncts";
    // Lazy deletion keeps dead subscriptions' postings in place, so the
    // posting count must match for live and dead records alike.
    PSCD_CHECK_EQ(postings[id], rec.numConjuncts)
        << "MatchingEngine: posting count of subscription " << id
        << " disagrees with its conjunct count";
    if (rec.live) ++live;
  }
  PSCD_CHECK_EQ(live, liveCount_)
      << "MatchingEngine: live counter disagrees with the records";
  // The epoch-stamped scratch arrays grow together with subs_.
  PSCD_CHECK_EQ(hitCount_.size(), stamp_.size())
      << "MatchingEngine: scratch arrays out of sync";
  PSCD_CHECK_LE(hitCount_.size(), subs_.size())
      << "MatchingEngine: scratch arrays larger than the record table";
}

}  // namespace pscd
