#include "pscd/pubsub/broker.h"

#include <algorithm>
#include <stdexcept>

#include "pscd/util/check.h"
#include "pscd/util/hot.h"

namespace pscd {

Broker::Broker(std::uint32_t numProxies) : numProxies_(numProxies) {
  if (numProxies == 0) {
    throw std::invalid_argument("Broker: numProxies must be > 0");
  }
}

SubscriptionId Broker::subscribe(Subscription sub) {
  if (sub.proxy >= numProxies_) {
    throw std::out_of_range("Broker::subscribe: proxy out of range");
  }
  return engine_.addSubscription(std::move(sub));
}

bool Broker::unsubscribe(SubscriptionId id) {
  return engine_.removeSubscription(id);
}

PSCD_HOT void Broker::subscribeAggregated(ProxyId proxy, PageId page,
                                          std::uint32_t count) {
  if (proxy >= numProxies_) {
    throw std::out_of_range("Broker::subscribeAggregated: proxy out of range");
  }
  if (count == 0) return;
  auto& list = aggregated_[page];
  const auto it = std::lower_bound(
      list.begin(), list.end(), proxy,
      [](const Notification& n, ProxyId p) { return n.proxy < p; });
  if (it != list.end() && it->proxy == proxy) {
    it->matchCount += count;
  } else {
    list.insert(it, Notification{proxy, count});
  }
}

PSCD_HOT std::uint32_t Broker::unsubscribeAggregated(ProxyId proxy,
                                                     PageId page,
                                                     std::uint32_t count) {
  if (proxy >= numProxies_) {
    throw std::out_of_range(
        "Broker::unsubscribeAggregated: proxy out of range");
  }
  const auto pageIt = aggregated_.find(page);
  if (pageIt == aggregated_.end()) return 0;
  auto& list = pageIt->second;
  const auto it = std::lower_bound(
      list.begin(), list.end(), proxy,
      [](const Notification& n, ProxyId p) { return n.proxy < p; });
  if (it == list.end() || it->proxy != proxy) return 0;
  const std::uint32_t removed = std::min(count, it->matchCount);
  it->matchCount -= removed;
  if (it->matchCount == 0) list.erase(it);
  // Drop the page entry entirely once its list drains so churn-heavy
  // workloads do not accumulate empty lists.
  if (list.empty()) aggregated_.erase(pageIt);
  return removed;
}

PSCD_HOT std::uint32_t Broker::aggregatedCount(ProxyId proxy,
                                               PageId page) const {
  const auto pageIt = aggregated_.find(page);
  if (pageIt == aggregated_.end()) return 0;
  const auto& list = pageIt->second;
  const auto it = std::lower_bound(
      list.begin(), list.end(), proxy,
      [](const Notification& n, ProxyId p) { return n.proxy < p; });
  return (it != list.end() && it->proxy == proxy) ? it->matchCount : 0;
}

PSCD_HOT std::vector<Notification> Broker::publish(
    const ContentAttributes& attrs) {
  ++publishCount_;
  // pscd-lint: allow(alloc-in-hot) the notification list escapes to the caller; default construction does not allocate
  std::vector<Notification> out;

  const auto pageIt = aggregated_.find(attrs.page);
  if (pageIt != aggregated_.end()) out = pageIt->second;

  if (engine_.size() > 0) {
    const MatchResult m = engine_.match(attrs);
    // Merge the (sorted) predicate-match counts into the aggregated list.
    // Worst case every matched proxy is new to the list; one exact
    // reserve keeps the sorted inserts from reallocating mid-merge.
    out.reserve(out.size() + m.proxyCounts.size());
    for (const auto& [proxy, count] : m.proxyCounts) {
      const auto it = std::lower_bound(
          out.begin(), out.end(), proxy,
          [](const Notification& n, ProxyId p) { return n.proxy < p; });
      if (it != out.end() && it->proxy == proxy) {
        it->matchCount += count;
      } else {
        out.insert(it, Notification{proxy, count});
      }
    }
  }

  for (const auto& n : out) notificationCount_ += n.matchCount;
  return out;
}

void Broker::checkInvariants() const {
  engine_.checkInvariants();
  // pscd-lint: allow(unordered-iter) per-page assertions, no output fold
  for (const auto& [page, list] : aggregated_) {
    PSCD_CHECK(!list.empty())
        << "Broker: empty aggregation list kept for page " << page;
    ProxyId prev = 0;
    bool first = true;
    for (const Notification& n : list) {
      PSCD_CHECK_LT(n.proxy, numProxies_)
          << "Broker: aggregated proxy out of range for page " << page;
      PSCD_CHECK_GT(n.matchCount, 0u)
          << "Broker: zero aggregated count kept for page " << page;
      PSCD_CHECK(first || prev < n.proxy)
          << "Broker: aggregation list for page " << page << " unsorted";
      prev = n.proxy;
      first = false;
    }
  }
}

}  // namespace pscd
