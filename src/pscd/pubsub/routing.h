// Distributed notification routing (paper section 2: "these engines may
// be centralized or distributed"): brokers form a tree rooted at the
// publisher's broker; proxies attach to brokers; subscriptions propagate
// toward the root, optionally pruned by the covering relation; publish
// events route down only the links whose subtree registered a matching
// subscription. Message counters expose the control and event traffic so
// the covering optimization can be quantified (bench_routing_tree).
#pragma once

#include <cstdint>
#include <vector>

#include "pscd/pubsub/broker.h"
#include "pscd/pubsub/covering.h"
#include "pscd/pubsub/matcher.h"
#include "pscd/util/types.h"

namespace pscd {

using BrokerId = std::uint32_t;

class BrokerTree {
 public:
  /// parents[i] is the parent of broker i; parents[0] is ignored
  /// (broker 0 is the root, where the publisher attaches). Every parent
  /// index must be smaller than its child's (topological order).
  explicit BrokerTree(std::vector<BrokerId> parents, bool useCovering = true);

  /// Balanced tree with the given fanout.
  static BrokerTree balanced(std::uint32_t numBrokers, std::uint32_t fanout,
                             bool useCovering = true);

  std::uint32_t numBrokers() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  BrokerId parent(BrokerId b) const { return nodes_[b].parent; }
  bool isLeaf(BrokerId b) const { return nodes_[b].children.empty(); }

  /// Attaches a proxy to a broker; a proxy attaches exactly once.
  void attachProxy(ProxyId proxy, BrokerId broker);

  /// Registers a subscription on behalf of its proxy (which must be
  /// attached). The subscription is installed at the proxy's broker and
  /// advertised hop by hop toward the root; with covering enabled the
  /// advertisement stops at the first broker whose upstream frontier
  /// already covers it.
  void subscribe(const Subscription& sub);

  /// Routes a publish event from the root. Returns per-proxy match
  /// counts, sorted by proxy — the same contract as Broker::publish, so
  /// the two implementations are interchangeable (and tested against
  /// each other).
  std::vector<Notification> publish(const ContentAttributes& attrs);

  /// Subscription advertisements sent across broker links.
  std::uint64_t controlMessages() const { return controlMessages_; }
  /// Event transmissions across broker links (publisher->root excluded).
  std::uint64_t eventMessages() const { return eventMessages_; }
  /// Event transmissions a subscription-oblivious flood would have used
  /// for the same publish calls (every link, every event).
  std::uint64_t floodEventMessages() const { return floodEventMessages_; }
  std::uint64_t subscriptionCount() const { return subscriptions_; }

 private:
  struct Node {
    BrokerId parent = 0;
    std::vector<BrokerId> children;
    /// Matching over everything registered here, tagged by where it
    /// came from: a local proxy or a child link.
    MatchingEngine engine;
    struct Origin {
      bool local = false;
      ProxyId proxy = 0;       // when local
      std::uint32_t child = 0; // index into children when !local
    };
    std::vector<Origin> origins;  // indexed by SubscriptionId
    /// Frontier advertised to the parent (covering mode only).
    CoveringSet advertised;
    /// Whether anything was advertised upward (non-covering mode).
    bool advertisedAny = false;
  };

  void route(BrokerId broker, const ContentAttributes& attrs,
             std::vector<Notification>& out);
  void installAt(BrokerId broker, const Subscription& sub,
                 const Node::Origin& origin);

  bool useCovering_;
  std::vector<Node> nodes_;
  std::vector<std::int64_t> proxyBroker_;  // -1 = unattached
  std::uint64_t controlMessages_ = 0;
  std::uint64_t eventMessages_ = 0;
  std::uint64_t floodEventMessages_ = 0;
  std::uint64_t subscriptions_ = 0;
};

}  // namespace pscd
