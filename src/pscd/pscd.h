// Umbrella header for the pscd library: content distribution for
// publish/subscribe services (Chen, LaPaugh & Singh, Middleware 2003).
//
// Typical entry points:
//   * pscd::ContentDistributionEngine  — online publish/subscribe/request
//     API with match-time pushing and access-time caching (core/engine.h)
//   * pscd::buildWorkload              — MSNBC-style synthetic workload
//   * pscd::Simulator                  — trace-driven evaluation
//   * pscd::ExperimentContext          — canonical paper experiments
//
// pscd-lint: allow-file(unused-include) umbrella header: every include
// is a deliberate re-export for downstream convenience, not a use site
#pragma once

#include "pscd/cache/dual_cache.h"
#include "pscd/cache/dual_methods.h"
#include "pscd/cache/gds_family.h"
#include "pscd/cache/lru_strategy.h"
#include "pscd/cache/oracle_strategy.h"
#include "pscd/cache/strategy.h"
#include "pscd/cache/strategy_factory.h"
#include "pscd/cache/sub_strategy.h"
#include "pscd/cache/value_cache.h"
#include "pscd/core/engine.h"
#include "pscd/core/fault_plan.h"
#include "pscd/core/fault_policy.h"
#include "pscd/core/latency.h"
#include "pscd/core/runtime.h"
#include "pscd/core/service.h"
#include "pscd/net/client.h"
#include "pscd/net/daemon.h"
#include "pscd/net/histogram.h"
#include "pscd/net/pacing.h"
#include "pscd/net/wire.h"
#include "pscd/net/wire_runtime.h"
#include "pscd/pubsub/attributes.h"
#include "pscd/pubsub/broker.h"
#include "pscd/pubsub/covering.h"
#include "pscd/pubsub/matcher.h"
#include "pscd/pubsub/routing.h"
#include "pscd/pubsub/subscription.h"
#include "pscd/sim/experiment.h"
#include "pscd/sim/hierarchy.h"
#include "pscd/sim/metrics.h"
#include "pscd/sim/parallel_runner.h"
#include "pscd/sim/simulator.h"
#include "pscd/topology/barabasi_albert.h"
#include "pscd/topology/graph.h"
#include "pscd/topology/link_state.h"
#include "pscd/topology/network.h"
#include "pscd/topology/shortest_path.h"
#include "pscd/topology/waxman.h"
#include "pscd/util/args.h"
#include "pscd/util/csv.h"
#include "pscd/util/distributions.h"
#include "pscd/util/hot.h"
#include "pscd/util/json.h"
#include "pscd/util/log.h"
#include "pscd/util/mutex.h"
#include "pscd/util/rng.h"
#include "pscd/util/stats.h"
#include "pscd/util/table.h"
#include "pscd/util/thread_annotations.h"
#include "pscd/util/thread_pool.h"
#include "pscd/util/types.h"
#include "pscd/workload/params.h"
#include "pscd/workload/publishing.h"
#include "pscd/workload/requests.h"
#include "pscd/workload/serialize.h"
#include "pscd/workload/subscriptions.h"
#include "pscd/workload/workload.h"
