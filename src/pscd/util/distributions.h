// Samplers for the distributions used by the paper's workload model:
// Zipf popularity (footnote 2), log-normal page sizes (footnote 1),
// step-wise modification intervals (section 4.1), and a truncated
// power-law age distribution used for request timing (section 4.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pscd/util/rng.h"

namespace pscd {

/// Zipf's-law distribution over ranks 1..n with homogeneity parameter
/// alpha: P(rank = r) proportional to r^-alpha. Sampling is O(log n) via
/// binary search on the precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint32_t n, double alpha);

  /// Rank in [1, n].
  std::uint32_t sample(Rng& rng) const;

  /// Probability mass of a given rank in [1, n].
  double pmf(std::uint32_t rank) const;

  std::uint32_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  std::uint32_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[r-1] = P(rank <= r)
};

/// Log-normal distribution: ln X ~ N(mu, sigma^2).
class LogNormalDistribution {
 public:
  LogNormalDistribution(double mu, double sigma);

  double sample(Rng& rng) const;

  /// E[X] = exp(mu + sigma^2/2).
  double mean() const;

 private:
  double mu_;
  double sigma_;
};

/// Piecewise-uniform ("step-wise random") distribution: with probability
/// weight_k the value is uniform in [lo_k, hi_k). Used for the page
/// modification intervals (5% < 1h, 90% in [1h,1d], 5% > 1d).
class StepwiseDistribution {
 public:
  struct Segment {
    double weight;  // relative probability mass of this segment
    double lo;
    double hi;
  };

  explicit StepwiseDistribution(std::vector<Segment> segments);

  double sample(Rng& rng) const;

  std::span<const Segment> segments() const { return segments_; }

 private:
  std::vector<Segment> segments_;
  std::vector<double> cdf_;
};

/// Age distribution with density proportional to (1 + x/tau)^-gamma on
/// [0, maxAge], sampled by analytic CDF inversion. gamma controls how
/// strongly access probability decays with page age: large gamma means
/// requests concentrate on fresh pages.
class TruncatedPowerLawAge {
 public:
  TruncatedPowerLawAge(double gamma, double tau, double maxAge);

  double sample(Rng& rng) const;

  /// CDF at x (exposed for testing).
  double cdf(double x) const;

  double gamma() const { return gamma_; }
  double tau() const { return tau_; }
  double maxAge() const { return maxAge_; }

 private:
  double integral(double x) const;  // unnormalized CDF
  double gamma_;
  double tau_;
  double maxAge_;
  double norm_;  // integral(maxAge_)
};

/// O(1) sampling from an arbitrary discrete distribution via Walker's
/// alias method. Used to assign the ~195k requests to pages.
class DiscreteSampler {
 public:
  /// weights need not be normalized; must be non-negative with a
  /// positive sum.
  explicit DiscreteSampler(std::span<const double> weights);

  std::uint32_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace pscd
