#include "pscd/util/rng.h"

#include <cmath>
#include <numbers>

#include "pscd/util/check.h"

namespace pscd {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PSCD_DCHECK_LE(lo, hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniformInt(std::uint64_t n) {
  PSCD_DCHECK_GT(n, 0u);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t x = next();
    const __uint128_t m = static_cast<__uint128_t>(x) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  PSCD_DCHECK_LE(lo, hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniformInt(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  PSCD_CHECK_GT(lambda, 0.0) << "Rng::exponential rate";
  return -std::log(1.0 - uniform()) / lambda;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace pscd
