// Lightweight leveled logging to stderr. Simulation hot paths never log;
// this exists for the harness, examples, and debugging. Thread-safe:
// each line is rendered off-lock and written to the sink in one guarded
// insertion, so lines from concurrent experiment cells never interleave.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

namespace pscd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Redirects log output to the given stream (nullptr restores the
/// default, stderr) and returns the previous sink. The stream must
/// outlive all logging; used by tests to capture output.
std::ostream* setLogSink(std::ostream* sink);

/// Emits one log line ("[LEVEL] message") to the sink if enabled.
void logMessage(LogLevel level, std::string_view message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { logMessage(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine logDebug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine logInfo() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine logWarn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine logError() { return detail::LogLine(LogLevel::kError); }

}  // namespace pscd
