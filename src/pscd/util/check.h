// Runtime invariant checking for the whole pscd stack.
//
// PSCD_CHECK(cond) evaluates in every build; PSCD_DCHECK(cond) compiles
// out in NDEBUG builds (the condition is still type-checked but never
// evaluated). Both accept streamed context and throw pscd::CheckFailure
// — which derives from std::logic_error, so call sites and tests that
// catch the legacy exception keep working:
//
//   PSCD_CHECK(used <= capacity) << "cache " << name << " over budget";
//   PSCD_CHECK_EQ(entries.size(), index.size());
//   PSCD_DCHECK_LT(idx, table.size()) << "lookup out of range";
//
// Unlike assert(), a failed check is a catchable exception: tests can
// EXPECT_THROW on deliberately corrupted state, and the simulator's
// --self-check mode reports the violated invariant instead of aborting.
//
// The comparison macros re-evaluate their operands once more on the
// failure path to render both values into the message; keep operands
// side-effect free (as with assert()).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pscd {

/// Thrown by a failed PSCD_CHECK / PSCD_DCHECK and by every
/// checkInvariants() validator in the library.
class CheckFailure : public std::logic_error {
 public:
  CheckFailure(const std::string& message, const char* file, int line)
      : std::logic_error(message), file_(file), line_(line) {}

  const char* file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  const char* file_;
  int line_;
};

namespace detail {

/// Collects the streamed context of a failing check and throws the
/// resulting CheckFailure when destroyed at the end of the full
/// expression. Only ever constructed on the failure branch.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, std::string_view condition)
      : file_(file), line_(line) {
    stream_ << file << ':' << line << ": " << condition;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  ~CheckFailureStream() noexcept(false) {
    throw CheckFailure(stream_.str(), file_, line_);
  }

  /// Renders both operands of a failed comparison: "... (lhs vs rhs)".
  template <typename A, typename B>
  CheckFailureStream& withOperands(const A& a, const B& b) {
    stream_ << " (" << a << " vs " << b << ')';
    return *this;
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    if (!separatorDone_) {
      stream_ << ": ";
      separatorDone_ = true;
    }
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  bool separatorDone_ = false;
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< void sink, so the whole check expression has
/// type void on both ternary branches. Takes a const reference so it
/// binds both the bare temporary (no streamed context) and the lvalue
/// reference returned by operator<<.
struct Voidify {
  void operator&(const CheckFailureStream&) const {}
};

}  // namespace detail
}  // namespace pscd

// Expression form (no outer parentheses!) so that trailing `<< context`
// chains onto the failure stream before Voidify and ?: apply.
#define PSCD_CHECK(cond)                              \
  (cond) ? (void)0                                    \
         : ::pscd::detail::Voidify() &                \
               ::pscd::detail::CheckFailureStream(    \
                   __FILE__, __LINE__, "PSCD_CHECK(" #cond ") failed")

#define PSCD_CHECK_OP_IMPL(opname, op, a, b)                             \
  ((a)op(b)) ? (void)0                                                   \
             : ::pscd::detail::Voidify() &                               \
                   ::pscd::detail::CheckFailureStream(                   \
                       __FILE__, __LINE__,                               \
                       "PSCD_CHECK_" #opname "(" #a ", " #b ") failed")  \
                       .withOperands((a), (b))

#define PSCD_CHECK_EQ(a, b) PSCD_CHECK_OP_IMPL(EQ, ==, a, b)
#define PSCD_CHECK_NE(a, b) PSCD_CHECK_OP_IMPL(NE, !=, a, b)
#define PSCD_CHECK_LT(a, b) PSCD_CHECK_OP_IMPL(LT, <, a, b)
#define PSCD_CHECK_LE(a, b) PSCD_CHECK_OP_IMPL(LE, <=, a, b)
#define PSCD_CHECK_GT(a, b) PSCD_CHECK_OP_IMPL(GT, >, a, b)
#define PSCD_CHECK_GE(a, b) PSCD_CHECK_OP_IMPL(GE, >=, a, b)

// Debug-only checks: active unless NDEBUG (or when PSCD_DCHECK_ALWAYS_ON
// forces them on, e.g. for sanitizer builds of release binaries). The
// `while (false)` form keeps the condition and any streamed context
// type-checked while guaranteeing neither is evaluated at runtime.
#if defined(NDEBUG) && !defined(PSCD_DCHECK_ALWAYS_ON)
#define PSCD_DCHECK_IS_ON() 0
#define PSCD_DCHECK(cond) \
  while (false) PSCD_CHECK(cond)
#define PSCD_DCHECK_EQ(a, b) \
  while (false) PSCD_CHECK_EQ(a, b)
#define PSCD_DCHECK_NE(a, b) \
  while (false) PSCD_CHECK_NE(a, b)
#define PSCD_DCHECK_LT(a, b) \
  while (false) PSCD_CHECK_LT(a, b)
#define PSCD_DCHECK_LE(a, b) \
  while (false) PSCD_CHECK_LE(a, b)
#define PSCD_DCHECK_GT(a, b) \
  while (false) PSCD_CHECK_GT(a, b)
#define PSCD_DCHECK_GE(a, b) \
  while (false) PSCD_CHECK_GE(a, b)
#else
#define PSCD_DCHECK_IS_ON() 1
#define PSCD_DCHECK(cond) PSCD_CHECK(cond)
#define PSCD_DCHECK_EQ(a, b) PSCD_CHECK_EQ(a, b)
#define PSCD_DCHECK_NE(a, b) PSCD_CHECK_NE(a, b)
#define PSCD_DCHECK_LT(a, b) PSCD_CHECK_LT(a, b)
#define PSCD_DCHECK_LE(a, b) PSCD_CHECK_LE(a, b)
#define PSCD_DCHECK_GT(a, b) PSCD_CHECK_GT(a, b)
#define PSCD_DCHECK_GE(a, b) PSCD_CHECK_GE(a, b)
#endif
