// The one sanctioned wall-clock access point in the tree.
//
// pscd-lint's `wall-clock` rule bans every other use of <chrono> clocks,
// time(), gettimeofday() and friends: simulation code must derive time
// from the event loop (SimTime), and letting wall-clock reads creep into
// library or bench code is how byte-identical `--jobs 1` vs `--jobs N`
// output quietly dies. Diagnostics that genuinely need elapsed real time
// (fuzzing time budgets, progress meters) include this header instead,
// so every such site is grep-able and reviewed.
//
// Nothing returned by this header may feed simulation results, CSV
// sinks, or anything else that is diffed for determinism.
#pragma once

// (This file is the allowlisted home of the `wall-clock` rule, so the
// clock uses below need no suppression comment.)
#include <chrono>
#include <cstdint>
#include <thread>

namespace pscd {

/// Seconds since an unspecified steady epoch. Monotonic; immune to
/// system clock adjustments. For diagnostics and time budgets only.
inline double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Blocks the calling thread for (at least) the given real-time span.
/// For load-generator pacing and test polling only — simulation code
/// advances SimTime through the event loop and never sleeps.
inline void sleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Whole seconds since the Unix epoch. For timestamping persisted
/// diagnostics (the BENCH_micro.json trajectory entries); never for
/// anything that is diffed for determinism.
inline std::int64_t unixTimeSeconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace pscd
