// Minimal command-line parser for the tools and examples: long options
// only ("--name value" / "--name=value"), boolean flags, typed getters
// with defaults, and generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pscd {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declares a boolean flag ("--verbose").
  void addFlag(std::string name, std::string description);

  /// Declares a value option with a default shown in --help.
  void addOption(std::string name, std::string description,
                 std::string defaultValue);

  /// Parses argv. Returns false when parsing fails or --help was given;
  /// error() distinguishes the two (empty for --help).
  bool parse(int argc, const char* const* argv);

  bool flag(std::string_view name) const;
  const std::string& option(std::string_view name) const;
  double optionDouble(std::string_view name) const;
  std::int64_t optionInt(std::string_view name) const;

  const std::string& error() const { return error_; }
  std::string help() const;

 private:
  struct Spec {
    std::string description;
    bool isFlag = false;
    std::string defaultValue;
  };
  const Spec& specFor(std::string_view name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec, std::less<>> specs_;
  std::map<std::string, std::string, std::less<>> values_;
  std::map<std::string, bool, std::less<>> flags_;
  std::string error_;
};

}  // namespace pscd
