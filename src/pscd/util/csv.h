// Minimal CSV writer used by benches/examples to export series that can
// be plotted externally.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pscd {

/// Streams rows of a CSV table. Values containing separators, quotes or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Does not own the stream; it must outlive the writer.
  explicit CsvWriter(std::ostream& out, char separator = ',');

  /// Writes a header row; may be called only before any data row.
  void header(const std::vector<std::string>& columns);

  CsvWriter& field(std::string_view value);
  CsvWriter& field(double value);
  CsvWriter& field(std::uint64_t value);
  CsvWriter& field(std::int64_t value);

  /// Terminates the current row.
  void endRow();

  std::size_t rowsWritten() const { return rows_; }

 private:
  void sep();
  std::ostream& out_;
  char separator_;
  bool rowStarted_ = false;
  bool headerWritten_ = false;
  std::size_t rows_ = 0;
};

/// Escapes one CSV field (exposed for testing).
std::string csvEscape(std::string_view value, char separator = ',');

}  // namespace pscd
