#include "pscd/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace pscd {

std::string formatFixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("AsciiTable: no columns");
}

AsciiTable& AsciiTable::row() {
  rows_.emplace_back();
  return *this;
}

AsciiTable& AsciiTable::cell(std::string value) {
  if (rows_.empty()) throw std::logic_error("AsciiTable: call row() first");
  if (rows_.back().size() >= header_.size()) {
    throw std::logic_error("AsciiTable: too many cells in row");
  }
  rows_.back().push_back(std::move(value));
  return *this;
}

AsciiTable& AsciiTable::cell(double value, int precision) {
  return cell(formatFixed(value, precision));
}

AsciiTable& AsciiTable::cell(std::uint64_t value) {
  return cell(std::to_string(value));
}

AsciiTable& AsciiTable::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "| " : " ") << std::left
         << std::setw(static_cast<int>(width[c])) << v << " |";
    }
    os << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-") << std::string(width[c], '-') << "-|";
  }
  os << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace pscd
