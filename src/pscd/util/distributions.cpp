#include "pscd/util/distributions.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pscd/util/check.h"

namespace pscd {

ZipfDistribution::ZipfDistribution(std::uint32_t n, double alpha)
    : n_(n), alpha_(alpha), cdf_(n) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  double sum = 0.0;
  for (std::uint32_t r = 1; r <= n; ++r) {
    sum += std::pow(static_cast<double>(r), -alpha);
    cdf_[r - 1] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint32_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::uint32_t rank) const {
  PSCD_CHECK(rank >= 1 && rank <= n_)
      << "ZipfDistribution::pmf rank " << rank << " outside [1, " << n_ << "]";
  const double lower = rank == 1 ? 0.0 : cdf_[rank - 2];
  return cdf_[rank - 1] - lower;
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  if (sigma < 0) {
    throw std::invalid_argument("LogNormalDistribution: sigma must be >= 0");
  }
}

double LogNormalDistribution::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormalDistribution::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

StepwiseDistribution::StepwiseDistribution(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("StepwiseDistribution: no segments");
  }
  double sum = 0.0;
  for (const auto& s : segments_) {
    if (s.weight < 0 || s.hi < s.lo) {
      throw std::invalid_argument("StepwiseDistribution: bad segment");
    }
    sum += s.weight;
  }
  if (sum <= 0) {
    throw std::invalid_argument("StepwiseDistribution: zero total weight");
  }
  double acc = 0.0;
  cdf_.reserve(segments_.size());
  for (const auto& s : segments_) {
    acc += s.weight / sum;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;
}

double StepwiseDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto& seg = segments_[static_cast<std::size_t>(it - cdf_.begin())];
  return rng.uniform(seg.lo, seg.hi);
}

TruncatedPowerLawAge::TruncatedPowerLawAge(double gamma, double tau,
                                           double maxAge)
    : gamma_(gamma), tau_(tau), maxAge_(maxAge) {
  if (tau <= 0 || maxAge <= 0) {
    throw std::invalid_argument("TruncatedPowerLawAge: tau and maxAge > 0");
  }
  norm_ = integral(maxAge_);
}

double TruncatedPowerLawAge::integral(double x) const {
  // \int_0^x (1 + t/tau)^-gamma dt
  const double b = 1.0 + x / tau_;
  if (std::abs(gamma_ - 1.0) < 1e-12) return tau_ * std::log(b);
  return tau_ / (1.0 - gamma_) * (std::pow(b, 1.0 - gamma_) - 1.0);
}

double TruncatedPowerLawAge::cdf(double x) const {
  if (x <= 0) return 0.0;
  if (x >= maxAge_) return 1.0;
  return integral(x) / norm_;
}

double TruncatedPowerLawAge::sample(Rng& rng) const {
  const double target = rng.uniform() * norm_;
  // Invert integral(x) = target analytically.
  double x;
  if (std::abs(gamma_ - 1.0) < 1e-12) {
    x = tau_ * (std::exp(target / tau_) - 1.0);
  } else {
    const double inner = 1.0 + (1.0 - gamma_) * target / tau_;
    x = tau_ * (std::pow(inner, 1.0 / (1.0 - gamma_)) - 1.0);
  }
  return std::clamp(x, 0.0, maxAge_);
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("DiscreteSampler: empty weights");
  double sum = 0.0;
  for (const double w : weights) {
    if (w < 0) throw std::invalid_argument("DiscreteSampler: negative weight");
    sum += w;
  }
  if (sum <= 0) throw std::invalid_argument("DiscreteSampler: zero sum");

  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / sum;
  }
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : small) {  // numerical leftovers
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::uint32_t DiscreteSampler::sample(Rng& rng) const {
  const std::uint32_t i =
      static_cast<std::uint32_t>(rng.uniformInt(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace pscd
