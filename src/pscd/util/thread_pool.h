// Fixed-size thread pool with a mutex-guarded FIFO task queue (no work
// stealing — the experiment cells it runs are coarse enough that a
// single queue is never the bottleneck) plus a Latch and a
// result-collection helper for fork/join fan-outs. The locking protocol
// is expressed through the thread-safety annotations and enforced at
// compile time under clang (-Werror=thread-safety).
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "pscd/util/mutex.h"

namespace pscd {

/// Number of workers to use for `requested` (0 = one per hardware
/// thread, with a floor of 1 when the runtime reports nothing).
unsigned resolveJobs(unsigned requested);

class ThreadPool {
 public:
  /// Spawns the workers immediately. numThreads is resolved through
  /// resolveJobs(), so 0 means hardware_concurrency.
  explicit ThreadPool(unsigned numThreads = 0);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false (dropping the task) once shutdown()
  /// has begun. Tasks must not throw out of the pool: a task's exception
  /// is caught by the worker and surfaced via rethrowIfTaskFailed();
  /// use runAll()/Latch for per-batch exception propagation.
  bool submit(std::function<void()> task) PSCD_EXCLUDES(mu_);

  /// Blocks until every queued/running task has finished, stops the
  /// workers and joins them. Idempotent; called by the destructor.
  void shutdown() PSCD_EXCLUDES(mu_);

  /// True once shutdown() has begun (submissions are rejected).
  bool shutdownStarted() const PSCD_EXCLUDES(mu_);

  /// Rethrows the first exception any task has thrown so far (and
  /// clears it); no-op when every task completed cleanly.
  void rethrowIfTaskFailed() PSCD_EXCLUDES(mu_);

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void workerLoop() PSCD_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar workAvailable_;
  std::deque<std::function<void()>> queue_ PSCD_GUARDED_BY(mu_);
  bool shutdown_ PSCD_GUARDED_BY(mu_) = false;
  std::exception_ptr firstError_ PSCD_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written only in ctor/shutdown
};

/// Single-use countdown latch: wait() blocks until countDown() has been
/// called `expected` times. countDown() may carry an exception; wait()
/// rethrows the first one after the count reaches zero.
class Latch {
 public:
  explicit Latch(std::size_t expected);

  /// Signals one completion, optionally recording a failure.
  void countDown(std::exception_ptr error = nullptr) PSCD_EXCLUDES(mu_);

  /// Blocks until the count reaches zero, then rethrows the first
  /// recorded exception, if any.
  void wait() PSCD_EXCLUDES(mu_);

 private:
  Mutex mu_;
  CondVar done_;
  std::size_t remaining_ PSCD_GUARDED_BY(mu_);
  std::exception_ptr firstError_ PSCD_GUARDED_BY(mu_);
};

/// Runs every task on the pool and blocks until all of them finished.
/// The first exception thrown by any task is rethrown on the calling
/// thread (after the whole batch has drained, so no task is abandoned
/// mid-flight). With a null pool the tasks run inline, in order, on the
/// calling thread — that is the benches' --jobs 1 serial path.
void runAll(ThreadPool* pool, std::vector<std::function<void()>> tasks);

}  // namespace pscd
