#include "pscd/util/args.h"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pscd {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::addFlag(std::string name, std::string description) {
  Spec spec;
  spec.description = std::move(description);
  spec.isFlag = true;
  specs_.emplace(std::move(name), std::move(spec));
}

void ArgParser::addOption(std::string name, std::string description,
                          std::string defaultValue) {
  Spec spec;
  spec.description = std::move(description);
  spec.defaultValue = std::move(defaultValue);
  specs_.emplace(std::move(name), std::move(spec));
}

const ArgParser::Spec& ArgParser::specFor(std::string_view name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw std::logic_error("ArgParser: undeclared argument " +
                           std::string(name));
  }
  return it->second;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  error_.clear();
  values_.clear();
  flags_.clear();
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == nullptr) {
      error_ = "null argument in argv";
      return false;
    }
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (!arg.starts_with("--")) {
      error_ = "unexpected positional argument: " + std::string(arg);
      return false;
    }
    arg.remove_prefix(2);
    std::optional<std::string> inlineValue;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      inlineValue = std::string(arg.substr(eq + 1));
      arg = arg.substr(0, eq);
    }
    if (arg.empty()) {
      error_ = "missing option name after --";
      return false;
    }
    const auto it = specs_.find(arg);
    if (it == specs_.end()) {
      error_ = "unknown option --" + std::string(arg);
      return false;
    }
    if (it->second.isFlag) {
      if (inlineValue) {
        error_ = "flag --" + std::string(arg) + " takes no value";
        return false;
      }
      flags_[std::string(arg)] = true;
    } else {
      if (!inlineValue) {
        if (++i >= argc) {
          error_ = "missing value for --" + std::string(arg);
          return false;
        }
        inlineValue = argv[i];
      }
      values_[std::string(arg)] = *inlineValue;
    }
  }
  return true;
}

bool ArgParser::flag(std::string_view name) const {
  const Spec& spec = specFor(name);
  if (!spec.isFlag) throw std::logic_error("ArgParser: not a flag");
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second;
}

const std::string& ArgParser::option(std::string_view name) const {
  const Spec& spec = specFor(name);
  if (spec.isFlag) throw std::logic_error("ArgParser: not an option");
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec.defaultValue;
}

double ArgParser::optionDouble(std::string_view name) const {
  const std::string& raw = option(name);
  try {
    std::size_t used = 0;
    const double v = std::stod(raw, &used);
    if (used != raw.size() || !std::isfinite(v)) {
      throw std::invalid_argument(raw);
    }
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + std::string(name) +
                                ": not a finite number: " + raw);
  }
}

std::int64_t ArgParser::optionInt(std::string_view name) const {
  const std::string& raw = option(name);
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (ec != std::errc() || ptr != raw.data() + raw.size()) {
    throw std::invalid_argument("option --" + std::string(name) +
                                ": not an integer: " + raw);
  }
  return v;
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.isFlag) os << " <value>";
    os << "\n      " << spec.description;
    if (!spec.isFlag && !spec.defaultValue.empty()) {
      os << " (default: " << spec.defaultValue << ")";
    }
    os << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace pscd
