#include "pscd/util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace pscd {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (stack_.empty() || stack_.back() != Frame::kObject || keyPending_) {
    throw std::logic_error("JsonWriter: endObject without matching object");
  }
  out_ << '}';
  stack_.pop_back();
  hasElement_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: endArray without matching array");
  }
  out_ << ']';
  stack_.pop_back();
  hasElement_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (stack_.empty() || stack_.back() != Frame::kObject || keyPending_) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (hasElement_.back()) out_ << ',';
  hasElement_.back() = true;
  out_ << '"' << jsonEscape(k) << "\":";
  keyPending_ = true;
  return *this;
}

void JsonWriter::beforeValue() {
  if (keyPending_) {
    keyPending_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back() != Frame::kArray) {
      throw std::logic_error("JsonWriter: value in object without key()");
    }
    if (hasElement_.back()) out_ << ',';
    hasElement_.back() = true;
  }
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  out_ << '"' << jsonEscape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) {
    throw std::invalid_argument("JsonWriter: non-finite number");
  }
  // Integral doubles print without a fraction; everything else uses
  // round-trip precision. Both are locale-independent and stable.
  char buf[32];
  // pscd-lint: allow(float-compare) exact integrality test chooses the shorter formatting, never affects the value
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ << (v ? "true" : "false");
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty() || keyPending_) {
    throw std::logic_error("JsonWriter: document still open");
  }
  return out_.str();
}

bool writeTextFileAtomic(const std::string& path, const std::string& content,
                         std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    if (!out) {
      if (error != nullptr) *error = "cannot write " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " -> " + path;
    return false;
  }
  return true;
}

}  // namespace pscd
