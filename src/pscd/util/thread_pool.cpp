#include "pscd/util/thread_pool.h"

#include <utility>

#include "pscd/util/check.h"

namespace pscd {

unsigned resolveJobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned numThreads) {
  const unsigned n = resolveJobs(numThreads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  PSCD_CHECK(task != nullptr) << "ThreadPool::submit requires a callable task";
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  workAvailable_.notifyOne();
  return true;
}

void ThreadPool::shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  workAvailable_.notifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::shutdownStarted() const {
  MutexLock lock(mu_);
  return shutdown_;
}

void ThreadPool::rethrowIfTaskFailed() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    error = std::exchange(firstError_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      workAvailable_.wait(mu_,
                          [this]() PSCD_REQUIRES(mu_) {
                            return shutdown_ || !queue_.empty();
                          });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      MutexLock lock(mu_);
      if (!firstError_) firstError_ = std::current_exception();
    }
  }
}

Latch::Latch(std::size_t expected) : remaining_(expected) {}

void Latch::countDown(std::exception_ptr error) {
  MutexLock lock(mu_);
  PSCD_CHECK(remaining_ > 0)
      << "Latch::countDown called more times than the latch was "
         "constructed for";
  if (error && !firstError_) firstError_ = error;
  // Notify while still holding mu_: a waiter in wait() cannot re-acquire
  // the mutex, observe remaining_ == 0, and destroy this Latch until the
  // lock is released, so the notify never touches a dead CondVar.
  if (--remaining_ == 0) done_.notifyAll();
}

void Latch::wait() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    done_.wait(mu_, [this]() PSCD_REQUIRES(mu_) { return remaining_ == 0; });
    error = std::exchange(firstError_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void runAll(ThreadPool* pool, std::vector<std::function<void()>> tasks) {
  if (pool == nullptr) {
    // Serial path: run in submission order, and — like the Latch path —
    // keep running the remaining tasks after a failure so partial side
    // effects match the parallel run, then rethrow the first exception.
    std::exception_ptr firstError;
    for (auto& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!firstError) firstError = std::current_exception();
      }
    }
    if (firstError) std::rethrow_exception(firstError);
    return;
  }
  Latch latch(tasks.size());
  for (auto& task : tasks) {
    const bool accepted =
        pool->submit([&latch, task = std::move(task)]() mutable {
          std::exception_ptr error;
          try {
            task();
          } catch (...) {
            error = std::current_exception();
          }
          latch.countDown(error);
        });
    PSCD_CHECK(accepted) << "runAll on a shut-down ThreadPool";
  }
  latch.wait();
}

}  // namespace pscd
