// Fundamental type aliases and time constants shared across the library.
#pragma once

#include <cstdint>

namespace pscd {

/// Identifier of a logical page (document). Modified versions of a page
/// share the PageId and differ in Version.
using PageId = std::uint32_t;

/// Identifier of a proxy (content-distribution) server.
using ProxyId = std::uint32_t;

/// Monotonically increasing version of a page; bumped on each re-publish.
using Version = std::uint32_t;

/// Storage and transfer amounts, in bytes.
using Bytes = std::uint64_t;

/// Simulated time, in seconds since the start of the simulation.
using SimTime = double;

/// Identifier of one subscription registered with the matching engine.
using SubscriptionId = std::uint64_t;

inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;
inline constexpr SimTime kDay = 86400.0;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPage = 0xffffffffu;

}  // namespace pscd
