// PSCD_HOT: hot-path annotation, consumed by two audiences.
//
// The compiler sees [[gnu::hot]] (GCC/Clang), which raises the
// function's optimization priority and groups hot text together.
//
// pscd-lint sees the `PSCD_HOT` token at the definition site and
// harvests the function that follows — name, parameter list, and
// brace-matched body — into a *hot region*. The performance rule pack
// (alloc-in-hot, grow-without-reserve, map-bracket-insert, copy-param,
// copy-in-loop, shared-ptr-copy-in-hot; see DESIGN.md §11) fires only
// inside hot regions, so per-event allocation and copy hygiene is
// enforced exactly where throughput matters and nowhere else.
//
// Annotate the *definition* (the token stream of the .cpp file is what
// the linter scopes), before the return type:
//
//   PSCD_HOT MatchResult MatchingEngine::match(
//       const ContentAttributes& attrs) const { ... }
//
// Annotate only genuinely per-event code: matcher scans, covering
// frontier maintenance, cache touch/evict, publish fan-out, residual
// cost lookups. A PSCD_HOT function that violates a perf rule for a
// sound reason (result vector escapes to the caller, one-off rebuild
// guarded by a dirty flag) carries a justified allow(rule) suppression
// directive like any other finding.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define PSCD_HOT [[gnu::hot]]
#else
#define PSCD_HOT
#endif
