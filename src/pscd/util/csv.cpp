#include "pscd/util/csv.h"

#include <sstream>
#include <stdexcept>

namespace pscd {

std::string csvEscape(std::string_view value, char separator) {
  const bool needsQuote =
      value.find_first_of("\"\r\n") != std::string_view::npos ||
      value.find(separator) != std::string_view::npos;
  if (!needsQuote) return std::string(value);
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, char separator)
    : out_(out), separator_(separator) {}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (headerWritten_ || rows_ > 0 || rowStarted_) {
    throw std::logic_error("CsvWriter: header must be the first row");
  }
  for (const auto& c : columns) field(c);
  endRow();
  headerWritten_ = true;
  rows_ = 0;
}

void CsvWriter::sep() {
  if (rowStarted_) out_ << separator_;
  rowStarted_ = true;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  sep();
  out_ << csvEscape(value, separator_);
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  sep();
  std::ostringstream os;
  os.precision(12);
  os << value;
  out_ << os.str();
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t value) {
  sep();
  out_ << value;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t value) {
  sep();
  out_ << value;
  return *this;
}

void CsvWriter::endRow() {
  out_ << '\n';
  rowStarted_ = false;
  ++rows_;
}

}  // namespace pscd
