// Minimal streaming JSON emitter for the persisted BENCH_*.json
// trajectory files. Deliberately write-only: keys appear in exactly the
// order the caller emits them (stable across runs and platforms, so
// bench output diffs cleanly PR-over-PR), numbers are formatted
// deterministically, and the companion writeTextFileAtomic() lands the
// document with the same tmp+rename pattern as the CSV sink so a
// crashed or concurrent writer can never leave a torn file.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace pscd {

/// Escapes a string for use inside a JSON string literal (quotes,
/// backslashes, control characters; everything else passes through).
std::string jsonEscape(const std::string& s);

/// Streaming writer. Usage:
///
///   JsonWriter w;
///   w.beginObject();
///   w.key("schema").value("pscd-bench-micro-v1");
///   w.key("results").beginArray();
///   ...
///   w.endArray().endObject();
///   writeTextFileAtomic(path, w.str(), &err);
///
/// The writer checks its own bracketing: str() throws std::logic_error
/// when containers are still open, and value() without a pending key
/// inside an object throws as well — emitter bugs fail loudly in tests
/// instead of producing malformed trajectory files.
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Emits an object key; must be directly inside an object, and must
  /// be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(bool v);

  /// The finished document; throws std::logic_error if any object or
  /// array is still open.
  std::string str() const;

 private:
  enum class Frame { kObject, kArray };

  void beforeValue();

  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> hasElement_;  // parallel to stack_
  bool keyPending_ = false;
};

/// Writes `content` to `path` via a sibling ".tmp" file and an atomic
/// rename. Returns false (with a message in *error when non-null) if
/// the write or rename fails; the destination is never left partial.
bool writeTextFileAtomic(const std::string& path, const std::string& content,
                         std::string* error = nullptr);

}  // namespace pscd
