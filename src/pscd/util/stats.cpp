#include "pscd/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pscd/util/check.h"

namespace pscd {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x, double weight) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::binLo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::binHi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::cdf(double x) const {
  if (total_ <= 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (x >= binHi(i)) {
      acc += counts_[i];
    } else {
      acc += counts_[i] * (x - binLo(i)) / width_;
      break;
    }
  }
  return acc / total_;
}

HourlySeries::HourlySeries(std::size_t hours) : num_(hours), den_(hours) {
  if (hours == 0) throw std::invalid_argument("HourlySeries: hours > 0");
}

void HourlySeries::add(SimTime t, double numerator, double denominator) {
  auto h = static_cast<std::ptrdiff_t>(t / kHour);
  h = std::clamp<std::ptrdiff_t>(h, 0,
                                 static_cast<std::ptrdiff_t>(num_.size()) - 1);
  num_[static_cast<std::size_t>(h)] += numerator;
  den_[static_cast<std::size_t>(h)] += denominator;
}

double HourlySeries::ratio(std::size_t hour) const {
  PSCD_CHECK_LT(hour, num_.size()) << "HourlySeries::ratio hour out of range";
  return den_[hour] > 0 ? num_[hour] / den_[hour] : 0.0;
}

double quantile(std::span<const double> sample, double q) {
  if (sample.empty()) throw std::invalid_argument("quantile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace pscd
