// Small statistics helpers: running moments, histograms and the hourly
// time series used by the evaluation figures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pscd/util/types.h"

namespace pscd {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into
/// the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double binLo(std::size_t i) const;
  double binHi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

  /// Fraction of mass at or below x (linear interpolation within bins).
  double cdf(double x) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Accumulates (numerator, denominator) pairs into hourly buckets; used
/// for hit-ratio-per-hour (fig. 6) and traffic-per-hour (fig. 7).
class HourlySeries {
 public:
  explicit HourlySeries(std::size_t hours);

  void add(SimTime t, double numerator, double denominator = 1.0);

  std::size_t hours() const { return num_.size(); }
  double numerator(std::size_t hour) const { return num_[hour]; }
  double denominator(std::size_t hour) const { return den_[hour]; }
  /// numerator/denominator for the hour, or 0 when the hour is empty.
  double ratio(std::size_t hour) const;

  std::span<const double> numerators() const { return num_; }

 private:
  std::vector<double> num_;
  std::vector<double> den_;
};

/// Exact quantile of a sample (copies and sorts; for tests/analysis).
double quantile(std::span<const double> sample, double q);

}  // namespace pscd
