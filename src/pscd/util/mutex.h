// Annotated concurrency primitives: a PSCD_CAPABILITY wrapper over
// std::mutex, the scoped MutexLock, and a CondVar whose wait() declares
// (and checks, under clang) that the caller holds the mutex. These are
// the only types in the tree that talk to <mutex> directly; everything
// else expresses its locking protocol through the annotations so that
// -Werror=thread-safety turns protocol violations into compile errors.
#pragma once

#include <condition_variable>
#include <mutex>

#include "pscd/util/thread_annotations.h"

namespace pscd {

/// Exclusive mutex. Satisfies Lockable, so std::condition_variable_any
/// can block on it; prefer MutexLock over calling lock()/unlock().
class PSCD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PSCD_ACQUIRE() { mu_.lock(); }
  void unlock() PSCD_RELEASE() { mu_.unlock(); }
  bool try_lock() PSCD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock; the analysis treats its scope as holding the mutex.
class PSCD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PSCD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PSCD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to pscd::Mutex. wait() requires the mutex
/// held; it is released while blocked and re-acquired before returning,
/// exactly like std::condition_variable — the annotation just makes the
/// precondition checkable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) PSCD_REQUIRES(mu) PSCD_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate done) PSCD_REQUIRES(mu) {
    while (!done()) wait(mu);
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pscd
