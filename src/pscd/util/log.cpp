#include "pscd/util/log.h"

#include <atomic>
#include <iostream>

namespace pscd {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

std::string_view levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }

LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::cerr << '[' << levelName(level) << "] " << message << '\n';
}

}  // namespace pscd
