#include "pscd/util/log.h"

#include <atomic>
#include <iostream>

#include "pscd/util/mutex.h"

namespace pscd {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// The level gate is a lock-free atomic (hot path: drop a disabled
// message without synchronization), but every line that survives the
// gate is rendered to one string and written under g_sinkMu in a single
// stream insertion, so concurrent bench cells can never interleave or
// tear lines.
Mutex g_sinkMu;
std::ostream* g_sink PSCD_GUARDED_BY(g_sinkMu) = nullptr;  // null = stderr

std::string_view levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }

LogLevel logLevel() { return g_level.load(); }

std::ostream* setLogSink(std::ostream* sink) {
  MutexLock lock(g_sinkMu);
  std::ostream* previous = g_sink;
  g_sink = sink;
  return previous;
}

void logMessage(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string line;
  line.reserve(message.size() + 10);
  line += '[';
  line += levelName(level);
  line += "] ";
  line += message;
  line += '\n';
  MutexLock lock(g_sinkMu);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << line << std::flush;
}

}  // namespace pscd
