// ASCII table formatting for the benchmark harness output: each bench
// binary prints the paper's table/figure rows in a readable grid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pscd {

/// Collects rows of string cells and renders them with aligned columns.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  AsciiTable& row();
  AsciiTable& cell(std::string value);
  AsciiTable& cell(double value, int precision = 2);
  AsciiTable& cell(std::uint64_t value);
  AsciiTable& cell(std::int64_t value);

  /// Renders the table, including a separator under the header.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

  /// Raw cells, for exporting the table in another format (CSV).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rowData() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string formatFixed(double value, int precision);

}  // namespace pscd
