// Clang Thread Safety Analysis annotations
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), compiled to
// no-ops on other compilers. The repo builds with
// -Wthread-safety -Werror=thread-safety under clang, so a read or write
// of a PSCD_GUARDED_BY(mu) field outside a region holding `mu` is a
// compile error, not a runtime hope. Conventions (DESIGN.md section 8):
// every mutable field shared between threads is PSCD_GUARDED_BY a named
// pscd::Mutex, functions that expect the caller to hold a lock say so
// with PSCD_REQUIRES, and PSCD_NO_THREAD_SAFETY_ANALYSIS is reserved
// for the two places that implement the primitives themselves.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PSCD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PSCD_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a class to be a capability ("mutex", "role", ...).
#define PSCD_CAPABILITY(x) PSCD_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime holds a capability.
#define PSCD_SCOPED_CAPABILITY PSCD_THREAD_ANNOTATION(scoped_lockable)

/// Field or variable protected by the given capability.
#define PSCD_GUARDED_BY(x) PSCD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer whose pointee is protected by the given capability.
#define PSCD_PT_GUARDED_BY(x) PSCD_THREAD_ANNOTATION(pt_guarded_by(x))

/// The caller must hold the capability (exclusively) to call this.
#define PSCD_REQUIRES(...) \
  PSCD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The caller must hold the capability at least shared.
#define PSCD_REQUIRES_SHARED(...) \
  PSCD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (and the caller must not hold it).
#define PSCD_ACQUIRE(...) \
  PSCD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the capability (the caller must hold it).
#define PSCD_RELEASE(...) \
  PSCD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function tries to acquire; on a `ret` return value it holds it.
#define PSCD_TRY_ACQUIRE(ret, ...) \
  PSCD_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// The caller must NOT hold the capability (deadlock prevention).
#define PSCD_EXCLUDES(...) PSCD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that this function returns a reference to the capability
/// guarding the annotated data (lets accessors expose their lock).
#define PSCD_RETURN_CAPABILITY(x) PSCD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: turns the analysis off for one function body. Reserved
/// for the primitive implementations (CondVar::wait and friends).
#define PSCD_NO_THREAD_SAFETY_ANALYSIS \
  PSCD_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Asserts at analysis level that the capability is held (for callbacks
/// invoked with the lock already taken through type-erased paths).
#define PSCD_ASSERT_CAPABILITY(x) \
  PSCD_THREAD_ANNOTATION(assert_capability(x))
