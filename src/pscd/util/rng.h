// Deterministic pseudo-random number generation.
//
// The library uses its own xoshiro256** generator rather than <random>
// engines so that results are reproducible across standard-library
// implementations; distribution sampling (util/distributions.h) is likewise
// implemented from first principles.
#pragma once

#include <cstdint>
#include <limits>

namespace pscd {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded via SplitMix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniformInt(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double lambda);

  /// Derives an independent child generator; useful to give each workload
  /// component its own stream so edits to one component do not perturb
  /// the others.
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step; exposed for seeding helpers and tests.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace pscd
