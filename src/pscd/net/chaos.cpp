#include "pscd/net/chaos.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "pscd/util/log.h"
#include "pscd/util/rng.h"
#include "pscd/util/wallclock.h"

namespace pscd::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error("ChaosProxy: " + what + ": " +
                           std::strerror(errno));
}

void setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throwErrno("fcntl(O_NONBLOCK)");
  }
}

/// Uniform [0, 1) from a SplitMix64 stream.
double u01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

void validateDirection(const ChaosDirection& dir, const char* name) {
  if (dir.latencySeconds < 0 || dir.jitterSeconds < 0 ||
      dir.bytesPerSecond < 0) {
    throw std::invalid_argument(std::string("ChaosProxy: negative ") + name +
                                " latency/jitter/rate");
  }
}

}  // namespace

std::string formatChaosStats(const ChaosStats& s) {
  std::string out = "chaos:";
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("connections", s.connections);
  field("connect_failures", s.connectFailures);
  field("resets", s.resets);
  field("truncated", s.truncated);
  field("stalled", s.stalled);
  field("bytes_up", s.bytesUpstream);
  field("bytes_down", s.bytesDownstream);
  return out;
}

ChaosProxy::ChaosProxy(const ChaosConfig& config) : config_(config) {
  if (config_.targetPort == 0) {
    throw std::invalid_argument("ChaosProxy: targetPort must be set");
  }
  validateDirection(config_.clientToServer, "clientToServer");
  validateDirection(config_.serverToClient, "serverToClient");

  listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) throwErrno("socket");
  const int one = 1;
  if (setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    throwErrno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bindAddress.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("ChaosProxy: bad bind address " +
                             config_.bindAddress);
  }
  if (bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throwErrno("bind");
  }
  if (listen(listenFd_, 64) < 0) throwErrno("listen");
  setNonBlocking(listenFd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throwErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epollFd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) throwErrno("epoll_create1");
  wakeFd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeFd_ < 0) throwErrno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listenFd_;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) < 0) {
    throwErrno("epoll_ctl(listen)");
  }
  ev.data.fd = wakeFd_;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) < 0) {
    throwErrno("epoll_ctl(wake)");
  }
}

ChaosProxy::~ChaosProxy() { closeAll(); }

void ChaosProxy::closeAll() {
  for (auto& [id, link] : links_) {
    if (link.clientFd >= 0) ::close(link.clientFd);
    if (link.serverFd >= 0) ::close(link.serverFd);
  }
  links_.clear();
  fdIndex_.clear();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (wakeFd_ >= 0) {
    ::close(wakeFd_);
    wakeFd_ = -1;
  }
  if (epollFd_ >= 0) {
    ::close(epollFd_);
    epollFd_ = -1;
  }
}

void ChaosProxy::stop() {
  stopRequested_.store(true, std::memory_order_release);
  const int fd = wakeFd_;
  if (fd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
  }
}

int ChaosProxy::computeWaitMs(double now) const {
  double wake = std::numeric_limits<double>::infinity();
  for (const auto& [id, link] : links_) {
    for (const Pipe* pipe : {&link.up, &link.down}) {
      if (pipe->queue.empty() || pipe->dstWantWrite) continue;
      double at = pipe->queue.front().releaseAt;
      if (pipe->faults.bytesPerSecond > 0) {
        at = std::max(at, pipe->nextSendAt);
      }
      wake = std::min(wake, at);
    }
  }
  if (!std::isfinite(wake)) return -1;
  if (wake <= now) return 0;
  const double ms = std::ceil((wake - now) * 1000.0);
  return ms >= 60000.0 ? 60000 : static_cast<int>(ms);
}

void ChaosProxy::run() {
  if (ran_) throw std::logic_error("ChaosProxy::run called twice");
  ran_ = true;
  std::vector<epoll_event> events(64);
  std::vector<std::uint64_t> sweep;
  while (!stopRequested_.load(std::memory_order_acquire)) {
    const int timeout = computeWaitMs(monotonicSeconds());
    const int n = epoll_wait(epollFd_, events.data(),
                             static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      logError() << "pscd_chaos: epoll_wait: " << std::strerror(errno);
      break;
    }
    const double now = monotonicSeconds();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == wakeFd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wakeFd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == listenFd_) {
        acceptConnections();
        continue;
      }
      const auto it = fdIndex_.find(fd);
      if (it == fdIndex_.end()) continue;  // torn down earlier this batch
      handleEvent(it->second.first, it->second.second, mask, now);
    }
    // Flush every due chunk and re-arm interest; torn-down links drop
    // out of the id sweep via the find().
    sweep.clear();
    for (const auto& [id, link] : links_) sweep.push_back(id);
    const double flushNow = monotonicSeconds();
    for (const std::uint64_t id : sweep) {
      if (links_.find(id) == links_.end()) continue;
      if (!flushPipe(id, true, flushNow)) continue;
      if (!flushPipe(id, false, flushNow)) continue;
      Link& link = links_.at(id);
      updateInterest(link, true);
      updateInterest(link, false);
    }
  }
  closeAll();
}

void ChaosProxy::acceptConnections() {
  while (true) {
    const int cfd = accept4(listenFd_, nullptr, nullptr,
                            SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      logWarn() << "pscd_chaos: accept: " << std::strerror(errno);
      return;
    }
    // Splice a fresh connection to the target. The target is the local
    // daemon, so a blocking connect resolves immediately; the fd goes
    // non-blocking right after.
    const int sfd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (sfd < 0) {
      ::close(cfd);
      ++stats_.connectFailures;
      continue;
    }
    sockaddr_in target{};
    target.sin_family = AF_INET;
    target.sin_port = htons(config_.targetPort);
    if (inet_pton(AF_INET, config_.targetAddress.c_str(),
                  &target.sin_addr) != 1 ||
        connect(sfd, reinterpret_cast<sockaddr*>(&target),
                sizeof(target)) < 0) {
      logWarn() << "pscd_chaos: cannot reach target "
                << config_.targetAddress << ":" << config_.targetPort
                << ": " << std::strerror(errno);
      ::close(cfd);
      ::close(sfd);
      ++stats_.connectFailures;
      continue;
    }
    setNonBlocking(sfd);
    const int one = 1;
    setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    setsockopt(sfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Link link;
    link.index = stats_.connections++;
    link.clientFd = cfd;
    link.serverFd = sfd;
    const bool faulted = config_.faultConnections == 0 ||
                         link.index < config_.faultConnections;
    if (faulted) {
      link.up.faults = config_.clientToServer;
      link.down.faults = config_.serverToClient;
      link.resetEnabled = config_.resetAfterClientBytes > 0;
    }
    // Independent jitter streams per connection and direction, all
    // derived from the one seed.
    std::uint64_t base =
        config_.seed + 0x9e3779b97f4a7c15ull * (link.index + 1);
    link.up.rngState = splitmix64(base);
    link.down.rngState = splitmix64(base);
    link.clientEvents = EPOLLIN;
    link.serverEvents = EPOLLIN;

    const std::uint64_t id = nextLinkId_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = cfd;
    if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, cfd, &ev) < 0) {
      ::close(cfd);
      ::close(sfd);
      continue;
    }
    ev.data.fd = sfd;
    if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, sfd, &ev) < 0) {
      epoll_ctl(epollFd_, EPOLL_CTL_DEL, cfd, nullptr);
      ::close(cfd);
      ::close(sfd);
      continue;
    }
    fdIndex_[cfd] = {id, true};
    fdIndex_[sfd] = {id, false};
    links_.emplace(id, std::move(link));
  }
}

void ChaosProxy::handleEvent(std::uint64_t linkId, bool clientSide,
                             std::uint32_t mask, double now) {
  const auto it = links_.find(linkId);
  if (it == links_.end()) return;
  Link& link = it->second;
  if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
    closeLink(linkId);
    return;
  }
  if ((mask & EPOLLOUT) != 0) {
    // This fd is the destination of the opposite direction's pipe; the
    // run-loop sweep retries the flush now that it is writable again.
    Pipe& dstPipe = clientSide ? link.down : link.up;
    dstPipe.dstWantWrite = false;
  }
  if ((mask & EPOLLIN) != 0) pumpRead(linkId, clientSide, now);
}

void ChaosProxy::pumpRead(std::uint64_t linkId, bool clientSide,
                          double now) {
  Link& link = links_.at(linkId);
  Pipe& pipe = clientSide ? link.up : link.down;
  const int srcFd = clientSide ? link.clientFd : link.serverFd;
  char buffer[65536];
  while (!pipe.srcEof && !pipe.stalled && !pipe.truncated) {
    const ssize_t n = recv(srcFd, buffer, sizeof(buffer), 0);
    if (n == 0) {
      pipe.srcEof = true;
      break;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      pipe.srcEof = true;  // treat a read error as the end of this side
      break;
    }
    if (clientSide) link.clientBytesIn += static_cast<std::uint64_t>(n);

    // Stall / truncate cap how much of this read is ever forwarded.
    std::size_t allow = static_cast<std::size_t>(n);
    bool willStall = false;
    bool willTruncate = false;
    if (pipe.faults.stallAfterBytes > 0) {
      const std::uint64_t room =
          pipe.faults.stallAfterBytes > pipe.ingested
              ? pipe.faults.stallAfterBytes - pipe.ingested
              : 0;
      if (allow >= room) {
        allow = static_cast<std::size_t>(room);
        willStall = true;
      }
    }
    if (pipe.faults.truncateAfterBytes > 0) {
      const std::uint64_t room =
          pipe.faults.truncateAfterBytes > pipe.ingested
              ? pipe.faults.truncateAfterBytes - pipe.ingested
              : 0;
      if (allow >= room) {
        allow = static_cast<std::size_t>(room);
        willTruncate = true;
      }
    }
    if (allow > 0) {
      Chunk chunk;
      chunk.data.assign(buffer, allow);
      double delay = pipe.faults.latencySeconds;
      if (pipe.faults.jitterSeconds > 0) {
        delay += pipe.faults.jitterSeconds * u01(pipe.rngState);
      }
      chunk.releaseAt = now + delay;
      pipe.ingested += allow;
      pipe.queue.push_back(std::move(chunk));
    }
    if (willStall && !pipe.stalled) {
      pipe.stalled = true;
      ++stats_.stalled;
      logDebug() << "pscd_chaos: link " << link.index
                 << (clientSide ? " upstream" : " downstream")
                 << " stalled after " << pipe.ingested << " bytes";
    }
    if (willTruncate && !pipe.truncated) {
      pipe.truncated = true;
      ++stats_.truncated;
      logDebug() << "pscd_chaos: link " << link.index
                 << (clientSide ? " upstream" : " downstream")
                 << " truncating after " << pipe.ingested << " bytes";
    }
    if (clientSide && link.resetEnabled &&
        link.clientBytesIn >= config_.resetAfterClientBytes) {
      resetLink(linkId);
      return;
    }
    if (static_cast<std::size_t>(n) < sizeof(buffer)) break;
  }
}

bool ChaosProxy::flushPipe(std::uint64_t linkId, bool upstream, double now) {
  Link& link = links_.at(linkId);
  Pipe& pipe = upstream ? link.up : link.down;
  const int dstFd = upstream ? link.serverFd : link.clientFd;
  while (!pipe.queue.empty() && !pipe.dstWantWrite) {
    Chunk& chunk = pipe.queue.front();
    if (now < chunk.releaseAt) break;
    std::size_t want = chunk.data.size() - chunk.sent;
    if (pipe.faults.bytesPerSecond > 0) {
      if (now < pipe.nextSendAt) break;
      want = 1;  // dribble: frame boundaries land mid-header downstream
    }
    const ssize_t n =
        send(dstFd, chunk.data.data() + chunk.sent, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pipe.dstWantWrite = true;
        break;
      }
      if (errno == EINTR) continue;
      closeLink(linkId);
      return false;
    }
    chunk.sent += static_cast<std::size_t>(n);
    pipe.forwarded += static_cast<std::uint64_t>(n);
    (upstream ? stats_.bytesUpstream : stats_.bytesDownstream) +=
        static_cast<std::uint64_t>(n);
    if (pipe.faults.bytesPerSecond > 0) {
      pipe.nextSendAt =
          std::max(now, pipe.nextSendAt) + 1.0 / pipe.faults.bytesPerSecond;
    }
    if (chunk.sent == chunk.data.size()) pipe.queue.pop_front();
  }
  if (pipe.queue.empty() && (pipe.srcEof || pipe.truncated) &&
      !pipe.dstShutdown) {
    shutdown(dstFd, SHUT_WR);
    pipe.dstShutdown = true;
  }
  if (linkDone(link)) {
    closeLink(linkId);
    return false;
  }
  return true;
}

bool ChaosProxy::linkDone(const Link& link) {
  return link.up.dstShutdown && link.down.dstShutdown;
}

void ChaosProxy::updateInterest(Link& link, bool clientSide) {
  const int fd = clientSide ? link.clientFd : link.serverFd;
  const Pipe& srcPipe = clientSide ? link.up : link.down;  // fd as source
  const Pipe& dstPipe = clientSide ? link.down : link.up;  // fd as dest
  std::uint32_t events = 0;
  if (!srcPipe.srcEof && !srcPipe.stalled && !srcPipe.truncated) {
    events |= EPOLLIN;
  }
  if (dstPipe.dstWantWrite) events |= EPOLLOUT;
  std::uint32_t& current = clientSide ? link.clientEvents : link.serverEvents;
  if (events == current) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev);
  current = events;
}

void ChaosProxy::resetLink(std::uint64_t linkId) {
  const auto it = links_.find(linkId);
  if (it == links_.end()) return;
  Link& link = it->second;
  // SO_LINGER{on, 0} turns close() into an RST on both sides: the
  // client sees ECONNRESET mid-call and the daemon sees a read error.
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  for (const int fd : {link.clientFd, link.serverFd}) {
    setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  }
  ++stats_.resets;
  logDebug() << "pscd_chaos: link " << link.index << " reset after "
             << link.clientBytesIn << " client bytes";
  closeLink(linkId);
}

void ChaosProxy::closeLink(std::uint64_t linkId) {
  const auto it = links_.find(linkId);
  if (it == links_.end()) return;
  Link& link = it->second;
  for (const int fd : {link.clientFd, link.serverFd}) {
    if (fd < 0) continue;
    epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    fdIndex_.erase(fd);
  }
  links_.erase(it);
}

}  // namespace pscd::net
