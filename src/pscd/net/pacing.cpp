#include "pscd/net/pacing.h"

#include <cmath>
#include <stdexcept>

#include "pscd/util/rng.h"

namespace pscd::net {

std::vector<double> buildOpenLoopSchedule(const PacingConfig& config) {
  if (!(config.targetQps > 0.0) || !std::isfinite(config.targetQps)) {
    throw std::invalid_argument(
        "buildOpenLoopSchedule: targetQps must be positive and finite");
  }
  if (!(config.durationSeconds > 0.0) ||
      !std::isfinite(config.durationSeconds)) {
    throw std::invalid_argument(
        "buildOpenLoopSchedule: durationSeconds must be positive and finite");
  }
  std::vector<double> schedule;
  schedule.reserve(static_cast<std::size_t>(
      config.targetQps * config.durationSeconds + 1.0));
  if (config.kind == PacingKind::kUniform) {
    // i / qps instead of accumulating gaps: no floating-point drift, so
    // the last send stays within one gap of the duration at any rate.
    const double gap = 1.0 / config.targetQps;
    for (std::uint64_t i = 0;; ++i) {
      const double t = static_cast<double>(i) * gap;
      if (t >= config.durationSeconds) break;
      schedule.push_back(t);
    }
  } else {
    Rng rng(config.seed);
    double t = 0.0;
    while (true) {
      t += rng.exponential(config.targetQps);
      if (t >= config.durationSeconds) break;
      schedule.push_back(t);
    }
  }
  return schedule;
}

}  // namespace pscd::net
