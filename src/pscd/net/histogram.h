// HDR-style log-bucketed latency histogram for the serving tier's load
// harness: constant-time record, lossless elementwise merge, and
// quantile queries with a bounded relative error.
//
// Values are recorded in nanoseconds (the record() entry point takes
// seconds and converts). The bucket layout is the classic
// logarithmic-with-linear-sub-buckets scheme: with S = 2^subBucketBits
// sub-buckets, values below S nanoseconds get exact unit buckets, and
// every octave [2^k, 2^(k+1)) above that is split into S equal-width
// sub-buckets — so the relative quantization error is at most 2^-B
// (~3% at the default B = 5), and percentile() is within one bucket
// width of the exact order statistic, which the unit tests check
// against a sorted-vector oracle.
//
// merge() is a per-bucket addition, so it is associative and
// commutative: per-worker histograms recorded concurrently can be
// folded in any order and yield identical percentiles (bench_serve
// merges one histogram per load-generator thread).
#pragma once

#include <cstdint>
#include <vector>

#include "pscd/util/hot.h"

namespace pscd::net {

class LatencyHistogram {
 public:
  /// subBucketBits in [1, 10]: precision/space trade-off. Throws
  /// std::invalid_argument outside that range.
  explicit LatencyHistogram(unsigned subBucketBits = 5);

  /// Records one latency sample. Negative values clamp to zero;
  /// non-finite and absurdly large values clamp to the top bucket.
  PSCD_HOT void record(double seconds) { recordNanos(toNanos(seconds)); }

  /// Raw-nanosecond entry point (the unit in which buckets are defined).
  PSCD_HOT void recordNanos(std::uint64_t nanos);

  /// Adds every bucket of `other` into this histogram. Requires the
  /// same subBucketBits (throws std::invalid_argument otherwise).
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }

  /// Sum of all recorded values in seconds (for mean latency).
  double sumSeconds() const { return static_cast<double>(sumNanos_) * 1e-9; }

  /// Largest recorded value, rounded up to its bucket bound, in seconds.
  double maxSeconds() const;

  /// Upper bound of the bucket holding the q-th percentile (q in
  /// [0, 100]), in seconds: >= the exact order statistic and at most
  /// one bucket width above it. Returns 0 when empty.
  double percentile(double q) const;

  unsigned subBucketBits() const { return subBucketBits_; }
  std::size_t numBuckets() const { return counts_.size(); }

  /// Inclusive upper bound of bucket `index`, in nanoseconds.
  std::uint64_t bucketUpperBoundNanos(std::size_t index) const;

  friend bool operator==(const LatencyHistogram& a,
                         const LatencyHistogram& b) {
    return a.subBucketBits_ == b.subBucketBits_ && a.count_ == b.count_ &&
           a.sumNanos_ == b.sumNanos_ && a.counts_ == b.counts_;
  }

 private:
  static std::uint64_t toNanos(double seconds);
  std::size_t bucketIndex(std::uint64_t nanos) const;

  unsigned subBucketBits_;
  std::uint64_t subBucketCount_;  // 2^subBucketBits_
  std::uint64_t count_ = 0;
  std::uint64_t sumNanos_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace pscd::net
