// Blocking wire-protocol client for the pscd serving tier.
//
// WireClient is deliberately simple: one TCP connection, synchronous
// call() that writes a frame and reads until the matching-seq RESPONSE
// arrives. The load harness gets concurrency by giving each worker its
// own WireClient (the daemon multiplexes them on one epoll loop); the
// loopback tests get determinism by issuing one call at a time.
//
// Two call surfaces:
//
//   call(frame)            — the legacy strict path: any wire-level
//                            surprise (EOF, undecodable bytes, a seq we
//                            never sent) is a thrown std::runtime_error,
//                            never a silent retry.
//   call(frame, options)   — the hardened path: per-attempt deadline,
//                            bounded retries with exponential backoff,
//                            and a typed WireError outcome instead of an
//                            exception, so a load harness can account
//                            degraded operations (timeout / reset /
//                            shed) rather than dying on the first fault.
//
// Retry safety: every attempt re-issues the operation under a FRESH seq
// on a fresh connection when the previous one was poisoned (timeout or
// reset closes the fd; the reconnect is counted). A late response to a
// timed-out seq can therefore never be mistaken for the retry's answer.
// Protocol errors are never retried — they mean the stream itself can't
// be trusted.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "pscd/net/wire.h"
#include "pscd/util/types.h"

namespace pscd::net {

/// Typed outcome of a hardened call attempt.
enum class WireError : std::uint8_t {
  kNone = 0,
  /// The per-attempt deadline expired before a full RESPONSE arrived.
  kTimeout = 1,
  /// The connection dropped (RST, EOF mid-response, send failure, or a
  /// failed reconnect).
  kConnReset = 2,
  /// The daemon answered status=kOverloaded: the REQUEST was shed, not
  /// executed, and may be retried after a backoff.
  kOverloaded = 3,
  /// The stream is untrustworthy (undecodable bytes, wrong frame type,
  /// seq mismatch). Never retried.
  kProtocol = 4,
};

std::string_view wireErrorName(WireError error);

struct CallOptions {
  /// Per-attempt response deadline; 0 waits forever.
  double deadlineSeconds = 0.0;
  /// Extra attempts after the first on a retryable error (timeout,
  /// reset, overloaded).
  std::uint32_t retries = 0;
  /// Sleep before retry k (1-based) is backoffSeconds * 2^(k-1); 0
  /// retries immediately.
  double backoffSeconds = 0.0;
};

struct CallResult {
  WireError error = WireError::kNone;
  /// Valid when error is kNone or kOverloaded (an overloaded RESPONSE
  /// is a well-formed frame).
  ResponseBody response;
  /// Attempts consumed, counting the first (so 1 on a clean call).
  std::uint32_t attempts = 1;
  /// Human-readable detail for the failure (empty on success).
  std::string message;

  bool ok() const { return error == WireError::kNone; }
};

/// Counters across every hardened call on one client; each failed
/// attempt is classified exactly once.
struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t connResets = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t protocolErrors = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;

  friend bool operator==(const ClientStats&, const ClientStats&) = default;
};

class WireClient {
 public:
  /// Connects to host:port; `host` may be a dotted-quad IPv4 literal or
  /// a name resolvable to one ("localhost"). Throws std::runtime_error
  /// on resolution or connect failure. Sets TCP_NODELAY — the protocol
  /// is request/response, so Nagle only adds latency.
  WireClient(const std::string& host, std::uint16_t port);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&&) = delete;

  /// Strict call: sends `frame` (seq assigned internally, overriding
  /// frame.seq) and blocks until the RESPONSE with that seq arrives.
  /// Throws std::runtime_error on connection loss, decode failure, or a
  /// mismatched/unexpected response.
  ResponseBody call(const WireFrame& frame);

  /// Hardened call: same operation, but failures come back as a typed
  /// CallResult and retryable errors are re-issued (seq-safe, with
  /// reconnect) up to options.retries times.
  CallResult call(const WireFrame& frame, const CallOptions& options);

  // Typed conveniences over the strict call().
  ResponseBody subscribe(ProxyId proxy, PageId page, std::uint32_t count = 1);
  ResponseBody unsubscribe(ProxyId proxy, PageId page,
                           std::uint32_t count = 1);
  ResponseBody publish(PageId page, Version version, Bytes size);
  ResponseBody request(ProxyId proxy, PageId page);

  /// Sends raw bytes as-is (tests use this to poke the daemon's error
  /// paths with malformed input, and to pipeline bursts).
  void sendRaw(const std::string& bytes);

  /// Reads the next frame off the connection regardless of seq, with a
  /// deadline (0 waits forever). Lets tests drain pipelined responses
  /// sent via sendRaw. On kNone, *out is the frame.
  WireError readResponse(double deadlineSeconds, WireFrame* out);

  /// True until the peer closes or an error poisons the connection.
  bool connected() const { return fd_ >= 0; }

  const ClientStats& stats() const { return stats_; }
  void resetStats() { stats_ = ClientStats{}; }

 private:
  /// Resolves host_ and establishes fd_; throws on failure.
  void connectSocket();
  /// connectSocket without the throw; counts the reconnect on success.
  bool reconnect(std::string* message);
  void sendAll(const std::string& bytes);
  bool sendAllNoThrow(const std::string& bytes, std::string* message);
  /// Shared retry loop; the strict path disables reconnects so a
  /// poisoned connection stays visibly poisoned.
  CallResult callInternal(const WireFrame& frame, const CallOptions& options,
                          bool allowReconnect);
  /// One send + read-matching-response pass under a deadline.
  WireError attemptCall(const WireFrame& frame, double deadlineSeconds,
                        bool allowReconnect, ResponseBody* response,
                        std::string* message);
  /// Reads one frame; `deadline` is an absolute monotonicSeconds()
  /// time, or 0 for no deadline.
  WireError readFrame(double deadline, WireFrame* out, std::string* message);
  void close();

  int fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
  std::uint32_t nextSeq_ = 1;
  std::string in_;  // bytes received but not yet consumed by a decode
  ClientStats stats_;
};

}  // namespace pscd::net
