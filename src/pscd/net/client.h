// Blocking wire-protocol client for the pscd serving tier.
//
// WireClient is deliberately simple: one TCP connection, synchronous
// call() that writes a frame and reads until the matching-seq RESPONSE
// arrives. The load harness gets concurrency by giving each worker its
// own WireClient (the daemon multiplexes them on one epoll loop); the
// loopback tests get determinism by issuing one call at a time. Any
// wire-level surprise — EOF, undecodable bytes, a RESPONSE for a seq we
// never sent — is a thrown std::runtime_error, never a silent retry.
#pragma once

#include <cstdint>
#include <string>

#include "pscd/net/wire.h"
#include "pscd/util/types.h"

namespace pscd::net {

class WireClient {
 public:
  /// Connects to host:port (host must be a dotted-quad IPv4 literal,
  /// e.g. "127.0.0.1"); throws std::runtime_error with the errno string
  /// on failure. Sets TCP_NODELAY — the protocol is request/response,
  /// so Nagle only adds latency.
  WireClient(const std::string& host, std::uint16_t port);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&&) = delete;

  /// Sends `frame` (seq assigned internally, overriding frame.seq) and
  /// blocks until the RESPONSE with that seq arrives. Throws
  /// std::runtime_error on connection loss, decode failure, or a
  /// mismatched/unexpected response.
  ResponseBody call(const WireFrame& frame);

  // Typed conveniences over call().
  ResponseBody subscribe(ProxyId proxy, PageId page, std::uint32_t count = 1);
  ResponseBody unsubscribe(ProxyId proxy, PageId page,
                           std::uint32_t count = 1);
  ResponseBody publish(PageId page, Version version, Bytes size);
  ResponseBody request(ProxyId proxy, PageId page);

  /// Sends raw bytes as-is (tests use this to poke the daemon's error
  /// paths with malformed input).
  void sendRaw(const std::string& bytes);

  /// True until the peer closes or an error poisons the connection.
  bool connected() const { return fd_ >= 0; }

 private:
  void sendAll(const std::string& bytes);
  void close();

  int fd_ = -1;
  std::uint32_t nextSeq_ = 1;
  std::string in_;  // bytes received but not yet consumed by a decode
};

}  // namespace pscd::net
