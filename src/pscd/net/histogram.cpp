#include "pscd/net/histogram.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace pscd::net {

namespace {

/// Values at or above 2^62 ns (~146 years) clamp to the top bucket; the
/// headroom keeps sumNanos_ from overflowing under any realistic load.
constexpr std::uint64_t kMaxNanos = 1ull << 62;

}  // namespace

LatencyHistogram::LatencyHistogram(unsigned subBucketBits)
    : subBucketBits_(subBucketBits),
      subBucketCount_(1ull << subBucketBits) {
  if (subBucketBits < 1 || subBucketBits > 10) {
    throw std::invalid_argument(
        "LatencyHistogram: subBucketBits must be in [1, 10]");
  }
  // One linear range of S unit buckets plus one S-wide group per octave
  // from 2^B up to 2^63.
  const std::size_t octaves = 64 - subBucketBits;
  counts_.assign((octaves + 1) * subBucketCount_, 0);
}

std::uint64_t LatencyHistogram::toNanos(double seconds) {
  if (!(seconds > 0.0)) return 0;  // negatives and NaN clamp to zero
  const double nanos = seconds * 1e9;
  if (nanos >= static_cast<double>(kMaxNanos)) return kMaxNanos;
  return static_cast<std::uint64_t>(nanos);
}

std::size_t LatencyHistogram::bucketIndex(std::uint64_t nanos) const {
  if (nanos >= kMaxNanos) nanos = kMaxNanos - 1;
  if (nanos < subBucketCount_) return static_cast<std::size_t>(nanos);
  // 2^k <= nanos < 2^(k+1) with k >= B: shift the value down so its top
  // B+1 bits select one of S equal-width sub-buckets in the octave.
  const unsigned k = std::bit_width(nanos) - 1;
  const unsigned shift = k - subBucketBits_;
  const std::uint64_t sub = (nanos >> shift) - subBucketCount_;
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(k - subBucketBits_ + 1)) * subBucketCount_ +
      sub);
}

void LatencyHistogram::recordNanos(std::uint64_t nanos) {
  if (nanos > kMaxNanos) nanos = kMaxNanos;
  ++counts_[bucketIndex(nanos)];
  ++count_;
  sumNanos_ += nanos;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.subBucketBits_ != subBucketBits_) {
    throw std::invalid_argument(
        "LatencyHistogram::merge: mismatched subBucketBits");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sumNanos_ += other.sumNanos_;
}

std::uint64_t LatencyHistogram::bucketUpperBoundNanos(
    std::size_t index) const {
  if (index < subBucketCount_) return index;  // unit buckets are exact
  const std::uint64_t group = index / subBucketCount_;  // octave + 1
  const std::uint64_t sub = index % subBucketCount_;
  const unsigned shift = static_cast<unsigned>(group - 1);
  const std::uint64_t lower = (subBucketCount_ + sub) << shift;
  return lower + ((1ull << shift) - 1);
}

double LatencyHistogram::maxSeconds() const {
  for (std::size_t i = counts_.size(); i-- > 0;) {
    if (counts_[i] != 0) {
      return static_cast<double>(bucketUpperBoundNanos(i)) * 1e-9;
    }
  }
  return 0.0;
}

double LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 100.0) q = 100.0;
  // Rank of the q-th percentile sample, 1-based, at least 1 so p0 is
  // the minimum and p100 the maximum.
  const double exact = q / 100.0 * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return static_cast<double>(bucketUpperBoundNanos(i)) * 1e-9;
    }
  }
  return maxSeconds();  // unreachable when count_ matches counts_
}

}  // namespace pscd::net
