// The serving tier's implementation of the core runtime seam
// (core/runtime.h): WireClock reads the sanctioned monotonic wall clock
// instead of a simulated event timeline, and WireSink folds delivery
// records into live counters instead of SimMetrics — so the exact same
// DistributionService decision layer the simulator drives runs behind a
// TCP wire with zero changes (the layering manifest's core:net
// forbid-reach gate keeps it that way from the other direction).
//
// WireSink additionally stashes the most recent delivery of each kind:
// the daemon's connection handler calls handlePublish()/handleRequest()
// and immediately reads lastPush()/lastRequest() to build the RESPONSE
// frame. That is safe because the daemon's event loop is single-
// threaded — one frame is fully handled (service call + response
// encode) before the next is decoded.
#pragma once

#include <cstdint>

#include "pscd/core/runtime.h"
#include "pscd/util/types.h"
#include "pscd/util/wallclock.h"

namespace pscd::net {

/// Wall-clock Clock: now() is seconds of real time since construction,
/// monotonic and immune to system clock adjustments. The service's
/// decision logic only consumes relative order and spacing, which is
/// exactly what a steady clock provides.
class WireClock final : public Clock {
 public:
  WireClock() : origin_(monotonicSeconds()) {}

  SimTime now() const override { return monotonicSeconds() - origin_; }

 private:
  double origin_;
};

/// Aggregate serving counters, readable while the daemon runs (from the
/// daemon thread) or after it stops (from anywhere, once joined).
struct ServeCounters {
  std::uint64_t pushes = 0;
  std::uint64_t pushedPages = 0;
  Bytes pushedBytes = 0;
  std::uint64_t pushedPagesLost = 0;
  Bytes pushedBytesLost = 0;
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t staleServes = 0;
  std::uint64_t unavailable = 0;
  Bytes requestBytes = 0;

  double hitRatio() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(requests);
  }
};

class WireSink final : public EventSink {
 public:
  void onPush(const PushDelivery& delivery) override {
    lastPush_ = delivery;
    ++counters_.pushes;
    counters_.pushedPages += delivery.pages;
    counters_.pushedBytes += delivery.bytes;
    counters_.pushedPagesLost += delivery.pagesLost;
    counters_.pushedBytesLost += delivery.bytesLost;
  }

  void onRequest(const RequestDelivery& delivery) override {
    lastRequest_ = delivery;
    ++counters_.requests;
    if (delivery.hit) ++counters_.hits;
    if (delivery.servedStale) ++counters_.staleServes;
    if (delivery.unavailable) ++counters_.unavailable;
    counters_.requestBytes += delivery.bytesTransferred;
  }

  const PushDelivery& lastPush() const { return lastPush_; }
  const RequestDelivery& lastRequest() const { return lastRequest_; }
  const ServeCounters& counters() const { return counters_; }

 private:
  PushDelivery lastPush_{};
  RequestDelivery lastRequest_{};
  ServeCounters counters_{};
};

}  // namespace pscd::net
