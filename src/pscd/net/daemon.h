// The networked pscd serving tier: a single-threaded, non-blocking
// epoll event loop that accepts TCP connections, runs a per-connection
// frame state machine (read -> decode -> dispatch -> write-back), and
// hosts a DistributionService behind the WireClock/WireSink runtime
// seam — the engine/strategy/cache decision layer runs unchanged from
// the simulator (see core/runtime.h and DESIGN.md §13).
//
// Connection state machine (per fd):
//
//        +--------- read bytes ----------+
//        v                               |
//   [READING] --frame complete--> [DISPATCH] --response--> [WRITING]
//        |                               |                     |
//        | decode error /                | handler error       | flushed
//        | EOF / overflow                v                     v
//        +------> [CLOSED] <---- error RESPONSE is        [READING]
//                                 still written first
//
// Malformed bytes (bad magic/version/type/flags/length) can never
// resynchronize, so the connection is closed; a well-formed frame whose
// *operation* fails (unknown page, out-of-range proxy) gets a RESPONSE
// with status=kError and the connection lives on.
//
// Threading: the loop runs entirely on the thread that calls run().
// stop() is the one cross-thread entry point — it flips an atomic and
// wakes the loop through an eventfd. All fds are closed by the time
// run() returns, so a joined daemon holds no kernel resources (the
// loopback test counts /proc/self/fd entries to prove it).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "pscd/cache/strategy_factory.h"
#include "pscd/core/service.h"
#include "pscd/net/timer_wheel.h"
#include "pscd/net/wire.h"
#include "pscd/net/wire_runtime.h"
#include "pscd/topology/network.h"
#include "pscd/util/types.h"

namespace pscd::net {

struct DaemonConfig {
  std::string bindAddress = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available via Daemon::port().
  std::uint16_t port = 0;
  int backlog = 128;
  /// Connections beyond this are accepted and immediately closed
  /// (counted in DaemonStats::acceptRejected).
  std::size_t maxConnections = 1024;
  /// A connection whose unflushed response backlog exceeds this is a
  /// slow reader and is closed rather than buffering without bound.
  std::size_t maxOutBufferBytes = 4u << 20;
  /// Pre-decode cap on a connection's buffered-but-undecodable input.
  /// A well-formed stream's residual after a decode pass is always
  /// under one frame (header + kMaxBodyBytes), so anything larger is
  /// hostile or broken and the connection is closed
  /// (DaemonStats::inputOverflows). Belt-and-suspenders over the
  /// per-frame bodyLen cap at decode time.
  std::size_t maxInBufferBytes = 1u << 20;
  // Connection deadlines (DESIGN.md §14); 0 disables each reaper.
  // With all three at 0 (the default) the daemon takes no extra clock
  // reads and behaves bit-identically to the pre-hardening loop.
  /// Close a connection with no read activity for this long.
  double idleTimeoutSeconds = 0.0;
  /// Close a connection holding a partial frame (slow loris) for this
  /// long without completing it.
  double readTimeoutSeconds = 0.0;
  /// Close a connection whose responses cannot be flushed for this
  /// long (slow reader with a full socket buffer).
  double writeTimeoutSeconds = 0.0;
  /// Load shedding: when > 0, a REQUEST decoded with this many frames
  /// already dispatched ahead of it in the same input drain is answered
  /// with status=kOverloaded instead of being executed — constant-time
  /// rejection under a pipelined burst. State-mutating frames
  /// (SUBSCRIBE/UNSUBSCRIBE/PUBLISH) are never shed. 0 disables.
  std::size_t shedThreshold = 0;
  /// Drain budget for stopDrain(): stop accepting, keep serving live
  /// connections until they close (or this deadline), then exit.
  double drainSeconds = 5.0;
  /// When > 0, SO_SNDBUF for accepted connections (tests use the
  /// kernel minimum to provoke write-deadline reaping deterministically).
  int sendBufferBytes = 0;
};

struct DaemonStats {
  std::uint64_t accepted = 0;
  /// Connections accepted and immediately closed at maxConnections.
  std::uint64_t acceptRejected = 0;
  std::uint64_t closed = 0;
  std::uint64_t framesHandled = 0;
  /// Connections dropped for undecodable input.
  std::uint64_t decodeErrors = 0;
  /// Well-formed frames the protocol forbids here (a client sending
  /// RESPONSE); also close their connection.
  std::uint64_t protocolErrors = 0;
  /// Operations answered with status=kError (connection kept).
  std::uint64_t errorResponses = 0;
  /// Connections closed for exceeding maxInBufferBytes pre-decode.
  std::uint64_t inputOverflows = 0;
  /// Connections reaped by the idle deadline.
  std::uint64_t idleTimeouts = 0;
  /// Connections reaped holding an incomplete frame past the read
  /// deadline (slow loris).
  std::uint64_t readTimeouts = 0;
  /// Connections reaped with unflushable responses past the write
  /// deadline (slow reader).
  std::uint64_t writeTimeouts = 0;
  /// REQUEST frames answered status=kOverloaded by the load shedder
  /// (the connection lives; the frame still counts in framesHandled).
  std::uint64_t overloadShed = 0;
  /// Connections that closed during a drain with every queued response
  /// flushed — the drain delivered their in-flight work.
  std::uint64_t drainFlushed = 0;

  friend bool operator==(const DaemonStats&, const DaemonStats&) = default;
};

/// One-line human-readable rendering (the pscd_daemon SIGUSR1 / exit
/// stats dump, and gtest failure messages).
std::string formatDaemonStats(const DaemonStats& stats);

class Daemon {
 public:
  /// Binds and listens immediately (throws std::runtime_error with the
  /// errno string on any socket failure), but serves only once run() is
  /// called. `service` must have been built against `clock` and `sink`.
  Daemon(DistributionService& service, const Clock& clock, WireSink& sink,
         const DaemonConfig& config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// The locally bound port (resolves port 0 to the kernel's choice).
  std::uint16_t port() const { return port_; }

  /// Serves until stop(); callable once. Closes every fd before
  /// returning.
  void run();

  /// Thread-safe shutdown request; run() returns promptly, abandoning
  /// any unflushed responses. Overrides an in-progress drain.
  void stop();

  /// Thread-safe graceful shutdown: stop accepting, keep serving the
  /// live connections until every one closes (or drainSeconds elapses),
  /// then return from run(). A later stop() still cuts the drain short;
  /// stopDrain() after stop() is a no-op.
  void stopDrain();

  /// Thread-safe (and async-signal-safe modulo the atomic store +
  /// eventfd write) request for the loop to log formatDaemonStats(),
  /// wired to SIGUSR1 in pscd_daemon.
  void requestStatsDump();

  /// Stable to read after run() returns (or between frames from the
  /// loop thread itself).
  const DaemonStats& stats() const { return stats_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t outFlushed = 0;  // prefix of `out` already sent
    bool wantWrite = false;
    double lastActivity = 0.0;   // clock_ time of the last read bytes
    double writePendingSince = 0.0;
    bool writePending = false;   // unflushed output is sitting in `out`
    /// Authoritative reap time; +inf when no deadline applies.
    double deadline = std::numeric_limits<double>::infinity();
    double wheelDeadline = 0.0;  // earliest wheel entry live for fd
    bool wheelArmed = false;
  };

  enum StopMode { kRunning = 0, kStopDrain = 1, kStopNow = 2 };

  void acceptConnections();
  void handleReadable(Connection& conn);
  /// Returns false when the connection was closed.
  bool flushWrites(Connection& conn);
  /// Returns false when re-arming failed and the connection was closed.
  bool updateInterest(Connection& conn);
  void closeConnection(int fd);
  void closeAll();
  /// Decodes and dispatches every complete frame in conn.in; returns
  /// false when the connection was closed (decode/protocol error).
  bool processInput(Connection& conn);
  ResponseBody dispatch(const WireFrame& frame);
  /// Recomputes conn.deadline from the timeout config and current
  /// state, scheduling a wheel entry when it moved earlier.
  void armDeadline(Connection& conn);
  /// Closes every connection whose deadline has passed, classifying the
  /// reap (write > read > idle) into DaemonStats.
  void reapExpired(double now);
  /// epoll_wait timeout honoring the wheel and the drain deadline; -1
  /// when neither is pending (the fault-free default).
  int computeWaitMs();
  void beginDrain();
  void wakeLoop();

  DistributionService& service_;
  const Clock& clock_;
  WireSink& sink_;
  DaemonConfig config_;
  DaemonStats stats_;
  std::uint16_t port_ = 0;
  int listenFd_ = -1;
  int epollFd_ = -1;
  int wakeFd_ = -1;
  bool ran_ = false;
  bool timersEnabled_ = false;
  bool draining_ = false;
  double drainDeadline_ = 0.0;
  /// Ordered by fd so any diagnostic iteration is deterministic.
  std::map<int, Connection> conns_;
  TimerWheel wheel_;
  std::vector<int> expiredScratch_;
  std::atomic<int> stopMode_{kRunning};
  std::atomic<bool> dumpRequested_{false};
};

/// Everything a serving process needs, built in dependency order from
/// one plain config: overlay network, wall clock, stats sink, the
/// DistributionService decision layer, and the Daemon that serves it.
/// Used by the pscd_daemon binary, bench_serve --spawn mode, and the
/// loopback tests (which also build an identically configured oracle
/// service via the static helpers).
struct ServeHostConfig {
  std::uint32_t numProxies = 16;
  std::uint32_t numTransitNodes = 8;
  std::uint64_t networkSeed = 42;
  StrategyKind strategy = StrategyKind::kGDStar;
  double beta = 1.0;
  PushScheme pushScheme = PushScheme::kAlwaysPushing;
  Bytes capacityPerProxy = 1u << 20;
  LatencyModel latency{};
};

class ServeHost {
 public:
  ServeHost(const ServeHostConfig& config, const DaemonConfig& daemonConfig);

  Daemon& daemon() { return daemon_; }
  DistributionService& service() { return service_; }
  const WireSink& sink() const { return sink_; }
  const Network& network() const { return network_; }

  /// The exact Network a host with `config` builds — deterministic in
  /// config.networkSeed, so a test oracle gets an identical overlay.
  static Network buildNetwork(const ServeHostConfig& config);

  /// The exact ServiceConfig a host with `config` uses.
  static ServiceConfig buildServiceConfig(const ServeHostConfig& config);

 private:
  Network network_;
  WireClock clock_;
  WireSink sink_;
  DistributionService service_;
  Daemon daemon_;
};

}  // namespace pscd::net
