// ChaosProxy: a deterministic, seeded TCP fault injector that sits
// between a WireClient and the pscd daemon, forwarding bytes in both
// directions while injecting socket-level faults from a ChaosConfig:
//
//   latency + jitter   — chunks are held until now + latency + jitter,
//                        jitter drawn from a per-connection,
//                        per-direction SplitMix64 stream;
//   bandwidth throttle — bytes dribble through one at a time at the
//                        configured rate (so frame boundaries land
//                        mid-header on the peer);
//   stall              — forward N bytes, then stop forwarding and stop
//                        reading: the stream simply hangs mid-frame;
//   truncate           — forward N bytes, then half-close the
//                        destination: the peer sees a clean EOF in the
//                        middle of a frame;
//   reset              — once the client has sent N bytes, close both
//                        sides with SO_LINGER{1,0}: both peers see RST.
//
// Replayability: the fault schedule is a pure function of (seed,
// ChaosConfig, traffic). With the same workload on the same machine a
// run reproduces the same injected faults, which is what lets
// resilience tests assert exact counter values.
//
// The proxy is the same shape as the Daemon — its own epoll loop on the
// caller's thread, non-blocking fds, run()/stop() lifecycle, every fd
// closed before run() returns — so tests can host daemon + proxy on two
// background threads and count /proc/self/fd to prove neither leaks.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pscd::net {

/// Faults applied to one direction of a proxied connection.
struct ChaosDirection {
  /// Fixed delay added to every forwarded chunk.
  double latencySeconds = 0.0;
  /// Uniform [0, jitterSeconds) added on top, per chunk, from the
  /// direction's SplitMix64 stream.
  double jitterSeconds = 0.0;
  /// When > 0, forwarded bytes are paced one at a time at this rate.
  double bytesPerSecond = 0.0;
  /// When > 0, forward exactly this many bytes then hang the stream
  /// (no EOF, no RST — the peer just waits).
  std::uint64_t stallAfterBytes = 0;
  /// When > 0, forward exactly this many bytes then half-close the
  /// destination (clean EOF mid-frame).
  std::uint64_t truncateAfterBytes = 0;
};

struct ChaosConfig {
  std::string bindAddress = "127.0.0.1";
  /// 0 = ephemeral; resolved via ChaosProxy::port().
  std::uint16_t port = 0;
  /// Where proxied connections are forwarded (the real daemon).
  std::string targetAddress = "127.0.0.1";
  std::uint16_t targetPort = 0;
  /// Seeds every jitter stream; same seed + config + workload = same
  /// injected fault schedule.
  std::uint64_t seed = 1;
  ChaosDirection clientToServer;
  ChaosDirection serverToClient;
  /// When > 0, hard-reset (RST) both sides of a faulted connection once
  /// the client has sent this many bytes through it.
  std::uint64_t resetAfterClientBytes = 0;
  /// When > 0, only the first N accepted connections get faults; later
  /// ones are clean pass-throughs. Lets a retrying client's reconnect
  /// succeed after its first connection was deliberately broken.
  /// 0 faults every connection.
  std::uint32_t faultConnections = 0;
};

struct ChaosStats {
  /// Connections accepted (and forwarded to the target).
  std::uint64_t connections = 0;
  /// Connections the proxy failed to splice to the target.
  std::uint64_t connectFailures = 0;
  /// Connections hard-reset by resetAfterClientBytes.
  std::uint64_t resets = 0;
  /// Directions truncated by truncateAfterBytes.
  std::uint64_t truncated = 0;
  /// Directions stalled by stallAfterBytes.
  std::uint64_t stalled = 0;
  /// Bytes forwarded client -> server.
  std::uint64_t bytesUpstream = 0;
  /// Bytes forwarded server -> client.
  std::uint64_t bytesDownstream = 0;

  friend bool operator==(const ChaosStats&, const ChaosStats&) = default;
};

/// One-line rendering for the pscd_chaos exit dump and test messages.
std::string formatChaosStats(const ChaosStats& stats);

class ChaosProxy {
 public:
  /// Binds and listens immediately (throws std::runtime_error on socket
  /// failure); forwards only once run() is called.
  explicit ChaosProxy(const ChaosConfig& config);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// The locally bound port (resolves port 0 to the kernel's choice).
  std::uint16_t port() const { return port_; }

  /// Forwards until stop(); callable once. Closes every fd before
  /// returning.
  void run();

  /// Thread-safe shutdown request; run() returns promptly.
  void stop();

  /// Stable to read after run() returns.
  const ChaosStats& stats() const { return stats_; }

 private:
  struct Chunk {
    std::string data;
    std::size_t sent = 0;
    double releaseAt = 0.0;
  };

  /// One direction of a proxied connection.
  struct Pipe {
    ChaosDirection faults;  // zeroed for non-faulted connections
    std::deque<Chunk> queue;
    std::uint64_t ingested = 0;   // bytes accepted from src into queue
    std::uint64_t forwarded = 0;  // bytes written to dst
    double nextSendAt = 0.0;      // throttle pacing cursor
    std::uint64_t rngState = 0;   // SplitMix64 jitter stream
    bool stalled = false;
    bool truncated = false;
    bool srcEof = false;
    bool dstShutdown = false;
    bool dstWantWrite = false;
  };

  struct Link {
    std::uint64_t index = 0;
    int clientFd = -1;
    int serverFd = -1;
    bool resetEnabled = false;
    std::uint64_t clientBytesIn = 0;  // raw bytes read from the client
    std::uint32_t clientEvents = 0;   // current epoll interest per side
    std::uint32_t serverEvents = 0;
    Pipe up;    // client -> server
    Pipe down;  // server -> client
  };

  void acceptConnections();
  void handleEvent(std::uint64_t linkId, bool clientSide,
                   std::uint32_t mask, double now);
  /// Reads from one side, applying stall/truncate caps and queueing
  /// chunks with their release times. May reset the link.
  void pumpRead(std::uint64_t linkId, bool clientSide, double now);
  /// Flushes due chunks toward the destination; returns false when the
  /// link was torn down.
  bool flushPipe(std::uint64_t linkId, bool upstream, double now);
  void updateInterest(Link& link, bool clientSide);
  /// Hard-reset both sides (SO_LINGER{1,0}) and drop the link.
  void resetLink(std::uint64_t linkId);
  void closeLink(std::uint64_t linkId);
  void closeAll();
  /// epoll timeout until the nearest queued chunk becomes sendable, or
  /// -1 when every queue is empty or blocked on the destination.
  int computeWaitMs(double now) const;
  /// True when both directions have delivered everything they ever
  /// will, so the link can be dismantled.
  static bool linkDone(const Link& link);

  ChaosConfig config_;
  ChaosStats stats_;
  std::uint16_t port_ = 0;
  int listenFd_ = -1;
  int epollFd_ = -1;
  int wakeFd_ = -1;
  bool ran_ = false;
  std::uint64_t nextLinkId_ = 0;
  std::map<std::uint64_t, Link> links_;
  /// fd -> (link id, is the client-side fd).
  std::map<int, std::pair<std::uint64_t, bool>> fdIndex_;
  std::atomic<bool> stopRequested_{false};
};

}  // namespace pscd::net
