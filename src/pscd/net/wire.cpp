#include "pscd/net/wire.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace pscd::net {

namespace {

// Explicit little-endian field accessors: the wire format is defined in
// bytes, not in host struct layout, so the encoding is identical across
// architectures and never depends on padding.

void putU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void putU16(std::string* out, std::uint16_t v) {
  putU8(out, static_cast<std::uint8_t>(v & 0xff));
  putU8(out, static_cast<std::uint8_t>(v >> 8));
}

void putU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    putU8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void putU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    putU8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t getU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Exact body size of each frame type on the wire.
std::uint32_t bodyLengthFor(FrameType type) {
  switch (type) {
    case FrameType::kSubscribe:
    case FrameType::kUnsubscribe:
      return 12;  // proxy u32, page u32, count u32
    case FrameType::kPublish:
      return 16;  // page u32, version u32, size u64
    case FrameType::kRequest:
      return 8;  // proxy u32, page u32
    case FrameType::kResponse:
      return 28;  // status/op/hit/stale u8 x4, pages u64, bytes u64,
                  // responseTimeMs f64
  }
  return 0;
}

DecodeResult fail(std::string message) {
  DecodeResult r;
  r.status = DecodeStatus::kError;
  r.error = std::move(message);
  return r;
}

DecodeResult needMore() {
  DecodeResult r;
  r.status = DecodeStatus::kNeedMore;
  return r;
}

}  // namespace

std::string_view frameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kSubscribe:
      return "SUBSCRIBE";
    case FrameType::kUnsubscribe:
      return "UNSUBSCRIBE";
    case FrameType::kPublish:
      return "PUBLISH";
    case FrameType::kRequest:
      return "REQUEST";
    case FrameType::kResponse:
      return "RESPONSE";
  }
  return "?";
}

void encodeFrame(const WireFrame& frame, std::string* out) {
  const FrameType type = frame.type();
  putU32(out, kWireMagic);
  putU8(out, kWireVersion);
  putU8(out, static_cast<std::uint8_t>(type));
  putU16(out, 0);  // flags
  putU32(out, frame.seq);
  putU32(out, bodyLengthFor(type));
  switch (type) {
    case FrameType::kSubscribe: {
      const auto& b = std::get<SubscribeBody>(frame.body);
      putU32(out, b.proxy);
      putU32(out, b.page);
      putU32(out, b.count);
      break;
    }
    case FrameType::kUnsubscribe: {
      const auto& b = std::get<UnsubscribeBody>(frame.body);
      putU32(out, b.proxy);
      putU32(out, b.page);
      putU32(out, b.count);
      break;
    }
    case FrameType::kPublish: {
      const auto& b = std::get<PublishBody>(frame.body);
      putU32(out, b.page);
      putU32(out, b.version);
      putU64(out, b.size);
      break;
    }
    case FrameType::kRequest: {
      const auto& b = std::get<RequestBody>(frame.body);
      putU32(out, b.proxy);
      putU32(out, b.page);
      break;
    }
    case FrameType::kResponse: {
      const auto& b = std::get<ResponseBody>(frame.body);
      if (!std::isfinite(b.responseTimeMs)) {
        throw std::invalid_argument(
            "encodeFrame: non-finite responseTimeMs in RESPONSE");
      }
      putU8(out, b.status);
      putU8(out, b.op);
      putU8(out, b.hit);
      putU8(out, b.stale);
      putU64(out, b.pages);
      putU64(out, b.bytes);
      putU64(out, std::bit_cast<std::uint64_t>(b.responseTimeMs));
      break;
    }
  }
}

std::string encodeFrame(const WireFrame& frame) {
  std::string out;
  out.reserve(kWireHeaderBytes + bodyLengthFor(frame.type()));
  encodeFrame(frame, &out);
  return out;
}

DecodeResult decodeFrame(const std::uint8_t* data, std::size_t size) {
  if (size < kWireHeaderBytes) return needMore();
  if (getU32(data) != kWireMagic) return fail("decodeFrame: bad magic");
  const std::uint8_t version = data[4];
  if (version != kWireVersion) {
    return fail("decodeFrame: unsupported version " +
                std::to_string(static_cast<unsigned>(version)));
  }
  const std::uint8_t rawType = data[5];
  if (rawType < static_cast<std::uint8_t>(FrameType::kSubscribe) ||
      rawType > static_cast<std::uint8_t>(FrameType::kResponse)) {
    return fail("decodeFrame: unknown frame type " +
                std::to_string(static_cast<unsigned>(rawType)));
  }
  const auto type = static_cast<FrameType>(rawType);
  if (getU16(data + 6) != 0) return fail("decodeFrame: nonzero flags");
  const std::uint32_t seq = getU32(data + 8);
  const std::uint32_t bodyLen = getU32(data + 12);
  if (bodyLen > kMaxBodyBytes) {
    return fail("decodeFrame: oversized body length reading bodyLen");
  }
  if (bodyLen != bodyLengthFor(type)) {
    return fail("decodeFrame: bad body length for " +
                std::string(frameTypeName(type)));
  }
  if (size < kWireHeaderBytes + bodyLen) return needMore();

  const std::uint8_t* body = data + kWireHeaderBytes;
  DecodeResult r;
  r.status = DecodeStatus::kOk;
  r.consumed = kWireHeaderBytes + bodyLen;
  r.frame.seq = seq;
  switch (type) {
    case FrameType::kSubscribe: {
      SubscribeBody b;
      b.proxy = getU32(body);
      b.page = getU32(body + 4);
      b.count = getU32(body + 8);
      r.frame.body = b;
      break;
    }
    case FrameType::kUnsubscribe: {
      UnsubscribeBody b;
      b.proxy = getU32(body);
      b.page = getU32(body + 4);
      b.count = getU32(body + 8);
      r.frame.body = b;
      break;
    }
    case FrameType::kPublish: {
      PublishBody b;
      b.page = getU32(body);
      b.version = getU32(body + 4);
      b.size = getU64(body + 8);
      r.frame.body = b;
      break;
    }
    case FrameType::kRequest: {
      RequestBody b;
      b.proxy = getU32(body);
      b.page = getU32(body + 4);
      r.frame.body = b;
      break;
    }
    case FrameType::kResponse: {
      ResponseBody b;
      b.status = body[0];
      b.op = body[1];
      b.hit = body[2];
      b.stale = body[3];
      if (b.status > static_cast<std::uint8_t>(ResponseStatus::kOverloaded)) {
        return fail("decodeFrame: invalid status byte in RESPONSE");
      }
      if (b.op < static_cast<std::uint8_t>(FrameType::kSubscribe) ||
          b.op > static_cast<std::uint8_t>(FrameType::kRequest)) {
        return fail("decodeFrame: invalid op byte in RESPONSE");
      }
      if (b.hit > 1) return fail("decodeFrame: invalid hit byte in RESPONSE");
      if (b.stale > 1) {
        return fail("decodeFrame: invalid stale byte in RESPONSE");
      }
      b.pages = getU64(body + 4);
      b.bytes = getU64(body + 12);
      b.responseTimeMs = std::bit_cast<double>(getU64(body + 20));
      if (!std::isfinite(b.responseTimeMs)) {
        return fail("decodeFrame: non-finite responseTimeMs in RESPONSE");
      }
      r.frame.body = b;
      break;
    }
  }
  return r;
}

DecodeResult decodeFrame(std::string_view bytes) {
  return decodeFrame(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                     bytes.size());
}

WireFrame decodeClosedFrame(std::string_view bytes) {
  const DecodeResult r = decodeFrame(bytes);
  if (r.status == DecodeStatus::kError) {
    throw std::runtime_error(r.error);
  }
  if (r.status == DecodeStatus::kNeedMore) {
    throw std::runtime_error("decodeClosedFrame: truncated input");
  }
  if (r.consumed != bytes.size()) {
    throw std::runtime_error("decodeClosedFrame: trailing bytes after frame");
  }
  return r.frame;
}

}  // namespace pscd::net
