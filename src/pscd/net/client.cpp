#include "pscd/net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "pscd/util/wallclock.h"

namespace pscd::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

std::string_view wireErrorName(WireError error) {
  switch (error) {
    case WireError::kNone:
      return "none";
    case WireError::kTimeout:
      return "timeout";
    case WireError::kConnReset:
      return "conn_reset";
    case WireError::kOverloaded:
      return "overloaded";
    case WireError::kProtocol:
      return "protocol";
  }
  return "?";
}

WireClient::WireClient(const std::string& host, std::uint16_t port)
    : host_(host), port_(port) {
  connectSocket();
}

WireClient::~WireClient() { close(); }

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      port_(other.port_),
      nextSeq_(other.nextSeq_),
      in_(std::move(other.in_)),
      stats_(other.stats_) {
  other.fd_ = -1;
}

void WireClient::connectSocket() {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string portText = std::to_string(port_);
  const int rc = ::getaddrinfo(host_.c_str(), portText.c_str(), &hints,
                               &results);
  if (rc != 0) {
    throw std::runtime_error("WireClient: cannot resolve " + host_ + ": " +
                             gai_strerror(rc));
  }
  int fd = -1;
  int lastErrno = ECONNREFUSED;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      lastErrno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    lastErrno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    errno = lastErrno;
    throwErrno("WireClient: connect to " + host_ + ":" + portText);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  in_.clear();
}

bool WireClient::reconnect(std::string* message) {
  try {
    connectSocket();
  } catch (const std::exception& e) {
    *message = e.what();
    return false;
  }
  ++stats_.reconnects;
  return true;
}

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool WireClient::sendAllNoThrow(const std::string& bytes,
                                std::string* message) {
  if (fd_ < 0) {
    *message = "send on closed client";
    return false;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *message = std::string("send: ") + std::strerror(errno);
      close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void WireClient::sendAll(const std::string& bytes) {
  std::string message;
  if (!sendAllNoThrow(bytes, &message)) {
    throw std::runtime_error("WireClient: " + message);
  }
}

void WireClient::sendRaw(const std::string& bytes) { sendAll(bytes); }

WireError WireClient::readFrame(double deadline, WireFrame* out,
                                std::string* message) {
  char buf[4096];
  while (true) {
    const DecodeResult result = decodeFrame(in_);
    if (result.status == DecodeStatus::kError) {
      close();
      *message = "undecodable response: " + result.error;
      return WireError::kProtocol;
    }
    if (result.status == DecodeStatus::kOk) {
      in_.erase(0, result.consumed);
      *out = result.frame;
      return WireError::kNone;
    }
    if (fd_ < 0) {
      *message = "connection closed";
      return WireError::kConnReset;
    }
    if (deadline > 0) {
      const double remaining = deadline - monotonicSeconds();
      if (remaining <= 0) {
        // The response may still arrive later on this connection, so
        // poison it: a retry must re-issue on a fresh seq + socket.
        close();
        *message = "deadline exceeded waiting for response";
        return WireError::kTimeout;
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const double ms = std::ceil(remaining * 1000.0);
      const int timeoutMs = ms >= 60000.0 ? 60000 : static_cast<int>(ms);
      const int pr = ::poll(&pfd, 1, timeoutMs < 1 ? 1 : timeoutMs);
      if (pr < 0) {
        if (errno == EINTR) continue;
        *message = std::string("poll: ") + std::strerror(errno);
        close();
        return WireError::kConnReset;
      }
      if (pr == 0) continue;  // re-check the deadline at the loop top
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      *message = std::string("recv: ") + std::strerror(errno);
      close();
      return WireError::kConnReset;
    }
    if (n == 0) {
      close();
      *message = "connection closed by server mid-response";
      return WireError::kConnReset;
    }
    in_.append(buf, static_cast<std::size_t>(n));
  }
}

WireError WireClient::readResponse(double deadlineSeconds, WireFrame* out) {
  std::string message;
  const double deadline =
      deadlineSeconds > 0 ? monotonicSeconds() + deadlineSeconds : 0.0;
  return readFrame(deadline, out, &message);
}

WireError WireClient::attemptCall(const WireFrame& frame,
                                  double deadlineSeconds,
                                  bool allowReconnect,
                                  ResponseBody* response,
                                  std::string* message) {
  if (fd_ < 0) {
    if (!allowReconnect) {
      *message = "send on closed client";
      return WireError::kConnReset;
    }
    if (!reconnect(message)) return WireError::kConnReset;
  }
  WireFrame out = frame;
  out.seq = nextSeq_++;
  if (!sendAllNoThrow(encodeFrame(out), message)) {
    return WireError::kConnReset;
  }
  const double deadline =
      deadlineSeconds > 0 ? monotonicSeconds() + deadlineSeconds : 0.0;
  WireFrame reply;
  const WireError err = readFrame(deadline, &reply, message);
  if (err != WireError::kNone) return err;
  if (reply.type() != FrameType::kResponse) {
    close();
    *message = std::string("unexpected ") +
               std::string(frameTypeName(reply.type())) +
               " frame from server";
    return WireError::kProtocol;
  }
  if (reply.seq != out.seq) {
    close();
    *message = "response seq " + std::to_string(reply.seq) +
               " does not match request seq " + std::to_string(out.seq);
    return WireError::kProtocol;
  }
  *response = std::get<ResponseBody>(reply.body);
  if (response->overloaded()) {
    *message = "server overloaded";
    return WireError::kOverloaded;
  }
  return WireError::kNone;
}

CallResult WireClient::call(const WireFrame& frame,
                            const CallOptions& options) {
  return callInternal(frame, options, /*allowReconnect=*/true);
}

CallResult WireClient::callInternal(const WireFrame& frame,
                                    const CallOptions& options,
                                    bool allowReconnect) {
  ++stats_.calls;
  CallResult result;
  const std::uint32_t maxAttempts = options.retries + 1;
  for (std::uint32_t attempt = 1; attempt <= maxAttempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.retries;
      if (options.backoffSeconds > 0) {
        sleepSeconds(options.backoffSeconds *
                     std::ldexp(1.0, static_cast<int>(attempt) - 2));
      }
    }
    result.attempts = attempt;
    result.message.clear();
    result.error = attemptCall(frame, options.deadlineSeconds,
                               allowReconnect, &result.response,
                               &result.message);
    switch (result.error) {
      case WireError::kNone:
        return result;
      case WireError::kTimeout:
        ++stats_.timeouts;
        break;
      case WireError::kConnReset:
        ++stats_.connResets;
        break;
      case WireError::kOverloaded:
        ++stats_.overloaded;
        break;
      case WireError::kProtocol:
        ++stats_.protocolErrors;
        return result;  // the stream can't be trusted: never retry
    }
  }
  return result;
}

ResponseBody WireClient::call(const WireFrame& frame) {
  const CallResult result =
      callInternal(frame, CallOptions{}, /*allowReconnect=*/false);
  // The strict path predates load shedding; an overloaded RESPONSE is a
  // well-formed answer, so hand it back like any other status.
  if (!result.ok() && result.error != WireError::kOverloaded) {
    throw std::runtime_error("WireClient: " + result.message);
  }
  return result.response;
}

ResponseBody WireClient::subscribe(ProxyId proxy, PageId page,
                                   std::uint32_t count) {
  WireFrame frame;
  frame.body = SubscribeBody{proxy, page, count};
  return call(frame);
}

ResponseBody WireClient::unsubscribe(ProxyId proxy, PageId page,
                                     std::uint32_t count) {
  WireFrame frame;
  frame.body = UnsubscribeBody{proxy, page, count};
  return call(frame);
}

ResponseBody WireClient::publish(PageId page, Version version, Bytes size) {
  WireFrame frame;
  frame.body = PublishBody{page, version, size};
  return call(frame);
}

ResponseBody WireClient::request(ProxyId proxy, PageId page) {
  WireFrame frame;
  frame.body = RequestBody{proxy, page};
  return call(frame);
}

}  // namespace pscd::net
