#include "pscd/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace pscd::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

WireClient::WireClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throwErrno("WireClient: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("WireClient: bad IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int err = errno;
    close();
    errno = err;
    throwErrno("WireClient: connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

WireClient::~WireClient() { close(); }

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(other.fd_), nextSeq_(other.nextSeq_), in_(std::move(other.in_)) {
  other.fd_ = -1;
}

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WireClient::sendAll(const std::string& bytes) {
  if (fd_ < 0) throw std::runtime_error("WireClient: send on closed client");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      errno = err;
      throwErrno("WireClient: send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void WireClient::sendRaw(const std::string& bytes) { sendAll(bytes); }

ResponseBody WireClient::call(const WireFrame& frame) {
  WireFrame out = frame;
  out.seq = nextSeq_++;
  sendAll(encodeFrame(out));
  // Read until the matching RESPONSE is decodable. The daemon answers
  // in order on one connection, so the first RESPONSE must match.
  char buf[4096];
  while (true) {
    const DecodeResult result = decodeFrame(in_);
    if (result.status == DecodeStatus::kError) {
      close();
      throw std::runtime_error("WireClient: undecodable response: " +
                               result.error);
    }
    if (result.status == DecodeStatus::kOk) {
      in_.erase(0, result.consumed);
      if (result.frame.type() != FrameType::kResponse) {
        close();
        throw std::runtime_error(
            std::string("WireClient: unexpected ") +
            std::string(frameTypeName(result.frame.type())) +
            " frame from server");
      }
      if (result.frame.seq != out.seq) {
        close();
        throw std::runtime_error(
            "WireClient: response seq " + std::to_string(result.frame.seq) +
            " does not match request seq " + std::to_string(out.seq));
      }
      return std::get<ResponseBody>(result.frame.body);
    }
    if (fd_ < 0) throw std::runtime_error("WireClient: connection closed");
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      errno = err;
      throwErrno("WireClient: recv");
    }
    if (n == 0) {
      close();
      throw std::runtime_error(
          "WireClient: connection closed by server mid-response");
    }
    in_.append(buf, static_cast<std::size_t>(n));
  }
}

ResponseBody WireClient::subscribe(ProxyId proxy, PageId page,
                                   std::uint32_t count) {
  WireFrame frame;
  frame.body = SubscribeBody{proxy, page, count};
  return call(frame);
}

ResponseBody WireClient::unsubscribe(ProxyId proxy, PageId page,
                                     std::uint32_t count) {
  WireFrame frame;
  frame.body = UnsubscribeBody{proxy, page, count};
  return call(frame);
}

ResponseBody WireClient::publish(PageId page, Version version, Bytes size) {
  WireFrame frame;
  frame.body = PublishBody{page, version, size};
  return call(frame);
}

ResponseBody WireClient::request(ProxyId proxy, PageId page) {
  WireFrame frame;
  frame.body = RequestBody{proxy, page};
  return call(frame);
}

}  // namespace pscd::net
