// Open-loop send scheduling for the serving-tier load harness.
//
// The defining property of an open-loop (YCSB-style) load generator is
// that send times are fixed ahead of time by the target arrival rate —
// they never depend on how fast the server answers. buildOpenLoopSchedule
// therefore takes only the pacing parameters and a seed and returns the
// complete, sorted list of send offsets; the dispatcher walks the list
// against the wall clock, and an arrival that finds every connection
// busy is *dropped and counted*, never delayed (delaying would silently
// turn the generator closed-loop — the classic coordinated-omission
// bug). Unit tests pin both properties: the schedule is a pure function
// of (config, seed), bit-identical across calls, and contains no trace
// of service behaviour.
#pragma once

#include <cstdint>
#include <vector>

namespace pscd::net {

enum class PacingKind : std::uint8_t {
  kUniform,  // deterministic equal gaps of 1/targetQps
  kPoisson,  // exponential inter-arrival gaps with mean 1/targetQps
};

struct PacingConfig {
  double targetQps = 1000.0;     // > 0
  double durationSeconds = 1.0;  // > 0
  PacingKind kind = PacingKind::kUniform;
  /// Seeds the Poisson gap stream; ignored for kUniform.
  std::uint64_t seed = 1;
};

/// Send offsets in seconds from the phase start, strictly inside
/// [0, durationSeconds), sorted ascending. Deterministic in the config
/// alone. Throws std::invalid_argument on a non-positive rate or
/// duration.
std::vector<double> buildOpenLoopSchedule(const PacingConfig& config);

}  // namespace pscd::net
