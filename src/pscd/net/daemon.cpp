#include "pscd/net/daemon.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "pscd/util/log.h"
#include "pscd/util/rng.h"

namespace pscd::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error("Daemon: " + what + ": " +
                           std::strerror(errno));
}

void setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throwErrno("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

std::string formatDaemonStats(const DaemonStats& s) {
  std::string out = "stats:";
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("accepted", s.accepted);
  field("accept_rejected", s.acceptRejected);
  field("closed", s.closed);
  field("frames", s.framesHandled);
  field("decode_errors", s.decodeErrors);
  field("protocol_errors", s.protocolErrors);
  field("error_responses", s.errorResponses);
  field("input_overflows", s.inputOverflows);
  field("idle_timeouts", s.idleTimeouts);
  field("read_timeouts", s.readTimeouts);
  field("write_timeouts", s.writeTimeouts);
  field("overload_shed", s.overloadShed);
  field("drain_flushed", s.drainFlushed);
  return out;
}

Daemon::Daemon(DistributionService& service, const Clock& clock,
               WireSink& sink, const DaemonConfig& config)
    : service_(service), clock_(clock), sink_(sink), config_(config) {
  if (config_.idleTimeoutSeconds < 0 || config_.readTimeoutSeconds < 0 ||
      config_.writeTimeoutSeconds < 0 || config_.drainSeconds < 0) {
    throw std::invalid_argument("Daemon: negative timeout in config");
  }
  timersEnabled_ = config_.idleTimeoutSeconds > 0 ||
                   config_.readTimeoutSeconds > 0 ||
                   config_.writeTimeoutSeconds > 0;
  listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) throwErrno("socket");
  const int one = 1;
  if (setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    throwErrno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bindAddress.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("Daemon: bad bind address " +
                             config_.bindAddress);
  }
  if (bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throwErrno("bind");
  }
  if (listen(listenFd_, config_.backlog) < 0) throwErrno("listen");
  setNonBlocking(listenFd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throwErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epollFd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) throwErrno("epoll_create1");
  wakeFd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeFd_ < 0) throwErrno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listenFd_;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) < 0) {
    throwErrno("epoll_ctl(listen)");
  }
  ev.data.fd = wakeFd_;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) < 0) {
    throwErrno("epoll_ctl(wake)");
  }
}

Daemon::~Daemon() { closeAll(); }

void Daemon::closeAll() {
  for (auto& [fd, conn] : conns_) {
    ::close(fd);
    ++stats_.closed;
  }
  conns_.clear();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (wakeFd_ >= 0) {
    ::close(wakeFd_);
    wakeFd_ = -1;
  }
  if (epollFd_ >= 0) {
    ::close(epollFd_);
    epollFd_ = -1;
  }
}

void Daemon::wakeLoop() {
  const int fd = wakeFd_;
  if (fd >= 0) {
    const std::uint64_t one = 1;
    // Best-effort: the loop also rechecks the mode on every wakeup.
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
  }
}

void Daemon::stop() {
  stopMode_.store(kStopNow, std::memory_order_release);
  wakeLoop();
}

void Daemon::stopDrain() {
  // Only an idle->drain transition: never downgrade a hard stop.
  int expected = kRunning;
  stopMode_.compare_exchange_strong(expected, kStopDrain,
                                    std::memory_order_acq_rel);
  wakeLoop();
}

void Daemon::requestStatsDump() {
  dumpRequested_.store(true, std::memory_order_release);
  wakeLoop();
}

void Daemon::beginDrain() {
  draining_ = true;
  drainDeadline_ = clock_.now() + config_.drainSeconds;
  // Stop accepting but keep the fd so the port stays reserved until
  // run() returns.
  if (listenFd_ >= 0) {
    epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
  }
  logInfo() << "pscd_daemon: draining " << conns_.size()
            << " connection(s), budget " << config_.drainSeconds << "s";
}

int Daemon::computeWaitMs() {
  double wait = std::numeric_limits<double>::infinity();
  if (!wheel_.empty() || draining_) {
    const double now = clock_.now();
    if (!wheel_.empty()) wait = std::min(wait, wheel_.nextWakeSeconds(now));
    if (draining_) wait = std::min(wait, drainDeadline_ - now);
  }
  if (!std::isfinite(wait)) return -1;  // fault-free default: block
  if (wait <= 0.0) return 0;
  const double ms = std::ceil(wait * 1000.0);
  return ms >= 60000.0 ? 60000 : static_cast<int>(ms);
}

void Daemon::run() {
  if (ran_) throw std::logic_error("Daemon::run called twice");
  ran_ = true;
  std::vector<epoll_event> events(64);
  while (true) {
    const int mode = stopMode_.load(std::memory_order_acquire);
    if (mode == kStopNow) break;
    if (mode == kStopDrain && !draining_) beginDrain();
    if (draining_ &&
        (conns_.empty() || clock_.now() >= drainDeadline_)) {
      break;
    }
    const int n = epoll_wait(epollFd_, events.data(),
                             static_cast<int>(events.size()),
                             computeWaitMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      logError() << "pscd_daemon: epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == wakeFd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wakeFd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == listenFd_) {
        acceptConnections();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Connection& conn = it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        closeConnection(fd);
        continue;
      }
      if ((mask & EPOLLOUT) != 0 && !flushWrites(conn)) continue;
      if ((mask & EPOLLIN) != 0) handleReadable(conn);
    }
    if (dumpRequested_.exchange(false, std::memory_order_acq_rel)) {
      logInfo() << "pscd_daemon: " << formatDaemonStats(stats_);
    }
    if (!wheel_.empty()) reapExpired(clock_.now());
  }
  closeAll();
}

void Daemon::armDeadline(Connection& conn) {
  double d = std::numeric_limits<double>::infinity();
  if (config_.writeTimeoutSeconds > 0 && conn.writePending) {
    d = std::min(d, conn.writePendingSince + config_.writeTimeoutSeconds);
  }
  if (config_.readTimeoutSeconds > 0 && !conn.in.empty()) {
    d = std::min(d, conn.lastActivity + config_.readTimeoutSeconds);
  }
  if (config_.idleTimeoutSeconds > 0) {
    d = std::min(d, conn.lastActivity + config_.idleTimeoutSeconds);
  }
  conn.deadline = d;
  // Lazy wheel discipline: schedule only when the deadline moved
  // earlier than the earliest live entry; extensions ride the old entry,
  // whose expiry re-validates against conn.deadline and re-arms.
  if (std::isfinite(d) && (!conn.wheelArmed || d < conn.wheelDeadline)) {
    wheel_.schedule(conn.fd, d);
    conn.wheelDeadline = d;
    conn.wheelArmed = true;
  }
}

void Daemon::reapExpired(double now) {
  expiredScratch_.clear();
  wheel_.collectExpired(now, &expiredScratch_);
  for (const int fd : expiredScratch_) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;  // stale entry for a closed fd
    Connection& conn = it->second;
    conn.wheelArmed = false;  // this entry is consumed
    if (!std::isfinite(conn.deadline)) continue;
    if (conn.deadline > now) {
      // Activity pushed the deadline out (or the wheel wrapped a
      // far-future one): re-arm and move on.
      wheel_.schedule(fd, conn.deadline);
      conn.wheelDeadline = conn.deadline;
      conn.wheelArmed = true;
      continue;
    }
    // Classify the reap, most-specific first: an unflushable response
    // backlog beats a half-read frame beats plain silence.
    const char* kind = nullptr;
    if (config_.writeTimeoutSeconds > 0 && conn.writePending &&
        now >= conn.writePendingSince + config_.writeTimeoutSeconds) {
      ++stats_.writeTimeouts;
      kind = "write deadline";
    } else if (config_.readTimeoutSeconds > 0 && !conn.in.empty()) {
      ++stats_.readTimeouts;
      kind = "read deadline";
    } else {
      ++stats_.idleTimeouts;
      kind = "idle deadline";
    }
    logDebug() << "pscd_daemon: closing fd " << fd << ": " << kind
               << " expired";
    closeConnection(fd);
  }
}

void Daemon::acceptConnections() {
  while (true) {
    const int fd = accept4(listenFd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      logWarn() << "pscd_daemon: accept: " << std::strerror(errno);
      return;
    }
    if (conns_.size() >= config_.maxConnections) {
      ++stats_.acceptRejected;
      ::close(fd);
      continue;
    }
    const int one = 1;
    // Best-effort: latency optimization, not correctness.
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.sendBufferBytes > 0) {
      // Best-effort: the kernel clamps to its floor, which is exactly
      // what the write-deadline tests want (a tiny send window).
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.sendBufferBytes,
                 sizeof(config_.sendBufferBytes));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    if (timersEnabled_) conn.lastActivity = clock_.now();
    const auto [it, inserted] = conns_.emplace(fd, std::move(conn));
    ++stats_.accepted;
    if (timersEnabled_) armDeadline(it->second);
  }
}

void Daemon::handleReadable(Connection& conn) {
  char buffer[65536];
  bool gotBytes = false;
  while (true) {
    const ssize_t n = recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      gotBytes = true;
      conn.in.append(buffer, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buffer)) break;
      continue;
    }
    if (n == 0) {  // orderly EOF from the client
      closeConnection(conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    closeConnection(conn.fd);
    return;
  }
  if (timersEnabled_ && gotBytes) conn.lastActivity = clock_.now();
  if (!processInput(conn)) return;
  if (!flushWrites(conn)) return;
  if (timersEnabled_) armDeadline(conn);
}

bool Daemon::processInput(Connection& conn) {
  std::size_t offset = 0;
  std::size_t framesInBatch = 0;
  while (offset < conn.in.size()) {
    const DecodeResult r = decodeFrame(
        reinterpret_cast<const std::uint8_t*>(conn.in.data()) + offset,
        conn.in.size() - offset);
    if (r.status == DecodeStatus::kNeedMore) break;
    if (r.status == DecodeStatus::kError) {
      ++stats_.decodeErrors;
      logWarn() << "pscd_daemon: closing fd " << conn.fd << ": " << r.error;
      closeConnection(conn.fd);
      return false;
    }
    offset += r.consumed;
    if (r.frame.type() == FrameType::kResponse) {
      ++stats_.protocolErrors;
      logWarn() << "pscd_daemon: closing fd " << conn.fd
                << ": client sent RESPONSE";
      closeConnection(conn.fd);
      return false;
    }
    ++stats_.framesHandled;
    WireFrame reply;
    reply.seq = r.frame.seq;
    // Load shedding: past the threshold within one input drain, answer
    // REQUESTs with kOverloaded in constant time instead of executing
    // them. State-mutating frames always execute — shedding those would
    // silently fork client and server subscription state.
    if (config_.shedThreshold > 0 && r.frame.type() == FrameType::kRequest &&
        framesInBatch >= config_.shedThreshold) {
      ResponseBody overloaded;
      overloaded.op = static_cast<std::uint8_t>(FrameType::kRequest);
      overloaded.status =
          static_cast<std::uint8_t>(ResponseStatus::kOverloaded);
      reply.body = overloaded;
      ++stats_.overloadShed;
    } else {
      reply.body = dispatch(r.frame);
    }
    ++framesInBatch;
    encodeFrame(reply, &conn.out);
    if (conn.out.size() - conn.outFlushed > config_.maxOutBufferBytes) {
      logWarn() << "pscd_daemon: closing fd " << conn.fd
                << ": response backlog over "
                << config_.maxOutBufferBytes << " bytes";
      closeConnection(conn.fd);
      return false;
    }
  }
  conn.in.erase(0, offset);
  if (conn.in.size() > config_.maxInBufferBytes) {
    ++stats_.inputOverflows;
    logWarn() << "pscd_daemon: closing fd " << conn.fd << ": "
              << conn.in.size() << " undecodable buffered bytes over the "
              << config_.maxInBufferBytes << "-byte cap";
    closeConnection(conn.fd);
    return false;
  }
  return true;
}

ResponseBody Daemon::dispatch(const WireFrame& frame) {
  ResponseBody response;
  response.op = static_cast<std::uint8_t>(frame.type());
  try {
    switch (frame.type()) {
      case FrameType::kSubscribe: {
        const auto& b = std::get<SubscribeBody>(frame.body);
        if (b.proxy >= service_.engine().numProxies()) {
          throw std::out_of_range("SUBSCRIBE: proxy out of range");
        }
        service_.broker().subscribeAggregated(b.proxy, b.page, b.count);
        break;
      }
      case FrameType::kUnsubscribe: {
        const auto& b = std::get<UnsubscribeBody>(frame.body);
        if (b.proxy >= service_.engine().numProxies()) {
          throw std::out_of_range("UNSUBSCRIBE: proxy out of range");
        }
        response.pages =
            service_.broker().unsubscribeAggregated(b.proxy, b.page, b.count);
        break;
      }
      case FrameType::kPublish: {
        const auto& b = std::get<PublishBody>(frame.body);
        if (b.size == 0) {
          throw std::invalid_argument("PUBLISH: size must be positive");
        }
        PublishEvent event;
        event.time = clock_.now();
        event.page = b.page;
        event.version = b.version;
        event.size = b.size;
        service_.handlePublish(event);
        const PushDelivery& d = sink_.lastPush();
        response.pages = d.pages;
        response.bytes = d.bytes;
        break;
      }
      case FrameType::kRequest: {
        const auto& b = std::get<RequestBody>(frame.body);
        if (b.proxy >= service_.engine().numProxies()) {
          throw std::out_of_range("REQUEST: proxy out of range");
        }
        service_.handleRequest(b.proxy, b.page);
        const RequestDelivery& d = sink_.lastRequest();
        response.hit = d.hit ? 1 : 0;
        response.stale = d.stale ? 1 : 0;
        response.bytes = d.bytesTransferred;
        response.responseTimeMs = d.responseTimeMs;
        break;
      }
      case FrameType::kResponse:
        break;  // rejected by processInput before dispatch
    }
  } catch (const std::exception& e) {
    // A failed operation answers with status=kError and zeroed payload;
    // the connection (and the service's consistent state) live on.
    response = ResponseBody{};
    response.op = static_cast<std::uint8_t>(frame.type());
    response.status = static_cast<std::uint8_t>(ResponseStatus::kError);
    ++stats_.errorResponses;
    logDebug() << "pscd_daemon: " << frameTypeName(frame.type())
               << " failed: " << e.what();
  }
  return response;
}

bool Daemon::flushWrites(Connection& conn) {
  while (conn.outFlushed < conn.out.size()) {
    const ssize_t n =
        send(conn.fd, conn.out.data() + conn.outFlushed,
             conn.out.size() - conn.outFlushed, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.outFlushed += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (timersEnabled_ && !conn.writePending) {
        conn.writePending = true;
        conn.writePendingSince = clock_.now();
        armDeadline(conn);
      }
      if (!conn.wantWrite) {
        conn.wantWrite = true;
        return updateInterest(conn);
      }
      return true;
    }
    if (errno == EINTR) continue;
    closeConnection(conn.fd);
    return false;
  }
  conn.out.clear();
  conn.outFlushed = 0;
  if (conn.writePending) {
    conn.writePending = false;
    if (timersEnabled_) armDeadline(conn);
  }
  if (conn.wantWrite) {
    conn.wantWrite = false;
    return updateInterest(conn);
  }
  return true;
}

bool Daemon::updateInterest(Connection& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.wantWrite ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  if (epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev) < 0) {
    closeConnection(conn.fd);
    return false;
  }
  return true;
}

void Daemon::closeConnection(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (draining_ && it->second.outFlushed == it->second.out.size()) {
    // The drain delivered this connection's in-flight responses before
    // it closed — the whole point of stopDrain() over stop().
    ++stats_.drainFlushed;
  }
  epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  ++stats_.closed;
}

Network ServeHost::buildNetwork(const ServeHostConfig& config) {
  NetworkParams params;
  params.numProxies = config.numProxies;
  params.numTransitNodes = config.numTransitNodes;
  Rng rng(config.networkSeed);
  return Network(params, rng);
}

ServiceConfig ServeHost::buildServiceConfig(const ServeHostConfig& config) {
  ServiceConfig service;
  service.engine.strategy = config.strategy;
  service.engine.beta = config.beta;
  service.engine.pushScheme = config.pushScheme;
  service.engine.proxyCapacities.assign(config.numProxies,
                                        config.capacityPerProxy);
  service.latency = config.latency;
  return service;
}

ServeHost::ServeHost(const ServeHostConfig& config,
                     const DaemonConfig& daemonConfig)
    : network_(buildNetwork(config)),
      service_(network_, clock_, sink_, buildServiceConfig(config)),
      daemon_(service_, clock_, sink_, daemonConfig) {}

}  // namespace pscd::net
