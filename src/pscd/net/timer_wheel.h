// A small single-level timer wheel for the serving tier's connection
// deadlines (idle / read / write reaping, DESIGN.md §14).
//
// Design: fixed-size circular slot array at a coarse tick. schedule()
// hashes a deadline into its slot in O(1); collectExpired() advances a
// cursor tick-by-tick to `now` and hands back every fd whose slot came
// due. There is deliberately no cancel(): the daemon re-validates every
// expiry against the connection's authoritative deadline and simply
// re-schedules entries that are not actually due (activity moved the
// deadline, or a far-future deadline wrapped around the wheel). Lazy
// revalidation keeps the hot paths allocation-light and makes stale
// entries — including fd reuse after a close — harmless by
// construction.
//
// The wheel spans slots() * tickSeconds() of future time; deadlines
// beyond the horizon wrap and fire early at most once per revolution,
// which the revalidation turns into a cheap re-schedule. nextWake()
// gives the epoll loop its timeout: the time of the nearest nonempty
// slot boundary (an upper bound on the nearest real deadline never
// later than one tick after it).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "pscd/util/check.h"

namespace pscd::net {

class TimerWheel {
 public:
  explicit TimerWheel(double tickSeconds = 0.01, std::size_t slots = 256)
      : tick_(tickSeconds), slots_(slots) {
    PSCD_CHECK_GT(tick_, 0.0);
    PSCD_CHECK_GT(slots_.size(), std::size_t{1});
  }

  double tickSeconds() const { return tick_; }
  std::size_t slots() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Registers `fd` to come due at `deadline` (seconds on the caller's
  /// clock). Multiple live entries for one fd are fine — expiry
  /// revalidation collapses them.
  void schedule(int fd, double deadline) {
    const std::int64_t tick = tickFor(deadline);
    // Deadlines at or behind the cursor land in the next tick so they
    // fire on the very next collect rather than a full revolution out.
    const std::int64_t effective = tick <= cursor_ ? cursor_ + 1 : tick;
    slots_[slotFor(effective)].push_back(Entry{fd, deadline});
    ++size_;
  }

  /// Advances the cursor to `now`, appending the fd of every entry in
  /// an elapsed slot to `out` (callers re-validate and re-schedule).
  void collectExpired(double now, std::vector<int>* out) {
    const std::int64_t target = tickFor(now);
    while (cursor_ < target && size_ > 0) {
      ++cursor_;
      std::vector<Entry>& slot = slots_[slotFor(cursor_)];
      for (const Entry& entry : slot) {
        out->push_back(entry.fd);
        --size_;
      }
      slot.clear();
    }
    if (cursor_ < target) cursor_ = target;  // empty wheel: just advance
  }

  /// Seconds from `now` until the nearest nonempty slot boundary, or
  /// +infinity when nothing is scheduled. Never negative.
  double nextWakeSeconds(double now) const {
    if (size_ == 0) return std::numeric_limits<double>::infinity();
    for (std::size_t ahead = 1; ahead <= slots_.size(); ++ahead) {
      const std::int64_t tick = cursor_ + static_cast<std::int64_t>(ahead);
      if (!slots_[slotFor(tick)].empty()) {
        const double at = static_cast<double>(tick) * tick_;
        return at > now ? at - now : 0.0;
      }
    }
    return std::numeric_limits<double>::infinity();  // unreachable: size_>0
  }

 private:
  struct Entry {
    int fd = -1;
    double deadline = 0.0;
  };

  std::int64_t tickFor(double seconds) const {
    return static_cast<std::int64_t>(std::floor(seconds / tick_));
  }

  std::size_t slotFor(std::int64_t tick) const {
    const std::int64_t m =
        tick % static_cast<std::int64_t>(slots_.size());
    return static_cast<std::size_t>(m < 0 ? m + static_cast<std::int64_t>(
                                                    slots_.size())
                                          : m);
  }

  double tick_;
  std::vector<std::vector<Entry>> slots_;
  std::int64_t cursor_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pscd::net
