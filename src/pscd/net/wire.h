// The pscd wire protocol: small length-prefixed binary frames carrying
// SUBSCRIBE / UNSUBSCRIBE / PUBLISH / REQUEST operations to a
// pscd_daemon and RESPONSE outcomes back. The encoding follows the
// hardened workload/serialize.cpp idioms: explicit little-endian field
// layout (no struct memcpy, so the format is identical on every
// platform), field-named decode errors, a hard body-size cap so a
// corrupt length can never commit memory for data that is not there,
// and uint8_t mirrors for bools with the byte validated on decode.
//
// Framing is a fixed 16-byte header followed by a type-specific body:
//
//   offset  size  field
//        0     4  magic      0x31435350 ("PSC1" on the wire, LE)
//        4     1  version    kWireVersion
//        5     1  type       FrameType
//        6     2  flags      must be 0 (reserved)
//        8     4  seq        request/response correlation id
//       12     4  bodyLen    body bytes that follow (<= kMaxBodyBytes)
//
// The decoder is incremental: fed the front of a receive buffer it
// returns kOk + bytes consumed, kNeedMore when the buffer holds only a
// frame prefix, or kError (with a field-named message) for input that
// can never become a valid frame. Connection state machines loop it
// over their input buffers; tests and the fuzz target drive it
// directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "pscd/util/types.h"

namespace pscd::net {

inline constexpr std::uint32_t kWireMagic = 0x31435350u;  // "PSC1" (LE)
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 16;

/// Bodies are small fixed-size records; anything claiming more is
/// malformed, not merely large (mirrors serialize.cpp's kMaxVecBytes).
inline constexpr std::uint32_t kMaxBodyBytes = 4096;

enum class FrameType : std::uint8_t {
  kSubscribe = 1,
  kUnsubscribe = 2,
  kPublish = 3,
  kRequest = 4,
  kResponse = 5,
};

/// Human-readable frame-type name ("SUBSCRIBE", ...); "?" when invalid.
std::string_view frameTypeName(FrameType type);

/// Registers `count` aggregated subscriptions for `page` at `proxy`.
struct SubscribeBody {
  ProxyId proxy = 0;
  PageId page = kInvalidPage;
  std::uint32_t count = 1;

  friend bool operator==(const SubscribeBody&, const SubscribeBody&) = default;
};

/// Drops `count` aggregated subscriptions for `page` at `proxy`.
struct UnsubscribeBody {
  ProxyId proxy = 0;
  PageId page = kInvalidPage;
  std::uint32_t count = 1;

  friend bool operator==(const UnsubscribeBody&,
                         const UnsubscribeBody&) = default;
};

/// Publishes a new version of a page (match + push fan-out at the
/// daemon).
struct PublishBody {
  PageId page = kInvalidPage;
  Version version = 0;
  Bytes size = 0;

  friend bool operator==(const PublishBody&, const PublishBody&) = default;
};

/// A user attached to `proxy` requests `page`.
struct RequestBody {
  ProxyId proxy = 0;
  PageId page = kInvalidPage;

  friend bool operator==(const RequestBody&, const RequestBody&) = default;
};

enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  kError = 1,
  /// The daemon is shedding load: the REQUEST was *not* executed and
  /// may be retried after a backoff (see DaemonConfig::shedThreshold).
  kOverloaded = 2,
};

/// Outcome of any operation, correlated by header seq. For PUBLISH,
/// pages/bytes carry the push fan-out (pages and bytes transferred to
/// notified proxies); for REQUEST, hit/stale/bytes/responseTimeMs carry
/// the served result. On kError / kOverloaded every payload field is
/// zero.
struct ResponseBody {
  std::uint8_t status = 0;  // ResponseStatus
  std::uint8_t op = 0;      // FrameType of the operation answered
  std::uint8_t hit = 0;     // 0/1 (REQUEST only)
  std::uint8_t stale = 0;   // 0/1 (REQUEST only)
  std::uint64_t pages = 0;
  Bytes bytes = 0;
  double responseTimeMs = 0.0;

  bool ok() const { return status == 0; }
  bool overloaded() const {
    return status == static_cast<std::uint8_t>(ResponseStatus::kOverloaded);
  }

  friend bool operator==(const ResponseBody&, const ResponseBody&) = default;
};

struct WireFrame {
  std::uint32_t seq = 0;
  std::variant<SubscribeBody, UnsubscribeBody, PublishBody, RequestBody,
               ResponseBody>
      body;

  FrameType type() const {
    return static_cast<FrameType>(body.index() + 1);
  }

  friend bool operator==(const WireFrame&, const WireFrame&) = default;
};

/// Appends the encoded frame to `out`. Throws std::invalid_argument for
/// a RESPONSE with a non-finite responseTimeMs (the decoder would
/// reject it, so refusing at the source keeps the wire clean).
void encodeFrame(const WireFrame& frame, std::string* out);

/// Convenience: the encoded frame as a fresh string.
std::string encodeFrame(const WireFrame& frame);

enum class DecodeStatus : std::uint8_t { kOk, kNeedMore, kError };

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  /// Bytes consumed from the front of the buffer; nonzero only on kOk.
  std::size_t consumed = 0;
  /// The decoded frame; meaningful only on kOk.
  WireFrame frame;
  /// Field-named diagnostic; non-empty exactly on kError.
  std::string error;
};

/// Decodes one frame from the front of [data, data+size). Never reads
/// past `size`; kNeedMore means the prefix is valid so far but
/// incomplete (a stream should read more bytes), kError means no amount
/// of further input can make the prefix a valid frame.
DecodeResult decodeFrame(const std::uint8_t* data, std::size_t size);

/// String-view convenience wrapper for tests and buffer-based callers.
DecodeResult decodeFrame(std::string_view bytes);

/// One-shot decode of a complete, closed buffer (a file or a test
/// vector): throws std::runtime_error with the decoder's field-named
/// message on kError, and a "truncated input" error on kNeedMore
/// (mirroring loadWorkload's truncation semantics) or trailing bytes.
WireFrame decodeClosedFrame(std::string_view bytes);

}  // namespace pscd::net
