// The narrow seam between decision logic (core) and whatever drives it:
// a Clock the service reads instead of event timestamps, and an
// EventSink it reports deliveries to instead of a metrics object. The
// discrete-event simulator implements both (sim/simulator.cpp advances
// a virtual clock and folds deliveries into SimMetrics); a wire daemon
// would implement them with the wall clock and a stats exporter. This
// is the layering manifest's load-bearing edge: core never includes
// sim, so the same DistributionService can sit behind either driver
// (enforced transitively by `pscd_lint --forbid-reach core:sim`).
#pragma once

#include <cstdint>

#include "pscd/util/types.h"

namespace pscd {

/// One publish event's deliveries, publisher -> all notified proxies.
/// Lost pages/bytes are always 0 when the failure layer is off.
struct PushDelivery {
  SimTime time = 0.0;
  std::uint64_t pages = 0;
  Bytes bytes = 0;
  std::uint64_t pagesLost = 0;
  Bytes bytesLost = 0;
};

/// One request's outcome as seen by the user attached to `proxy`.
/// The failure-layer fields (retries/servedStale/failover/unavailable)
/// are all zero/false when the failure layer is off; an unavailable
/// request has no response and responseTimeMs is 0.
struct RequestDelivery {
  ProxyId proxy = 0;
  SimTime time = 0.0;
  bool hit = false;
  bool stale = false;
  Bytes bytesTransferred = 0;
  double responseTimeMs = 0.0;
  std::uint32_t retries = 0;
  bool servedStale = false;
  bool failover = false;
  bool unavailable = false;
};

/// Source of "now" for decision logic. The driver owns time: the
/// simulator sets it from the merged event streams, a daemon would
/// read the wall clock. Core code must never learn time any other way.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime now() const = 0;
};

/// Receiver of delivery records. Core pushes facts out through this
/// interface and never sees what the driver does with them (metrics
/// aggregation, logging, a live dashboard).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void onPush(const PushDelivery& delivery) = 0;
  virtual void onRequest(const RequestDelivery& delivery) = 0;
};

}  // namespace pscd
