// DistributionService: the complete decision side of a content
// distribution deployment — engine (matching, push-time placement,
// access-time caching), failure/recovery policy, and latency model —
// behind the narrow Clock/EventSink seam of core/runtime.h. The
// service never sees an event queue: a driver (the discrete-event
// simulator, or a wire daemon) advances the Clock, feeds it
// publish/request/churn/fault occurrences, and receives delivery
// records through the EventSink.
//
// The contract that keeps results reproducible: with the failure layer
// off the service takes the exact pre-failure-layer code path, and all
// randomness (fault schedules, loss draws) derives from config seeds
// alone, never from driver scheduling.
#pragma once

#include <optional>

#include "pscd/core/engine.h"
#include "pscd/core/fault_plan.h"
#include "pscd/core/fault_policy.h"
#include "pscd/core/latency.h"
#include "pscd/core/runtime.h"
#include "pscd/topology/network.h"

namespace pscd {

struct ServiceConfig {
  EngineConfig engine;
  LatencyModel latency;
  /// Failure model; the default disables every failure process and the
  /// service then never constructs a fault plan, link state or RNG.
  FaultConfig faults{};
  /// Horizon the stochastic fault schedule is sampled over; ignored
  /// when the failure layer is off.
  SimTime faultHorizon = 0.0;
  /// Validate the sampled fault plan against the network up front.
  bool validateFaultPlan = false;
};

class DistributionService {
 public:
  /// Validates the latency and fault configs (CheckFailure on bad
  /// parameters), builds the engine, and — when any failure process is
  /// enabled — samples the fault plan over [0, faultHorizon).
  DistributionService(const Network& network, const Clock& clock,
                      EventSink& sink, ServiceConfig config);

  Broker& broker() { return engine_.broker(); }
  ContentDistributionEngine& engine() { return engine_; }
  const ContentDistributionEngine& engine() const { return engine_; }

  bool faultsEnabled() const { return policy_.has_value(); }

  /// The sampled crash/restart and link schedule (empty when the
  /// failure layer is off). The driver merges these events into its
  /// timeline and hands each one back through handleFault().
  const FaultPlan& faultPlan() const { return plan_; }

  /// Applies one scheduled fault event to the connectivity state and,
  /// on a proxy restart, to the engine.
  void handleFault(const FaultEvent& event);

  /// Moves one aggregated subscription between pages.
  void handleChurn(ProxyId proxy, PageId fromPage, PageId toPage);

  /// Publishes a page version at the current Clock time and reports the
  /// resulting push deliveries (and losses) to the EventSink.
  void handlePublish(const PublishEvent& event);

  /// Serves one user request at the current Clock time, prices its
  /// response under the latency model (plus retry backoff and residual
  /// fetch paths under failures), and reports it to the EventSink.
  void handleRequest(ProxyId proxy, PageId page);

  /// Deep validation of the engine and the connectivity overlay.
  void checkInvariants() const;

 private:
  const Network& network_;
  const Clock& clock_;
  EventSink& sink_;
  LatencyModel latency_;
  FaultConfig faults_;
  ContentDistributionEngine engine_;
  FaultPlan plan_;
  std::optional<FaultPolicy> policy_;
};

}  // namespace pscd
