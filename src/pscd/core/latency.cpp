#include "pscd/core/latency.h"

#include <cmath>

#include "pscd/util/check.h"

namespace pscd {

void LatencyModel::validate() const {
  PSCD_CHECK(std::isfinite(localLatencyMs) && localLatencyMs >= 0.0)
      << "LatencyModel: localLatencyMs must be finite and >= 0, got "
      << localLatencyMs;
  PSCD_CHECK(std::isfinite(remoteLatencyMsPerUnit) &&
             remoteLatencyMsPerUnit >= 0.0)
      << "LatencyModel: remoteLatencyMsPerUnit must be finite and >= 0, got "
      << remoteLatencyMsPerUnit;
}

}  // namespace pscd
