#include "pscd/core/engine.h"

#include <algorithm>
#include <stdexcept>

#include "pscd/util/check.h"

namespace pscd {

ContentDistributionEngine::ContentDistributionEngine(const Network& network,
                                                     EngineConfig config)
    : config_(std::move(config)), broker_(network.numProxies()) {
  if (config_.proxyCapacities.size() != network.numProxies()) {
    throw std::invalid_argument(
        "ContentDistributionEngine: one capacity per proxy required");
  }
  proxies_.reserve(network.numProxies());
  for (ProxyId p = 0; p < network.numProxies(); ++p) {
    StrategyParams sp;
    sp.capacity = config_.proxyCapacities[p];
    sp.fetchCost = network.fetchCost(p);
    sp.beta = config_.beta;
    sp.dcInitialPcFraction = config_.dcInitialPcFraction;
    sp.dcMinPcFraction = config_.dcMinPcFraction;
    sp.dcMaxPcFraction = config_.dcMaxPcFraction;
    proxies_.push_back(makeStrategy(config_.strategy, sp));
  }
}

const ContentDistributionEngine::PageState&
ContentDistributionEngine::pageState(PageId page) const {
  const auto it = pages_.find(page);
  if (it == pages_.end()) {
    throw std::out_of_range("ContentDistributionEngine: unknown page");
  }
  return it->second;
}

std::uint32_t ContentDistributionEngine::matchCount(const PageState& state,
                                                    ProxyId proxy) const {
  const auto it = std::lower_bound(
      state.matches.begin(), state.matches.end(), proxy,
      [](const Notification& n, ProxyId p) { return n.proxy < p; });
  return (it != state.matches.end() && it->proxy == proxy) ? it->matchCount
                                                           : 0;
}

PublishSummary ContentDistributionEngine::publish(
    const PublishEvent& event, const ContentAttributes& attrs) {
  if (event.size == 0) {
    throw std::invalid_argument("publish: page size must be > 0");
  }
  PageState& state = pages_[event.page];
  state.version = event.version;
  state.size = event.size;
  state.matches = broker_.publish(attrs);

  PublishSummary summary;
  summary.proxiesNotified = static_cast<std::uint32_t>(state.matches.size());
  for (const Notification& n : state.matches) {
    DistributionStrategy& strat = *proxies_[n.proxy];
    if (!strat.pushCapable()) continue;
    PushContext ctx;
    ctx.page = event.page;
    ctx.version = event.version;
    ctx.size = event.size;
    ctx.subCount = n.matchCount;
    ctx.now = event.time;
    const PushOutcome out = strat.onPush(ctx);
    if (out.stored) ++summary.proxiesStored;
    // Always-Pushing transfers the page to every notified proxy;
    // Pushing-When-Necessary transfers only when the proxy stores it.
    const bool transferred =
        config_.pushScheme == PushScheme::kAlwaysPushing || out.stored;
    if (transferred) {
      ++summary.pagesTransferred;
      summary.bytesTransferred += event.size;
    }
  }
  return summary;
}

PublishSummary ContentDistributionEngine::publish(const PublishEvent& event) {
  ContentAttributes attrs;
  attrs.page = event.page;
  return publish(event, attrs);
}

RequestSummary ContentDistributionEngine::request(ProxyId proxy, PageId page,
                                                  SimTime now) {
  if (proxy >= proxies_.size()) {
    throw std::out_of_range("ContentDistributionEngine: proxy out of range");
  }
  const PageState& state = pageState(page);

  RequestContext ctx;
  ctx.page = page;
  ctx.latestVersion = state.version;
  ctx.size = state.size;
  ctx.subCount = matchCount(state, proxy);
  ctx.now = now;
  const RequestOutcome out = proxies_[proxy]->onRequest(ctx);

  RequestSummary summary;
  summary.hit = out.hit;
  summary.stale = out.stale;
  summary.bytesTransferred = out.hit ? 0 : state.size;
  return summary;
}

Version ContentDistributionEngine::latestVersion(PageId page) const {
  return pageState(page).version;
}

Bytes ContentDistributionEngine::pageSize(PageId page) const {
  return pageState(page).size;
}

const DistributionStrategy& ContentDistributionEngine::strategy(
    ProxyId proxy) const {
  return *proxies_.at(proxy);
}

DistributionStrategy& ContentDistributionEngine::strategy(ProxyId proxy) {
  return *proxies_.at(proxy);
}

void ContentDistributionEngine::checkInvariants() const {
  broker_.checkInvariants();
  for (std::size_t p = 0; p < proxies_.size(); ++p) {
    proxies_[p]->checkInvariants();
    PSCD_CHECK_LE(proxies_[p]->usedBytes(), proxies_[p]->capacityBytes())
        << "engine: proxy " << p << " strategy over its capacity";
    PSCD_CHECK_EQ(proxies_[p]->capacityBytes(), config_.proxyCapacities[p])
        << "engine: proxy " << p << " capacity drifted from the config";
  }
  for (const auto& [page, state] : pages_) {
    PSCD_CHECK_GT(state.size, 0u)
        << "engine: published page " << page << " with zero size";
    for (std::size_t i = 0; i < state.matches.size(); ++i) {
      PSCD_CHECK_LT(state.matches[i].proxy, proxies_.size())
          << "engine: notification for page " << page << " off the overlay";
      PSCD_CHECK(i == 0 ||
                 state.matches[i - 1].proxy < state.matches[i].proxy)
          << "engine: notification list for page " << page << " unsorted";
    }
  }
}

}  // namespace pscd
