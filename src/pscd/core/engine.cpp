#include "pscd/core/engine.h"

#include <algorithm>
#include <stdexcept>

#include "pscd/util/check.h"
#include "pscd/util/hot.h"

namespace pscd {

ContentDistributionEngine::ContentDistributionEngine(const Network& network,
                                                     EngineConfig config)
    : config_(std::move(config)), broker_(network.numProxies()) {
  if (config_.proxyCapacities.size() != network.numProxies()) {
    throw std::invalid_argument(
        "ContentDistributionEngine: one capacity per proxy required");
  }
  strategyParams_.reserve(network.numProxies());
  proxies_.reserve(network.numProxies());
  for (ProxyId p = 0; p < network.numProxies(); ++p) {
    StrategyParams sp;
    sp.capacity = config_.proxyCapacities[p];
    sp.fetchCost = network.fetchCost(p);
    sp.beta = config_.beta;
    sp.dcInitialPcFraction = config_.dcInitialPcFraction;
    sp.dcMinPcFraction = config_.dcMinPcFraction;
    sp.dcMaxPcFraction = config_.dcMaxPcFraction;
    strategyParams_.push_back(sp);
    proxies_.push_back(makeStrategy(config_.strategy, sp));
  }
}

void ContentDistributionEngine::restartProxy(ProxyId proxy, bool warm) {
  if (proxy >= proxies_.size()) {
    throw std::out_of_range("restartProxy: proxy out of range");
  }
  if (warm) return;  // the cache (and all bookkeeping) survives
  proxies_[proxy] = makeStrategy(config_.strategy, strategyParams_[proxy]);
}

const ContentDistributionEngine::PageState&
ContentDistributionEngine::pageState(PageId page) const {
  const auto it = pages_.find(page);
  if (it == pages_.end()) {
    throw std::out_of_range("ContentDistributionEngine: unknown page");
  }
  return it->second;
}

PSCD_HOT std::uint32_t ContentDistributionEngine::matchCount(
    const PageState& state, ProxyId proxy) const {
  const auto it = std::lower_bound(
      state.matches.begin(), state.matches.end(), proxy,
      [](const Notification& n, ProxyId p) { return n.proxy < p; });
  return (it != state.matches.end() && it->proxy == proxy) ? it->matchCount
                                                           : 0;
}

PSCD_HOT PublishSummary ContentDistributionEngine::publish(
    const PublishEvent& event, const ContentAttributes& attrs,
    const PushFaults* faults) {
  if (event.size == 0) {
    throw std::invalid_argument("publish: page size must be > 0");
  }
  PageState& state = pages_[event.page];
  state.version = event.version;
  state.size = event.size;
  state.matches = broker_.publish(attrs);

  PublishSummary summary;
  summary.proxiesNotified = static_cast<std::uint32_t>(state.matches.size());
  for (const Notification& n : state.matches) {
    DistributionStrategy& strat = *proxies_[n.proxy];
    if (!strat.pushCapable()) continue;
    if (faults != nullptr && faults->lost && faults->lost(n.proxy)) {
      // The push never reaches the proxy. Under Always-Pushing the
      // publisher sent the bytes anyway (wasted transfer, accounted as
      // lost); under Pushing-When-Necessary the meta-exchange already
      // failed, so nothing was sent.
      if (config_.pushScheme == PushScheme::kAlwaysPushing) {
        ++summary.pagesLost;
        summary.bytesLost += event.size;
      }
      continue;
    }
    PushContext ctx;
    ctx.page = event.page;
    ctx.version = event.version;
    ctx.size = event.size;
    ctx.subCount = n.matchCount;
    ctx.now = event.time;
    const PushOutcome out = strat.onPush(ctx);
    if (out.stored) ++summary.proxiesStored;
    // Always-Pushing transfers the page to every notified proxy;
    // Pushing-When-Necessary transfers only when the proxy stores it.
    const bool transferred =
        config_.pushScheme == PushScheme::kAlwaysPushing || out.stored;
    if (transferred) {
      ++summary.pagesTransferred;
      summary.bytesTransferred += event.size;
    }
  }
  return summary;
}

PublishSummary ContentDistributionEngine::publish(const PublishEvent& event,
                                                  const PushFaults* faults) {
  ContentAttributes attrs;
  attrs.page = event.page;
  return publish(event, attrs, faults);
}

namespace {

/// Runs the bounded-retry fetch loop: attempts 1 + maxRetries fetches,
/// charging one retry per failed attempt. Returns true when some
/// attempt succeeded; `retries` receives the number of failed attempts
/// that preceded the outcome.
bool attemptFetch(const RequestFaults& faults, std::uint32_t& retries) {
  retries = 0;
  if (!faults.pathToPublisher) {
    // Partitioned: every attempt times out; nothing random to draw.
    retries = faults.maxRetries;
    return false;
  }
  for (std::uint32_t attempt = 0; attempt <= faults.maxRetries; ++attempt) {
    const bool failed =
        faults.fetchAttemptFails && faults.fetchAttemptFails();
    if (!failed) return true;
    if (attempt < faults.maxRetries) ++retries;
  }
  retries = faults.maxRetries;
  return false;
}

}  // namespace

PSCD_HOT RequestSummary ContentDistributionEngine::request(
    ProxyId proxy, PageId page, SimTime now, const RequestFaults* faults) {
  if (proxy >= proxies_.size()) {
    throw std::out_of_range("ContentDistributionEngine: proxy out of range");
  }
  const PageState& state = pageState(page);
  RequestSummary summary;

  if (faults != nullptr && faults->proxyDown) {
    // The local proxy is crashed: its cache is unusable. Fail over to a
    // direct publisher fetch when allowed, otherwise the request fails.
    if (faults->publisherFailover && attemptFetch(*faults, summary.retries)) {
      summary.failover = true;
      summary.bytesTransferred = state.size;
    } else {
      if (!faults->publisherFailover) summary.retries = 0;
      summary.unavailable = true;
    }
    return summary;
  }

  if (faults != nullptr) {
    // Probe the cache non-mutatingly: a fresh copy is served locally and
    // no fault can affect it; anything else needs a publisher fetch
    // that may fail.
    const std::optional<Version> cached =
        proxies_[proxy]->cachedVersion(page);
    const bool freshHit = cached.has_value() && *cached == state.version;
    if (!freshHit && !attemptFetch(*faults, summary.retries)) {
      if (cached.has_value()) {
        // Degraded serving: hand out the stale copy rather than fail.
        // The strategy is not consulted — no bookkeeping moves, exactly
        // as if the proxy pinned the bytes it already had.
        summary.servedStale = true;
        summary.stale = true;
      } else {
        summary.unavailable = true;
      }
      return summary;
    }
  }

  RequestContext ctx;
  ctx.page = page;
  ctx.latestVersion = state.version;
  ctx.size = state.size;
  ctx.subCount = matchCount(state, proxy);
  ctx.now = now;
  const RequestOutcome out = proxies_[proxy]->onRequest(ctx);

  summary.hit = out.hit;
  summary.stale = out.stale;
  summary.bytesTransferred = out.hit ? 0 : state.size;
  return summary;
}

Version ContentDistributionEngine::latestVersion(PageId page) const {
  return pageState(page).version;
}

Bytes ContentDistributionEngine::pageSize(PageId page) const {
  return pageState(page).size;
}

const DistributionStrategy& ContentDistributionEngine::strategy(
    ProxyId proxy) const {
  return *proxies_.at(proxy);
}

DistributionStrategy& ContentDistributionEngine::strategy(ProxyId proxy) {
  return *proxies_.at(proxy);
}

void ContentDistributionEngine::checkInvariants() const {
  broker_.checkInvariants();
  for (std::size_t p = 0; p < proxies_.size(); ++p) {
    proxies_[p]->checkInvariants();
    PSCD_CHECK_LE(proxies_[p]->usedBytes(), proxies_[p]->capacityBytes())
        << "engine: proxy " << p << " strategy over its capacity";
    PSCD_CHECK_EQ(proxies_[p]->capacityBytes(), config_.proxyCapacities[p])
        << "engine: proxy " << p << " capacity drifted from the config";
  }
  // pscd-lint: allow(unordered-iter) per-page assertions, no output fold
  for (const auto& [page, state] : pages_) {
    PSCD_CHECK_GT(state.size, 0u)
        << "engine: published page " << page << " with zero size";
    for (std::size_t i = 0; i < state.matches.size(); ++i) {
      PSCD_CHECK_LT(state.matches[i].proxy, proxies_.size())
          << "engine: notification for page " << page << " off the overlay";
      PSCD_CHECK(i == 0 ||
                 state.matches[i - 1].proxy < state.matches[i].proxy)
          << "engine: notification list for page " << page << " unsorted";
    }
  }
}

}  // namespace pscd
