// Failure/recovery decision logic, factored out of the event loop: owns
// the residual-connectivity overlay (LinkState) and the per-operation
// loss RNG, applies scheduled fault events to them, and answers the
// engine's per-publish/per-request fault questions (PushFaults /
// RequestFaults). Pure decision code — it never sees the event queue or
// the simulator clock, so the same policy object can back a live
// deployment's failure detector.
//
// Determinism contract (DESIGN.md section 9): the loss RNG is stream 2
// of the fault seed (streams 0/1 feed the proxy/link schedules inside
// buildFaultPlan), and the engine consumes push-loss draws once per
// notified push-capable proxy in ascending proxy order.
#pragma once

#include "pscd/core/engine.h"
#include "pscd/core/fault_plan.h"
#include "pscd/topology/link_state.h"
#include "pscd/util/rng.h"

namespace pscd {

class FaultPolicy {
 public:
  /// `config` must satisfy config.enabled(); the policy starts with
  /// every proxy and link up.
  FaultPolicy(const FaultConfig& config, const Network& network);

  /// Applies one scheduled fault event: crashes/restores connectivity
  /// state, and on kProxyUp restarts the proxy's strategy (cold or warm
  /// per the config).
  void apply(const FaultEvent& event, ContentDistributionEngine& engine);

  /// Per-publish fault decisions. Pushes to a crashed or partitioned
  /// proxy are always lost; a reachable proxy additionally loses pushes
  /// with the configured in-flight probability. The returned struct
  /// borrows this policy — it must not outlive it.
  PushFaults pushFaults();

  /// Per-request fault decisions for a user attached to `proxy`. The
  /// returned struct borrows this policy — it must not outlive it.
  RequestFaults requestFaults(ProxyId proxy);

  /// Normalized cost of the cheapest *residual* publisher path (down
  /// links removed); used to price a fetch under failures.
  double fetchCost(ProxyId proxy) const { return linkState_.fetchCost(proxy); }

  const LinkState& linkState() const { return linkState_; }

  void checkInvariants() const { linkState_.checkInvariants(); }

 private:
  FaultConfig config_;
  LinkState linkState_;
  Rng rng_;
};

}  // namespace pscd
