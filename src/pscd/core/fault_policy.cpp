#include "pscd/core/fault_policy.h"

namespace pscd {

namespace {

// Stream 2 of the fault seed; streams 0/1 feed the proxy/link
// schedules in buildFaultPlan. Must match the historical simulator
// derivation bit for bit.
std::uint64_t lossStreamSeed(std::uint64_t seed) {
  std::uint64_t s = seed + 3 * 0x9e3779b97f4a7c15ull;
  splitmix64(s);
  return splitmix64(s);
}

}  // namespace

FaultPolicy::FaultPolicy(const FaultConfig& config, const Network& network)
    : config_(config),
      linkState_(network),
      rng_(lossStreamSeed(config.seed)) {}

void FaultPolicy::apply(const FaultEvent& event,
                        ContentDistributionEngine& engine) {
  switch (event.kind) {
    case FaultEventKind::kProxyDown:
      linkState_.setProxyDown(event.proxy);
      break;
    case FaultEventKind::kProxyUp:
      linkState_.setProxyUp(event.proxy);
      engine.restartProxy(event.proxy, config_.warmRestart);
      break;
    case FaultEventKind::kLinkDown:
      linkState_.setLinkDown(event.linkA, event.linkB);
      break;
    case FaultEventKind::kLinkUp:
      linkState_.setLinkUp(event.linkA, event.linkB);
      break;
  }
}

PushFaults FaultPolicy::pushFaults() {
  const double lossP = config_.pushLossProbability;
  PushFaults pf;
  pf.lost = [this, lossP](ProxyId p) {
    if (linkState_.proxyDown(p) || !linkState_.pathToPublisher(p)) {
      return true;
    }
    return lossP > 0.0 && rng_.bernoulli(lossP);
  };
  return pf;
}

RequestFaults FaultPolicy::requestFaults(ProxyId proxy) {
  RequestFaults rf;
  rf.proxyDown = linkState_.proxyDown(proxy);
  rf.pathToPublisher = linkState_.pathToPublisher(proxy);
  rf.publisherFailover = config_.publisherFailover;
  rf.maxRetries = config_.retry.maxRetries;
  const double failP = config_.fetchFailureProbability;
  if (failP > 0.0) {
    rf.fetchAttemptFails = [this, failP]() { return rng_.bernoulli(failP); };
  }
  return rf;
}

}  // namespace pscd
