// Deterministic fault injection for the simulator (DESIGN.md section 9):
// a FaultConfig describes failure processes (proxy crash/restart, link
// down/up, per-operation push loss and fetch failure) plus the recovery
// policy (bounded retries with exponential backoff, degraded stale
// serving, publisher failover, cold vs. warm restart), and
// buildFaultPlan() expands the stochastic part into a FaultPlan — a
// time-sorted schedule of crash/restart and link events derived from
// the config seed alone, so identical seeds reproduce identical
// failures regardless of scheduling (the --jobs determinism contract).
#pragma once

#include <cstdint>
#include <vector>

#include "pscd/topology/graph.h"
#include "pscd/util/types.h"

namespace pscd {

class Network;

/// Bounded-retry policy for failed publisher fetches. Attempt k
/// (0-based) that fails is followed by a backoff of
/// backoffBaseMs * backoffFactor^k charged to the request's latency;
/// after maxRetries retries the fetch is abandoned and the request is
/// served stale from the cache (if a copy exists) or fails.
struct RetryPolicy {
  std::uint32_t maxRetries = 3;
  double backoffBaseMs = 50.0;
  double backoffFactor = 2.0;

  /// Backoff after failed attempt `attempt` (0-based), in ms.
  double backoffMs(std::uint32_t attempt) const;
  /// Sum of the backoffs of `attempts` consecutive failed attempts.
  double totalBackoffMs(std::uint32_t attempts) const;

  /// Throws CheckFailure unless maxRetries <= 64, backoffBaseMs is
  /// finite and >= 0, and backoffFactor is finite and >= 1.
  void validate() const;
};

/// Complete failure model of one simulation run. All rates are mean
/// event counts per simulated day; downtimes are exponential with the
/// given means. The default-constructed config is the ideal overlay
/// (enabled() == false) and makes the failure layer a strict no-op.
struct FaultConfig {
  /// Seed of the fault schedule and the per-operation loss draws;
  /// independent of the workload/topology seeds.
  std::uint64_t seed = 0;

  /// Proxy crash process: each proxy crashes proxyFailuresPerDay times
  /// per day on average and stays down for an exponential downtime with
  /// mean proxyMeanDowntimeHours.
  double proxyFailuresPerDay = 0.0;
  double proxyMeanDowntimeHours = 1.0;
  /// Warm restart keeps the proxy's cache across the crash; cold
  /// restart (the default) wipes it — the ablation the paper never ran.
  bool warmRestart = false;

  /// Link failure process, applied independently to every overlay edge.
  double linkFailuresPerDay = 0.0;
  double linkMeanDowntimeHours = 0.5;

  /// Probability that one push transfer to one proxy is lost in flight.
  double pushLossProbability = 0.0;
  /// Probability that one publisher fetch attempt fails (before
  /// retries; retries re-draw independently).
  double fetchFailureProbability = 0.0;

  /// When the local proxy is down, let the user fetch straight from the
  /// publisher (slow but available) instead of failing outright.
  bool publisherFailover = true;

  RetryPolicy retry{};

  /// True when any failure process is active; false means the simulator
  /// takes the exact pre-failure-layer code path.
  bool enabled() const;

  /// Throws CheckFailure on non-finite or out-of-range parameters
  /// (negative rates/downtimes, probabilities outside [0, 1], bad retry
  /// policy).
  void validate() const;
};

enum class FaultEventKind : std::uint8_t {
  kProxyDown,
  kProxyUp,
  kLinkDown,
  kLinkUp,
};

struct FaultEvent {
  SimTime time = 0.0;
  FaultEventKind kind = FaultEventKind::kProxyDown;
  /// Entity: proxy id for kProxy*, edge endpoints for kLink*.
  ProxyId proxy = 0;
  NodeId linkA = 0;
  NodeId linkB = 0;
};

/// Expanded, time-sorted fault schedule. Every entity's events
/// alternate down -> up starting from the up state; a trailing down
/// with no matching up means the entity stays failed to the end of the
/// run.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Throws CheckFailure unless events are time-sorted with finite
  /// non-negative times, reference entities that exist in `network`
  /// (proxies in range, links present in the seed graph), and alternate
  /// down/up per entity.
  void checkInvariants(const Network& network) const;
};

/// Samples the crash/restart and link schedules of `config` over
/// [0, horizon). Deterministic in (config, network topology) alone:
/// every entity draws from a private SplitMix64-derived stream, so the
/// plan is independent of evaluation order and stable across runs.
FaultPlan buildFaultPlan(const FaultConfig& config, const Network& network,
                         SimTime horizon);

}  // namespace pscd
