#include "pscd/core/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "pscd/topology/network.h"
#include "pscd/util/check.h"
#include "pscd/util/rng.h"

namespace pscd {

double RetryPolicy::backoffMs(std::uint32_t attempt) const {
  return backoffBaseMs * std::pow(backoffFactor, attempt);
}

double RetryPolicy::totalBackoffMs(std::uint32_t attempts) const {
  double total = 0.0;
  for (std::uint32_t k = 0; k < attempts; ++k) total += backoffMs(k);
  return total;
}

void RetryPolicy::validate() const {
  PSCD_CHECK_LE(maxRetries, 64u)
      << "RetryPolicy: maxRetries beyond any sane bound";
  PSCD_CHECK(std::isfinite(backoffBaseMs) && backoffBaseMs >= 0.0)
      << "RetryPolicy: backoffBaseMs must be finite and >= 0, got "
      << backoffBaseMs;
  PSCD_CHECK(std::isfinite(backoffFactor) && backoffFactor >= 1.0)
      << "RetryPolicy: backoffFactor must be finite and >= 1, got "
      << backoffFactor;
}

bool FaultConfig::enabled() const {
  return proxyFailuresPerDay > 0.0 || linkFailuresPerDay > 0.0 ||
         pushLossProbability > 0.0 || fetchFailureProbability > 0.0;
}

void FaultConfig::validate() const {
  const auto checkRate = [](double value, const char* name) {
    PSCD_CHECK(std::isfinite(value) && value >= 0.0)
        << "FaultConfig: " << name << " must be finite and >= 0, got "
        << value;
  };
  const auto checkProb = [](double value, const char* name) {
    PSCD_CHECK(std::isfinite(value) && value >= 0.0 && value <= 1.0)
        << "FaultConfig: " << name << " must be in [0, 1], got " << value;
  };
  checkRate(proxyFailuresPerDay, "proxyFailuresPerDay");
  checkRate(linkFailuresPerDay, "linkFailuresPerDay");
  PSCD_CHECK(std::isfinite(proxyMeanDowntimeHours) &&
             proxyMeanDowntimeHours > 0.0)
      << "FaultConfig: proxyMeanDowntimeHours must be finite and > 0, got "
      << proxyMeanDowntimeHours;
  PSCD_CHECK(std::isfinite(linkMeanDowntimeHours) &&
             linkMeanDowntimeHours > 0.0)
      << "FaultConfig: linkMeanDowntimeHours must be finite and > 0, got "
      << linkMeanDowntimeHours;
  checkProb(pushLossProbability, "pushLossProbability");
  checkProb(fetchFailureProbability, "fetchFailureProbability");
  retry.validate();
}

namespace {

/// Private seed of one failure entity: decorrelated in (stream, index)
/// the same way cellSeed() decorrelates parallel-runner cells, so the
/// plan never depends on the order entities are expanded in.
std::uint64_t entitySeed(std::uint64_t seed, std::uint64_t stream,
                         std::uint64_t index) {
  std::uint64_t state = seed + (stream + 1) * 0x9e3779b97f4a7c15ull;
  splitmix64(state);
  state += (index + 1) * 0xbf58476d1ce4e5b9ull;
  splitmix64(state);
  return splitmix64(state);
}

/// Samples one entity's alternating down/up schedule over [0, horizon)
/// and appends it to `events`. An up event past the horizon is dropped:
/// the entity simply stays failed to the end of the run.
template <typename MakeEvent>
void sampleSchedule(Rng& rng, double failuresPerDay, double meanDowntimeHours,
                    SimTime horizon, std::vector<FaultEvent>& events,
                    MakeEvent&& makeEvent) {
  const double failureRate = failuresPerDay / kDay;        // per second
  const double repairRate = 1.0 / (meanDowntimeHours * kHour);
  SimTime t = 0.0;
  while (true) {
    t += rng.exponential(failureRate);
    if (!(t < horizon)) break;
    events.push_back(makeEvent(t, /*down=*/true));
    const SimTime upAt = t + rng.exponential(repairRate);
    if (upAt < horizon) events.push_back(makeEvent(upAt, /*down=*/false));
    t = upAt;
  }
}

}  // namespace

FaultPlan buildFaultPlan(const FaultConfig& config, const Network& network,
                         SimTime horizon) {
  config.validate();
  PSCD_CHECK(std::isfinite(horizon) && horizon >= 0.0)
      << "buildFaultPlan: horizon must be finite and >= 0, got " << horizon;
  FaultPlan plan;
  if (config.proxyFailuresPerDay > 0.0) {
    for (ProxyId p = 0; p < network.numProxies(); ++p) {
      Rng rng(entitySeed(config.seed, 0, p));
      sampleSchedule(rng, config.proxyFailuresPerDay,
                     config.proxyMeanDowntimeHours, horizon, plan.events,
                     [p](SimTime t, bool down) {
                       FaultEvent ev;
                       ev.time = t;
                       ev.kind = down ? FaultEventKind::kProxyDown
                                      : FaultEventKind::kProxyUp;
                       ev.proxy = p;
                       return ev;
                     });
    }
  }
  if (config.linkFailuresPerDay > 0.0) {
    const Graph& g = network.graph();
    std::uint64_t linkIndex = 0;
    for (NodeId a = 0; a < g.numNodes(); ++a) {
      for (const Graph::Edge& e : g.neighbors(a)) {
        if (e.to <= a) continue;  // each undirected edge once, a < b
        Rng rng(entitySeed(config.seed, 1, linkIndex++));
        sampleSchedule(rng, config.linkFailuresPerDay,
                       config.linkMeanDowntimeHours, horizon, plan.events,
                       [a, b = e.to](SimTime t, bool down) {
                         FaultEvent ev;
                         ev.time = t;
                         ev.kind = down ? FaultEventKind::kLinkDown
                                        : FaultEventKind::kLinkUp;
                         ev.linkA = a;
                         ev.linkB = b;
                         return ev;
                       });
      }
    }
  }
  // Total order: time first, then a full entity tuple so equal-time
  // events still sort deterministically.
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return std::tie(x.time, x.kind, x.proxy, x.linkA, x.linkB) <
                     std::tie(y.time, y.kind, y.proxy, y.linkA, y.linkB);
            });
  return plan;
}

void FaultPlan::checkInvariants(const Network& network) const {
  SimTime last = 0.0;
  // Entity -> currently down? Keyed so proxies and links cannot collide.
  std::map<std::tuple<bool, NodeId, NodeId>, bool> down;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    PSCD_CHECK(std::isfinite(ev.time) && ev.time >= 0.0)
        << "FaultPlan: event " << i << " has bad time " << ev.time;
    PSCD_CHECK_GE(ev.time, last)
        << "FaultPlan: event " << i << " out of time order";
    last = ev.time;
    const bool isProxy = ev.kind == FaultEventKind::kProxyDown ||
                         ev.kind == FaultEventKind::kProxyUp;
    const bool isDown = ev.kind == FaultEventKind::kProxyDown ||
                        ev.kind == FaultEventKind::kLinkDown;
    std::tuple<bool, NodeId, NodeId> key;
    if (isProxy) {
      PSCD_CHECK_LT(ev.proxy, network.numProxies())
          << "FaultPlan: event " << i << " targets proxy " << ev.proxy
          << " off the overlay";
      key = {true, ev.proxy, 0};
    } else {
      PSCD_CHECK(network.graph().hasEdge(ev.linkA, ev.linkB))
          << "FaultPlan: event " << i << " targets missing link "
          << ev.linkA << " <-> " << ev.linkB;
      PSCD_CHECK_LT(ev.linkA, ev.linkB)
          << "FaultPlan: event " << i << " link endpoints unnormalized";
      key = {false, ev.linkA, ev.linkB};
    }
    bool& state = down[key];  // default: up
    PSCD_CHECK(state != isDown)
        << "FaultPlan: event " << i
        << (isDown ? " fails an already-failed entity"
                   : " restores an already-up entity");
    state = isDown;
  }
}

}  // namespace pscd
