#include "pscd/core/service.h"

#include <utility>

#include "pscd/util/check.h"

namespace pscd {

DistributionService::DistributionService(const Network& network,
                                         const Clock& clock, EventSink& sink,
                                         ServiceConfig config)
    : network_(network),
      clock_(clock),
      sink_(sink),
      latency_(config.latency),
      faults_(config.faults),
      engine_(network, std::move(config.engine)) {
  latency_.validate();
  faults_.validate();
  if (faults_.enabled()) {
    plan_ = buildFaultPlan(faults_, network, config.faultHorizon);
    if (config.validateFaultPlan) plan_.checkInvariants(network);
    policy_.emplace(faults_, network);
  }
}

void DistributionService::handleFault(const FaultEvent& event) {
  PSCD_CHECK(policy_.has_value())
      << "DistributionService: fault event with the failure layer off";
  policy_->apply(event, engine_);
}

void DistributionService::handleChurn(ProxyId proxy, PageId fromPage,
                                      PageId toPage) {
  engine_.broker().unsubscribeAggregated(proxy, fromPage, 1);
  engine_.broker().subscribeAggregated(proxy, toPage, 1);
}

void DistributionService::handlePublish(const PublishEvent& event) {
  PushDelivery d;
  d.time = clock_.now();
  if (!policy_) {
    const PublishSummary s = engine_.publish(event);
    d.pages = s.pagesTransferred;
    d.bytes = s.bytesTransferred;
  } else {
    PushFaults pf = policy_->pushFaults();
    const PublishSummary s = engine_.publish(event, &pf);
    d.pages = s.pagesTransferred;
    d.bytes = s.bytesTransferred;
    d.pagesLost = s.pagesLost;
    d.bytesLost = s.bytesLost;
  }
  sink_.onPush(d);
}

void DistributionService::handleRequest(ProxyId proxy, PageId page) {
  RequestDelivery d;
  d.proxy = proxy;
  d.time = clock_.now();
  if (!policy_) {
    const RequestSummary s = engine_.request(proxy, page, d.time);
    d.hit = s.hit;
    d.stale = s.stale;
    d.bytesTransferred = s.bytesTransferred;
    d.responseTimeMs = s.hit ? latency_.localMs()
                             : latency_.fetchMs(network_.fetchCost(proxy));
  } else {
    RequestFaults rf = policy_->requestFaults(proxy);
    const RequestSummary s = engine_.request(proxy, page, d.time, &rf);
    d.hit = s.hit;
    d.stale = s.stale;
    d.bytesTransferred = s.bytesTransferred;
    d.retries = s.retries;
    d.servedStale = s.servedStale;
    d.failover = s.failover;
    d.unavailable = s.unavailable;
    // Served requests pay the local hop, the residual-path publisher
    // round trip when fresh bytes were fetched (miss or failover), and
    // the backoff of every failed attempt. An unavailable request has
    // no response time.
    if (!s.unavailable) {
      d.responseTimeMs =
          latency_.localMs() + faults_.retry.totalBackoffMs(s.retries);
      if (!s.hit && !s.servedStale) {
        d.responseTimeMs += latency_.remoteLatencyMsPerUnit *
                            policy_->fetchCost(proxy);
      }
    }
  }
  sink_.onRequest(d);
}

void DistributionService::checkInvariants() const {
  engine_.checkInvariants();
  if (policy_) policy_->checkInvariants();
}

}  // namespace pscd
