// ContentDistributionEngine: the public API tying together the pub/sub
// broker (matching + notification), the overlay network, and one content
// distribution strategy instance per proxy. This is the "content
// delivery engine" the paper adds to the classic publish/subscribe
// architecture (figure 1, flow 3').
//
// Usage: subscribe users (predicate subscriptions or aggregated counts),
// publish pages as they are produced, and route user requests through
// request(). The engine performs match-time pushing and access-time
// caching according to the configured strategy and accounts the traffic
// between publisher and proxies.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "pscd/cache/strategy.h"
#include "pscd/cache/strategy_factory.h"
#include "pscd/pubsub/broker.h"
#include "pscd/topology/network.h"
#include "pscd/util/types.h"

namespace pscd {

/// How pushed content travels from the publisher to a proxy (section
/// 5.6). Always-Pushing transfers every matched page; Pushing-When-
/// Necessary first exchanges meta-information and transfers only pages
/// the proxy decides to store.
enum class PushScheme { kAlwaysPushing, kPushingWhenNecessary };

struct EngineConfig {
  StrategyKind strategy = StrategyKind::kGDStar;
  double beta = 1.0;
  double dcInitialPcFraction = 0.5;
  double dcMinPcFraction = 0.25;
  double dcMaxPcFraction = 0.75;
  PushScheme pushScheme = PushScheme::kAlwaysPushing;
  /// Cache capacity per proxy; must match the network's proxy count.
  std::vector<Bytes> proxyCapacities;
};

/// Accounting of one publish event.
struct PublishSummary {
  std::uint32_t proxiesNotified = 0;  // proxies with >= 1 match
  std::uint32_t proxiesStored = 0;    // proxies that stored the page
  std::uint64_t pagesTransferred = 0;
  Bytes bytesTransferred = 0;
  /// Pushes that never arrived (down proxy, partition, or in-flight
  /// loss); always 0 on the fault-free path.
  std::uint64_t pagesLost = 0;
  Bytes bytesLost = 0;
};

/// Accounting of one request.
struct RequestSummary {
  bool hit = false;
  bool stale = false;  // a stale copy was cached at request time
  /// Publisher -> proxy bytes (page size on a miss, 0 on a hit).
  Bytes bytesTransferred = 0;
  /// Failure-layer accounting; all zero/false on the fault-free path.
  std::uint32_t retries = 0;   // failed fetch attempts that were retried
  bool servedStale = false;    // degraded: stale cache copy served after
                               // the publisher fetch failed
  bool failover = false;       // served via direct publisher fetch while
                               // the local proxy was down
  bool unavailable = false;    // the request could not be served at all
};

/// Per-publish fault decisions supplied by the failure layer. lost() is
/// called once per notified push-capable proxy, in ascending proxy
/// order (the determinism contract: any randomness inside must be
/// consumed in exactly that order).
struct PushFaults {
  std::function<bool(ProxyId)> lost;
};

/// Per-request fault decisions supplied by the failure layer.
struct RequestFaults {
  /// The local proxy process is down (crashed, not yet restarted).
  bool proxyDown = false;
  /// A residual network path publisher -> proxy exists.
  bool pathToPublisher = true;
  /// Serve a down proxy's users straight from the publisher when
  /// possible instead of failing the request.
  bool publisherFailover = true;
  /// Bounded-retry budget for failed fetch attempts.
  std::uint32_t maxRetries = 0;
  /// One Bernoulli draw per fetch attempt; true = the attempt failed.
  /// Consulted only when pathToPublisher (partitions fail without
  /// drawing). Null means attempts never fail randomly.
  std::function<bool()> fetchAttemptFails;
};

class ContentDistributionEngine {
 public:
  /// The network defines the proxy count and fetch costs; capacities in
  /// config must have one entry per proxy.
  ContentDistributionEngine(const Network& network, EngineConfig config);

  Broker& broker() { return broker_; }
  const Broker& broker() const { return broker_; }

  std::uint32_t numProxies() const {
    return static_cast<std::uint32_t>(proxies_.size());
  }

  /// Publishes a page version: matches it against all subscriptions and
  /// runs the push-time placement at every notified proxy. With
  /// `faults`, pushes reported lost never reach the proxy (no store, no
  /// transfer; under Always-Pushing the wasted publisher->proxy bytes
  /// are accounted as lost).
  PublishSummary publish(const PublishEvent& event,
                         const ContentAttributes& attrs,
                         const PushFaults* faults = nullptr);

  /// Convenience overload using page-id-only attributes.
  PublishSummary publish(const PublishEvent& event,
                         const PushFaults* faults = nullptr);

  /// A user attached to `proxy` requests `page`. The page must have been
  /// published before (throws std::out_of_range otherwise).
  ///
  /// With `faults`, the failure-recovery path runs: a down proxy fails
  /// over to a direct publisher fetch (when allowed and a path exists);
  /// a miss retries failed fetches up to maxRetries times; an abandoned
  /// fetch serves a stale cached copy when one exists (degraded, cache
  /// state untouched) and fails otherwise. Without `faults` the
  /// behaviour is bit-identical to the pre-failure-layer engine.
  RequestSummary request(ProxyId proxy, PageId page, SimTime now,
                         const RequestFaults* faults = nullptr);

  /// Crash/restart model: a cold restart (warm = false) replaces the
  /// proxy's strategy with a freshly constructed one, wiping the cache
  /// and all bookkeeping (L, access history, dual-cache partition); a
  /// warm restart keeps the strategy untouched.
  void restartProxy(ProxyId proxy, bool warm);

  /// Latest published version/size of a page; throws if never published.
  Version latestVersion(PageId page) const;
  Bytes pageSize(PageId page) const;

  const DistributionStrategy& strategy(ProxyId proxy) const;
  DistributionStrategy& strategy(ProxyId proxy);

  /// Deep validation: broker/matcher invariants, every proxy strategy's
  /// internal invariants, and the published-page table (positive sizes,
  /// per-page notification lists sorted by proxy). Throws CheckFailure
  /// on any violation.
  void checkInvariants() const;

 private:
  struct PageState {
    Version version = 0;
    Bytes size = 0;
    /// Match counts from the page's most recent publish, sorted by
    /// proxy; consulted at request time for the subscription factor.
    std::vector<Notification> matches;
  };

  const PageState& pageState(PageId page) const;
  std::uint32_t matchCount(const PageState& state, ProxyId proxy) const;

  EngineConfig config_;
  Broker broker_;
  /// Construction parameters of each proxy's strategy, kept so a cold
  /// restart can rebuild it from scratch.
  std::vector<StrategyParams> strategyParams_;
  std::vector<std::unique_ptr<DistributionStrategy>> proxies_;
  std::unordered_map<PageId, PageState> pages_;
};

}  // namespace pscd
