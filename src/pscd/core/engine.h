// ContentDistributionEngine: the public API tying together the pub/sub
// broker (matching + notification), the overlay network, and one content
// distribution strategy instance per proxy. This is the "content
// delivery engine" the paper adds to the classic publish/subscribe
// architecture (figure 1, flow 3').
//
// Usage: subscribe users (predicate subscriptions or aggregated counts),
// publish pages as they are produced, and route user requests through
// request(). The engine performs match-time pushing and access-time
// caching according to the configured strategy and accounts the traffic
// between publisher and proxies.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "pscd/cache/strategy.h"
#include "pscd/cache/strategy_factory.h"
#include "pscd/pubsub/broker.h"
#include "pscd/topology/network.h"
#include "pscd/util/types.h"

namespace pscd {

/// How pushed content travels from the publisher to a proxy (section
/// 5.6). Always-Pushing transfers every matched page; Pushing-When-
/// Necessary first exchanges meta-information and transfers only pages
/// the proxy decides to store.
enum class PushScheme { kAlwaysPushing, kPushingWhenNecessary };

struct EngineConfig {
  StrategyKind strategy = StrategyKind::kGDStar;
  double beta = 1.0;
  double dcInitialPcFraction = 0.5;
  double dcMinPcFraction = 0.25;
  double dcMaxPcFraction = 0.75;
  PushScheme pushScheme = PushScheme::kAlwaysPushing;
  /// Cache capacity per proxy; must match the network's proxy count.
  std::vector<Bytes> proxyCapacities;
};

/// Accounting of one publish event.
struct PublishSummary {
  std::uint32_t proxiesNotified = 0;  // proxies with >= 1 match
  std::uint32_t proxiesStored = 0;    // proxies that stored the page
  std::uint64_t pagesTransferred = 0;
  Bytes bytesTransferred = 0;
};

/// Accounting of one request.
struct RequestSummary {
  bool hit = false;
  bool stale = false;  // a stale copy was cached at request time
  /// Publisher -> proxy bytes (page size on a miss, 0 on a hit).
  Bytes bytesTransferred = 0;
};

class ContentDistributionEngine {
 public:
  /// The network defines the proxy count and fetch costs; capacities in
  /// config must have one entry per proxy.
  ContentDistributionEngine(const Network& network, EngineConfig config);

  Broker& broker() { return broker_; }
  const Broker& broker() const { return broker_; }

  std::uint32_t numProxies() const {
    return static_cast<std::uint32_t>(proxies_.size());
  }

  /// Publishes a page version: matches it against all subscriptions and
  /// runs the push-time placement at every notified proxy.
  PublishSummary publish(const PublishEvent& event,
                         const ContentAttributes& attrs);

  /// Convenience overload using page-id-only attributes.
  PublishSummary publish(const PublishEvent& event);

  /// A user attached to `proxy` requests `page`. The page must have been
  /// published before (throws std::out_of_range otherwise).
  RequestSummary request(ProxyId proxy, PageId page, SimTime now);

  /// Latest published version/size of a page; throws if never published.
  Version latestVersion(PageId page) const;
  Bytes pageSize(PageId page) const;

  const DistributionStrategy& strategy(ProxyId proxy) const;
  DistributionStrategy& strategy(ProxyId proxy);

  /// Deep validation: broker/matcher invariants, every proxy strategy's
  /// internal invariants, and the published-page table (positive sizes,
  /// per-page notification lists sorted by proxy). Throws CheckFailure
  /// on any violation.
  void checkInvariants() const;

 private:
  struct PageState {
    Version version = 0;
    Bytes size = 0;
    /// Match counts from the page's most recent publish, sorted by
    /// proxy; consulted at request time for the subscription factor.
    std::vector<Notification> matches;
  };

  const PageState& pageState(PageId page) const;
  std::uint32_t matchCount(const PageState& state, ProxyId proxy) const;

  EngineConfig config_;
  Broker broker_;
  std::vector<std::unique_ptr<DistributionStrategy>> proxies_;
  std::unordered_map<PageId, PageState> pages_;
};

}  // namespace pscd
