// User-perceived latency model (section 5.1's motivation: "a high hit
// ratio in a local server generally means a smaller response time").
// A hit is served from the local proxy in localLatencyMs; fetching
// fresh bytes from the publisher additionally pays a round trip scaled
// by the proxy's normalized network distance (mean distance = 1).
#pragma once

namespace pscd {

struct LatencyModel {
  double localLatencyMs = 5.0;
  double remoteLatencyMsPerUnit = 100.0;

  /// Response time of a request served locally (hit or stale serve).
  double localMs() const { return localLatencyMs; }

  /// Response time of a request that fetched fresh bytes over a path
  /// with the given normalized fetch cost.
  double fetchMs(double fetchCost) const {
    return localLatencyMs + remoteLatencyMsPerUnit * fetchCost;
  }

  /// Throws CheckFailure unless both parameters are finite and >= 0.
  void validate() const;
};

}  // namespace pscd
