// Ablation: classic access-time replacement baselines. The paper adopts
// GD* as its baseline citing Jin & Bestavros's result that it beats LRU,
// GDS and LFU-DA; this harness re-checks the premise on our workloads.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_ablation_baselines",
                    "Ablation: GD* vs classic replacement baselines");
  printHeader("Ablation: GD* vs classic replacement baselines",
              "the baseline choice of section 3.1");
  constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar,
                                     StrategyKind::kGDS, StrategyKind::kLFUDA,
                                     StrategyKind::kLRU};
  ExperimentContext ctx(42, 7, env.scale);

  std::vector<ExperimentCell> cells;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    for (const double cap : kCapacityFractions) {
      for (const StrategyKind kind : kKinds) {
        cells.push_back({trace, 1.0, kind, cap});
      }
    }
  }
  runCells(ctx, env, cells);

  CsvSink csv;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    AsciiTable table({"capacity", "GD*", "GDS", "LFU-DA", "LRU"});
    for (const double cap : kCapacityFractions) {
      table.row().cell(formatFixed(100 * cap, 0) + "%");
      for (const StrategyKind kind : kKinds) {
        table.cell(pct(ctx.run(trace, 1.0, kind, cap).hitRatio()));
      }
    }
    std::printf("Hit ratio (%%), trace %s:\n%s\n",
                std::string(traceName(trace)).c_str(),
                table.render().c_str());
    csv.add(std::string("ablation_baselines_") +
                std::string(traceName(trace)),
            table);
  }
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: GD* should match or beat the classics, justifying its use\n"
      "as the access-time module inside the combined schemes.\n");
  return 0;
}
