// Figure 6 (a, b): average hit ratio per hour for GD*, SUB and SG2 over
// the 7-day simulation (SQ = 1, capacity = 5%), for both traces.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_fig6_hourly",
                    "Figure 6: hourly hit ratio over the 7-day run");
  printHeader("Hourly hit ratio over the 7-day run", "figure 6 (a, b)");
  constexpr StrategyKind kKinds[] = {StrategyKind::kSG2, StrategyKind::kSUB,
                                     StrategyKind::kGDStar};
  ExperimentContext ctx(42, 7, env.scale);

  std::vector<ExperimentCell> cells;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    for (const StrategyKind kind : kKinds) {
      cells.push_back({trace, 1.0, kind, 0.05, PushScheme::kAlwaysPushing,
                       /*collectHourly=*/true});
    }
  }
  runCells(ctx, env, cells);

  CsvSink csv;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    std::printf("Trace %s (SQ = 1, capacity = 5%%), hit ratio (%%):\n",
                std::string(traceName(trace)).c_str());
    AsciiTable table({"hour", "SG2", "SUB", "GD*"});
    std::vector<SimMetrics> runs;
    for (const StrategyKind kind : kKinds) {
      runs.push_back(ctx.run(trace, 1.0, kind, 0.05,
                             PushScheme::kAlwaysPushing,
                             /*collectHourly=*/true));
    }
    // Print every 6th hour (the figures plot 168 points; the full series
    // goes to CSV on stdout below).
    for (std::size_t h = 0; h < runs[0].hours(); h += 6) {
      table.row().cell(std::to_string(h));
      for (const auto& m : runs) table.cell(pct(m.hourlyHitRatio(h)));
    }
    std::printf("%s\n", table.render().c_str());
    csv.add(std::string("fig6_hourly_") + std::string(traceName(trace)),
            table);
    // Weekly averages per strategy (first/second half) show the trend.
    for (std::size_t k = 0; k < runs.size(); ++k) {
      double early = 0, late = 0;
      const std::size_t half = runs[k].hours() / 2;
      for (std::size_t h = 0; h < half; ++h) {
        early += runs[k].hourlyHitRatio(h);
      }
      for (std::size_t h = half; h < runs[k].hours(); ++h) {
        late += runs[k].hourlyHitRatio(h);
      }
      std::printf("  %-4s mean H: first half %.1f%%, second half %.1f%%\n",
                  std::string(strategyName(kKinds[k])).c_str(),
                  100 * early / half, 100 * late / (runs[k].hours() - half));
    }
    std::printf("\n");
  }
  csv.writeTo(env.csvPath);
  std::printf(
      "Paper shape: SG2 stays high throughout; GD* stabilizes after the\n"
      "cold start; SUB starts high and deteriorates relative to SG2 since\n"
      "it never adapts to the usage pattern.\n");
  return 0;
}
