// Figure 5 (a, b): influence of the subscription quality SQ on the hit
// ratio at the 5% capacity setting, for both traces.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_fig5_sq",
                    "Figure 5: hit ratio vs subscription quality");
  printHeader("Hit ratio vs subscription quality", "figure 5 (a, b)");
  constexpr double kQualities[] = {0.25, 0.5, 0.75, 1.0};
  ExperimentContext ctx(42, 7, env.scale);

  std::vector<ExperimentCell> cells;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    for (const double sq : kQualities) {
      for (const StrategyKind kind : kFigureStrategies) {
        cells.push_back({trace, sq, kind, 0.05});
      }
    }
  }
  runCells(ctx, env, cells);

  CsvSink csv;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    AsciiTable table({"SQ", "GD*", "SUB", "SG1", "SG2", "SR", "DC-LAP"});
    for (const double sq : kQualities) {
      table.row().cell(formatFixed(sq, 2));
      for (const StrategyKind kind : kFigureStrategies) {
        table.cell(pct(ctx.run(trace, sq, kind, 0.05).hitRatio()));
      }
    }
    std::printf("Hit ratio (%%), trace %s, capacity = 5%%:\n%s\n",
                std::string(traceName(trace)).c_str(),
                table.render().c_str());
    csv.add(std::string("fig5_sq_") + std::string(traceName(trace)), table);
  }
  csv.writeTo(env.csvPath);
  std::printf(
      "Paper shape: GD* flat (ignores subscriptions); SR degrades fastest\n"
      "as SQ drops; SG1 and DC-LAP are insensitive; on ALTERNATIVE, SG2\n"
      "falls below SG1 at SQ <= 0.5.\n");
  return 0;
}
