// Figure 5 (a, b): influence of the subscription quality SQ on the hit
// ratio at the 5% capacity setting, for both traces.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main() {
  printHeader("Hit ratio vs subscription quality", "figure 5 (a, b)");
  constexpr double kQualities[] = {0.25, 0.5, 0.75, 1.0};
  ExperimentContext ctx;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    AsciiTable table({"SQ", "GD*", "SUB", "SG1", "SG2", "SR", "DC-LAP"});
    for (const double sq : kQualities) {
      table.row().cell(formatFixed(sq, 2));
      for (const StrategyKind kind : kFigureStrategies) {
        table.cell(pct(ctx.run(trace, sq, kind, 0.05).hitRatio()));
      }
    }
    std::printf("Hit ratio (%%), trace %s, capacity = 5%%:\n%s\n",
                std::string(traceName(trace)).c_str(),
                table.render().c_str());
  }
  std::printf(
      "Paper shape: GD* flat (ignores subscriptions); SR degrades fastest\n"
      "as SQ drops; SG1 and DC-LAP are insensitive; on ALTERNATIVE, SG2\n"
      "falls below SG1 at SQ <= 0.5.\n");
  return 0;
}
