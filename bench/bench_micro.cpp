// Substrate micro-benchmarks (google-benchmark): value-cache operations,
// matching-engine throughput, per-strategy event costs, and workload
// generation.
#include <benchmark/benchmark.h>

#include "pscd/pscd.h"

namespace pscd {
namespace {

void BM_ValueCacheInsertEvict(benchmark::State& state) {
  const auto capacity = static_cast<Bytes>(state.range(0));
  ValueCache cache(capacity);
  Rng rng(1);
  PageId next = 0;
  for (auto _ : state) {
    CacheEntry e;
    e.page = next++;
    e.size = 10 + rng.uniformInt(std::uint64_t{50});
    const double v = rng.uniform();
    if (auto evicted = cache.evictFor(e.size)) {
      cache.insertNoEvict(e, v);
    }
    benchmark::DoNotOptimize(cache.used());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValueCacheInsertEvict)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ValueCacheLookup(benchmark::State& state) {
  ValueCache cache(1 << 20);
  for (PageId p = 0; p < 10000; ++p) {
    CacheEntry e;
    e.page = p;
    e.size = 32;
    cache.insertNoEvict(e, static_cast<double>(p));
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.find(static_cast<PageId>(rng.uniformInt(std::uint64_t{10000}))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValueCacheLookup);

void BM_MatcherThroughput(benchmark::State& state) {
  const auto numSubs = static_cast<std::uint64_t>(state.range(0));
  MatchingEngine engine;
  Rng rng(3);
  for (std::uint64_t i = 0; i < numSubs; ++i) {
    Subscription s;
    s.proxy = static_cast<ProxyId>(rng.uniformInt(std::uint64_t{100}));
    s.conjuncts.push_back(
        {Predicate::Kind::kCategoryEq,
         static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{50}))});
    if (rng.bernoulli(0.5)) {
      s.conjuncts.push_back(
          {Predicate::Kind::kKeywordContains,
           static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{200}))});
    }
    engine.addSubscription(std::move(s));
  }
  ContentAttributes attrs;
  for (auto _ : state) {
    attrs.page = static_cast<PageId>(rng.uniformInt(std::uint64_t{1000}));
    attrs.category =
        static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{50}));
    attrs.keywords = {
        static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{200}))};
    benchmark::DoNotOptimize(engine.match(attrs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatcherThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_StrategyRequest(benchmark::State& state) {
  const auto kind = static_cast<StrategyKind>(state.range(0));
  StrategyParams params;
  params.capacity = 1 << 16;
  params.fetchCost = 1.0;
  params.beta = 2.0;
  const auto strategy = makeStrategy(kind, params);
  Rng rng(4);
  for (auto _ : state) {
    RequestContext ctx;
    ctx.page = static_cast<PageId>(rng.uniformInt(std::uint64_t{2000}));
    ctx.size = 100 + rng.uniformInt(std::uint64_t{2000});
    ctx.subCount = 1 + static_cast<std::uint32_t>(
                           rng.uniformInt(std::uint64_t{10}));
    benchmark::DoNotOptimize(strategy->onRequest(ctx));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(strategyName(kind)));
}
BENCHMARK(BM_StrategyRequest)
    ->Arg(static_cast<int>(StrategyKind::kGDStar))
    ->Arg(static_cast<int>(StrategyKind::kSG2))
    ->Arg(static_cast<int>(StrategyKind::kDM))
    ->Arg(static_cast<int>(StrategyKind::kDCLAP))
    ->Arg(static_cast<int>(StrategyKind::kLRU));

void BM_StrategyPush(benchmark::State& state) {
  const auto kind = static_cast<StrategyKind>(state.range(0));
  StrategyParams params;
  params.capacity = 1 << 16;
  params.fetchCost = 1.0;
  params.beta = 2.0;
  const auto strategy = makeStrategy(kind, params);
  Rng rng(5);
  for (auto _ : state) {
    PushContext ctx;
    ctx.page = static_cast<PageId>(rng.uniformInt(std::uint64_t{2000}));
    ctx.size = 100 + rng.uniformInt(std::uint64_t{2000});
    ctx.subCount = 1 + static_cast<std::uint32_t>(
                           rng.uniformInt(std::uint64_t{10}));
    benchmark::DoNotOptimize(strategy->onPush(ctx));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(strategyName(kind)));
}
BENCHMARK(BM_StrategyPush)
    ->Arg(static_cast<int>(StrategyKind::kSUB))
    ->Arg(static_cast<int>(StrategyKind::kSG2))
    ->Arg(static_cast<int>(StrategyKind::kDCLAP));

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    WorkloadParams p = newsTraceParams();
    p.publishing.numPages = static_cast<std::uint32_t>(state.range(0));
    p.publishing.numUpdatedPages = p.publishing.numPages / 3;
    p.request.totalRequests = static_cast<std::uint64_t>(state.range(0)) * 30;
    p.request.numProxies = 20;
    benchmark::DoNotOptimize(buildWorkload(p));
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

void BM_FullSimulation(benchmark::State& state) {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 1000;
  p.publishing.numUpdatedPages = 400;
  p.request.totalRequests = 30000;
  p.request.numProxies = 20;
  const Workload w = buildWorkload(p);
  Rng rng(6);
  const Network net(NetworkParams{.numProxies = 20}, rng);
  for (auto _ : state) {
    SimConfig c;
    c.strategy = static_cast<StrategyKind>(state.range(0));
    c.beta = 2.0;
    c.capacityFraction = 0.05;
    benchmark::DoNotOptimize(Simulator(w, net, c).run().hits());
  }
  state.SetLabel(
      std::string(strategyName(static_cast<StrategyKind>(state.range(0)))));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.requests.size()));
}
BENCHMARK(BM_FullSimulation)
    ->Arg(static_cast<int>(StrategyKind::kGDStar))
    ->Arg(static_cast<int>(StrategyKind::kSG2))
    ->Arg(static_cast<int>(StrategyKind::kDCLAP))
    ->Unit(benchmark::kMillisecond);

void BM_Dijkstra(benchmark::State& state) {
  Rng rng(7);
  const auto topo = generateWaxman(
      {.numNodes = static_cast<std::uint32_t>(state.range(0))}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shortestPaths(topo.graph, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(100)->Arg(500);

}  // namespace
}  // namespace pscd
