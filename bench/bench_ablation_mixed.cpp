// Extension (the paper's stated future work, section 7): not all
// requests are driven through the notification service. A fraction of
// readers never subscribed, so their requests contribute no subscription
// information; this sweep shows how the subscription-based schemes
// degrade toward GD* as that fraction grows.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env = parseBenchEnv(
      argc, argv, "bench_ablation_mixed",
      "Extension: mixed notification-driven / ad-hoc traffic");
  printHeader("Extension: mixed notification-driven / ad-hoc traffic",
              "section 7 future work");
  constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar,
                                     StrategyKind::kSUB, StrategyKind::kSG1,
                                     StrategyKind::kSG2, StrategyKind::kDCLAP};
  constexpr double kDriven[] = {1.0, 0.75, 0.5, 0.25};
  Rng nrng(7);
  const Network network(NetworkParams{}, nrng);

  // One task per driven fraction: workload construction dominates, so
  // each task builds its own trace (from its own parameters, no shared
  // RNG) and runs all five strategies on it.
  std::vector<std::vector<double>> hit(std::size(kDriven),
                                       std::vector<double>(5, 0.0));
  std::vector<std::function<void()>> tasks;
  for (std::size_t d = 0; d < std::size(kDriven); ++d) {
    tasks.push_back([&, d] {
      WorkloadParams params = traceParams(TraceKind::kNews, 1.0, env.scale);
      params.request.notificationDrivenFraction = kDriven[d];
      const Workload w = buildWorkload(params);
      for (std::size_t k = 0; k < std::size(kKinds); ++k) {
        SimConfig c;
        c.strategy = kKinds[k];
        c.beta = paperBeta(kKinds[k], TraceKind::kNews, 0.05);
        c.capacityFraction = 0.05;
        hit[d][k] = Simulator(w, network, c).run().hitRatio();
      }
    });
  }
  runTasks(env, std::move(tasks));

  AsciiTable table({"driven fraction", "GD*", "SUB", "SG1", "SG2",
                    "DC-LAP"});
  for (std::size_t d = 0; d < std::size(kDriven); ++d) {
    table.row().cell(formatFixed(kDriven[d], 2));
    for (std::size_t k = 0; k < std::size(kKinds); ++k) {
      table.cell(pct(hit[d][k]));
    }
  }
  std::printf("Hit ratio (%%), NEWS, capacity = 5%%, SQ = 1:\n%s\n",
              table.render().c_str());
  CsvSink csv;
  csv.add("ablation_mixed", table);
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: subscription-based pushing still helps when only part of\n"
      "the traffic is notification-driven, degrading gracefully toward\n"
      "the access-based baseline as the driven fraction shrinks.\n");
  return 0;
}
