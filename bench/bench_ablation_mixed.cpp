// Extension (the paper's stated future work, section 7): not all
// requests are driven through the notification service. A fraction of
// readers never subscribed, so their requests contribute no subscription
// information; this sweep shows how the subscription-based schemes
// degrade toward GD* as that fraction grows.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main() {
  printHeader("Extension: mixed notification-driven / ad-hoc traffic",
              "section 7 future work");
  constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar,
                                     StrategyKind::kSUB, StrategyKind::kSG1,
                                     StrategyKind::kSG2, StrategyKind::kDCLAP};
  Rng nrng(7);
  const Network network(NetworkParams{}, nrng);
  AsciiTable table({"driven fraction", "GD*", "SUB", "SG1", "SG2",
                    "DC-LAP"});
  for (const double driven : {1.0, 0.75, 0.5, 0.25}) {
    WorkloadParams params = newsTraceParams();
    params.request.notificationDrivenFraction = driven;
    const Workload w = buildWorkload(params);
    table.row().cell(formatFixed(driven, 2));
    for (const StrategyKind kind : kKinds) {
      SimConfig c;
      c.strategy = kind;
      c.beta = paperBeta(kind, TraceKind::kNews, 0.05);
      c.capacityFraction = 0.05;
      table.cell(pct(Simulator(w, network, c).run().hitRatio()));
    }
  }
  std::printf("Hit ratio (%%), NEWS, capacity = 5%%, SQ = 1:\n%s\n",
              table.render().c_str());
  std::printf(
      "Reading: subscription-based pushing still helps when only part of\n"
      "the traffic is notification-driven, degrading gracefully toward\n"
      "the access-based baseline as the driven fraction shrinks.\n");
  return 0;
}
