// Ablation: DC-FP partition sweep. The paper fixes the PC/AC split at
// 50%/50% and bounds DC-LAP in [25%, 75%]; this harness sweeps the fixed
// partition to expose the sensitivity those bounds guard against.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_ablation_partition",
                    "Ablation: DC-FP fixed PC/AC partition sweep");
  printHeader("Ablation: fixed PC/AC partition sweep (DC-FP)",
              "the design choice behind DC-LAP's [25%, 75%] bounds");
  ExperimentContext ctx(42, 7, env.scale);
  constexpr double kFractions[] = {0.1, 0.2, 0.3, 0.4, 0.5,
                                   0.6, 0.7, 0.8, 0.9};
  const std::vector<std::pair<TraceKind, double>> kSettings = {
      {TraceKind::kNews, 0.05},
      {TraceKind::kNews, 0.10},
      {TraceKind::kAlternative, 0.05}};

  // Shared inputs are built once up front; the cells then only read.
  for (const auto& [trace, cap] : kSettings) ctx.workload(trace, 1.0);
  ctx.network();

  // One task per (fraction, setting) cell, writing its own result slot.
  std::vector<std::vector<double>> hit(
      std::size(kFractions), std::vector<double>(kSettings.size(), 0.0));
  std::vector<std::function<void()>> tasks;
  for (std::size_t f = 0; f < std::size(kFractions); ++f) {
    for (std::size_t s = 0; s < kSettings.size(); ++s) {
      tasks.push_back([&, f, s] {
        const auto& [trace, cap] = kSettings[s];
        SimConfig c;
        c.strategy = StrategyKind::kDCFP;
        c.beta = paperBeta(StrategyKind::kDCFP, trace, cap);
        c.capacityFraction = cap;
        c.dcInitialPcFraction = kFractions[f];
        Simulator sim(ctx.workload(trace, 1.0), ctx.network(), c);
        hit[f][s] = sim.run().hitRatio();
      });
    }
  }
  runTasks(env, std::move(tasks));

  AsciiTable table({"PC fraction", "NEWS 5%", "NEWS 10%", "ALT 5%"});
  for (std::size_t f = 0; f < std::size(kFractions); ++f) {
    table.row().cell(formatFixed(100 * kFractions[f], 0) + "%");
    for (std::size_t s = 0; s < kSettings.size(); ++s) {
      table.cell(pct(hit[f][s]));
    }
  }
  std::printf("DC-FP hit ratio (%%) by push-cache fraction (SQ = 1):\n%s\n",
              table.render().c_str());
  CsvSink csv;
  csv.add("ablation_partition", table);
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: performance is flat near the middle and falls off at the\n"
      "extremes, which is why DC-LAP bounds the adaptive partition.\n");
  return 0;
}
