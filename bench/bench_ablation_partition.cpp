// Ablation: DC-FP partition sweep. The paper fixes the PC/AC split at
// 50%/50% and bounds DC-LAP in [25%, 75%]; this harness sweeps the fixed
// partition to expose the sensitivity those bounds guard against.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main() {
  printHeader("Ablation: fixed PC/AC partition sweep (DC-FP)",
              "the design choice behind DC-LAP's [25%, 75%] bounds");
  ExperimentContext ctx;
  AsciiTable table({"PC fraction", "NEWS 5%", "NEWS 10%", "ALT 5%"});
  for (const double frac :
       {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    table.row().cell(formatFixed(100 * frac, 0) + "%");
    for (const auto& [trace, cap] :
         {std::pair{TraceKind::kNews, 0.05},
          std::pair{TraceKind::kNews, 0.10},
          std::pair{TraceKind::kAlternative, 0.05}}) {
      SimConfig c;
      c.strategy = StrategyKind::kDCFP;
      c.beta = paperBeta(StrategyKind::kDCFP, trace, cap);
      c.capacityFraction = cap;
      c.dcInitialPcFraction = frac;
      Simulator sim(ctx.workload(trace, 1.0), ctx.network(), c);
      table.cell(pct(sim.run().hitRatio()));
    }
  }
  std::printf("DC-FP hit ratio (%%) by push-cache fraction (SQ = 1):\n%s\n",
              table.render().c_str());
  std::printf(
      "Reading: performance is flat near the middle and falls off at the\n"
      "extremes, which is why DC-LAP bounds the adaptive partition.\n");
  return 0;
}
