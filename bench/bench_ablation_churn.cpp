// Extension: subscription churn. The paper assumes subscriptions are
// static for the whole 7-day run; here users migrate interests over
// time (drop one subscription, pick up another), so the subscription
// information decays even though it started perfect. The
// subscription-driven schemes must degrade gracefully toward GD*.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_ablation_churn",
                    "Extension: subscription churn over the week");
  printHeader("Extension: subscription churn over the week",
              "a dynamic-subscription extension beyond section 4.3");
  constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar,
                                     StrategyKind::kSUB, StrategyKind::kSG1,
                                     StrategyKind::kSG2, StrategyKind::kDCLAP};
  constexpr double kChurn[] = {0.0, 0.05, 0.15, 0.40};
  Rng nrng(7);
  const Network network(NetworkParams{}, nrng);

  // One task per churn level, each building its own workload.
  std::vector<std::vector<double>> hit(std::size(kChurn),
                                       std::vector<double>(5, 0.0));
  std::vector<std::size_t> churnEvents(std::size(kChurn), 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < std::size(kChurn); ++i) {
    tasks.push_back([&, i] {
      WorkloadParams params = traceParams(TraceKind::kNews, 1.0, env.scale);
      params.subscription.churnPerDay = kChurn[i];
      const Workload w = buildWorkload(params);
      churnEvents[i] = w.churn.size();
      for (std::size_t k = 0; k < std::size(kKinds); ++k) {
        SimConfig c;
        c.strategy = kKinds[k];
        c.beta = paperBeta(kKinds[k], TraceKind::kNews, 0.05);
        c.capacityFraction = 0.05;
        hit[i][k] = Simulator(w, network, c).run().hitRatio();
      }
    });
  }
  runTasks(env, std::move(tasks));

  AsciiTable table({"churn/day", "churn events", "GD*", "SUB", "SG1", "SG2",
                    "DC-LAP"});
  for (std::size_t i = 0; i < std::size(kChurn); ++i) {
    table.row()
        .cell(formatFixed(100 * kChurn[i], 0) + "%")
        .cell(std::to_string(churnEvents[i]));
    for (std::size_t k = 0; k < std::size(kKinds); ++k) {
      table.cell(pct(hit[i][k]));
    }
  }
  std::printf("Hit ratio (%%), NEWS, capacity = 5%%, SQ = 1 initially:\n%s\n",
              table.render().c_str());
  CsvSink csv;
  csv.add("ablation_churn", table);
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: GD* ignores subscriptions and is unaffected; the\n"
      "subscription-driven schemes lose accuracy as interests migrate but\n"
      "retain most of their advantage at realistic churn levels.\n");
  return 0;
}
