// Extension: subscription churn. The paper assumes subscriptions are
// static for the whole 7-day run; here users migrate interests over
// time (drop one subscription, pick up another), so the subscription
// information decays even though it started perfect. The
// subscription-driven schemes must degrade gracefully toward GD*.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main() {
  printHeader("Extension: subscription churn over the week",
              "a dynamic-subscription extension beyond section 4.3");
  constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar,
                                     StrategyKind::kSUB, StrategyKind::kSG1,
                                     StrategyKind::kSG2, StrategyKind::kDCLAP};
  Rng nrng(7);
  const Network network(NetworkParams{}, nrng);
  AsciiTable table({"churn/day", "churn events", "GD*", "SUB", "SG1", "SG2",
                    "DC-LAP"});
  for (const double churn : {0.0, 0.05, 0.15, 0.40}) {
    WorkloadParams params = newsTraceParams();
    params.subscription.churnPerDay = churn;
    const Workload w = buildWorkload(params);
    table.row()
        .cell(formatFixed(100 * churn, 0) + "%")
        .cell(std::to_string(w.churn.size()));
    for (const StrategyKind kind : kKinds) {
      SimConfig c;
      c.strategy = kind;
      c.beta = paperBeta(kind, TraceKind::kNews, 0.05);
      c.capacityFraction = 0.05;
      table.cell(pct(Simulator(w, network, c).run().hitRatio()));
    }
  }
  std::printf("Hit ratio (%%), NEWS, capacity = 5%%, SQ = 1 initially:\n%s\n",
              table.render().c_str());
  std::printf(
      "Reading: GD* ignores subscriptions and is unaffected; the\n"
      "subscription-driven schemes lose accuracy as interests migrate but\n"
      "retain most of their advantage at realistic churn levels.\n");
  return 0;
}
