// Ablation: overlay topology sensitivity. The fetch cost c(p) in the
// value functions comes from the publisher->proxy network distance; this
// sweep checks that the paper's conclusions do not hinge on the Waxman
// model (our BRITE substitute) by rerunning the headline comparison on
// Barabasi-Albert (scale-free, hop metric) and on several seeds.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_ablation_topology",
                    "Ablation: topology model and seed sensitivity");
  printHeader("Ablation: topology model and seed sensitivity",
              "the BRITE substitution documented in DESIGN.md");
  WorkloadParams params = traceParams(TraceKind::kNews, 1.0, env.scale);
  const Workload w = buildWorkload(params);

  constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar,
                                     StrategyKind::kSUB, StrategyKind::kSG2,
                                     StrategyKind::kDCLAP};
  struct Row {
    TopologyModel model;
    std::uint64_t seed;
  };
  std::vector<Row> rows;
  for (const TopologyModel model :
       {TopologyModel::kWaxman, TopologyModel::kBarabasiAlbert}) {
    for (const std::uint64_t seed : {7ull, 1234ull, 99ull}) {
      rows.push_back({model, seed});
    }
  }

  // One task per table row: builds that row's network (each task owns
  // its private RNG seeded from the row spec, never a shared one), then
  // runs the four strategies against it.
  std::vector<std::vector<double>> hit(rows.size(),
                                       std::vector<double>(4, 0.0));
  std::vector<std::function<void()>> tasks;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    tasks.push_back([&, r] {
      Rng rng(rows[r].seed);
      NetworkParams np;
      np.model = rows[r].model;
      const Network net(np, rng);
      for (std::size_t k = 0; k < std::size(kKinds); ++k) {
        SimConfig c;
        c.strategy = kKinds[k];
        c.beta = paperBeta(kKinds[k], TraceKind::kNews, 0.05);
        c.capacityFraction = 0.05;
        hit[r][k] = Simulator(w, net, c).run().hitRatio();
      }
    });
  }
  runTasks(env, std::move(tasks));

  AsciiTable table({"topology", "seed", "GD*", "SUB", "SG2", "DC-LAP"});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    table.row()
        .cell(rows[r].model == TopologyModel::kWaxman ? "Waxman" : "BA")
        .cell(std::to_string(rows[r].seed));
    for (std::size_t k = 0; k < std::size(kKinds); ++k) {
      table.cell(pct(hit[r][k]));
    }
  }
  std::printf("Hit ratio (%%), NEWS, SQ = 1, capacity = 5%%:\n%s\n",
              table.render().c_str());
  CsvSink csv;
  csv.add("ablation_topology", table);
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: with a single publisher the fetch cost is constant per\n"
      "proxy and value orderings are scale-invariant, so the strategy\n"
      "ranking must be (and is) insensitive to the topology model.\n");
  return 0;
}
