// Ablation: overlay topology sensitivity. The fetch cost c(p) in the
// value functions comes from the publisher->proxy network distance; this
// sweep checks that the paper's conclusions do not hinge on the Waxman
// model (our BRITE substitute) by rerunning the headline comparison on
// Barabasi-Albert (scale-free, hop metric) and on several seeds.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main() {
  printHeader("Ablation: topology model and seed sensitivity",
              "the BRITE substitution documented in DESIGN.md");
  WorkloadParams params = newsTraceParams();
  const Workload w = buildWorkload(params);

  AsciiTable table({"topology", "seed", "GD*", "SUB", "SG2", "DC-LAP"});
  for (const TopologyModel model :
       {TopologyModel::kWaxman, TopologyModel::kBarabasiAlbert}) {
    for (const std::uint64_t seed : {7ull, 1234ull, 99ull}) {
      Rng rng(seed);
      NetworkParams np;
      np.model = model;
      const Network net(np, rng);
      table.row()
          .cell(model == TopologyModel::kWaxman ? "Waxman" : "BA")
          .cell(std::to_string(seed));
      for (const StrategyKind kind :
           {StrategyKind::kGDStar, StrategyKind::kSUB, StrategyKind::kSG2,
            StrategyKind::kDCLAP}) {
        SimConfig c;
        c.strategy = kind;
        c.beta = paperBeta(kind, TraceKind::kNews, 0.05);
        c.capacityFraction = 0.05;
        table.cell(pct(Simulator(w, net, c).run().hitRatio()));
      }
    }
  }
  std::printf("Hit ratio (%%), NEWS, SQ = 1, capacity = 5%%:\n%s\n",
              table.render().c_str());
  std::printf(
      "Reading: with a single publisher the fetch cost is constant per\n"
      "proxy and value orderings are scale-invariant, so the strategy\n"
      "ranking must be (and is) insensitive to the topology model.\n");
  return 0;
}
