// Figure 3: hit ratios of Dual-Methods and the Dual-Caches algorithms
// (DM, DC-FP, DC-AP, DC-LAP) against GD* on the NEWS trace under the
// three capacity settings (SQ = 1).
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_fig3_dualcaches",
                    "Figure 3: Dual-Methods vs Dual-Caches on NEWS");
  printHeader("Dual-Methods vs Dual-Caches (NEWS)", "figure 3");
  constexpr StrategyKind kKinds[] = {
      StrategyKind::kGDStar, StrategyKind::kDM, StrategyKind::kDCFP,
      StrategyKind::kDCAP, StrategyKind::kDCLAP};
  ExperimentContext ctx(42, 7, env.scale);

  std::vector<ExperimentCell> cells;
  for (const double cap : kCapacityFractions) {
    for (const StrategyKind kind : kKinds) {
      cells.push_back({TraceKind::kNews, 1.0, kind, cap});
    }
  }
  runCells(ctx, env, cells);

  AsciiTable table({"capacity", "GD*", "DM", "DC-FP", "DC-AP", "DC-LAP"});
  for (const double cap : kCapacityFractions) {
    table.row().cell(formatFixed(100 * cap, 0) + "%");
    for (const StrategyKind kind : kKinds) {
      table.cell(pct(ctx.run(TraceKind::kNews, 1.0, kind, cap).hitRatio()));
    }
  }
  std::printf("Hit ratio (%%), trace NEWS, SQ = 1:\n%s\n",
              table.render().c_str());
  CsvSink csv;
  csv.add("fig3_dualcaches", table);
  csv.writeTo(env.csvPath);
  std::printf(
      "Paper shape: every Dual* scheme beats GD*; DC-LAP leads the family\n"
      "and the adaptive variants add only marginal gains over DC-FP.\n");
  return 0;
}
