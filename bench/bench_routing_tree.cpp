// Substrate study: distributed notification routing. The paper's
// architecture allows the matching/routing engines to be distributed
// (section 2, citing Siena); this bench quantifies what the broker tree
// and the covering optimization buy on the NEWS subscription workload:
// control traffic (subscription advertisements) and event traffic
// (per-link transmissions) versus naive flooding.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

namespace {

struct TreeStats {
  std::size_t subs = 0;
  std::uint64_t control = 0;
  std::uint64_t events = 0;
  std::uint64_t flood = 0;
};

TreeStats runTree(const Workload& w, unsigned brokers, unsigned fanout,
                  bool covering) {
  BrokerTree tree = BrokerTree::balanced(brokers, fanout, covering);
  // Proxies attach to the leaf brokers round-robin.
  std::vector<BrokerId> leaves;
  for (BrokerId b = 0; b < tree.numBrokers(); ++b) {
    if (tree.isLeaf(b)) leaves.push_back(b);
  }
  for (ProxyId p = 0; p < w.numProxies(); ++p) {
    tree.attachProxy(p, leaves[p % leaves.size()]);
  }
  // Register the workload's aggregated subscriptions as page-id
  // subscriptions (one per subscribed (page, proxy) pair).
  for (PageId page = 0; page < w.numPages(); ++page) {
    for (const auto& n : w.subscriptions(page)) {
      Subscription s;
      s.proxy = n.proxy;
      s.conjuncts = {{Predicate::Kind::kPageIdEq, page}};
      tree.subscribe(s);
    }
  }
  // Route the whole publishing stream.
  for (const auto& e : w.publishes) {
    ContentAttributes attrs;
    attrs.page = e.page;
    tree.publish(attrs);
  }
  return {tree.subscriptionCount(), tree.controlMessages(),
          tree.eventMessages(), tree.floodEventMessages()};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parseBenchEnv(
      argc, argv, "bench_routing_tree",
      "Substrate: broker-tree covering and routing savings");
  printHeader("Distributed broker tree: covering & routing savings",
              "the distributed-engine option of section 2");
  ExperimentContext ctx(42, 7, env.scale);
  const Workload& w = ctx.workload(TraceKind::kNews, 1.0);

  struct RowSpec {
    unsigned brokers;
    unsigned fanout;
    bool covering;
  };
  std::vector<RowSpec> rows;
  for (const auto& [brokers, fanout] :
       {std::pair{7u, 2u}, std::pair{15u, 2u}, std::pair{31u, 2u},
        std::pair{13u, 3u}}) {
    for (const bool covering : {false, true}) {
      rows.push_back({brokers, fanout, covering});
    }
  }

  // One task per tree configuration; each builds and drives its own
  // broker tree against the shared read-only workload.
  std::vector<TreeStats> stats(rows.size());
  std::vector<std::function<void()>> tasks;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    tasks.push_back([&, r] {
      stats[r] = runTree(w, rows[r].brokers, rows[r].fanout,
                         rows[r].covering);
    });
  }
  runTasks(env, std::move(tasks));

  AsciiTable table({"brokers", "fanout", "covering", "subs", "control msgs",
                    "event msgs", "flood msgs", "saving"});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double saving =
        100.0 * (1.0 - static_cast<double>(stats[r].events) /
                           static_cast<double>(stats[r].flood));
    table.row()
        .cell(std::to_string(rows[r].brokers))
        .cell(std::to_string(rows[r].fanout))
        .cell(rows[r].covering ? "yes" : "no")
        .cell(std::to_string(stats[r].subs))
        .cell(std::to_string(stats[r].control))
        .cell(std::to_string(stats[r].events))
        .cell(std::to_string(stats[r].flood))
        .cell(formatFixed(saving, 1) + "%");
  }
  std::printf("NEWS subscriptions routed over broker trees:\n%s\n",
              table.render().c_str());
  CsvSink csv;
  csv.add("routing_tree", table);
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: subscription-based routing sends events only down links\n"
      "with interested subtrees (large saving vs flooding); covering\n"
      "additionally collapses duplicate page-id advertisements, cutting\n"
      "control traffic without changing deliveries (verified by test).\n");
  return 0;
}
