// Substrate study: distributed notification routing. The paper's
// architecture allows the matching/routing engines to be distributed
// (section 2, citing Siena); this bench quantifies what the broker tree
// and the covering optimization buy on the NEWS subscription workload:
// control traffic (subscription advertisements) and event traffic
// (per-link transmissions) versus naive flooding.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main() {
  printHeader("Distributed broker tree: covering & routing savings",
              "the distributed-engine option of section 2");
  ExperimentContext ctx;
  const Workload& w = ctx.workload(TraceKind::kNews, 1.0);

  AsciiTable table({"brokers", "fanout", "covering", "subs", "control msgs",
                    "event msgs", "flood msgs", "saving"});
  for (const auto& [brokers, fanout] :
       {std::pair{7u, 2u}, std::pair{15u, 2u}, std::pair{31u, 2u},
        std::pair{13u, 3u}}) {
    for (const bool covering : {false, true}) {
      BrokerTree tree = BrokerTree::balanced(brokers, fanout, covering);
      // Proxies attach to the leaf brokers round-robin.
      std::vector<BrokerId> leaves;
      for (BrokerId b = 0; b < tree.numBrokers(); ++b) {
        if (tree.isLeaf(b)) leaves.push_back(b);
      }
      for (ProxyId p = 0; p < w.numProxies(); ++p) {
        tree.attachProxy(p, leaves[p % leaves.size()]);
      }
      // Register the workload's aggregated subscriptions as page-id
      // subscriptions (one per subscribed (page, proxy) pair).
      for (PageId page = 0; page < w.numPages(); ++page) {
        for (const auto& n : w.subscriptions(page)) {
          Subscription s;
          s.proxy = n.proxy;
          s.conjuncts = {{Predicate::Kind::kPageIdEq, page}};
          tree.subscribe(s);
        }
      }
      // Route the whole publishing stream.
      for (const auto& e : w.publishes) {
        ContentAttributes attrs;
        attrs.page = e.page;
        tree.publish(attrs);
      }
      const double saving =
          100.0 * (1.0 - static_cast<double>(tree.eventMessages()) /
                             static_cast<double>(tree.floodEventMessages()));
      table.row()
          .cell(std::to_string(brokers))
          .cell(std::to_string(fanout))
          .cell(covering ? "yes" : "no")
          .cell(std::to_string(tree.subscriptionCount()))
          .cell(std::to_string(tree.controlMessages()))
          .cell(std::to_string(tree.eventMessages()))
          .cell(std::to_string(tree.floodEventMessages()))
          .cell(formatFixed(saving, 1) + "%");
    }
  }
  std::printf("NEWS subscriptions routed over broker trees:\n%s\n",
              table.render().c_str());
  std::printf(
      "Reading: subscription-based routing sends events only down links\n"
      "with interested subtrees (large saving vs flooding); covering\n"
      "additionally collapses duplicate page-id advertisements, cutting\n"
      "control traffic without changing deliveries (verified by test).\n");
  return 0;
}
