// Extension: two-tier hierarchical caching (section 6 discussion —
// Gadde et al. observe a natural limit to the benefits of hierarchical
// CDNs). The question here: how much does a regional parent tier add on
// top of each leaf strategy? The paper's thesis predicts pushing already
// achieves most of what the hierarchy would, while the access-only
// baseline gains a lot.
#include "bench_common.h"

#include "pscd/core/hierarchy.h"

using namespace pscd;
using namespace pscd::bench;

int main() {
  printHeader("Extension: regional parent tier on top of each strategy",
              "the hierarchical-CDN discussion of section 6");
  ExperimentContext ctx;
  const Workload& w = ctx.workload(TraceKind::kNews, 1.0);
  const Network& net = ctx.network();

  AsciiTable table({"leaf strategy", "leaf H", "leaf+parent H",
                    "parent adds", "mean RT (ms)"});
  for (const StrategyKind kind :
       {StrategyKind::kGDStar, StrategyKind::kSUB, StrategyKind::kSG1,
        StrategyKind::kSG2, StrategyKind::kDCLAP}) {
    HierarchyConfig hc;
    hc.leafStrategy = kind;
    hc.parentStrategy = kind;
    hc.beta = paperBeta(kind, TraceKind::kNews, 0.05);
    hc.leafCapacityFraction = 0.05;
    hc.parentCapacityFraction = 0.05;
    const auto r = runHierarchical(w, net, hc);
    table.row()
        .cell(std::string(strategyName(kind)))
        .cell(pct(r.leafHitRatio()))
        .cell(pct(r.combinedHitRatio()))
        .cell(formatFixed(
                  100 * (r.combinedHitRatio() - r.leafHitRatio()), 1) +
              " pp")
        .cell(formatFixed(r.meanResponseTimeMs, 1));
  }
  std::printf("NEWS, SQ = 1, leaf capacity 5%%, 5 parents at 5%% of their "
              "subtree:\n%s\n",
              table.render().c_str());

  // Parent capacity sweep for the baseline: the "natural limit".
  AsciiTable sweep({"parent capacity", "GD* leaf H", "GD* combined H"});
  for (const double frac : {0.01, 0.05, 0.15, 0.40}) {
    HierarchyConfig hc;
    hc.parentCapacityFraction = frac;
    const auto r = runHierarchical(w, net, hc);
    sweep.row()
        .cell(formatFixed(100 * frac, 0) + "%")
        .cell(pct(r.leafHitRatio()))
        .cell(pct(r.combinedHitRatio()));
  }
  std::printf("Parent-capacity sweep (GD* leaves):\n%s\n",
              sweep.render().c_str());
  std::printf(
      "Reading: the parent tier rescues many of GD*'s misses but the\n"
      "combined ratio saturates (the hierarchical 'natural limit'); the\n"
      "push-based schemes gain far less because match-time placement\n"
      "already did the parent's job at the edge.\n");
  return 0;
}
