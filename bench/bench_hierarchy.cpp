// Extension: two-tier hierarchical caching (section 6 discussion —
// Gadde et al. observe a natural limit to the benefits of hierarchical
// CDNs). The question here: how much does a regional parent tier add on
// top of each leaf strategy? The paper's thesis predicts pushing already
// achieves most of what the hierarchy would, while the access-only
// baseline gains a lot.
#include "bench_common.h"

#include "pscd/sim/hierarchy.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env = parseBenchEnv(
      argc, argv, "bench_hierarchy",
      "Extension: regional parent tier on top of each strategy");
  printHeader("Extension: regional parent tier on top of each strategy",
              "the hierarchical-CDN discussion of section 6");
  ExperimentContext ctx(42, 7, env.scale);
  const Workload& w = ctx.workload(TraceKind::kNews, 1.0);
  const Network& net = ctx.network();

  constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar,
                                     StrategyKind::kSUB, StrategyKind::kSG1,
                                     StrategyKind::kSG2, StrategyKind::kDCLAP};
  constexpr double kParentFractions[] = {0.01, 0.05, 0.15, 0.40};

  // One task per hierarchical run (5 per-strategy + 4 sweep rows), all
  // over the shared read-only workload/network.
  std::vector<HierarchyResult> byKind(std::size(kKinds));
  std::vector<HierarchyResult> bySweep(std::size(kParentFractions));
  std::vector<std::function<void()>> tasks;
  for (std::size_t k = 0; k < std::size(kKinds); ++k) {
    tasks.push_back([&, k] {
      HierarchyConfig hc;
      hc.leafStrategy = kKinds[k];
      hc.parentStrategy = kKinds[k];
      hc.beta = paperBeta(kKinds[k], TraceKind::kNews, 0.05);
      hc.leafCapacityFraction = 0.05;
      hc.parentCapacityFraction = 0.05;
      byKind[k] = runHierarchical(w, net, hc);
    });
  }
  for (std::size_t f = 0; f < std::size(kParentFractions); ++f) {
    tasks.push_back([&, f] {
      HierarchyConfig hc;
      hc.parentCapacityFraction = kParentFractions[f];
      bySweep[f] = runHierarchical(w, net, hc);
    });
  }
  runTasks(env, std::move(tasks));

  AsciiTable table({"leaf strategy", "leaf H", "leaf+parent H",
                    "parent adds", "mean RT (ms)"});
  for (std::size_t k = 0; k < std::size(kKinds); ++k) {
    const auto& r = byKind[k];
    table.row()
        .cell(std::string(strategyName(kKinds[k])))
        .cell(pct(r.leafHitRatio()))
        .cell(pct(r.combinedHitRatio()))
        .cell(formatFixed(
                  100 * (r.combinedHitRatio() - r.leafHitRatio()), 1) +
              " pp")
        .cell(formatFixed(r.meanResponseTimeMs, 1));
  }
  std::printf("NEWS, SQ = 1, leaf capacity 5%%, 5 parents at 5%% of their "
              "subtree:\n%s\n",
              table.render().c_str());

  // Parent capacity sweep for the baseline: the "natural limit".
  AsciiTable sweep({"parent capacity", "GD* leaf H", "GD* combined H"});
  for (std::size_t f = 0; f < std::size(kParentFractions); ++f) {
    const auto& r = bySweep[f];
    sweep.row()
        .cell(formatFixed(100 * kParentFractions[f], 0) + "%")
        .cell(pct(r.leafHitRatio()))
        .cell(pct(r.combinedHitRatio()));
  }
  std::printf("Parent-capacity sweep (GD* leaves):\n%s\n",
              sweep.render().c_str());
  CsvSink csv;
  csv.add("hierarchy_by_strategy", table);
  csv.add("hierarchy_parent_sweep", sweep);
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: the parent tier rescues many of GD*'s misses but the\n"
      "combined ratio saturates (the hierarchical 'natural limit'); the\n"
      "push-based schemes gain far less because match-time placement\n"
      "already did the parent's job at the edge.\n");
  return 0;
}
