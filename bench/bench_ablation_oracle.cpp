// Ablation: clairvoyant upper bound. A Belady-style oracle that knows
// every future request bounds the achievable hit ratio at each capacity;
// the gap between SG2/SR and the oracle is the room any smarter online
// strategy could still claim.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

namespace {

double runOracle(const Workload& w, const Network& net,
                 double capacityFraction) {
  SimConfig sc;
  sc.capacityFraction = capacityFraction;
  Simulator capacityHelper(w, net, sc);
  const auto schedules = buildRequestSchedules(w);
  std::vector<std::unique_ptr<DistributionStrategy>> proxies;
  for (ProxyId p = 0; p < w.numProxies(); ++p) {
    proxies.push_back(std::make_unique<OracleStrategy>(
        capacityHelper.proxyCapacity(p), schedules[p]));
  }
  std::vector<Version> latest(w.numPages(), 0);
  std::uint64_t hits = 0;
  std::size_t pi = 0, ri = 0;
  while (pi < w.publishes.size() || ri < w.requests.size()) {
    const bool takePublish =
        pi < w.publishes.size() &&
        (ri >= w.requests.size() ||
         w.publishes[pi].time <= w.requests[ri].time);
    if (takePublish) {
      const auto& e = w.publishes[pi++];
      latest[e.page] = e.version;
      for (const auto& n : w.subscriptions(e.page)) {
        proxies[n.proxy]->onPush(
            {e.page, e.version, e.size, n.matchCount, e.time});
      }
    } else {
      const auto& r = w.requests[ri++];
      hits += proxies[r.proxy]
                  ->onRequest({r.page, latest[r.page], w.pages[r.page].size,
                               0, r.time})
                  .hit;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(w.requests.size());
}

}  // namespace

int main() {
  printHeader("Ablation: clairvoyant (Belady-style) upper bound",
              "an upper bound the paper does not report");
  ExperimentContext ctx;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    AsciiTable table({"capacity", "GD*", "SG2", "SR", "ORACLE"});
    for (const double cap : kCapacityFractions) {
      table.row().cell(formatFixed(100 * cap, 0) + "%");
      for (const StrategyKind kind :
           {StrategyKind::kGDStar, StrategyKind::kSG2, StrategyKind::kSR}) {
        table.cell(pct(ctx.run(trace, 1.0, kind, cap).hitRatio()));
      }
      table.cell(pct(runOracle(ctx.workload(trace, 1.0), ctx.network(),
                               cap)));
    }
    std::printf("Hit ratio (%%), trace %s, SQ = 1:\n%s\n",
                std::string(traceName(trace)).c_str(),
                table.render().c_str());
  }
  std::printf(
      "Reading: with perfect subscriptions SG2/SR close most of the gap\n"
      "to the clairvoyant bound; the residue is version churn plus pages\n"
      "whose single request cannot amortize their storage.\n");
  return 0;
}
