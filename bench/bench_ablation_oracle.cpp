// Ablation: clairvoyant upper bound. A Belady-style oracle that knows
// every future request bounds the achievable hit ratio at each capacity;
// the gap between SG2/SR and the oracle is the room any smarter online
// strategy could still claim.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

namespace {

double runOracle(const Workload& w, const Network& net,
                 double capacityFraction) {
  SimConfig sc;
  sc.capacityFraction = capacityFraction;
  Simulator capacityHelper(w, net, sc);
  const auto schedules = buildRequestSchedules(w);
  std::vector<std::unique_ptr<DistributionStrategy>> proxies;
  for (ProxyId p = 0; p < w.numProxies(); ++p) {
    proxies.push_back(std::make_unique<OracleStrategy>(
        capacityHelper.proxyCapacity(p), schedules[p]));
  }
  std::vector<Version> latest(w.numPages(), 0);
  std::uint64_t hits = 0;
  std::size_t pi = 0, ri = 0;
  while (pi < w.publishes.size() || ri < w.requests.size()) {
    const bool takePublish =
        pi < w.publishes.size() &&
        (ri >= w.requests.size() ||
         w.publishes[pi].time <= w.requests[ri].time);
    if (takePublish) {
      const auto& e = w.publishes[pi++];
      latest[e.page] = e.version;
      for (const auto& n : w.subscriptions(e.page)) {
        proxies[n.proxy]->onPush(
            {e.page, e.version, e.size, n.matchCount, e.time});
      }
    } else {
      const auto& r = w.requests[ri++];
      hits += proxies[r.proxy]
                  ->onRequest({r.page, latest[r.page], w.pages[r.page].size,
                               0, r.time})
                  .hit;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(w.requests.size());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_ablation_oracle",
                    "Ablation: clairvoyant (Belady-style) upper bound");
  printHeader("Ablation: clairvoyant (Belady-style) upper bound",
              "an upper bound the paper does not report");
  ExperimentContext ctx(42, 7, env.scale);
  constexpr TraceKind kTraces[] = {TraceKind::kNews, TraceKind::kAlternative};
  constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar,
                                     StrategyKind::kSG2, StrategyKind::kSR};

  // The online strategies go through the shared cell runner; the oracle
  // runs fan out as driver tasks over the same pool configuration.
  std::vector<ExperimentCell> cells;
  for (const TraceKind trace : kTraces) {
    for (const double cap : kCapacityFractions) {
      for (const StrategyKind kind : kKinds) {
        cells.push_back({trace, 1.0, kind, cap});
      }
    }
  }
  runCells(ctx, env, cells);

  std::vector<std::vector<double>> oracle(
      std::size(kTraces),
      std::vector<double>(std::size(kCapacityFractions), 0.0));
  std::vector<std::function<void()>> tasks;
  for (std::size_t t = 0; t < std::size(kTraces); ++t) {
    for (std::size_t c = 0; c < std::size(kCapacityFractions); ++c) {
      tasks.push_back([&, t, c] {
        oracle[t][c] = runOracle(ctx.workload(kTraces[t], 1.0),
                                 ctx.network(), kCapacityFractions[c]);
      });
    }
  }
  runTasks(env, std::move(tasks));

  CsvSink csv;
  for (std::size_t t = 0; t < std::size(kTraces); ++t) {
    AsciiTable table({"capacity", "GD*", "SG2", "SR", "ORACLE"});
    for (std::size_t c = 0; c < std::size(kCapacityFractions); ++c) {
      table.row().cell(formatFixed(100 * kCapacityFractions[c], 0) + "%");
      for (const StrategyKind kind : kKinds) {
        table.cell(pct(
            ctx.run(kTraces[t], 1.0, kind, kCapacityFractions[c])
                .hitRatio()));
      }
      table.cell(pct(oracle[t][c]));
    }
    std::printf("Hit ratio (%%), trace %s, SQ = 1:\n%s\n",
                std::string(traceName(kTraces[t])).c_str(),
                table.render().c_str());
    csv.add(std::string("ablation_oracle_") +
                std::string(traceName(kTraces[t])),
            table);
  }
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: with perfect subscriptions SG2/SR close most of the gap\n"
      "to the clairvoyant bound; the residue is version churn plus pages\n"
      "whose single request cannot amortize their storage.\n");
  return 0;
}
