// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <string>

#include "pscd/pscd.h"

namespace pscd::bench {

/// Strategies shown in figures 4 and 5.
inline constexpr StrategyKind kFigureStrategies[] = {
    StrategyKind::kGDStar, StrategyKind::kSUB, StrategyKind::kSG1,
    StrategyKind::kSG2,    StrategyKind::kSR,  StrategyKind::kDCLAP,
};

inline std::string pct(double ratio) { return formatFixed(100.0 * ratio, 1); }

inline void printHeader(const std::string& title, const std::string& paper) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s of Chen, LaPaugh & Singh, Middleware 2003)\n",
              paper.c_str());
  std::printf("==================================================\n\n");
}

}  // namespace pscd::bench
