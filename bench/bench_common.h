// Shared helpers for the figure/table reproduction binaries.
//
// Every driver accepts:
//   --jobs N   worker threads for the simulation cells (0 = one per
//              hardware thread, the default; 1 = fully serial)
//   --scale F  shrink the canonical workload by F in (0, 1] for smoke
//              runs (1 = the paper's full setup)
//   --csv P    also export every printed table to CSV file P
//
// Drivers are two-phase so parallelism cannot perturb output: phase one
// schedules every (trace x strategy x config) cell on a ParallelRunner
// backed by the annotated ThreadPool; phase two renders tables on the
// main thread through ExperimentContext's memoized results, in the same
// deterministic order regardless of --jobs. Serial and parallel runs of
// a driver therefore emit byte-identical stdout and CSV.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "pscd/pscd.h"
#include "pscd/sim/parallel_runner.h"
#include "pscd/util/mutex.h"
#include "pscd/util/thread_pool.h"

namespace pscd::bench {

/// Strategies shown in figures 4 and 5.
inline constexpr StrategyKind kFigureStrategies[] = {
    StrategyKind::kGDStar, StrategyKind::kSUB, StrategyKind::kSG1,
    StrategyKind::kSG2,    StrategyKind::kSR,  StrategyKind::kDCLAP,
};

inline std::string pct(double ratio) { return formatFixed(100.0 * ratio, 1); }

inline void printHeader(const std::string& title, const std::string& paper) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s of Chen, LaPaugh & Singh, Middleware 2003)\n",
              paper.c_str());
  std::printf("==================================================\n\n");
}

/// Common command-line settings of every bench driver.
struct BenchEnv {
  unsigned jobs = 1;       // resolved worker count
  double scale = 1.0;      // workload scale in (0, 1]
  std::string csvPath;     // empty = no CSV export
};

/// Outcome of tryParseBenchEnv: parsed fine, --help was requested (the
/// message holds the help text), or the options were invalid (the
/// message holds the fully formatted diagnostic).
enum class BenchEnvStatus { kOk, kHelp, kError };

/// A driver-specific option registered alongside the shared --jobs /
/// --scale / --csv set, so drivers with extra knobs (bench_serve's
/// --qps, --mode, ...) extend the one parser instead of growing a
/// second ad-hoc one. Precedence matches the shared options: explicit
/// flag > `envVar` (when non-empty and set) > `defaultValue`.
struct BenchOption {
  std::string name;          // long option name, without the "--"
  std::string help;          // one-line --help description
  std::string defaultValue;  // builtin default
  std::string envVar;        // optional env var overriding the default
};

/// Testable core of parseBenchEnv. Environment variables provide
/// *defaults* that explicit flags always override:
///
///   PSCD_BENCH_JOBS   default for --jobs
///   PSCD_BENCH_SCALE  default for --scale
///   PSCD_BENCH_CSV    default for --csv
///
/// All environment access goes through `envLookup` (pass nullptr-
/// returning lambdas in tests; parseBenchEnv wires std::getenv), so the
/// precedence logic is unit-testable without mutating the process
/// environment. Does not print or exit.
inline BenchEnvStatus tryParseBenchEnv(
    int argc, const char* const* argv, const std::string& program,
    const std::string& description,
    const std::function<const char*(const char*)>& envLookup, BenchEnv* out,
    std::string* message, const std::vector<BenchOption>& extraOptions = {},
    std::map<std::string, std::string>* extraValues = nullptr) {
  const auto envDefault = [&](const char* name, const std::string& fallback) {
    const char* v =
        envLookup && name != nullptr && *name != '\0' ? envLookup(name)
                                                      : nullptr;
    return v != nullptr && *v != '\0' ? std::string(v) : fallback;
  };
  ArgParser parser(program, description);
  parser.addOption("jobs",
                   "worker threads for simulation cells "
                   "(0 = hardware concurrency)",
                   envDefault("PSCD_BENCH_JOBS", "0"));
  parser.addOption("scale",
                   "workload scale factor in (0, 1]; 1 = paper setup",
                   envDefault("PSCD_BENCH_SCALE", "1"));
  parser.addOption("csv", "also write every table to this CSV file",
                   envDefault("PSCD_BENCH_CSV", ""));
  for (const BenchOption& option : extraOptions) {
    parser.addOption(option.name, option.help,
                     envDefault(option.envVar.c_str(), option.defaultValue));
  }
  if (!parser.parse(argc, argv)) {
    if (parser.error().empty()) {
      *message = parser.help();
      return BenchEnvStatus::kHelp;
    }
    *message = program + ": " + parser.error() + "\n" + parser.help();
    return BenchEnvStatus::kError;
  }
  std::int64_t jobs = 0;
  try {  // malformed values can arrive via PSCD_BENCH_* as well as flags
    jobs = parser.optionInt("jobs");
    out->scale = parser.optionDouble("scale");
  } catch (const std::invalid_argument& e) {
    *message = program + ": " + e.what() + "\n";
    return BenchEnvStatus::kError;
  }
  if (jobs < 0) {
    *message = program + ": --jobs must be >= 0\n";
    return BenchEnvStatus::kError;
  }
  out->jobs = resolveJobs(static_cast<unsigned>(jobs));
  if (!(out->scale > 0.0 && out->scale <= 1.0)) {
    *message = program + ": --scale must be in (0, 1]\n";
    return BenchEnvStatus::kError;
  }
  out->csvPath = parser.option("csv");
  if (extraValues != nullptr) {
    for (const BenchOption& option : extraOptions) {
      (*extraValues)[option.name] = parser.option(option.name);
    }
  }
  return BenchEnvStatus::kOk;
}

/// Parses the shared bench options (plus any driver-specific extras).
/// Exits on --help (0) or bad usage (2), so drivers can use the result
/// unconditionally.
inline BenchEnv parseBenchEnv(
    int argc, const char* const* argv, const std::string& program,
    const std::string& description,
    const std::vector<BenchOption>& extraOptions = {},
    std::map<std::string, std::string>* extraValues = nullptr) {
  BenchEnv env;
  std::string message;
  const BenchEnvStatus status = tryParseBenchEnv(
      argc, argv, program, description,
      [](const char* name) { return std::getenv(name); }, &env, &message,
      extraOptions, extraValues);
  if (status == BenchEnvStatus::kHelp) {
    std::printf("%s", message.c_str());
    std::exit(0);
  }
  if (status == BenchEnvStatus::kError) {
    std::fprintf(stderr, "%s", message.c_str());
    std::exit(2);
  }
  return env;
}

/// Runs every cell across env.jobs workers (inline when jobs = 1). The
/// results land in the context's memo, so the driver's rendering phase
/// reads them back through the ordinary ctx.run()/runWithBeta() calls
/// without recomputing anything.
inline void runCells(ExperimentContext& ctx, const BenchEnv& env,
                     const std::vector<ExperimentCell>& cells) {
  ParallelRunner runner(env.jobs);
  for (const ExperimentCell& cell : cells) runner.schedule(ctx, cell);
  runner.runAll();
}

/// Fan-out for driver-specific work that does not go through
/// ExperimentContext cells (custom Simulator configs, broker trees,
/// hierarchies). Each task must write to its own pre-sized result slot;
/// tasks run inline, in order, when jobs = 1.
inline void runTasks(const BenchEnv& env,
                     std::vector<std::function<void()>> tasks) {
  if (env.jobs <= 1) {
    runAll(nullptr, std::move(tasks));
    return;
  }
  ThreadPool pool(env.jobs);
  runAll(&pool, std::move(tasks));
}

/// Collects labeled tables and writes them to one CSV file. Each table
/// contributes a header row and its data rows, all prefixed with the
/// table's label, so several tables share a file unambiguously.
///
/// Race-free by construction: add() serializes behind an annotated
/// mutex (drivers call it from the main thread after the ThreadPool has
/// been joined, but the sink does not rely on that), and writeTo()
/// first writes a temp file and then renames it into place, so two
/// bench processes pointed at the same --csv path can never interleave
/// partial output.
class CsvSink {
 public:
  void add(const std::string& label, const AsciiTable& table)
      PSCD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    CsvWriter csv(buffer_);
    csv.field(label);
    for (const std::string& column : table.header()) csv.field(column);
    csv.endRow();
    for (const auto& row : table.rowData()) {
      csv.field(label);
      for (const std::string& cell : row) csv.field(cell);
      csv.endRow();
    }
  }

  /// Writes everything added so far to `path`; no-op when empty. Exits
  /// with an error message if the file cannot be written.
  void writeTo(const std::string& path) PSCD_EXCLUDES(mu_) {
    if (path.empty()) return;
    std::string content;
    {
      MutexLock lock(mu_);
      content = buffer_.str();
    }
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out << content;
      if (!out) {
        std::fprintf(stderr, "csv export: cannot write %s\n", tmp.c_str());
        std::exit(1);
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::fprintf(stderr, "csv export: cannot rename %s -> %s\n",
                   tmp.c_str(), path.c_str());
      std::exit(1);
    }
  }

 private:
  Mutex mu_;
  std::ostringstream buffer_ PSCD_GUARDED_BY(mu_);
};

// --- BENCH_*.json trajectory histories -------------------------------
//
// Persisted bench histories (BENCH_micro.json, BENCH_serve.json) are
// append-only arrays of timestamped run entries, capped at
// kMicroHistoryLimit, under a top-level schema tag. The repo has a JSON
// *writer* only, so the helpers below splice raw entry objects
// textually: they scan with a string-literal-aware depth counter, never
// interpret numbers, and round-trip unknown fields untouched.

inline constexpr std::size_t kMicroHistoryLimit = 50;

/// Whole file as a string; empty when missing or unreadable (a fresh
/// checkout simply starts a new history).
inline std::string readTextFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::string();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Splits the top-level `"entries":[...]` array of a history document
/// with the given schema tag into one raw JSON string per entry object.
/// Returns empty for anything that does not carry the tag.
inline std::vector<std::string> extractTrajectoryEntries(
    const std::string& doc, const std::string& schema) {
  std::vector<std::string> entries;
  if (doc.find("\"" + schema + "\"") == std::string::npos) return entries;
  const std::size_t tag = doc.find("\"entries\":[");
  if (tag == std::string::npos) return entries;
  std::size_t i = tag + std::string("\"entries\":[").size();
  int depth = 0;
  bool inString = false;
  std::size_t start = std::string::npos;
  for (; i < doc.size(); ++i) {
    const char c = doc[i];
    if (inString) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') {
      inString = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0 && start != std::string::npos) {
        entries.push_back(doc.substr(start, i - start + 1));
        start = std::string::npos;
      }
    } else if (c == ']' && depth == 0) {
      return entries;  // end of the entries array
    }
  }
  return std::vector<std::string>();  // truncated document: start fresh
}

/// The micro-bench history (schema pscd-bench-micro-v2).
inline std::vector<std::string> extractMicroEntries(const std::string& doc) {
  return extractTrajectoryEntries(doc, "pscd-bench-micro-v2");
}

/// Migrates a v1 single-snapshot document into one v2 entry. The v1
/// run predates timestamping, so it gets timestamp 0 ("unknown, before
/// the history began"). Returns "" when doc is not a v1 snapshot.
inline std::string migrateMicroV1(const std::string& doc) {
  const std::string v1Prefix = "{\"schema\":\"pscd-bench-micro-v1\",";
  if (doc.compare(0, v1Prefix.size(), v1Prefix) != 0) return std::string();
  return "{\"timestamp\":0," + doc.substr(v1Prefix.size());
}

/// Renders a full history document under `schema` from raw entry
/// objects, keeping only the newest `limit` entries (the tail of the
/// vector).
inline std::string renderTrajectoryHistory(
    const std::string& schema, const std::vector<std::string>& entries,
    std::size_t limit = kMicroHistoryLimit) {
  const std::size_t begin =
      entries.size() > limit ? entries.size() - limit : 0;
  std::string out = "{\"schema\":\"" + schema + "\",\"entries\":[";
  for (std::size_t i = begin; i < entries.size(); ++i) {
    if (i > begin) out += ',';
    out += entries[i];
  }
  out += "]}";
  return out;
}

/// The micro-bench history document (schema pscd-bench-micro-v2).
inline std::string renderMicroHistory(
    const std::vector<std::string>& entries,
    std::size_t limit = kMicroHistoryLimit) {
  return renderTrajectoryHistory("pscd-bench-micro-v2", entries, limit);
}

}  // namespace pscd::bench
