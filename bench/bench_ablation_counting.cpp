// Ablation: access-count bookkeeping in the subscription-aware schemes.
// The paper states GD*'s f(p) follows In-Cache LFU (discarded on
// eviction) but leaves open whether the `a` in eqs. 3-5 is in-cache or
// the proxy's full access history. Our implementation keeps a persistent
// per-page counter (the proxy observes every request regardless of cache
// state); this bench quantifies that choice by racing both variants.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

namespace {

double runVariant(const Workload& w, const Network& net,
                  GdsFamilyConfig config, double capacityFraction) {
  SimConfig sc;
  sc.capacityFraction = capacityFraction;
  Simulator capacityHelper(w, net, sc);
  std::vector<std::unique_ptr<DistributionStrategy>> proxies;
  for (ProxyId p = 0; p < w.numProxies(); ++p) {
    proxies.push_back(std::make_unique<GdsFamilyStrategy>(
        capacityHelper.proxyCapacity(p), net.fetchCost(p), config));
  }
  std::vector<Version> latest(w.numPages(), 0);
  std::uint64_t hits = 0;
  std::size_t pi = 0, ri = 0;
  while (pi < w.publishes.size() || ri < w.requests.size()) {
    const bool takePublish =
        pi < w.publishes.size() &&
        (ri >= w.requests.size() ||
         w.publishes[pi].time <= w.requests[ri].time);
    if (takePublish) {
      const auto& e = w.publishes[pi++];
      latest[e.page] = e.version;
      for (const auto& n : w.subscriptions(e.page)) {
        proxies[n.proxy]->onPush(
            {e.page, e.version, e.size, n.matchCount, e.time});
      }
    } else {
      const auto& r = w.requests[ri++];
      hits += proxies[r.proxy]
                  ->onRequest({r.page, latest[r.page], w.pages[r.page].size,
                               w.subscriptionCount(r.page, r.proxy), r.time})
                  .hit;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(w.requests.size());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parseBenchEnv(
      argc, argv, "bench_ablation_counting",
      "Ablation: persistent vs in-cache access counting in eqs. 3-5");
  printHeader("Ablation: persistent vs in-cache access counting (a in "
              "eqs. 3-5)",
              "an implementation decision the paper leaves open");
  ExperimentContext ctx(42, 7, env.scale);
  const std::vector<std::pair<const char*, GdsFamilyConfig>> kMethods = {
      {"SG1", sg1Config(2.0)}, {"SG2", sg2Config(2.0)}, {"SR", srConfig()}};
  constexpr TraceKind kTraces[] = {TraceKind::kNews, TraceKind::kAlternative};

  // Shared inputs first, then one task per (trace, method, variant).
  for (const TraceKind trace : kTraces) ctx.workload(trace, 1.0);
  ctx.network();
  // hit[trace][method][0 = in-cache, 1 = persistent]
  std::vector<std::vector<std::array<double, 2>>> hit(
      std::size(kTraces),
      std::vector<std::array<double, 2>>(kMethods.size(), {0.0, 0.0}));
  std::vector<std::function<void()>> tasks;
  for (std::size_t t = 0; t < std::size(kTraces); ++t) {
    for (std::size_t m = 0; m < kMethods.size(); ++m) {
      for (const bool persistent : {false, true}) {
        tasks.push_back([&, t, m, persistent] {
          GdsFamilyConfig config = kMethods[m].second;
          config.persistentAccessCounts = persistent;
          hit[t][m][persistent ? 1 : 0] =
              runVariant(ctx.workload(kTraces[t], 1.0), ctx.network(),
                         config, 0.05);
        });
      }
    }
  }
  runTasks(env, std::move(tasks));

  AsciiTable table({"trace", "method", "in-cache a", "persistent a",
                    "delta"});
  for (std::size_t t = 0; t < std::size(kTraces); ++t) {
    for (std::size_t m = 0; m < kMethods.size(); ++m) {
      const double hIn = hit[t][m][0];
      const double hPersist = hit[t][m][1];
      table.row()
          .cell(std::string(traceName(kTraces[t])))
          .cell(kMethods[m].first)
          .cell(pct(hIn))
          .cell(pct(hPersist))
          .cell(formatFixed(100 * (hPersist - hIn), 1) + " pp");
    }
  }
  std::printf("Hit ratio (%%), SQ = 1, capacity = 5%%:\n%s\n",
              table.render().c_str());
  CsvSink csv;
  csv.add("ablation_counting", table);
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: with persistent counters a drained page (a >= s) stays\n"
      "recognizable after an eviction/re-push cycle, so SG2/SR reclaim\n"
      "its space; with in-cache counters the page re-enters with a = 0\n"
      "and masquerades as undrained. SG1 (s + a) is insensitive.\n");
  return 0;
}
