// Serving-tier load harness: drives a pscd_daemon over the wire
// protocol and reports latency percentiles and throughput.
//
// Two generator modes (DESIGN.md §13):
//
//   --mode closed  N free-running workers (--concurrency), each with
//                  its own connection, issuing the next op the moment
//                  the previous response lands. Measures peak
//                  sustainable throughput.
//   --mode open    YCSB-style: send times are precomputed from
//                  --qps/--pacing/--seed (buildOpenLoopSchedule) and
//                  never depend on response times; an arrival that
//                  finds every worker busy is *dropped and counted*,
//                  not delayed, so the reported percentiles do not
//                  suffer coordinated omission.
//
// Both modes run a warmup phase (discarded) before the measure phase,
// and record per-worker LatencyHistograms that merge associatively into
// the final percentiles. Unlike the figure benches this binary measures
// wall-clock time, so its numbers are diagnostics, not diffable output.
//
// Targets --connect HOST:PORT, or spawns an in-process ServeHost over
// loopback when --connect is empty (the ctest serve.loopback_smoke
// path). Results go to stdout (ASCII table), optionally --csv, and
// append a timestamped entry to BENCH_serve.json (schema
// pscd-bench-serve-v2, same capped-history format as BENCH_micro.json;
// v1 entries are carried forward unchanged on first write).
// --scale multiplies the warmup/measure durations for smoke runs;
// --jobs is accepted for flag uniformity but unused (--concurrency
// sets the worker count).
//
// Fault accounting (DESIGN.md §14): workers use the hardened client
// call with --deadline-ms / --retries / --backoff-ms, so injected
// faults become timeout / reset / shed / failed counters in the table,
// CSV and JSON instead of killing the run. --chaos interposes an
// in-process ChaosProxy between the workers and the daemon
// (--chaos-latency-ms, --chaos-jitter-ms, --chaos-bps,
// --chaos-reset-bytes, --chaos-fault-conns, --chaos-seed); the
// workload seeder always dials the daemon directly so setup is never
// subject to injected faults.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "pscd/net/chaos.h"
#include "pscd/net/client.h"
#include "pscd/net/daemon.h"
#include "pscd/net/histogram.h"
#include "pscd/net/pacing.h"
#include "pscd/util/wallclock.h"

namespace pscd::bench {
namespace {

using net::LatencyHistogram;
using net::ResponseBody;
using net::WireClient;

struct ServeOptions {
  std::string mode = "closed";  // "closed" | "open"
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;   // 0 = spawn an in-process ServeHost
  double qps = 2000.0;      // open mode target arrival rate
  unsigned concurrency = 4;
  double measureSeconds = 2.0;
  double warmupSeconds = 0.5;
  std::uint32_t pages = 256;
  std::uint32_t proxies = 8;
  StrategyKind strategy = StrategyKind::kGDStar;
  std::uint64_t seed = 1;
  net::PacingKind pacing = net::PacingKind::kUniform;
  std::string jsonPath = "BENCH_serve.json";
  // Hardened-call knobs (0 keeps the legacy wait-forever behavior).
  double deadlineMs = 0.0;
  std::uint32_t retries = 0;
  double backoffMs = 0.0;
  // Chaos proxy knobs (--chaos interposes the proxy).
  bool chaos = false;
  double chaosLatencyMs = 0.0;
  double chaosJitterMs = 0.0;
  double chaosBps = 0.0;
  std::uint64_t chaosResetBytes = 0;
  std::uint32_t chaosFaultConns = 0;
  std::uint64_t chaosSeed = 1;
};

/// One load-generator worker: private connection, RNG stream, and
/// histogram, so the measure phase shares nothing between threads.
struct Worker {
  std::unique_ptr<WireClient> client;
  Rng rng{0};
  LatencyHistogram hist;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  std::uint64_t failed = 0;  // ops that exhausted deadline/retries
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  Version nextVersion = 2;
  std::string failure;  // first fatal client error, "" when healthy
};

/// 10% publishes (fresh versions keep the push path busy), 90%
/// requests across the full proxy/page grid. A degraded op (timeout,
/// reset, shed past the retry budget) is counted in `failed`, not
/// thrown; returns false only on a fatal protocol error.
bool doOneOp(Worker& w, const ServeOptions& opt) {
  const bool publish = w.rng.uniform() < 0.1;
  const auto page = static_cast<PageId>(w.rng.uniformInt(
      static_cast<std::uint64_t>(opt.pages)));
  net::WireFrame frame;
  bool isRequest = false;
  if (publish) {
    frame.body = net::PublishBody{
        page, w.nextVersion++,
        64 + w.rng.uniformInt(std::uint64_t{192})};
  } else {
    const auto proxy = static_cast<ProxyId>(w.rng.uniformInt(
        static_cast<std::uint64_t>(opt.proxies)));
    frame.body = net::RequestBody{proxy, page};
    isRequest = true;
  }
  net::CallOptions callOptions;
  callOptions.deadlineSeconds = opt.deadlineMs / 1000.0;
  callOptions.retries = opt.retries;
  callOptions.backoffSeconds = opt.backoffMs / 1000.0;
  const double t0 = monotonicSeconds();
  const net::CallResult r = w.client->call(frame, callOptions);
  if (r.ok()) {
    w.hist.record(monotonicSeconds() - t0);
    ++w.ops;
    if (isRequest) {
      ++w.requests;
      if (r.response.hit != 0) ++w.hits;
    }
    if (!r.response.ok()) ++w.errors;
    return true;
  }
  if (r.error == net::WireError::kProtocol) {
    if (w.failure.empty()) w.failure = r.message;
    return false;
  }
  ++w.failed;
  return true;
}

/// Publishes every page once and lays down a deterministic subscription
/// grid (each proxy subscribes to every fourth page, phase-shifted), so
/// requests hit live pages and publishes fan out.
void seedWorkload(WireClient& client, const ServeOptions& opt) {
  for (PageId page = 0; page < opt.pages; ++page) {
    client.publish(page, 1, 64 + page % 192);
  }
  for (ProxyId proxy = 0; proxy < opt.proxies; ++proxy) {
    for (PageId page = 0; page < opt.pages; ++page) {
      if ((page + proxy) % 4 == 0) client.subscribe(proxy, page);
    }
  }
}

std::vector<Worker> makeWorkers(const ServeOptions& opt) {
  std::vector<Worker> workers(opt.concurrency);
  for (unsigned i = 0; i < opt.concurrency; ++i) {
    workers[i].client = std::make_unique<WireClient>(opt.host, opt.port);
    // Disjoint version ranges so concurrent publishers never race the
    // same (page, version) pair.
    workers[i].nextVersion = 2 + i * 1000000u;
    workers[i].rng.reseed(opt.seed * 7919 + i);
  }
  return workers;
}

/// Closed-loop phase: every worker free-runs until the deadline.
void runClosedPhase(std::vector<Worker>& workers, const ServeOptions& opt,
                    double seconds) {
  const double deadline = monotonicSeconds() + seconds;
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (Worker& w : workers) {
    threads.emplace_back([&w, &opt, deadline] {
      try {
        while (monotonicSeconds() < deadline && doOneOp(w, opt)) {
        }
      } catch (const std::exception& e) {
        w.failure = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

/// Open-loop measure phase. The dispatcher walks the precomputed
/// schedule against the wall clock and hands each arrival to a free
/// worker — or drops it. Returns the drop count.
std::uint64_t runOpenPhase(std::vector<Worker>& workers,
                           const ServeOptions& opt) {
  net::PacingConfig pacing;
  pacing.targetQps = opt.qps;
  pacing.durationSeconds = opt.measureSeconds;
  pacing.kind = opt.pacing;
  pacing.seed = opt.seed;
  const std::vector<double> schedule = net::buildOpenLoopSchedule(pacing);

  // All three fields below are guarded by mu (locals cannot carry the
  // PSCD_GUARDED_BY annotation, so the protocol is enforced by review
  // here: every access is under MutexLock).
  Mutex mu;
  CondVar cv;
  std::vector<int> freeWorkers;
  std::vector<bool> assigned;
  bool done = false;
  {
    MutexLock lock(mu);
    assigned.assign(workers.size(), false);
    for (int i = static_cast<int>(workers.size()) - 1; i >= 0; --i) {
      freeWorkers.push_back(i);
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    Worker& w = workers[i];
    threads.emplace_back([&w, &opt, &mu, &cv, &freeWorkers, &assigned, &done,
                          i] {
      while (true) {
        {
          MutexLock lock(mu);
          cv.wait(mu, [&] { return assigned[i] || done; });
          if (!assigned[i]) return;  // done, nothing assigned: exit
          assigned[i] = false;
        }
        try {
          if (w.failure.empty()) doOneOp(w, opt);
        } catch (const std::exception& e) {
          if (w.failure.empty()) w.failure = e.what();
        }
        MutexLock lock(mu);
        freeWorkers.push_back(static_cast<int>(i));
      }
    });
  }

  std::uint64_t dropped = 0;
  const double start = monotonicSeconds();
  for (const double at : schedule) {
    sleepSeconds(at - (monotonicSeconds() - start));
    MutexLock lock(mu);
    if (freeWorkers.empty()) {
      ++dropped;  // never delay: delaying would re-introduce
                  // coordinated omission
      continue;
    }
    const int worker = freeWorkers.back();
    freeWorkers.pop_back();
    assigned[static_cast<std::size_t>(worker)] = true;
    cv.notifyAll();
  }
  {
    MutexLock lock(mu);
    done = true;
  }
  cv.notifyAll();
  for (std::thread& t : threads) t.join();
  return dropped;
}

struct ServeResult {
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t connResets = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t retriesUsed = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t dropped = 0;
  std::uint64_t scheduled = 0;  // open mode: arrivals in the schedule
  double measuredSeconds = 0.0;
  double opsPerSec = 0.0;
  double hitRatio = 0.0;
  double meanMs = 0.0;
  double p50Ms = 0.0;
  double p99Ms = 0.0;
  double p999Ms = 0.0;
  double maxMs = 0.0;
};

std::string renderEntry(const ServeOptions& opt, const ServeResult& r,
                        std::int64_t timestamp) {
  JsonWriter w;
  w.beginObject();
  w.key("timestamp").value(timestamp);
  w.key("mode").value(opt.mode);
  w.key("pacing").value(opt.pacing == net::PacingKind::kUniform ? "uniform"
                                                                : "poisson");
  w.key("strategy").value(std::string(strategyName(opt.strategy)));
  w.key("concurrency").value(opt.concurrency);
  w.key("target_qps").value(opt.qps);
  w.key("measure_seconds").value(r.measuredSeconds);
  w.key("ops").value(r.ops);
  w.key("errors").value(r.errors);
  w.key("failed").value(r.failed);
  w.key("timeouts").value(r.timeouts);
  w.key("conn_resets").value(r.connResets);
  w.key("overloaded").value(r.overloaded);
  w.key("retries").value(r.retriesUsed);
  w.key("reconnects").value(r.reconnects);
  w.key("chaos").value(opt.chaos ? 1 : 0);
  w.key("dropped").value(r.dropped);
  w.key("ops_per_sec").value(r.opsPerSec);
  w.key("hit_ratio").value(r.hitRatio);
  w.key("mean_ms").value(r.meanMs);
  w.key("p50_ms").value(r.p50Ms);
  w.key("p99_ms").value(r.p99Ms);
  w.key("p999_ms").value(r.p999Ms);
  w.key("max_ms").value(r.maxMs);
  w.endObject();
  return w.str();
}

int run(int argc, char** argv) {
  const std::vector<BenchOption> extras = {
      {"mode", "load generator mode: closed | open", "closed", ""},
      {"connect",
       "daemon address as HOST:PORT; empty = spawn an in-process daemon "
       "over loopback",
       "", ""},
      {"qps", "open mode: target arrival rate", "2000", ""},
      {"concurrency", "worker connections", "4", ""},
      {"seconds", "measure-phase duration in seconds", "2", ""},
      {"warmup", "warmup-phase duration in seconds (discarded)", "0.5", ""},
      {"pages", "distinct pages in the workload", "256", ""},
      {"proxies", "proxies in the overlay (and request fan)", "8", ""},
      {"strategy", "daemon cache strategy (spawn mode)", "GD*", ""},
      {"seed", "workload + pacing RNG seed", "1", ""},
      {"pacing", "open mode arrival process: uniform | poisson", "uniform",
       ""},
      {"json", "trajectory file to append to", "BENCH_serve.json", ""},
      {"deadline-ms", "per-attempt response deadline; 0 waits forever", "0",
       ""},
      {"retries", "extra attempts on timeout/reset/overloaded", "0", ""},
      {"backoff-ms", "base retry backoff (doubles per retry)", "0", ""},
      {"chaos",
       "1 = interpose a fault-injecting proxy between workers and the "
       "daemon (the seeder always dials the daemon directly)",
       "0", ""},
      {"chaos-latency-ms", "proxy: fixed delay per direction", "0", ""},
      {"chaos-jitter-ms", "proxy: uniform extra delay per chunk", "0", ""},
      {"chaos-bps", "proxy: 1-byte-dribble throttle rate; 0 = off", "0", ""},
      {"chaos-reset-bytes",
       "proxy: RST a faulted connection once the client sent this many "
       "bytes; 0 = off",
       "0", ""},
      {"chaos-fault-conns",
       "proxy: only the first N connections get faults; 0 = all", "0", ""},
      {"chaos-seed", "proxy jitter RNG seed", "1", ""},
  };
  std::map<std::string, std::string> values;
  const BenchEnv env = parseBenchEnv(
      argc, argv, "bench_serve",
      "Serving-tier load harness: closed-loop (fixed concurrency) or "
      "open-loop (target QPS, drop accounting) generators against a "
      "pscd_daemon, reporting HDR-histogram latency percentiles. "
      "--scale multiplies the warmup/measure durations; --jobs is "
      "unused (see --concurrency).",
      extras, &values);

  ServeOptions opt;
  try {
    opt.mode = values["mode"];
    if (opt.mode != "closed" && opt.mode != "open") {
      throw std::invalid_argument("--mode must be closed or open");
    }
    opt.qps = std::stod(values["qps"]);
    opt.concurrency =
        static_cast<unsigned>(std::stoul(values["concurrency"]));
    opt.measureSeconds = std::stod(values["seconds"]) * env.scale;
    opt.warmupSeconds = std::stod(values["warmup"]) * env.scale;
    opt.pages = static_cast<std::uint32_t>(std::stoul(values["pages"]));
    opt.proxies = static_cast<std::uint32_t>(std::stoul(values["proxies"]));
    opt.strategy = parseStrategyKind(values["strategy"]);
    opt.seed = std::stoull(values["seed"]);
    if (values["pacing"] == "uniform") {
      opt.pacing = net::PacingKind::kUniform;
    } else if (values["pacing"] == "poisson") {
      opt.pacing = net::PacingKind::kPoisson;
    } else {
      throw std::invalid_argument("--pacing must be uniform or poisson");
    }
    opt.jsonPath = values["json"];
    opt.deadlineMs = std::stod(values["deadline-ms"]);
    opt.retries = static_cast<std::uint32_t>(std::stoul(values["retries"]));
    opt.backoffMs = std::stod(values["backoff-ms"]);
    opt.chaos = std::stoi(values["chaos"]) != 0;
    opt.chaosLatencyMs = std::stod(values["chaos-latency-ms"]);
    opt.chaosJitterMs = std::stod(values["chaos-jitter-ms"]);
    opt.chaosBps = std::stod(values["chaos-bps"]);
    opt.chaosResetBytes = std::stoull(values["chaos-reset-bytes"]);
    opt.chaosFaultConns =
        static_cast<std::uint32_t>(std::stoul(values["chaos-fault-conns"]));
    opt.chaosSeed = std::stoull(values["chaos-seed"]);
    if (opt.deadlineMs < 0 || opt.backoffMs < 0 || opt.chaosLatencyMs < 0 ||
        opt.chaosJitterMs < 0 || opt.chaosBps < 0) {
      throw std::invalid_argument("deadline/backoff/chaos values must be "
                                  ">= 0");
    }
    if (opt.concurrency == 0 || opt.pages == 0 || opt.proxies == 0) {
      throw std::invalid_argument(
          "--concurrency, --pages and --proxies must be positive");
    }
    const std::string& connect = values["connect"];
    if (!connect.empty()) {
      const std::size_t colon = connect.rfind(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--connect must be HOST:PORT");
      }
      opt.host = connect.substr(0, colon);
      opt.port =
          static_cast<std::uint16_t>(std::stoul(connect.substr(colon + 1)));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 2;
  }

  // Spawn mode: host the daemon in-process on an ephemeral loopback
  // port, serving from its own thread for the whole run.
  std::unique_ptr<net::ServeHost> spawned;
  std::thread daemonThread;
  if (opt.port == 0) {
    net::ServeHostConfig hostConfig;
    hostConfig.numProxies = opt.proxies;
    hostConfig.strategy = opt.strategy;
    spawned = std::make_unique<net::ServeHost>(hostConfig,
                                              net::DaemonConfig{});
    opt.host = "127.0.0.1";
    opt.port = spawned->daemon().port();
    daemonThread = std::thread([&spawned] { spawned->daemon().run(); });
  }
  const auto stopSpawned = [&] {
    if (spawned) {
      spawned->daemon().stop();
      daemonThread.join();
      spawned.reset();
    }
  };

  // The seeder must bypass the chaos proxy: workload setup is plumbing,
  // not the system under test.
  const std::string directHost = opt.host;
  const std::uint16_t directPort = opt.port;

  std::unique_ptr<net::ChaosProxy> chaos;
  std::thread chaosThread;
  if (opt.chaos) {
    net::ChaosConfig chaosConfig;
    chaosConfig.targetAddress = directHost;
    chaosConfig.targetPort = directPort;
    chaosConfig.seed = opt.chaosSeed;
    chaosConfig.clientToServer.latencySeconds = opt.chaosLatencyMs / 1000.0;
    chaosConfig.clientToServer.jitterSeconds = opt.chaosJitterMs / 1000.0;
    chaosConfig.clientToServer.bytesPerSecond = opt.chaosBps;
    chaosConfig.serverToClient = chaosConfig.clientToServer;
    chaosConfig.resetAfterClientBytes = opt.chaosResetBytes;
    chaosConfig.faultConnections = opt.chaosFaultConns;
    try {
      chaos = std::make_unique<net::ChaosProxy>(chaosConfig);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_serve: chaos proxy: %s\n", e.what());
      stopSpawned();
      return 1;
    }
    opt.host = "127.0.0.1";
    opt.port = chaos->port();
    chaosThread = std::thread([&chaos] { chaos->run(); });
  }
  const auto stopChaos = [&] {
    if (chaos) {
      chaos->stop();
      chaosThread.join();
      std::printf("chaos %s\n", formatChaosStats(chaos->stats()).c_str());
      chaos.reset();
    }
  };

  printHeader("Serving-tier load harness (" + opt.mode + "-loop, " +
                  std::string(strategyName(opt.strategy)) + ")",
              "the serving tier of section 2");

  int exitCode = 0;
  try {
    {
      WireClient seeder(directHost, directPort);
      seedWorkload(seeder, opt);
    }
    std::vector<Worker> workers = makeWorkers(opt);

    // Warmup (closed-loop in both modes: the goal is a warm cache and
    // steady connections, not a measurement), then reset and measure.
    runClosedPhase(workers, opt, opt.warmupSeconds);
    for (Worker& w : workers) {
      if (!w.failure.empty()) throw std::runtime_error(w.failure);
      w = Worker{std::move(w.client), w.rng, LatencyHistogram{},
                 0,  0, 0, 0, 0, w.nextVersion, std::string()};
      w.client->resetStats();
    }

    ServeResult result;
    const double measureStart = monotonicSeconds();
    if (opt.mode == "closed") {
      runClosedPhase(workers, opt, opt.measureSeconds);
    } else {
      result.dropped = runOpenPhase(workers, opt);
      result.scheduled = result.dropped;  // completed ops added below
    }
    result.measuredSeconds = monotonicSeconds() - measureStart;

    LatencyHistogram merged;
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    for (Worker& w : workers) {
      if (!w.failure.empty()) throw std::runtime_error(w.failure);
      merged.merge(w.hist);
      result.ops += w.ops;
      result.errors += w.errors;
      result.failed += w.failed;
      requests += w.requests;
      hits += w.hits;
      const net::ClientStats& cs = w.client->stats();
      result.timeouts += cs.timeouts;
      result.connResets += cs.connResets;
      result.overloaded += cs.overloaded;
      result.retriesUsed += cs.retries;
      result.reconnects += cs.reconnects;
    }
    result.scheduled += result.ops;
    result.opsPerSec = result.measuredSeconds > 0.0
                           ? static_cast<double>(result.ops) /
                                 result.measuredSeconds
                           : 0.0;
    result.hitRatio = requests > 0
                          ? static_cast<double>(hits) /
                                static_cast<double>(requests)
                          : 0.0;
    result.meanMs = merged.count() > 0
                        ? merged.sumSeconds() * 1e3 /
                              static_cast<double>(merged.count())
                        : 0.0;
    result.p50Ms = merged.percentile(50.0) * 1e3;
    result.p99Ms = merged.percentile(99.0) * 1e3;
    result.p999Ms = merged.percentile(99.9) * 1e3;
    result.maxMs = merged.maxSeconds() * 1e3;

    AsciiTable table({"mode", "ops", "ops/sec", "dropped", "errors",
                      "failed", "timeouts", "resets", "shed", "retries",
                      "hit%", "mean ms", "p50 ms", "p99 ms", "p999 ms",
                      "max ms"});
    table.row()
        .cell(opt.mode)
        .cell(result.ops)
        .cell(formatFixed(result.opsPerSec, 0))
        .cell(result.dropped)
        .cell(result.errors)
        .cell(result.failed)
        .cell(result.timeouts)
        .cell(result.connResets)
        .cell(result.overloaded)
        .cell(result.retriesUsed)
        .cell(pct(result.hitRatio))
        .cell(formatFixed(result.meanMs, 3))
        .cell(formatFixed(result.p50Ms, 3))
        .cell(formatFixed(result.p99Ms, 3))
        .cell(formatFixed(result.p999Ms, 3))
        .cell(formatFixed(result.maxMs, 3));
    std::printf("%s\n", table.render().c_str());

    CsvSink csv;
    csv.add("serve", table);
    csv.writeTo(env.csvPath);

    const std::string previous = readTextFileOrEmpty(opt.jsonPath);
    std::vector<std::string> entries =
        extractTrajectoryEntries(previous, "pscd-bench-serve-v2");
    if (entries.empty()) {
      // First write after the v1 -> v2 schema bump: carry the old
      // history forward (old entries simply lack the fault fields).
      entries = extractTrajectoryEntries(previous, "pscd-bench-serve-v1");
    }
    entries.push_back(renderEntry(opt, result, unixTimeSeconds()));
    std::string error;
    if (!writeTextFileAtomic(
            opt.jsonPath,
            renderTrajectoryHistory("pscd-bench-serve-v2", entries), &error)) {
      throw std::runtime_error(error);
    }
    std::printf("wrote %s (%zu history entries)\n", opt.jsonPath.c_str(),
                std::min(entries.size(), kMicroHistoryLimit));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    exitCode = 1;
  }
  stopChaos();
  stopSpawned();
  return exitCode;
}

}  // namespace
}  // namespace pscd::bench

int main(int argc, char** argv) { return pscd::bench::run(argc, argv); }
