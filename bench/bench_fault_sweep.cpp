// Extension: failure sweep. The paper evaluates an ideal overlay in
// which proxies never crash, links never drop, and every fetch
// succeeds. This bench re-runs the headline comparison under the
// deterministic failure model of DESIGN.md section 9 — proxy
// crash/restart, link down/up, in-flight push loss and fetch failures
// with bounded-retry recovery — and reports availability, degraded
// (stale) serving and the unavailability-weighted traffic next to the
// hit ratio, for both push schemes.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

namespace {

struct FaultLevel {
  const char* name;
  FaultConfig config;  // seed filled per cell
};

/// Failure intensities swept over the 7-day trace. "none" keeps the
/// failure layer disabled entirely, so its cells exercise the exact
/// pre-failure-layer code path (the zero-fault acceptance anchor).
std::vector<FaultLevel> faultLevels() {
  std::vector<FaultLevel> levels;
  levels.push_back({"none", FaultConfig{}});
  FaultConfig low;
  low.proxyFailuresPerDay = 0.25;
  low.proxyMeanDowntimeHours = 1.0;
  low.linkFailuresPerDay = 0.5;
  low.linkMeanDowntimeHours = 0.5;
  low.pushLossProbability = 0.005;
  low.fetchFailureProbability = 0.01;
  levels.push_back({"low", low});
  FaultConfig med;
  med.proxyFailuresPerDay = 1.0;
  med.proxyMeanDowntimeHours = 1.0;
  med.linkFailuresPerDay = 2.0;
  med.linkMeanDowntimeHours = 0.5;
  med.pushLossProbability = 0.02;
  med.fetchFailureProbability = 0.05;
  levels.push_back({"medium", med});
  FaultConfig high;
  high.proxyFailuresPerDay = 4.0;
  high.proxyMeanDowntimeHours = 2.0;
  high.linkFailuresPerDay = 8.0;
  high.linkMeanDowntimeHours = 1.0;
  high.pushLossProbability = 0.10;
  high.fetchFailureProbability = 0.20;
  levels.push_back({"high", high});
  return levels;
}

constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar, StrategyKind::kSUB,
                                   StrategyKind::kSG2, StrategyKind::kDCLAP};
constexpr const char* kKindNames[] = {"GD*", "SUB", "SG2", "DC-LAP"};
constexpr PushScheme kSchemes[] = {PushScheme::kAlwaysPushing,
                                   PushScheme::kPushingWhenNecessary};
constexpr const char* kSchemeNames[] = {"always", "necessary"};
constexpr double kCap = 0.05;
/// Base of the per-cell fault seeds; independent of the workload (42)
/// and topology (7) seeds.
constexpr std::uint64_t kFaultSeedBase = 1303;

/// The fault config of one sweep cell. Every cell derives a private
/// seed from its linear index via cellSeed(), so the grid can be built
/// in any order (and re-built identically in the rendering phase).
FaultConfig cellFaults(const FaultLevel& level, std::uint64_t index) {
  FaultConfig fc = level.config;
  fc.seed = cellSeed(kFaultSeedBase, index);
  return fc;
}

/// The warm-restart ablation reuses the medium level with the same
/// per-cell seed derivation on a disjoint index range.
constexpr std::uint64_t kWarmIndexBase = 1000;

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parseBenchEnv(
      argc, argv, "bench_fault_sweep",
      "Extension: strategy comparison under proxy/link failures");
  printHeader("Strategy comparison under proxy/link failures",
              "a failure-model extension beyond section 5; the paper "
              "assumes an ideal overlay");
  ExperimentContext ctx(42, 7, env.scale);
  const std::vector<FaultLevel> levels = faultLevels();

  // Phase 1: fan every (level x scheme x strategy) cell out, plus the
  // cold-vs-warm restart ablation at the medium level.
  std::vector<ExperimentCell> cells;
  std::uint64_t index = 0;
  for (const FaultLevel& level : levels) {
    for (const PushScheme scheme : kSchemes) {
      for (const StrategyKind kind : kKinds) {
        ExperimentCell cell{TraceKind::kNews, 1.0, kind, kCap, scheme};
        cell.faults = cellFaults(level, index++);
        cells.push_back(cell);
      }
    }
  }
  {
    std::uint64_t warmIndex = kWarmIndexBase;
    for (const StrategyKind kind : kKinds) {
      ExperimentCell cell{TraceKind::kNews, 1.0, kind, kCap,
                          PushScheme::kAlwaysPushing};
      cell.faults = cellFaults(levels[2], warmIndex++);
      cell.faults.warmRestart = true;
      cells.push_back(cell);
    }
  }
  runCells(ctx, env, cells);

  // Phase 2: render serially from the memoized results, rebuilding each
  // cell's fault config (same index walk) so the memo keys match.
  CsvSink csv;
  const auto cellMetrics = [&](const FaultLevel& level, std::uint64_t idx,
                               StrategyKind kind, PushScheme scheme,
                               bool warm = false) {
    FaultConfig fc = cellFaults(level, idx);
    fc.warmRestart = warm;
    return ctx.run(TraceKind::kNews, 1.0, kind, kCap, scheme, false, fc);
  };

  for (std::size_t si = 0; si < std::size(kSchemes); ++si) {
    AsciiTable avail({"faults", "GD*", "SUB", "SG2", "DC-LAP"});
    AsciiTable hit({"faults", "GD*", "SUB", "SG2", "DC-LAP"});
    AsciiTable staleServe({"faults", "GD*", "SUB", "SG2", "DC-LAP"});
    AsciiTable retries({"faults", "GD*", "SUB", "SG2", "DC-LAP"});
    AsciiTable weighted({"faults", "GD*", "SUB", "SG2", "DC-LAP"});
    for (std::size_t li = 0; li < levels.size(); ++li) {
      avail.row().cell(levels[li].name);
      hit.row().cell(levels[li].name);
      staleServe.row().cell(levels[li].name);
      retries.row().cell(levels[li].name);
      weighted.row().cell(levels[li].name);
      for (std::size_t ki = 0; ki < std::size(kKinds); ++ki) {
        const std::uint64_t idx =
            (li * std::size(kSchemes) + si) * std::size(kKinds) + ki;
        const SimMetrics m =
            cellMetrics(levels[li], idx, kKinds[ki], kSchemes[si]);
        avail.cell(formatFixed(100 * m.availability(), 2) + "%");
        hit.cell(pct(m.hitRatio()));
        staleServe.cell(formatFixed(100 * m.staleServeRate(), 2) + "%");
        retries.cell(formatFixed(m.retriesPerRequest(), 3));
        weighted.cell(formatFixed(m.unavailabilityWeightedBytes() / 1e6, 1));
      }
    }
    std::printf("Availability (%% of requests served), scheme %s:\n%s\n",
                kSchemeNames[si], avail.render().c_str());
    std::printf("Hit ratio (%%), scheme %s:\n%s\n", kSchemeNames[si],
                hit.render().c_str());
    std::printf("Stale serves (%% of served requests), scheme %s:\n%s\n",
                kSchemeNames[si], staleServe.render().c_str());
    std::printf("Fetch retries per request, scheme %s:\n%s\n",
                kSchemeNames[si], retries.render().c_str());
    std::printf(
        "Unavailability-weighted publisher traffic (MB), scheme %s:\n%s\n",
        kSchemeNames[si], weighted.render().c_str());
    const std::string tag = std::string("fault_sweep_") + kSchemeNames[si];
    csv.add(tag + "_availability", avail);
    csv.add(tag + "_hit", hit);
    csv.add(tag + "_stale_serves", staleServe);
    csv.add(tag + "_retries", retries);
    csv.add(tag + "_weighted_traffic", weighted);
  }

  // Cold vs warm restart (medium faults, Always-Pushing): how much of
  // the hit-ratio damage comes from wiped caches rather than downtime.
  AsciiTable restart({"restart", "GD*", "SUB", "SG2", "DC-LAP"});
  restart.row().cell("cold");
  for (std::size_t ki = 0; ki < std::size(kKinds); ++ki) {
    const std::uint64_t idx = (2 * std::size(kSchemes) + 0) *
                                  std::size(kKinds) + ki;
    restart.cell(pct(cellMetrics(levels[2], idx, kKinds[ki],
                                 PushScheme::kAlwaysPushing)
                         .hitRatio()));
  }
  restart.row().cell("warm");
  for (std::size_t ki = 0; ki < std::size(kKinds); ++ki) {
    restart.cell(pct(cellMetrics(levels[2], kWarmIndexBase + ki, kKinds[ki],
                                 PushScheme::kAlwaysPushing, /*warm=*/true)
                         .hitRatio()));
  }
  std::printf(
      "Hit ratio (%%) under medium faults, cold vs warm restart "
      "(always-pushing):\n%s\n",
      restart.render().c_str());
  csv.add("fault_sweep_restart_ablation", restart);
  csv.writeTo(env.csvPath);
  std::printf(
      "Reading: push-based schemes keep their hit-ratio lead under\n"
      "failures but lose pushed pages to crashed/partitioned proxies;\n"
      "availability degrades with failure intensity for every strategy,\n"
      "while degraded stale serving and publisher failover absorb part\n"
      "of the damage. Warm restarts recover most of the hit ratio lost\n"
      "to cold-cache crashes.\n");
  return 0;
}
