// Section 5.1: tuning of the balance factor beta for GD*, SG1 and SG2.
// The paper varies beta from 0.0625 to 4 under the three capacity
// settings for both traces and picks the best per setting; this harness
// prints the full sweep and the arg-max per row.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_beta_sweep",
                    "Section 5.1: beta sweep for GD*, SG1, SG2");
  printHeader("Beta sweep for GD*, SG1, SG2", "section 5.1");
  constexpr double kBetas[] = {0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0};
  constexpr StrategyKind kKinds[] = {StrategyKind::kGDStar,
                                     StrategyKind::kSG1, StrategyKind::kSG2};
  ExperimentContext ctx(42, 7, env.scale);

  std::vector<ExperimentCell> cells;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    for (const StrategyKind kind : kKinds) {
      for (const double cap : kCapacityFractions) {
        for (const double beta : kBetas) {
          ExperimentCell cell{trace, 1.0, kind, cap};
          cell.beta = beta;
          cells.push_back(cell);
        }
      }
    }
  }
  runCells(ctx, env, cells);

  CsvSink csv;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    std::vector<std::string> header = {"method", "capacity"};
    for (const double b : kBetas) header.push_back("b=" + formatFixed(b, 4));
    header.push_back("best beta");
    AsciiTable table(header);
    for (const StrategyKind kind : kKinds) {
      for (const double cap : kCapacityFractions) {
        table.row()
            .cell(std::string(strategyName(kind)))
            .cell(formatFixed(100 * cap, 0) + "%");
        double bestBeta = kBetas[0], bestHit = -1.0;
        for (const double beta : kBetas) {
          const auto m = ctx.runWithBeta(trace, 1.0, kind, cap, beta);
          table.cell(pct(m.hitRatio()));
          if (m.hitRatio() > bestHit) {
            bestHit = m.hitRatio();
            bestBeta = beta;
          }
        }
        table.cell(formatFixed(bestBeta, 4));
      }
    }
    std::printf("Trace %s (SQ = 1), hit ratio (%%) by beta:\n%s\n",
                std::string(traceName(trace)).c_str(),
                table.render().c_str());
    csv.add(std::string("beta_sweep_") + std::string(traceName(trace)),
            table);
  }
  csv.writeTo(env.csvPath);
  std::printf(
      "Paper: beta = 2 for all three methods on NEWS; on ALTERNATIVE beta\n"
      "= 0.5 for SG2 and 2 (1 at the 1%% setting) for GD*/SG1.\n");
  return 0;
}
