// Table 2: relative hit-ratio improvement over GD* (%) at the 5%
// capacity setting for both traces (SQ = 1).
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env =
      parseBenchEnv(argc, argv, "bench_table2_improvement",
                    "Table 2: relative improvement over GD* at 5% capacity");
  printHeader("Relative improvement over GD* at 5% capacity", "table 2");
  constexpr StrategyKind kColumns[] = {
      StrategyKind::kSUB,  StrategyKind::kSG1,  StrategyKind::kSG2,
      StrategyKind::kSR,   StrategyKind::kDM,   StrategyKind::kDCFP,
      StrategyKind::kDCLAP};
  ExperimentContext ctx(42, 7, env.scale);

  std::vector<ExperimentCell> cells;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    cells.push_back({trace, 1.0, StrategyKind::kGDStar, 0.05});
    for (const StrategyKind kind : kColumns) {
      cells.push_back({trace, 1.0, kind, 0.05});
    }
  }
  runCells(ctx, env, cells);

  AsciiTable table({"alpha", "SUB", "SG1", "SG2", "SR", "DM", "DC-FP",
                    "DC-LAP"});
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    const double gd = ctx.run(trace, 1.0, StrategyKind::kGDStar, 0.05)
                          .hitRatio();
    table.row().cell(trace == TraceKind::kNews ? "1.5" : "1.0");
    for (const StrategyKind kind : kColumns) {
      const double h = ctx.run(trace, 1.0, kind, 0.05).hitRatio();
      table.cell(formatFixed(100.0 * (h - gd) / gd, 0));
    }
  }
  std::printf("Relative improvement over GD* (%%), capacity = 5%%:\n%s\n",
              table.render().c_str());
  CsvSink csv;
  csv.add("table2_improvement", table);
  csv.writeTo(env.csvPath);
  std::printf(
      "Paper row alpha=1.5:  6   34   50   54  17   37   40\n"
      "Paper row alpha=1.0: 47   84  133  133  34   93   96\n"
      "Shape to check: every entry positive, alpha=1.0 row much larger,\n"
      "SG2/SR at the top.\n");
  return 0;
}
