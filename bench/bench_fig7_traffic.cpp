// Figure 7 (a, b): hourly traffic in number of pages transferred from
// the publisher to the proxies for GD*, SUB and SG2 under the two push
// schemes, Always-Pushing and Pushing-When-Necessary (NEWS trace,
// SQ = 1, capacity = 5%).
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env = parseBenchEnv(
      argc, argv, "bench_fig7_traffic",
      "Figure 7: hourly publisher->proxy traffic under both push schemes");
  printHeader("Traffic (pages/hour) under the two pushing schemes",
              "figure 7 (a, b)");
  constexpr StrategyKind kKinds[] = {StrategyKind::kSUB, StrategyKind::kSG2,
                                     StrategyKind::kGDStar};
  ExperimentContext ctx(42, 7, env.scale);

  std::vector<ExperimentCell> cells;
  for (const PushScheme scheme :
       {PushScheme::kAlwaysPushing, PushScheme::kPushingWhenNecessary}) {
    for (const StrategyKind kind : kKinds) {
      cells.push_back({TraceKind::kNews, 1.0, kind, 0.05, scheme,
                       /*collectHourly=*/true});
    }
  }
  runCells(ctx, env, cells);

  CsvSink csv;
  for (const PushScheme scheme :
       {PushScheme::kAlwaysPushing, PushScheme::kPushingWhenNecessary}) {
    const char* name = scheme == PushScheme::kAlwaysPushing
                           ? "Always-Pushing"
                           : "Pushing-When-Necessary";
    std::printf("Scheme: %s (NEWS, SQ = 1, capacity = 5%%)\n", name);
    AsciiTable table({"hour", "SUB", "SG2", "GD*"});
    std::vector<SimMetrics> runs;
    for (const StrategyKind kind : kKinds) {
      runs.push_back(ctx.run(TraceKind::kNews, 1.0, kind, 0.05, scheme,
                             /*collectHourly=*/true));
    }
    for (std::size_t h = 0; h < runs[0].hours(); h += 6) {
      table.row().cell(std::to_string(h));
      for (const auto& m : runs) {
        table.cell(formatFixed(m.hourlyTrafficPages(h), 0));
      }
    }
    std::printf("%s", table.render().c_str());
    csv.add(std::string("fig7_traffic_") +
                (scheme == PushScheme::kAlwaysPushing ? "always" : "necessary"),
            table);
    std::printf("Totals over 7 days:\n");
    for (std::size_t k = 0; k < runs.size(); ++k) {
      std::printf("  %-4s push %8llu pages (%6.1f MB), fetch %8llu pages "
                  "(%6.1f MB), total %8llu pages\n",
                  std::string(strategyName(kKinds[k])).c_str(),
                  static_cast<unsigned long long>(runs[k].traffic().pushPages),
                  runs[k].traffic().pushBytes / 1e6,
                  static_cast<unsigned long long>(
                      runs[k].traffic().fetchPages),
                  runs[k].traffic().fetchBytes / 1e6,
                  static_cast<unsigned long long>(
                      runs[k].traffic().totalPages()));
    }
    std::printf("\n");
  }
  csv.writeTo(env.csvPath);
  std::printf(
      "Paper shape: GD* identical under both schemes (no pushing); SUB the\n"
      "highest traffic (fetch-on-miss without caching); SG2 comparable to\n"
      "GD* and insensitive to the pushing scheme; Pushing-When-Necessary\n"
      "narrows the SUB-GD* gap.\n");
  return 0;
}
