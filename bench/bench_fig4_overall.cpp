// Figure 4 (a, b): overall hit ratios of GD*, SUB, SG1, SG2, SR and
// DC-LAP with perfect subscriptions (SQ = 1) under the three capacity
// settings, for both the NEWS and the ALTERNATIVE traces.
#include "bench_common.h"

using namespace pscd;
using namespace pscd::bench;

int main(int argc, char** argv) {
  const BenchEnv env = parseBenchEnv(
      argc, argv, "bench_fig4_overall",
      "Figure 4: overall hit ratios with perfect subscriptions");
  printHeader("Overall hit ratios with perfect subscriptions",
              "figure 4 (a, b)");
  ExperimentContext ctx(42, 7, env.scale);

  // Phase 1: fan every (trace x capacity x strategy) cell out across
  // the pool. The response-time table reuses the cap = 0.05 cells.
  std::vector<ExperimentCell> cells;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    for (const double cap : kCapacityFractions) {
      for (const StrategyKind kind : kFigureStrategies) {
        cells.push_back({trace, 1.0, kind, cap});
      }
    }
  }
  runCells(ctx, env, cells);

  // Phase 2: render serially from the memoized results.
  CsvSink csv;
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    AsciiTable table(
        {"capacity", "GD*", "SUB", "SG1", "SG2", "SR", "DC-LAP"});
    for (const double cap : kCapacityFractions) {
      table.row().cell(formatFixed(100 * cap, 0) + "%");
      for (const StrategyKind kind : kFigureStrategies) {
        table.cell(pct(ctx.run(trace, 1.0, kind, cap).hitRatio()));
      }
    }
    std::printf("Hit ratio (%%), trace %s, SQ = 1:\n%s\n",
                std::string(traceName(trace)).c_str(),
                table.render().c_str());
    csv.add(std::string("fig4_hit_") + std::string(traceName(trace)), table);
  }
  // The paper's conclusion ties the hit ratio to the motivating metric:
  // "the improvement in hit ratio translates into a reduction in user
  // perceived response time". Report it under the simulator's latency
  // model (hit: 5 ms local; miss: +100 ms x normalized distance).
  AsciiTable rt({"trace", "GD*", "SUB", "SG1", "SG2", "SR", "DC-LAP"});
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    rt.row().cell(std::string(traceName(trace)));
    for (const StrategyKind kind : kFigureStrategies) {
      rt.cell(formatFixed(
          ctx.run(trace, 1.0, kind, 0.05).meanResponseTime(), 1));
    }
  }
  std::printf("Mean user-perceived response time (ms), capacity = 5%%:\n%s\n",
              rt.render().c_str());
  csv.add("fig4_response_time", rt);
  csv.writeTo(env.csvPath);
  std::printf(
      "Paper shape: SG2/SR highest, then DC-LAP ~ SG1, SUB lowest of the\n"
      "pushing schemes; ranks stable across capacities; GD* degrades\n"
      "sharply on ALTERNATIVE (alpha = 1.0); response time is the mirror\n"
      "image of the hit ratio.\n");
  return 0;
}
