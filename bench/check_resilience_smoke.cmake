# serve.resilience_smoke: run bench_serve against an in-process chaos
# proxy that resets the first two worker connections mid-stream. The
# hardened client path must absorb the faults — the run exits 0,
# completes real ops, and accounts the injected faults as counters
# (resets or failed/retried ops) instead of dying.
#
# Writes its trajectory to a scratch json in WORKDIR so the committed
# BENCH_serve.json never accumulates chaos-mode entries.
#
# Inputs: -DBENCH=<bench_serve binary> -DWORKDIR=<scratch dir>

execute_process(
  # --warmup 0: the proxy only faults the first two connections, so a
  # warmup phase would absorb the resets before stats are rearmed for
  # the measure phase.
  COMMAND ${BENCH} --mode closed --seconds 1 --warmup 0 --concurrency 2
          --pages 64 --proxies 4
          --chaos 1 --chaos-reset-bytes 2000 --chaos-fault-conns 2
          --deadline-ms 500 --retries 3 --backoff-ms 10
          --json BENCH_serve_resilience.json
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_serve exited with ${rc} under chaos\n"
                      "stdout:\n${out}\nstderr:\n${err}")
endif()

set(json "${WORKDIR}/BENCH_serve_resilience.json")
if(NOT EXISTS "${json}")
  message(FATAL_ERROR "bench_serve did not write ${json}")
endif()
file(READ "${json}" doc)
if(NOT doc MATCHES "\"schema\":\"pscd-bench-serve-v2\"")
  message(FATAL_ERROR "${json} is missing the pscd-bench-serve-v2 schema tag")
endif()

function(last_field name outvar)
  string(REGEX MATCHALL "\"${name}\":[0-9.eE+-]+" hits "${doc}")
  if(hits STREQUAL "")
    message(FATAL_ERROR "${json} has no ${name} field")
  endif()
  list(GET hits -1 hit)
  string(REGEX REPLACE "\"${name}\":" "" value "${hit}")
  set(${outvar} "${value}" PARENT_SCOPE)
endfunction()

last_field(ops ops)
last_field(failed failed)
last_field(conn_resets conn_resets)
last_field(retries retries)
last_field(chaos chaos)

if(NOT chaos EQUAL 1)
  message(FATAL_ERROR "entry not tagged as a chaos run (chaos=${chaos})")
endif()
if(NOT ops GREATER 0)
  message(FATAL_ERROR "ops is ${ops}: no work completed through the proxy")
endif()
# The proxy resets the first two connections after 2000 client bytes;
# the harness must have *observed* the faults somewhere: as client-level
# resets, as retried attempts, or as ops that exhausted the budget.
math(EXPR observed "${conn_resets} + ${retries} + ${failed}")
if(NOT observed GREATER 0)
  message(FATAL_ERROR
          "chaos run recorded no faults (conn_resets=${conn_resets} "
          "retries=${retries} failed=${failed}): proxy not in the path?")
endif()

message(STATUS "resilience smoke ok: ${ops} ops, "
               "conn_resets=${conn_resets} retries=${retries} "
               "failed=${failed}")
