# serve.loopback_smoke: run bench_serve in spawn mode (in-process daemon
# over loopback) and validate the BENCH_serve.json entry it appends —
# the run must complete, report a nonzero throughput, and have monotone
# latency percentiles (p50 <= p99 <= p999).
#
# Inputs: -DBENCH=<bench_serve binary> -DWORKDIR=<dir holding the json>

execute_process(
  COMMAND ${BENCH} --mode closed --seconds 1 --warmup 0.2 --concurrency 2
          --pages 128 --proxies 4
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_serve exited with ${rc}\nstdout:\n${out}\n"
                      "stderr:\n${err}")
endif()

set(json "${WORKDIR}/BENCH_serve.json")
if(NOT EXISTS "${json}")
  message(FATAL_ERROR "bench_serve did not write ${json}")
endif()
file(READ "${json}" doc)
if(NOT doc MATCHES "\"schema\":\"pscd-bench-serve-v2\"")
  message(FATAL_ERROR "${json} is missing the pscd-bench-serve-v2 schema tag")
endif()

# Pull a numeric field out of the *last* (newest) history entry.
function(last_field name outvar)
  string(REGEX MATCHALL "\"${name}\":[0-9.eE+-]+" hits "${doc}")
  if(hits STREQUAL "")
    message(FATAL_ERROR "${json} has no ${name} field")
  endif()
  list(GET hits -1 hit)
  string(REGEX REPLACE "\"${name}\":" "" value "${hit}")
  set(${outvar} "${value}" PARENT_SCOPE)
endfunction()

last_field(ops_per_sec ops_per_sec)
last_field(ops ops)
last_field(errors errors)
last_field(failed failed)
last_field(timeouts timeouts)
last_field(conn_resets conn_resets)
last_field(p50_ms p50)
last_field(p99_ms p99)
last_field(p999_ms p999)

if(NOT ops_per_sec GREATER 0)
  message(FATAL_ERROR "ops_per_sec is ${ops_per_sec}, expected > 0")
endif()
if(NOT ops GREATER 0)
  message(FATAL_ERROR "ops is ${ops}, expected > 0")
endif()
if(NOT errors EQUAL 0)
  message(FATAL_ERROR "bench_serve recorded ${errors} error responses")
endif()
# The fault-free path must stay fault-free: no degraded ops without an
# injected fault.
if(NOT failed EQUAL 0)
  message(FATAL_ERROR "bench_serve recorded ${failed} failed ops")
endif()
if(NOT timeouts EQUAL 0)
  message(FATAL_ERROR "bench_serve recorded ${timeouts} timeouts")
endif()
if(NOT conn_resets EQUAL 0)
  message(FATAL_ERROR "bench_serve recorded ${conn_resets} resets")
endif()
if(p50 GREATER p99)
  message(FATAL_ERROR "p50 (${p50}) > p99 (${p99}): percentiles not monotone")
endif()
if(p99 GREATER p999)
  message(FATAL_ERROR
          "p99 (${p99}) > p999 (${p999}): percentiles not monotone")
endif()

message(STATUS "serve smoke ok: ${ops} ops at ${ops_per_sec}/s, "
               "p50=${p50}ms p99=${p99}ms p999=${p999}ms")
