# Runs one figure bench serially and with 4 workers and fails unless
# the CSV exports (and stdout renderings) are byte-identical. Invoked
# by the bench.*_jobs_determinism ctest entries with:
#   -DBENCH=<bench executable> -DWORKDIR=<scratch dir>
#   [-DTAG=<filename tag>]   distinct per test so entries sharing a
#                            WORKDIR can run under ctest -j
if(NOT DEFINED TAG)
  set(TAG "jobs_determinism")
endif()
set(serial_csv "${WORKDIR}/${TAG}_serial.csv")
set(parallel_csv "${WORKDIR}/${TAG}_parallel.csv")

execute_process(
  COMMAND "${BENCH}" --scale 0.05 --jobs 1 --csv "${serial_csv}"
  OUTPUT_FILE "${serial_csv}.stdout"
  RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial run failed (exit ${serial_rc})")
endif()

execute_process(
  COMMAND "${BENCH}" --scale 0.05 --jobs 4 --csv "${parallel_csv}"
  OUTPUT_FILE "${parallel_csv}.stdout"
  RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel run failed (exit ${parallel_rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${serial_csv}" "${parallel_csv}"
  RESULT_VARIABLE csv_diff)
if(NOT csv_diff EQUAL 0)
  message(FATAL_ERROR "--jobs 1 and --jobs 4 CSVs differ")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${serial_csv}.stdout" "${parallel_csv}.stdout"
  RESULT_VARIABLE out_diff)
if(NOT out_diff EQUAL 0)
  message(FATAL_ERROR "--jobs 1 and --jobs 4 stdout renderings differ")
endif()

message(STATUS "serial and 4-way parallel outputs byte-identical")
