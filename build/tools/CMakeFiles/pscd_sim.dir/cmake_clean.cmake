file(REMOVE_RECURSE
  "CMakeFiles/pscd_sim.dir/pscd_sim.cpp.o"
  "CMakeFiles/pscd_sim.dir/pscd_sim.cpp.o.d"
  "pscd_sim"
  "pscd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
