# Empty dependencies file for pscd_sim.
# This may be replaced when dependencies are built.
