file(REMOVE_RECURSE
  "CMakeFiles/pscd_trace.dir/pscd_trace.cpp.o"
  "CMakeFiles/pscd_trace.dir/pscd_trace.cpp.o.d"
  "pscd_trace"
  "pscd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
