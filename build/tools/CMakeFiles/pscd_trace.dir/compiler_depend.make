# Empty compiler generated dependencies file for pscd_trace.
# This may be replaced when dependencies are built.
