# Empty dependencies file for bench_ablation_mixed.
# This may be replaced when dependencies are built.
