file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mixed.dir/bench_ablation_mixed.cpp.o"
  "CMakeFiles/bench_ablation_mixed.dir/bench_ablation_mixed.cpp.o.d"
  "bench_ablation_mixed"
  "bench_ablation_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
