file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sq.dir/bench_fig5_sq.cpp.o"
  "CMakeFiles/bench_fig5_sq.dir/bench_fig5_sq.cpp.o.d"
  "bench_fig5_sq"
  "bench_fig5_sq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
