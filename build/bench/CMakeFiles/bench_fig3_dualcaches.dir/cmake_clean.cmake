file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dualcaches.dir/bench_fig3_dualcaches.cpp.o"
  "CMakeFiles/bench_fig3_dualcaches.dir/bench_fig3_dualcaches.cpp.o.d"
  "bench_fig3_dualcaches"
  "bench_fig3_dualcaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dualcaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
