# Empty dependencies file for bench_fig3_dualcaches.
# This may be replaced when dependencies are built.
