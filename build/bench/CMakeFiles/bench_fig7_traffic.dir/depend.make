# Empty dependencies file for bench_fig7_traffic.
# This may be replaced when dependencies are built.
