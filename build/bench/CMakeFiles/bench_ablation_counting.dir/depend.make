# Empty dependencies file for bench_ablation_counting.
# This may be replaced when dependencies are built.
