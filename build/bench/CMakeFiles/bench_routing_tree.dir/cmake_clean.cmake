file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_tree.dir/bench_routing_tree.cpp.o"
  "CMakeFiles/bench_routing_tree.dir/bench_routing_tree.cpp.o.d"
  "bench_routing_tree"
  "bench_routing_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
