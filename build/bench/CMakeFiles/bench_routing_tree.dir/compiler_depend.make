# Empty compiler generated dependencies file for bench_routing_tree.
# This may be replaced when dependencies are built.
