# Empty compiler generated dependencies file for bench_table2_improvement.
# This may be replaced when dependencies are built.
