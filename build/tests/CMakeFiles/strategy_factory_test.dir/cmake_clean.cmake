file(REMOVE_RECURSE
  "CMakeFiles/strategy_factory_test.dir/strategy_factory_test.cpp.o"
  "CMakeFiles/strategy_factory_test.dir/strategy_factory_test.cpp.o.d"
  "strategy_factory_test"
  "strategy_factory_test.pdb"
  "strategy_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
