# Empty dependencies file for strategy_factory_test.
# This may be replaced when dependencies are built.
