# Empty compiler generated dependencies file for gdstar_test.
# This may be replaced when dependencies are built.
