file(REMOVE_RECURSE
  "CMakeFiles/gdstar_test.dir/gdstar_test.cpp.o"
  "CMakeFiles/gdstar_test.dir/gdstar_test.cpp.o.d"
  "gdstar_test"
  "gdstar_test.pdb"
  "gdstar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdstar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
