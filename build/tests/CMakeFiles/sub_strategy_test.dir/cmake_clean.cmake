file(REMOVE_RECURSE
  "CMakeFiles/sub_strategy_test.dir/sub_strategy_test.cpp.o"
  "CMakeFiles/sub_strategy_test.dir/sub_strategy_test.cpp.o.d"
  "sub_strategy_test"
  "sub_strategy_test.pdb"
  "sub_strategy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sub_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
