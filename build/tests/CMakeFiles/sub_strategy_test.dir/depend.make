# Empty dependencies file for sub_strategy_test.
# This may be replaced when dependencies are built.
