file(REMOVE_RECURSE
  "CMakeFiles/covering_test.dir/covering_test.cpp.o"
  "CMakeFiles/covering_test.dir/covering_test.cpp.o.d"
  "covering_test"
  "covering_test.pdb"
  "covering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
