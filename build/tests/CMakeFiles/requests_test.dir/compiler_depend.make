# Empty compiler generated dependencies file for requests_test.
# This may be replaced when dependencies are built.
