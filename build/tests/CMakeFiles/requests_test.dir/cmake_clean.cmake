file(REMOVE_RECURSE
  "CMakeFiles/requests_test.dir/requests_test.cpp.o"
  "CMakeFiles/requests_test.dir/requests_test.cpp.o.d"
  "requests_test"
  "requests_test.pdb"
  "requests_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/requests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
