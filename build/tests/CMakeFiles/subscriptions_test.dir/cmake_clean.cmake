file(REMOVE_RECURSE
  "CMakeFiles/subscriptions_test.dir/subscriptions_test.cpp.o"
  "CMakeFiles/subscriptions_test.dir/subscriptions_test.cpp.o.d"
  "subscriptions_test"
  "subscriptions_test.pdb"
  "subscriptions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscriptions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
