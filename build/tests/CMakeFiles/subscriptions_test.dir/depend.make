# Empty dependencies file for subscriptions_test.
# This may be replaced when dependencies are built.
