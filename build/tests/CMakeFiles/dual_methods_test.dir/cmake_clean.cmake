file(REMOVE_RECURSE
  "CMakeFiles/dual_methods_test.dir/dual_methods_test.cpp.o"
  "CMakeFiles/dual_methods_test.dir/dual_methods_test.cpp.o.d"
  "dual_methods_test"
  "dual_methods_test.pdb"
  "dual_methods_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_methods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
