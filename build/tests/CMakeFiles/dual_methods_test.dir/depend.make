# Empty dependencies file for dual_methods_test.
# This may be replaced when dependencies are built.
