file(REMOVE_RECURSE
  "CMakeFiles/publishing_test.dir/publishing_test.cpp.o"
  "CMakeFiles/publishing_test.dir/publishing_test.cpp.o.d"
  "publishing_test"
  "publishing_test.pdb"
  "publishing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publishing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
