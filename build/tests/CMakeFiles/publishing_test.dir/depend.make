# Empty dependencies file for publishing_test.
# This may be replaced when dependencies are built.
