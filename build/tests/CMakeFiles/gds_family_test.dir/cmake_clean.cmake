file(REMOVE_RECURSE
  "CMakeFiles/gds_family_test.dir/gds_family_test.cpp.o"
  "CMakeFiles/gds_family_test.dir/gds_family_test.cpp.o.d"
  "gds_family_test"
  "gds_family_test.pdb"
  "gds_family_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
