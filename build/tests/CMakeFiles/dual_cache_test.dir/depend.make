# Empty dependencies file for dual_cache_test.
# This may be replaced when dependencies are built.
