file(REMOVE_RECURSE
  "CMakeFiles/dual_cache_test.dir/dual_cache_test.cpp.o"
  "CMakeFiles/dual_cache_test.dir/dual_cache_test.cpp.o.d"
  "dual_cache_test"
  "dual_cache_test.pdb"
  "dual_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
