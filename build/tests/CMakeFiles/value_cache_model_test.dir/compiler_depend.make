# Empty compiler generated dependencies file for value_cache_model_test.
# This may be replaced when dependencies are built.
