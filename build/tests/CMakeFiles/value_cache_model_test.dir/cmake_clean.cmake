file(REMOVE_RECURSE
  "CMakeFiles/value_cache_model_test.dir/value_cache_model_test.cpp.o"
  "CMakeFiles/value_cache_model_test.dir/value_cache_model_test.cpp.o.d"
  "value_cache_model_test"
  "value_cache_model_test.pdb"
  "value_cache_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_cache_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
