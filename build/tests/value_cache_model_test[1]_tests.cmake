add_test([=[ValueCacheModelTest.AgreesWithReferenceUnderRandomOps]=]  /root/repo/build/tests/value_cache_model_test [==[--gtest_filter=ValueCacheModelTest.AgreesWithReferenceUnderRandomOps]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ValueCacheModelTest.AgreesWithReferenceUnderRandomOps]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  value_cache_model_test_TESTS ValueCacheModelTest.AgreesWithReferenceUnderRandomOps)
