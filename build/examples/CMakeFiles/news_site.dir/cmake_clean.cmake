file(REMOVE_RECURSE
  "CMakeFiles/news_site.dir/news_site.cpp.o"
  "CMakeFiles/news_site.dir/news_site.cpp.o.d"
  "news_site"
  "news_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
