# Empty dependencies file for news_site.
# This may be replaced when dependencies are built.
