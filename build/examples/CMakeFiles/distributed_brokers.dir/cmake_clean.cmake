file(REMOVE_RECURSE
  "CMakeFiles/distributed_brokers.dir/distributed_brokers.cpp.o"
  "CMakeFiles/distributed_brokers.dir/distributed_brokers.cpp.o.d"
  "distributed_brokers"
  "distributed_brokers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_brokers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
