# Empty compiler generated dependencies file for distributed_brokers.
# This may be replaced when dependencies are built.
