file(REMOVE_RECURSE
  "libpscd.a"
)
