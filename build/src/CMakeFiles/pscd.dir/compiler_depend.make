# Empty compiler generated dependencies file for pscd.
# This may be replaced when dependencies are built.
