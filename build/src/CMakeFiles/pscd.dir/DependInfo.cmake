
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pscd/cache/dual_cache.cpp" "src/CMakeFiles/pscd.dir/pscd/cache/dual_cache.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/cache/dual_cache.cpp.o.d"
  "/root/repo/src/pscd/cache/dual_methods.cpp" "src/CMakeFiles/pscd.dir/pscd/cache/dual_methods.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/cache/dual_methods.cpp.o.d"
  "/root/repo/src/pscd/cache/gds_family.cpp" "src/CMakeFiles/pscd.dir/pscd/cache/gds_family.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/cache/gds_family.cpp.o.d"
  "/root/repo/src/pscd/cache/lru_strategy.cpp" "src/CMakeFiles/pscd.dir/pscd/cache/lru_strategy.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/cache/lru_strategy.cpp.o.d"
  "/root/repo/src/pscd/cache/oracle_strategy.cpp" "src/CMakeFiles/pscd.dir/pscd/cache/oracle_strategy.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/cache/oracle_strategy.cpp.o.d"
  "/root/repo/src/pscd/cache/strategy_factory.cpp" "src/CMakeFiles/pscd.dir/pscd/cache/strategy_factory.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/cache/strategy_factory.cpp.o.d"
  "/root/repo/src/pscd/cache/sub_strategy.cpp" "src/CMakeFiles/pscd.dir/pscd/cache/sub_strategy.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/cache/sub_strategy.cpp.o.d"
  "/root/repo/src/pscd/cache/value_cache.cpp" "src/CMakeFiles/pscd.dir/pscd/cache/value_cache.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/cache/value_cache.cpp.o.d"
  "/root/repo/src/pscd/core/engine.cpp" "src/CMakeFiles/pscd.dir/pscd/core/engine.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/core/engine.cpp.o.d"
  "/root/repo/src/pscd/core/hierarchy.cpp" "src/CMakeFiles/pscd.dir/pscd/core/hierarchy.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/core/hierarchy.cpp.o.d"
  "/root/repo/src/pscd/pubsub/broker.cpp" "src/CMakeFiles/pscd.dir/pscd/pubsub/broker.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/pubsub/broker.cpp.o.d"
  "/root/repo/src/pscd/pubsub/covering.cpp" "src/CMakeFiles/pscd.dir/pscd/pubsub/covering.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/pubsub/covering.cpp.o.d"
  "/root/repo/src/pscd/pubsub/matcher.cpp" "src/CMakeFiles/pscd.dir/pscd/pubsub/matcher.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/pubsub/matcher.cpp.o.d"
  "/root/repo/src/pscd/pubsub/routing.cpp" "src/CMakeFiles/pscd.dir/pscd/pubsub/routing.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/pubsub/routing.cpp.o.d"
  "/root/repo/src/pscd/pubsub/subscription.cpp" "src/CMakeFiles/pscd.dir/pscd/pubsub/subscription.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/pubsub/subscription.cpp.o.d"
  "/root/repo/src/pscd/sim/experiment.cpp" "src/CMakeFiles/pscd.dir/pscd/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/sim/experiment.cpp.o.d"
  "/root/repo/src/pscd/sim/metrics.cpp" "src/CMakeFiles/pscd.dir/pscd/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/sim/metrics.cpp.o.d"
  "/root/repo/src/pscd/sim/simulator.cpp" "src/CMakeFiles/pscd.dir/pscd/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/sim/simulator.cpp.o.d"
  "/root/repo/src/pscd/topology/barabasi_albert.cpp" "src/CMakeFiles/pscd.dir/pscd/topology/barabasi_albert.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/topology/barabasi_albert.cpp.o.d"
  "/root/repo/src/pscd/topology/graph.cpp" "src/CMakeFiles/pscd.dir/pscd/topology/graph.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/topology/graph.cpp.o.d"
  "/root/repo/src/pscd/topology/network.cpp" "src/CMakeFiles/pscd.dir/pscd/topology/network.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/topology/network.cpp.o.d"
  "/root/repo/src/pscd/topology/shortest_path.cpp" "src/CMakeFiles/pscd.dir/pscd/topology/shortest_path.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/topology/shortest_path.cpp.o.d"
  "/root/repo/src/pscd/topology/waxman.cpp" "src/CMakeFiles/pscd.dir/pscd/topology/waxman.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/topology/waxman.cpp.o.d"
  "/root/repo/src/pscd/util/args.cpp" "src/CMakeFiles/pscd.dir/pscd/util/args.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/util/args.cpp.o.d"
  "/root/repo/src/pscd/util/csv.cpp" "src/CMakeFiles/pscd.dir/pscd/util/csv.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/util/csv.cpp.o.d"
  "/root/repo/src/pscd/util/distributions.cpp" "src/CMakeFiles/pscd.dir/pscd/util/distributions.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/util/distributions.cpp.o.d"
  "/root/repo/src/pscd/util/log.cpp" "src/CMakeFiles/pscd.dir/pscd/util/log.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/util/log.cpp.o.d"
  "/root/repo/src/pscd/util/rng.cpp" "src/CMakeFiles/pscd.dir/pscd/util/rng.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/util/rng.cpp.o.d"
  "/root/repo/src/pscd/util/stats.cpp" "src/CMakeFiles/pscd.dir/pscd/util/stats.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/util/stats.cpp.o.d"
  "/root/repo/src/pscd/util/table.cpp" "src/CMakeFiles/pscd.dir/pscd/util/table.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/util/table.cpp.o.d"
  "/root/repo/src/pscd/workload/publishing.cpp" "src/CMakeFiles/pscd.dir/pscd/workload/publishing.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/workload/publishing.cpp.o.d"
  "/root/repo/src/pscd/workload/requests.cpp" "src/CMakeFiles/pscd.dir/pscd/workload/requests.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/workload/requests.cpp.o.d"
  "/root/repo/src/pscd/workload/serialize.cpp" "src/CMakeFiles/pscd.dir/pscd/workload/serialize.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/workload/serialize.cpp.o.d"
  "/root/repo/src/pscd/workload/subscriptions.cpp" "src/CMakeFiles/pscd.dir/pscd/workload/subscriptions.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/workload/subscriptions.cpp.o.d"
  "/root/repo/src/pscd/workload/workload.cpp" "src/CMakeFiles/pscd.dir/pscd/workload/workload.cpp.o" "gcc" "src/CMakeFiles/pscd.dir/pscd/workload/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
