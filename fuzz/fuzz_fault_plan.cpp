// Fuzz target: byte-decodes a FaultConfig (probabilities, rates and
// retry policy, with deliberate out-of-range values mixed in), checks
// validate() against an independent validity predicate, and for valid
// configs expands the FaultPlan twice (determinism oracle), replays it
// into a LinkState (alternation oracle: every event must flip the
// entity's state), and occasionally drives a micro simulation whose
// availability accounting must stay internally consistent.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "fuzz_check.h"
#include "fuzz_decoder.h"
#include "pscd/core/fault_plan.h"
#include "pscd/sim/simulator.h"
#include "pscd/topology/link_state.h"
#include "pscd/topology/network.h"
#include "pscd/util/check.h"
#include "pscd/util/rng.h"

namespace {

/// Mostly in-range values with a deliberate share of invalid ones so
/// the validate() differential sees both sides.
double wildDouble(pscd::fuzz::FuzzDecoder& in, double lo, double hi) {
  switch (in.u8() % 8) {
    case 0:
      return -1.0;
    case 1:
      return std::numeric_limits<double>::quiet_NaN();
    case 2:
      return std::numeric_limits<double>::infinity();
    default:
      return in.finiteDouble(lo, hi);
  }
}

pscd::FaultConfig decodeConfig(pscd::fuzz::FuzzDecoder& in) {
  pscd::FaultConfig fc;
  fc.seed = in.u64();
  fc.proxyFailuresPerDay = wildDouble(in, 0.0, 8.0);
  fc.proxyMeanDowntimeHours = wildDouble(in, 0.05, 6.0);
  fc.warmRestart = in.boolean();
  fc.linkFailuresPerDay = wildDouble(in, 0.0, 8.0);
  fc.linkMeanDowntimeHours = wildDouble(in, 0.05, 6.0);
  fc.pushLossProbability = wildDouble(in, 0.0, 1.0);
  fc.fetchFailureProbability = wildDouble(in, 0.0, 1.0);
  fc.publisherFailover = in.boolean();
  fc.retry.maxRetries = static_cast<std::uint32_t>(in.u8());  // > 64 possible
  fc.retry.backoffBaseMs = wildDouble(in, 0.0, 500.0);
  fc.retry.backoffFactor = wildDouble(in, 1.0, 4.0);
  return fc;
}

/// Independent reimplementation of the documented validity rules.
bool expectValid(const pscd::FaultConfig& fc) {
  const auto rate = [](double v) { return std::isfinite(v) && v >= 0.0; };
  const auto prob = [](double v) {
    return std::isfinite(v) && v >= 0.0 && v <= 1.0;
  };
  return rate(fc.proxyFailuresPerDay) && rate(fc.linkFailuresPerDay) &&
         std::isfinite(fc.proxyMeanDowntimeHours) &&
         fc.proxyMeanDowntimeHours > 0.0 &&
         std::isfinite(fc.linkMeanDowntimeHours) &&
         fc.linkMeanDowntimeHours > 0.0 && prob(fc.pushLossProbability) &&
         prob(fc.fetchFailureProbability) && fc.retry.maxRetries <= 64 &&
         std::isfinite(fc.retry.backoffBaseMs) &&
         fc.retry.backoffBaseMs >= 0.0 &&
         std::isfinite(fc.retry.backoffFactor) &&
         fc.retry.backoffFactor >= 1.0;
}

bool sameEvent(const pscd::FaultEvent& a, const pscd::FaultEvent& b) {
  return a.time == b.time && a.kind == b.kind && a.proxy == b.proxy &&
         a.linkA == b.linkA && a.linkB == b.linkB;
}

/// Replays the schedule into a LinkState: a well-formed plan flips an
/// entity's state with every event (down when up, up when down).
void replayIntoLinkState(const pscd::FaultPlan& plan,
                         const pscd::Network& network) {
  pscd::LinkState state(network);
  for (const pscd::FaultEvent& ev : plan.events) {
    switch (ev.kind) {
      case pscd::FaultEventKind::kProxyDown:
        FUZZ_ASSERT(!state.proxyDown(ev.proxy));
        state.setProxyDown(ev.proxy);
        break;
      case pscd::FaultEventKind::kProxyUp:
        FUZZ_ASSERT(state.proxyDown(ev.proxy));
        state.setProxyUp(ev.proxy);
        break;
      case pscd::FaultEventKind::kLinkDown:
        FUZZ_ASSERT(!state.linkDown(ev.linkA, ev.linkB));
        state.setLinkDown(ev.linkA, ev.linkB);
        break;
      case pscd::FaultEventKind::kLinkUp:
        FUZZ_ASSERT(state.linkDown(ev.linkA, ev.linkB));
        state.setLinkUp(ev.linkA, ev.linkB);
        break;
    }
    for (pscd::ProxyId p = 0; p < network.numProxies(); ++p) {
      (void)state.fetchCost(p);
    }
    state.checkInvariants();
  }
}

/// Shared micro workload/network: built once, reused across inputs (the
/// fault layer under test never mutates either).
struct MicroFixture {
  MicroFixture()
      : rng(9),
        network(pscd::NetworkParams{.numProxies = 4, .numTransitNodes = 2},
                rng) {
    pscd::WorkloadParams p = pscd::newsTraceParams();
    p.publishing.numPages = 60;
    p.publishing.numUpdatedPages = 25;
    p.publishing.maxVersionsPerPage = 6;
    p.request.totalRequests = 600;
    p.request.numProxies = 4;
    p.request.minServerPool = 2;
    p.seed = 3;
    workload = pscd::buildWorkload(p);
  }
  pscd::Rng rng;
  pscd::Network network;
  pscd::Workload workload;
};

void microSim(const pscd::FaultConfig& fc, const pscd::Network& network,
              const pscd::Workload& workload) {
  pscd::SimConfig c;
  c.strategy = pscd::StrategyKind::kSG2;
  c.beta = 2.0;
  c.faults = fc;
  const pscd::SimMetrics m =
      pscd::Simulator(workload, network, c).run();
  FUZZ_ASSERT(m.requests() == workload.requests.size());
  FUZZ_ASSERT(m.servedRequests() + m.unavailableRequests() == m.requests());
  FUZZ_ASSERT(m.availability() >= 0.0 && m.availability() <= 1.0);
  FUZZ_ASSERT(m.staleServes() <= m.servedRequests());
  FUZZ_ASSERT(m.hits() + m.staleServes() <= m.servedRequests());
  FUZZ_ASSERT(!fc.enabled() ||
              m.totalRetries() <=
                  static_cast<std::uint64_t>(fc.retry.maxRetries) *
                      m.requests());
  if (!fc.enabled()) {
    // pscd-lint: allow(float-compare) fault-free runs must be exactly 1.0
    FUZZ_ASSERT(m.availability() == 1.0);
    FUZZ_ASSERT(m.traffic().lostPushPages == 0);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static const MicroFixture fixture;
  pscd::fuzz::FuzzDecoder in(data, size);

  const pscd::FaultConfig fc = decodeConfig(in);
  const bool shouldBeValid = expectValid(fc);
  bool threw = false;
  try {
    fc.validate();
  } catch (const pscd::CheckFailure&) {
    threw = true;
  }
  FUZZ_ASSERT(threw == !shouldBeValid);
  if (!shouldBeValid) {
    // buildFaultPlan must reject what validate() rejects.
    bool buildThrew = false;
    try {
      (void)pscd::buildFaultPlan(fc, fixture.network, 2 * pscd::kDay);
    } catch (const pscd::CheckFailure&) {
      buildThrew = true;
    }
    FUZZ_ASSERT(buildThrew);
    return 0;
  }

  const pscd::SimTime horizon =
      in.finiteDouble(0.0, 3.0) * pscd::kDay;
  const pscd::FaultPlan plan =
      pscd::buildFaultPlan(fc, fixture.network, horizon);
  plan.checkInvariants(fixture.network);
  const pscd::FaultPlan again =
      pscd::buildFaultPlan(fc, fixture.network, horizon);
  FUZZ_ASSERT(plan.events.size() == again.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    FUZZ_ASSERT(sameEvent(plan.events[i], again.events[i]));
  }
  replayIntoLinkState(plan, fixture.network);

  // The full pipeline is pricier; run it on a subset of inputs.
  if (in.u8() % 4 == 0) {
    microSim(fc, fixture.network, fixture.workload);
  }
  return 0;
}
