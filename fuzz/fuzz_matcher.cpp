// Fuzz target: drives the production MatchingEngine and the brute-force
// ReferenceMatcher through the same byte-decoded operation sequence and
// aborts on any observable difference (a differential oracle, so the
// fuzzer needs no knowledge of what a "correct" match result is).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fuzz_check.h"
#include "fuzz_decoder.h"
#include "pscd/oracle/reference_matcher.h"
#include "pscd/pubsub/matcher.h"

namespace {

pscd::Subscription decodeSubscription(pscd::fuzz::FuzzDecoder& in) {
  pscd::Subscription sub;
  sub.proxy = static_cast<pscd::ProxyId>(in.u8() % 8);
  // 0 conjuncts is deliberately reachable: both sides must reject it.
  const std::size_t n = in.u8() % 4;
  for (std::size_t i = 0; i < n; ++i) {
    pscd::Predicate p;
    switch (in.u8() % 3) {
      case 0:
        p.kind = pscd::Predicate::Kind::kPageIdEq;
        break;
      case 1:
        p.kind = pscd::Predicate::Kind::kCategoryEq;
        break;
      default:
        p.kind = pscd::Predicate::Kind::kKeywordContains;
        break;
    }
    p.value = in.u8() % 16;
    sub.conjuncts.push_back(p);
  }
  return sub;
}

pscd::ContentAttributes decodeAttributes(pscd::fuzz::FuzzDecoder& in) {
  pscd::ContentAttributes attrs;
  attrs.page = in.u8() % 16;
  attrs.category = in.u8() % 16;
  const std::size_t n = in.u8() % 6;
  for (std::size_t i = 0; i < n; ++i) {
    attrs.keywords.push_back(in.u8() % 16);
  }
  return attrs;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pscd::fuzz::FuzzDecoder in(data, size);
  pscd::MatchingEngine prod;
  pscd::ReferenceMatcher ref;
  std::vector<pscd::SubscriptionId> ids;

  std::size_t steps = 0;
  while (!in.done() && steps++ < 512) {
    switch (in.u8() % 4) {
      case 0:
      case 1: {
        const pscd::Subscription sub = decodeSubscription(in);
        bool prodThrew = false;
        bool refThrew = false;
        pscd::SubscriptionId prodId = 0;
        pscd::SubscriptionId refId = 0;
        try {
          prodId = prod.addSubscription(sub);
        } catch (const std::invalid_argument&) {
          prodThrew = true;
        }
        try {
          refId = ref.addSubscription(sub);
        } catch (const std::invalid_argument&) {
          refThrew = true;
        }
        FUZZ_ASSERT(prodThrew == refThrew);
        if (!prodThrew) {
          FUZZ_ASSERT(prodId == refId);
          ids.push_back(prodId);
        }
        break;
      }
      case 2: {
        // Mix known ids with raw ones so unknown / already-removed ids
        // are exercised too.
        pscd::SubscriptionId id = in.u8();
        if (!ids.empty() && in.boolean()) {
          id = ids[in.u8() % ids.size()];
        }
        FUZZ_ASSERT(prod.removeSubscription(id) ==
                    ref.removeSubscription(id));
        break;
      }
      default: {
        const pscd::ContentAttributes attrs = decodeAttributes(in);
        pscd::MatchResult got = prod.match(attrs);
        const pscd::MatchResult want = ref.match(attrs);
        std::sort(got.subscriptions.begin(), got.subscriptions.end());
        FUZZ_ASSERT(got.subscriptions == want.subscriptions);
        FUZZ_ASSERT(got.proxyCounts == want.proxyCounts);
        break;
      }
    }
    FUZZ_ASSERT(prod.size() == ref.size());
  }
  prod.checkInvariants();  // a CheckFailure escaping = finding
  return 0;
}
