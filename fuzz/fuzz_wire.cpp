// Fuzz target for the wire-protocol codec. Two modes, selected by the
// first input byte:
//
//   raw-decode  — the remaining bytes are fed straight to decodeFrame,
//                 which must never crash, never consume more than it was
//                 given, report kOk only with consumed == header + body,
//                 and attach a field-named error exactly on kError. Any
//                 accepted frame must survive re-encode → re-decode as
//                 an identical value (codec round-trip oracle).
//
//   structured  — a FuzzDecoder builds a valid frame of an arbitrary
//                 type, encodes it, and checks decode identity both for
//                 the clean bytes and after a single byte mutation
//                 (which may still be valid — but whatever decodes must
//                 re-encode stably; kOk/kError are both acceptable,
//                 kNeedMore is not for a complete mutated buffer unless
//                 the mutation enlarged the claimed body length).
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "fuzz_check.h"
#include "fuzz_decoder.h"
#include "pscd/net/wire.h"

namespace {

using pscd::net::DecodeResult;
using pscd::net::DecodeStatus;
using pscd::net::FrameType;
using pscd::net::WireFrame;

/// Invariants every decodeFrame call must uphold, regardless of input.
void checkDecodeInvariants(const std::uint8_t* data, std::size_t size,
                           const DecodeResult& result) {
  FUZZ_ASSERT(result.consumed <= size);
  switch (result.status) {
    case DecodeStatus::kOk: {
      FUZZ_ASSERT(result.consumed >= pscd::net::kWireHeaderBytes);
      FUZZ_ASSERT(result.error.empty());
      // An accepted frame re-encodes to exactly the bytes consumed and
      // decodes back to the same value.
      const std::string bytes = pscd::net::encodeFrame(result.frame);
      FUZZ_ASSERT(bytes.size() == result.consumed);
      FUZZ_ASSERT(std::memcmp(bytes.data(), data, bytes.size()) == 0);
      const DecodeResult again = pscd::net::decodeFrame(bytes);
      FUZZ_ASSERT(again.status == DecodeStatus::kOk);
      FUZZ_ASSERT(again.frame == result.frame);
      break;
    }
    case DecodeStatus::kNeedMore:
      FUZZ_ASSERT(result.consumed == 0);
      FUZZ_ASSERT(result.error.empty());
      break;
    case DecodeStatus::kError:
      FUZZ_ASSERT(result.consumed == 0);
      FUZZ_ASSERT(!result.error.empty());
      break;
  }
}

/// Builds a structurally valid frame of a decoder-chosen type.
WireFrame buildFrame(pscd::fuzz::FuzzDecoder& in) {
  WireFrame frame;
  frame.seq = in.u32();
  switch (in.u8() % 5) {
    case 0:
      frame.body = pscd::net::SubscribeBody{in.u32(), in.u32(), in.u32()};
      break;
    case 1:
      frame.body = pscd::net::UnsubscribeBody{in.u32(), in.u32(), in.u32()};
      break;
    case 2:
      frame.body = pscd::net::PublishBody{in.u32(), in.u32(), in.u64()};
      break;
    case 3:
      frame.body = pscd::net::RequestBody{in.u32(), in.u32()};
      break;
    default: {
      pscd::net::ResponseBody r;
      r.status = in.u8() % 3;  // kOk / kError / kOverloaded
      r.op = static_cast<std::uint8_t>(1 + in.u8() % 4);
      r.hit = in.u8() % 2;
      r.stale = in.u8() % 2;
      r.pages = in.u64();
      r.bytes = in.u64();
      r.responseTimeMs = in.finiteDouble(0.0, 1e6);
      frame.body = r;
      break;
    }
  }
  return frame;
}

void structuredCase(pscd::fuzz::FuzzDecoder& in) {
  const WireFrame frame = buildFrame(in);
  const std::string bytes = pscd::net::encodeFrame(frame);

  // Clean bytes: exact identity through the streaming decoder and the
  // closed-buffer wrapper.
  const DecodeResult result = pscd::net::decodeFrame(bytes);
  FUZZ_ASSERT(result.status == DecodeStatus::kOk);
  FUZZ_ASSERT(result.consumed == bytes.size());
  FUZZ_ASSERT(result.frame == frame);
  FUZZ_ASSERT(pscd::net::decodeClosedFrame(bytes) == frame);

  // Every proper prefix of a valid frame is kNeedMore, never kError:
  // a stream must keep reading, not drop the connection.
  const std::size_t cut = static_cast<std::size_t>(
      in.intInRange(0, bytes.size() - 1));
  const DecodeResult prefix = pscd::net::decodeFrame(
      std::string_view(bytes).substr(0, cut));
  FUZZ_ASSERT(prefix.status == DecodeStatus::kNeedMore);

  // Single-byte mutation: the decoder may accept (mutation hit a
  // don't-care bit pattern like seq) or reject with a named error, but
  // it must not crash, and anything accepted must round-trip.
  std::string mutated = bytes;
  const std::size_t at = static_cast<std::size_t>(
      in.intInRange(0, mutated.size() - 1));
  mutated[at] = static_cast<char>(mutated[at] ^ static_cast<char>(
      in.intInRange(1, 255)));
  const DecodeResult after = pscd::net::decodeFrame(mutated);
  checkDecodeInvariants(
      reinterpret_cast<const std::uint8_t*>(mutated.data()),
      mutated.size(), after);
  if (after.status == DecodeStatus::kNeedMore) {
    // Only a bodyLen-enlarging mutation may legitimately leave a
    // complete buffer hungry; anything else would stall the stream.
    FUZZ_ASSERT(at >= 12 && at < 16);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pscd::fuzz::FuzzDecoder in(data, size);
  if (in.boolean()) {
    structuredCase(in);
  } else {
    // Raw mode: whatever bytes remain go straight into the decoder.
    const std::uint8_t* raw = size > 0 ? data + 1 : data;
    const std::size_t rawSize = size > 0 ? size - 1 : 0;
    checkDecodeInvariants(raw, rawSize,
                          pscd::net::decodeFrame(raw, rawSize));
  }
  return 0;
}
