// Standalone driver for the fuzz targets, used when no fuzzing engine
// is available (the default toolchain here is gcc, which has no
// libFuzzer). It gives every target a `main` that can
//
//   * replay a committed corpus:      fuzz_x corpus/fuzz_x [more paths]
//   * run bounded random fuzzing:     fuzz_x --fuzz-iters 50000 --seed 7
//                                     fuzz_x --fuzz-seconds 30 corpus/fuzz_x
//   * reproduce one failing iter:     fuzz_x --replay-iter 1234 --seed 7
//
// Random inputs are derived from the repo's deterministic Rng, reseeded
// per iteration from (seed, iteration), so a crash report of the form
// "iteration N, seed S" is a complete reproduction recipe — independent
// of how many iterations ran before it. When corpus inputs are given
// they are replayed first and then also used as mutation bases.
//
// Under clang, configure with -DPSCD_FUZZ_ENGINE=ON instead to link the
// targets against libFuzzer (-fsanitize=fuzzer); this file is then not
// compiled at all.
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pscd/util/rng.h"
#include "pscd/util/wallclock.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

// Context of the currently executing input, printed by the abort
// handler so a crashing iteration is identifiable from the log alone.
volatile std::sig_atomic_t g_inRandomIter = 0;
std::uint64_t g_currentIter = 0;
std::uint64_t g_currentSeed = 0;
char g_currentFile[4096] = {0};

void abortHandler(int) {
  // Async-signal-safe output only: pre-rendered with snprintf upfront
  // would be nicer, but write() of a static buffer is acceptable here
  // because we are about to die anyway.
  char buf[256];
  int n;
  if (g_inRandomIter) {
    n = std::snprintf(buf, sizeof(buf),
                      "\n[fuzz_driver] crash in random iteration %llu "
                      "(--replay-iter %llu --seed %llu)\n",
                      static_cast<unsigned long long>(g_currentIter),
                      static_cast<unsigned long long>(g_currentIter),
                      static_cast<unsigned long long>(g_currentSeed));
  } else {
    n = std::snprintf(buf, sizeof(buf),
                      "\n[fuzz_driver] crash replaying corpus file %s\n",
                      g_currentFile);
  }
  if (n > 0) {
    [[maybe_unused]] auto r = write(2, buf, static_cast<std::size_t>(n));
  }
  std::signal(SIGABRT, SIG_DFL);  // NOLINT(concurrency-mt-unsafe)
  std::abort();
}

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Deterministic input for one random iteration: either fresh random
/// bytes or a mutation (byte flips, truncation, tail append) of a
/// corpus entry.
std::vector<std::uint8_t> makeInput(
    pscd::Rng& rng, std::size_t maxLen,
    const std::vector<std::vector<std::uint8_t>>& corpus) {
  std::vector<std::uint8_t> input;
  if (!corpus.empty() && rng.bernoulli(0.5)) {
    input = corpus[rng.uniformInt(corpus.size())];
    const std::uint64_t mutations = 1 + rng.uniformInt(8);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      switch (rng.uniformInt(3)) {
        case 0:  // flip a byte
          if (!input.empty()) {
            input[rng.uniformInt(input.size())] =
                static_cast<std::uint8_t>(rng.uniformInt(256));
          }
          break;
        case 1:  // truncate
          if (!input.empty()) {
            input.resize(rng.uniformInt(input.size()));
          }
          break;
        default:  // append junk
          for (std::uint64_t i = rng.uniformInt(16); i > 0; --i) {
            input.push_back(static_cast<std::uint8_t>(rng.uniformInt(256)));
          }
          break;
      }
    }
    if (input.size() > maxLen) input.resize(maxLen);
  } else {
    input.resize(rng.uniformInt(maxLen + 1));
    for (auto& b : input) {
      b = static_cast<std::uint8_t>(rng.uniformInt(256));
    }
  }
  return input;
}

std::uint64_t iterationSeed(std::uint64_t seed, std::uint64_t iter) {
  std::uint64_t state = seed ^ (iter * 0x9e3779b97f4a7c15ull);
  return pscd::splitmix64(state);
}

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [corpus files/dirs...] [--fuzz-iters N] "
      "[--fuzz-seconds S] [--seed X] [--max-len L] [--replay-iter I]\n",
      prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::uint64_t fuzzIters = 0;
  double fuzzSeconds = 0.0;
  std::uint64_t seed = 1;
  std::size_t maxLen = 4096;
  std::int64_t replayIter = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(argv[0]);
    const bool takesValue = arg == "--fuzz-iters" ||
                            arg == "--fuzz-seconds" || arg == "--seed" ||
                            arg == "--max-len" || arg == "--replay-iter";
    if (!takesValue) {
      paths.push_back(arg);
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      return usage(argv[0]);
    }
    const char* v = argv[++i];
    if (arg == "--fuzz-iters") {
      fuzzIters = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fuzz-seconds") {
      fuzzSeconds = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-len") {
      maxLen = std::strtoull(v, nullptr, 10);
    } else {
      replayIter = std::strtoll(v, nullptr, 10);
    }
  }

  std::signal(SIGABRT, abortHandler);  // NOLINT(concurrency-mt-unsafe)

  // Gather corpus files (directories are scanned one level deep).
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(p, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else if (std::filesystem::exists(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "[fuzz_driver] no such input: %s\n", p.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // Phase 1: corpus replay (deterministic regression mode).
  std::vector<std::vector<std::uint8_t>> corpus;
  for (const std::string& f : files) {
    std::snprintf(g_currentFile, sizeof(g_currentFile), "%s", f.c_str());
    corpus.push_back(readFile(f));
    LLVMFuzzerTestOneInput(corpus.back().data(), corpus.back().size());
  }
  std::printf("[fuzz_driver] replayed %zu corpus file(s) cleanly\n",
              corpus.size());

  // Phase 2: reproduce a single reported iteration.
  if (replayIter >= 0) {
    g_inRandomIter = 1;
    g_currentIter = static_cast<std::uint64_t>(replayIter);
    g_currentSeed = seed;
    pscd::Rng rng(iterationSeed(seed, g_currentIter));
    const auto input = makeInput(rng, maxLen, corpus);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    std::printf("[fuzz_driver] iteration %lld replayed cleanly\n",
                static_cast<long long>(replayIter));
    return 0;
  }

  // Phase 3: bounded random fuzzing.
  if (fuzzIters > 0 || fuzzSeconds > 0.0) {
    // Time budget only — never feeds the inputs themselves, which stay
    // a pure function of (seed, iteration).
    const double start = pscd::monotonicSeconds();
    std::uint64_t iter = 0;
    g_currentSeed = seed;
    for (;;) {
      if (fuzzIters > 0 && iter >= fuzzIters) break;
      if (fuzzSeconds > 0.0 &&
          pscd::monotonicSeconds() - start >= fuzzSeconds) {
        break;
      }
      g_inRandomIter = 1;
      g_currentIter = iter;
      // Reseeded per iteration: reproducing iteration N never requires
      // re-running iterations 0..N-1.
      pscd::Rng rng(iterationSeed(seed, iter));
      const auto input = makeInput(rng, maxLen, corpus);
      LLVMFuzzerTestOneInput(input.data(), input.size());
      g_inRandomIter = 0;
      ++iter;
    }
    std::printf("[fuzz_driver] %llu random iteration(s), seed %llu, ok\n",
                static_cast<unsigned long long>(iter),
                static_cast<unsigned long long>(seed));
  }
  return 0;
}
