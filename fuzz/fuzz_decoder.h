// Structure-aware fuzz input decoder: turns the raw byte string a
// fuzzing engine hands to LLVMFuzzerTestOneInput into typed values
// (bounded integers, probabilities, finite doubles, strings). Follows
// the FuzzedDataProvider convention of returning zeros once the input
// is exhausted, so every byte string — including the empty one — decodes
// to a valid operation sequence and the decoder itself can never be the
// crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace pscd::fuzz {

class FuzzDecoder {
 public:
  FuzzDecoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ >= size_; }

  std::uint8_t u8() {
    if (done()) return 0;
    return data_[pos_++];
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | u8();
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | u8();
    return v;
  }

  bool boolean() { return (u8() & 1) != 0; }

  /// Uniform-ish integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t intInRange(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;  // 0 means the full 2^64 range
    return span == 0 ? u64() : lo + u64() % span;
  }

  /// Value in [0, 1].
  double probability() {
    return static_cast<double>(u32()) / 4294967295.0;
  }

  /// Finite double in [lo, hi]; never NaN/inf by construction.
  double finiteDouble(double lo, double hi) {
    return lo + probability() * (hi - lo);
  }

  /// Up to maxLen raw bytes as a string (may contain NULs).
  std::string string(std::size_t maxLen) {
    std::size_t n = intInRange(0, maxLen);
    if (n > remaining()) n = remaining();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace pscd::fuzz
