// Fuzz target for the command-line parser: an arbitrary decoded argv
// must either parse (after which every typed getter returns a value or
// throws std::invalid_argument) or fail with a non-empty error message.
// Nothing here may crash or read out of bounds.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_check.h"
#include "fuzz_decoder.h"
#include "pscd/util/args.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pscd::fuzz::FuzzDecoder in(data, size);

  pscd::ArgParser parser("fuzz", "argv fuzz target");
  parser.addOption("alpha", "a double", "1.5");
  parser.addOption("count", "an integer", "3");
  parser.addOption("name", "a string", "x");
  parser.addFlag("verbose", "a flag");

  std::vector<std::string> storage;
  storage.emplace_back("fuzz");
  const std::size_t n = in.u8() % 8;
  for (std::size_t i = 0; i < n; ++i) {
    if (in.boolean()) {
      // Raw decoded bytes: arbitrary junk, possibly with embedded NULs
      // (cut off at the first NUL by the C-string boundary, like a real
      // command line would be).
      storage.push_back(in.string(24));
    } else {
      // Structured-ish fragments so the parser's success paths are
      // reached too, not only the reject paths.
      static const char* kFragments[] = {
          "--alpha",  "--alpha=2.5", "--count",   "--count=7",
          "--name",   "--name=abc",  "--verbose", "--",
          "--=x",     "-h",          "nan",       "1e999",
          "0x1p2",    "--unknown",   "7",         "",
      };
      storage.emplace_back(
          kFragments[in.u8() % (sizeof(kFragments) / sizeof(*kFragments))]);
    }
  }
  std::vector<const char*> argv;
  argv.reserve(storage.size());
  for (const std::string& s : storage) argv.push_back(s.c_str());

  if (parser.parse(static_cast<int>(argv.size()), argv.data())) {
    FUZZ_ASSERT(parser.error().empty());
    try {
      (void)parser.optionDouble("alpha");
    } catch (const std::invalid_argument&) {
    }
    try {
      (void)parser.optionInt("count");
    } catch (const std::invalid_argument&) {
    }
    (void)parser.option("name");
    (void)parser.flag("verbose");
  }
  (void)parser.help();
  return 0;
}
