// Assertion macro for fuzz targets: on failure it prints the condition
// and location to stderr and aborts, which every fuzzing engine (and the
// standalone replay driver) treats as a finding. Deliberately not tied
// to PSCD_CHECK — a target must crash on a violated oracle even in a
// build where library checks are compiled out.
#pragma once

#include <cstdio>
#include <cstdlib>

#define FUZZ_ASSERT(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s at %s:%d\n",    \
                   #cond, __FILE__, __LINE__);                     \
      std::abort();                                                \
    }                                                              \
  } while (0)
