// Fuzz target for the subscription language and covering logic: checks
// covers() against the naive coversNaive() on decoded subscription
// pairs, and drives CoveringSet against ReferenceCoveringSet through the
// same operation sequence, aborting on any disagreement.
#include <cstddef>
#include <cstdint>

#include "fuzz_check.h"
#include "fuzz_decoder.h"
#include "pscd/oracle/reference_covering.h"
#include "pscd/pubsub/covering.h"

namespace {

pscd::Subscription decodeSubscription(pscd::fuzz::FuzzDecoder& in) {
  pscd::Subscription sub;
  sub.proxy = static_cast<pscd::ProxyId>(in.u8() % 4);
  // Tiny vocabulary so covering relations occur constantly; duplicates
  // within one conjunction are deliberate (normalization must collapse
  // them, the naive path must tolerate them).
  const std::size_t n = in.u8() % 4;
  for (std::size_t i = 0; i < n; ++i) {
    pscd::Predicate p;
    switch (in.u8() % 3) {
      case 0:
        p.kind = pscd::Predicate::Kind::kPageIdEq;
        p.value = in.u8() % 2;
        break;
      case 1:
        p.kind = pscd::Predicate::Kind::kCategoryEq;
        p.value = in.u8() % 3;
        break;
      default:
        p.kind = pscd::Predicate::Kind::kKeywordContains;
        p.value = in.u8() % 4;
        break;
    }
    sub.conjuncts.push_back(p);
  }
  return sub;
}

pscd::ContentAttributes decodeAttributes(pscd::fuzz::FuzzDecoder& in) {
  pscd::ContentAttributes attrs;
  attrs.page = in.u8() % 2;
  attrs.category = in.u8() % 3;
  const std::size_t n = in.u8() % 4;
  for (std::size_t i = 0; i < n; ++i) {
    attrs.keywords.push_back(in.u8() % 4);
  }
  return attrs;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pscd::fuzz::FuzzDecoder in(data, size);
  pscd::CoveringSet prod;
  pscd::ReferenceCoveringSet ref;

  std::size_t steps = 0;
  while (!in.done() && steps++ < 256) {
    switch (in.u8() % 4) {
      case 0: {
        const pscd::Subscription a = decodeSubscription(in);
        const pscd::Subscription b = decodeSubscription(in);
        FUZZ_ASSERT(pscd::covers(a, b) == pscd::coversNaive(a, b));
        // Covering must be reflexive for nonempty conjunction sets.
        if (!a.conjuncts.empty()) FUZZ_ASSERT(pscd::covers(a, a));
        break;
      }
      case 1: {
        const pscd::Subscription sub = decodeSubscription(in);
        FUZZ_ASSERT(prod.add(sub) == ref.add(sub));
        break;
      }
      case 2: {
        const pscd::Subscription sub = decodeSubscription(in);
        FUZZ_ASSERT(prod.isCovered(sub) == ref.isCovered(sub));
        break;
      }
      default: {
        const pscd::ContentAttributes attrs = decodeAttributes(in);
        FUZZ_ASSERT(prod.matches(attrs) == ref.matches(attrs));
        break;
      }
    }
    FUZZ_ASSERT(prod.size() == ref.size());
  }
  return 0;
}
