// Fuzz target for the trace loader: arbitrary bytes must either load
// into a valid Workload or be rejected with the documented exception
// types — never crash, never trip a sanitizer. Accepted inputs must
// survive a save/load round trip.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "fuzz_check.h"
#include "pscd/workload/serialize.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::stringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const pscd::Workload w = pscd::loadWorkload(in);
    // Whatever the loader accepts must be stable under re-serialization.
    std::stringstream buf;
    pscd::saveWorkload(w, buf);
    const pscd::Workload again = pscd::loadWorkload(buf);
    FUZZ_ASSERT(again.pages.size() == w.pages.size());
    FUZZ_ASSERT(again.publishes.size() == w.publishes.size());
    FUZZ_ASSERT(again.requests.size() == w.requests.size());
    FUZZ_ASSERT(again.subEntries.size() == w.subEntries.size());
  } catch (const std::runtime_error&) {
    // Malformed input — the documented rejection path.
  } catch (const std::logic_error&) {
    // Structurally valid but semantically inconsistent (validate()).
  }
  return 0;
}
