#include "pscd/cache/strategy_factory.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

StrategyParams params() {
  StrategyParams p;
  p.capacity = 1000;
  p.fetchCost = 1.5;
  p.beta = 2.0;
  return p;
}

TEST(StrategyFactoryTest, NamesRoundTrip) {
  for (const StrategyKind kind :
       {StrategyKind::kGDStar, StrategyKind::kSUB, StrategyKind::kSG1,
        StrategyKind::kSG2, StrategyKind::kSR, StrategyKind::kDM,
        StrategyKind::kDCFP, StrategyKind::kDCAP, StrategyKind::kDCLAP,
        StrategyKind::kLRU, StrategyKind::kGDS, StrategyKind::kLFUDA}) {
    EXPECT_EQ(parseStrategyKind(strategyName(kind)), kind);
  }
}

TEST(StrategyFactoryTest, ParseRejectsUnknown) {
  EXPECT_THROW(parseStrategyKind("NOPE"), std::invalid_argument);
  EXPECT_THROW(parseStrategyKind(""), std::invalid_argument);
}

TEST(StrategyFactoryTest, ConstructedNamesMatchEnum) {
  for (const StrategyKind kind : kPaperStrategies) {
    const auto s = makeStrategy(kind, params());
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), strategyName(kind));
    EXPECT_EQ(s->capacityBytes(), 1000u);
    EXPECT_EQ(s->usedBytes(), 0u);
  }
}

TEST(StrategyFactoryTest, PushCapabilityMatrix) {
  const auto capable = [&](StrategyKind k) {
    return makeStrategy(k, params())->pushCapable();
  };
  EXPECT_FALSE(capable(StrategyKind::kGDStar));
  EXPECT_FALSE(capable(StrategyKind::kLRU));
  EXPECT_FALSE(capable(StrategyKind::kGDS));
  EXPECT_FALSE(capable(StrategyKind::kLFUDA));
  EXPECT_TRUE(capable(StrategyKind::kSUB));
  EXPECT_TRUE(capable(StrategyKind::kSG1));
  EXPECT_TRUE(capable(StrategyKind::kSG2));
  EXPECT_TRUE(capable(StrategyKind::kSR));
  EXPECT_TRUE(capable(StrategyKind::kDM));
  EXPECT_TRUE(capable(StrategyKind::kDCFP));
  EXPECT_TRUE(capable(StrategyKind::kDCAP));
  EXPECT_TRUE(capable(StrategyKind::kDCLAP));
}

TEST(StrategyFactoryTest, DualCacheFractionsApplied) {
  StrategyParams p = params();
  p.dcInitialPcFraction = 0.3;
  const auto s = makeStrategy(StrategyKind::kDCFP, p);
  // 30% of 1000 bytes for the push cache, verified indirectly: a 350-
  // byte push cannot fit in PC but a 250-byte one can.
  PushContext big{1, 0, 350, 10, 0.0};
  PushContext small{2, 0, 250, 10, 0.0};
  EXPECT_FALSE(s->onPush(big).stored);
  EXPECT_TRUE(s->onPush(small).stored);
}

TEST(StrategyFactoryTest, PaperStrategiesListComplete) {
  EXPECT_EQ(std::size(kPaperStrategies), 9u);
}

TEST(LruStrategyTest, EvictsLeastRecentlyUsed) {
  const auto s = makeStrategy(StrategyKind::kLRU,
                              {.capacity = 100, .fetchCost = 1.0});
  RequestContext r1{1, 0, 50, 0, 0.0};
  RequestContext r2{2, 0, 50, 0, 1.0};
  RequestContext r3{3, 0, 50, 0, 2.0};
  s->onRequest(r1);
  s->onRequest(r2);
  s->onRequest(r1);  // page 1 recently used
  s->onRequest(r3);  // evicts page 2
  EXPECT_TRUE(s->onRequest(r1).hit);
  EXPECT_FALSE(s->onRequest(r2).hit);
  s->checkInvariants();
}

TEST(LruStrategyTest, StaleCopyRefetched) {
  const auto s = makeStrategy(StrategyKind::kLRU,
                              {.capacity = 100, .fetchCost = 1.0});
  RequestContext v0{1, 0, 50, 0, 0.0};
  s->onRequest(v0);
  RequestContext v1{1, 1, 50, 0, 1.0};
  const auto out = s->onRequest(v1);
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.stale);
  EXPECT_TRUE(s->onRequest(v1).hit);
}

TEST(LruStrategyTest, OversizedPageSkipped) {
  const auto s = makeStrategy(StrategyKind::kLRU,
                              {.capacity = 100, .fetchCost = 1.0});
  RequestContext r{1, 0, 500, 0, 0.0};
  EXPECT_FALSE(s->onRequest(r).storedAfterMiss);
  EXPECT_EQ(s->usedBytes(), 0u);
}

}  // namespace
}  // namespace pscd
