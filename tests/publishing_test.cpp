#include "pscd/workload/publishing.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pscd {
namespace {

PublishingParams smallParams() {
  PublishingParams p;
  p.numPages = 500;
  p.numUpdatedPages = 200;
  return p;
}

TEST(PublishingTest, PageAndEventCounts) {
  Rng rng(1);
  const auto s = generatePublishing(smallParams(), 1.5, 0.85, rng);
  EXPECT_EQ(s.pages.size(), 500u);
  std::size_t expectedEvents = 0;
  for (const auto& info : s.pages) expectedEvents += info.numVersions;
  EXPECT_EQ(s.events.size(), expectedEvents);
}

TEST(PublishingTest, UpdatedPageCountMatches) {
  Rng rng(2);
  const auto s = generatePublishing(smallParams(), 1.5, 0.85, rng);
  const auto updated = std::count_if(
      s.pages.begin(), s.pages.end(),
      [](const PageInfo& p) { return p.modificationInterval > 0; });
  EXPECT_EQ(updated, 200);
}

TEST(PublishingTest, EventsSortedByTimeWithinHorizon) {
  Rng rng(3);
  const auto s = generatePublishing(smallParams(), 1.5, 0.85, rng);
  SimTime prev = 0.0;
  for (const auto& e : s.events) {
    EXPECT_GE(e.time, prev);
    EXPECT_LE(e.time, smallParams().horizon);
    prev = e.time;
  }
}

TEST(PublishingTest, VersionsSequentialPerPage) {
  Rng rng(4);
  const auto s = generatePublishing(smallParams(), 1.5, 0.85, rng);
  std::vector<Version> next(s.pages.size(), 0);
  for (const auto& e : s.events) {
    EXPECT_EQ(e.version, next[e.page]++);
  }
  for (PageId p = 0; p < s.pages.size(); ++p) {
    EXPECT_EQ(next[p], s.pages[p].numVersions);
  }
}

TEST(PublishingTest, VersionCapRespected) {
  Rng rng(5);
  PublishingParams p = smallParams();
  p.maxVersionsPerPage = 7;
  const auto s = generatePublishing(p, 1.5, 0.85, rng);
  for (const auto& info : s.pages) EXPECT_LE(info.numVersions, 7u);
}

TEST(PublishingTest, SizesWithinClamps) {
  Rng rng(6);
  const auto s = generatePublishing(smallParams(), 1.5, 0.85, rng);
  for (const auto& info : s.pages) {
    EXPECT_GE(info.size, smallParams().minPageSize);
    EXPECT_LE(info.size, smallParams().maxPageSize);
  }
}

TEST(PublishingTest, IntervalDistributionStepwise) {
  Rng rng(7);
  PublishingParams p;
  p.numPages = 4000;
  p.numUpdatedPages = 4000;
  const auto s = generatePublishing(p, 1.5, 0.0, rng);
  int shortIv = 0, longIv = 0;
  for (const auto& info : s.pages) {
    ASSERT_GT(info.modificationInterval, 0.0);
    if (info.modificationInterval < kHour) ++shortIv;
    if (info.modificationInterval > kDay) ++longIv;
  }
  // 5% below an hour, 5% above a day (section 4.1).
  EXPECT_NEAR(shortIv / 4000.0, 0.05, 0.015);
  EXPECT_NEAR(longIv / 4000.0, 0.05, 0.015);
}

TEST(PublishingTest, RanksAreAPermutation) {
  Rng rng(8);
  const auto s = generatePublishing(smallParams(), 1.5, 0.85, rng);
  std::vector<bool> seen(s.pages.size() + 1, false);
  for (const auto& info : s.pages) {
    ASSERT_GE(info.popularityRank, 1u);
    ASSERT_LE(info.popularityRank, s.pages.size());
    ASSERT_FALSE(seen[info.popularityRank]);
    seen[info.popularityRank] = true;
  }
}

TEST(PublishingTest, TopRanksBiasedTowardUpdatedPages) {
  Rng rng(9);
  const auto s = generatePublishing(smallParams(), 1.5, 0.9, rng);
  int updatedInTop = 0;
  for (const auto& info : s.pages) {
    if (info.popularityRank <= 200 && info.modificationInterval > 0) {
      ++updatedInTop;
    }
  }
  // With bias 0.9 the top 200 ranks are overwhelmingly updated pages;
  // an unbiased deal would give ~80.
  EXPECT_GT(updatedInTop, 150);
}

TEST(PublishingTest, ShortestIntervalsGoToMostPopularUpdatedPages) {
  Rng rng(10);
  const auto s = generatePublishing(smallParams(), 1.5, 1.0, rng);
  // Assortative assignment: among updated pages, intervals increase
  // with rank.
  std::vector<std::pair<std::uint32_t, double>> byRank;
  for (const auto& info : s.pages) {
    if (info.modificationInterval > 0) {
      byRank.emplace_back(info.popularityRank, info.modificationInterval);
    }
  }
  std::sort(byRank.begin(), byRank.end());
  for (std::size_t i = 1; i < byRank.size(); ++i) {
    EXPECT_LE(byRank[i - 1].second, byRank[i].second);
  }
}

TEST(PublishingTest, ZeroBiasStillAssignsAllIntervals) {
  Rng rng(11);
  const auto s = generatePublishing(smallParams(), 1.5, 0.0, rng);
  const auto updated = std::count_if(
      s.pages.begin(), s.pages.end(),
      [](const PageInfo& p) { return p.modificationInterval > 0; });
  EXPECT_EQ(updated, 200);
}

TEST(PublishingTest, DeterministicPerSeed) {
  Rng a(42), b(42);
  const auto s1 = generatePublishing(smallParams(), 1.5, 0.85, a);
  const auto s2 = generatePublishing(smallParams(), 1.5, 0.85, b);
  ASSERT_EQ(s1.events.size(), s2.events.size());
  for (std::size_t i = 0; i < s1.events.size(); ++i) {
    EXPECT_EQ(s1.events[i].page, s2.events[i].page);
    EXPECT_DOUBLE_EQ(s1.events[i].time, s2.events[i].time);
  }
}

TEST(PublishingTest, RejectsBadParams) {
  Rng rng(1);
  PublishingParams p;
  p.numPages = 0;
  EXPECT_THROW(generatePublishing(p, 1.5, 0.85, rng), std::invalid_argument);
  p = smallParams();
  p.numUpdatedPages = p.numPages + 1;
  EXPECT_THROW(generatePublishing(p, 1.5, 0.85, rng), std::invalid_argument);
  p = smallParams();
  p.maxVersionsPerPage = 0;
  EXPECT_THROW(generatePublishing(p, 1.5, 0.85, rng), std::invalid_argument);
}

}  // namespace
}  // namespace pscd
