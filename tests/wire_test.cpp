// Wire-protocol codec tests: encode→decode identity for every frame
// type, incremental (streaming) decode, and field-named rejection of
// every malformed-header and malformed-body class the decoder guards.
#include "pscd/net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace pscd::net {
namespace {

std::vector<WireFrame> sampleFrames() {
  std::vector<WireFrame> frames;
  WireFrame f;
  f.seq = 1;
  f.body = SubscribeBody{3, 17, 5};
  frames.push_back(f);
  f.seq = 2;
  f.body = UnsubscribeBody{0, 0, 1};
  frames.push_back(f);
  f.seq = 0xffffffffu;
  f.body = PublishBody{42, 7, 123456};
  frames.push_back(f);
  f.seq = 0;
  f.body = RequestBody{1, kInvalidPage};
  frames.push_back(f);
  f.seq = 99;
  ResponseBody r;
  r.status = 0;
  r.op = static_cast<std::uint8_t>(FrameType::kRequest);
  r.hit = 1;
  r.stale = 1;
  r.pages = 12;
  r.bytes = 0xdeadbeefcafeull;
  r.responseTimeMs = 3.25;
  f.body = r;
  frames.push_back(f);
  return frames;
}

TEST(Wire, EncodeDecodeIdentityForEveryFrameType) {
  for (const WireFrame& frame : sampleFrames()) {
    const std::string bytes = encodeFrame(frame);
    ASSERT_GE(bytes.size(), kWireHeaderBytes);
    const DecodeResult result = decodeFrame(bytes);
    ASSERT_EQ(result.status, DecodeStatus::kOk)
        << frameTypeName(frame.type()) << ": " << result.error;
    EXPECT_EQ(result.consumed, bytes.size());
    EXPECT_EQ(result.frame, frame);
    EXPECT_TRUE(result.error.empty());
    // The closed-buffer wrapper agrees.
    EXPECT_EQ(decodeClosedFrame(bytes), frame);
  }
}

TEST(Wire, ResponseTimePreservedBitExactly) {
  WireFrame frame;
  frame.seq = 7;
  ResponseBody r;
  r.op = static_cast<std::uint8_t>(FrameType::kRequest);
  r.responseTimeMs = 0.1 + 0.2;  // not representable exactly: must
                                 // survive the round trip bit-for-bit
  frame.body = r;
  const WireFrame decoded = decodeClosedFrame(encodeFrame(frame));
  EXPECT_EQ(std::get<ResponseBody>(decoded.body).responseTimeMs,
            r.responseTimeMs);
}

TEST(Wire, BackToBackFramesDecodeInSequence) {
  std::string stream;
  const std::vector<WireFrame> frames = sampleFrames();
  for (const WireFrame& frame : frames) encodeFrame(frame, &stream);
  std::size_t offset = 0;
  for (const WireFrame& expected : frames) {
    const DecodeResult result = decodeFrame(
        std::string_view(stream).substr(offset));
    ASSERT_EQ(result.status, DecodeStatus::kOk) << result.error;
    EXPECT_EQ(result.frame, expected);
    offset += result.consumed;
  }
  EXPECT_EQ(offset, stream.size());
}

TEST(Wire, EveryProperPrefixNeedsMore) {
  const std::string bytes = encodeFrame(sampleFrames().back());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const DecodeResult result =
        decodeFrame(std::string_view(bytes).substr(0, n));
    EXPECT_EQ(result.status, DecodeStatus::kNeedMore) << "prefix " << n;
    EXPECT_EQ(result.consumed, 0u);
  }
}

TEST(Wire, EmptyInputNeedsMore) {
  EXPECT_EQ(decodeFrame(std::string_view()).status, DecodeStatus::kNeedMore);
}

// Returns the decode error for `bytes` after asserting it is kError.
std::string errorFor(std::string bytes) {
  const DecodeResult result = decodeFrame(bytes);
  EXPECT_EQ(result.status, DecodeStatus::kError);
  EXPECT_FALSE(result.error.empty());
  return result.error;
}

TEST(Wire, BadMagicRejectedByName) {
  std::string bytes = encodeFrame(sampleFrames().front());
  bytes[0] = 'X';
  EXPECT_NE(errorFor(bytes).find("magic"), std::string::npos);
}

TEST(Wire, BadVersionRejectedByName) {
  std::string bytes = encodeFrame(sampleFrames().front());
  bytes[4] = static_cast<char>(kWireVersion + 1);
  EXPECT_NE(errorFor(bytes).find("version"), std::string::npos);
}

TEST(Wire, BadTypeRejectedByName) {
  for (const std::uint8_t type : {std::uint8_t{0}, std::uint8_t{6},
                                  std::uint8_t{255}}) {
    std::string bytes = encodeFrame(sampleFrames().front());
    bytes[5] = static_cast<char>(type);
    EXPECT_NE(errorFor(bytes).find("type"), std::string::npos);
  }
}

TEST(Wire, ReservedFlagsMustBeZero) {
  std::string bytes = encodeFrame(sampleFrames().front());
  bytes[6] = 1;
  EXPECT_NE(errorFor(bytes).find("flags"), std::string::npos);
}

TEST(Wire, OversizeBodyLengthRejected) {
  std::string bytes = encodeFrame(sampleFrames().front());
  // bodyLen lives at offset 12 (LE); claim kMaxBodyBytes + 1.
  const std::uint32_t big = kMaxBodyBytes + 1;
  std::memcpy(&bytes[12], &big, sizeof(big));
  const std::string error = errorFor(bytes);
  EXPECT_NE(error.find("body length"), std::string::npos);
}

TEST(Wire, WrongBodyLengthForTypeRejectedByName) {
  for (const WireFrame& frame : sampleFrames()) {
    std::string bytes = encodeFrame(frame);
    const std::uint32_t wrong =
        static_cast<std::uint32_t>(bytes.size() - kWireHeaderBytes) + 1;
    std::memcpy(&bytes[12], &wrong, sizeof(wrong));
    bytes.push_back('\0');  // make the claimed body actually present
    const std::string error = errorFor(bytes);
    EXPECT_NE(error.find("body length"), std::string::npos);
    EXPECT_NE(error.find(frameTypeName(frame.type())), std::string::npos);
  }
}

TEST(Wire, ResponseValidationRejectsBadEnumBytes) {
  const WireFrame frame = sampleFrames().back();
  const std::string good = encodeFrame(frame);
  {
    std::string bytes = good;
    bytes[kWireHeaderBytes + 0] = 3;  // status must be 0/1/2
    EXPECT_NE(errorFor(bytes).find("status"), std::string::npos);
  }
  {
    std::string bytes = good;
    bytes[kWireHeaderBytes + 1] = 5;  // op must name a request type
    EXPECT_NE(errorFor(bytes).find("op"), std::string::npos);
  }
  {
    std::string bytes = good;
    bytes[kWireHeaderBytes + 2] = 2;  // hit is a bool mirror
    EXPECT_NE(errorFor(bytes).find("hit"), std::string::npos);
  }
  {
    std::string bytes = good;
    bytes[kWireHeaderBytes + 3] = 7;  // stale is a bool mirror
    EXPECT_NE(errorFor(bytes).find("stale"), std::string::npos);
  }
}

TEST(Wire, OverloadedStatusRoundTrips) {
  // status=2 (kOverloaded) is a first-class wire value: the daemon's
  // load shedder answers REQUEST frames with it instead of queueing.
  WireFrame frame;
  frame.seq = 7;
  ResponseBody r;
  r.status = static_cast<std::uint8_t>(ResponseStatus::kOverloaded);
  r.op = static_cast<std::uint8_t>(FrameType::kRequest);
  frame.body = r;
  const std::string bytes = encodeFrame(frame);
  const DecodeResult result = decodeFrame(bytes);
  ASSERT_EQ(result.status, DecodeStatus::kOk) << result.error;
  EXPECT_EQ(result.frame, frame);
  const auto& body = std::get<ResponseBody>(result.frame.body);
  EXPECT_TRUE(body.overloaded());
  EXPECT_FALSE(body.ok());
}

TEST(Wire, NonFiniteResponseTimeRejectedOnDecode) {
  std::string bytes = encodeFrame(sampleFrames().back());
  // responseTimeMs occupies the last 8 body bytes; all-ones is a NaN.
  for (std::size_t i = bytes.size() - 8; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xff);
  }
  EXPECT_NE(errorFor(bytes).find("responseTimeMs"), std::string::npos);
}

TEST(Wire, EncodeRefusesNonFiniteResponseTime) {
  WireFrame frame;
  ResponseBody r;
  r.op = static_cast<std::uint8_t>(FrameType::kRequest);
  r.responseTimeMs = std::numeric_limits<double>::quiet_NaN();
  frame.body = r;
  std::string out;
  EXPECT_THROW(encodeFrame(frame, &out), std::invalid_argument);
  r.responseTimeMs = std::numeric_limits<double>::infinity();
  frame.body = r;
  EXPECT_THROW(encodeFrame(frame, &out), std::invalid_argument);
}

TEST(Wire, DecodeClosedFrameThrowsOnTruncationAndTrailingBytes) {
  const std::string bytes = encodeFrame(sampleFrames().front());
  EXPECT_THROW(decodeClosedFrame(bytes.substr(0, bytes.size() - 1)),
               std::runtime_error);
  EXPECT_THROW(decodeClosedFrame(bytes + "x"), std::runtime_error);
  EXPECT_THROW(decodeClosedFrame("PSC1 but not a frame"),
               std::runtime_error);
}

TEST(Wire, FrameTypeNames) {
  EXPECT_EQ(frameTypeName(FrameType::kSubscribe), "SUBSCRIBE");
  EXPECT_EQ(frameTypeName(FrameType::kUnsubscribe), "UNSUBSCRIBE");
  EXPECT_EQ(frameTypeName(FrameType::kPublish), "PUBLISH");
  EXPECT_EQ(frameTypeName(FrameType::kRequest), "REQUEST");
  EXPECT_EQ(frameTypeName(FrameType::kResponse), "RESPONSE");
  EXPECT_EQ(frameTypeName(static_cast<FrameType>(0)), "?");
}

}  // namespace
}  // namespace pscd::net
