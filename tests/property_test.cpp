// Parameterized property tests: every strategy in the factory is driven
// through randomized push/request sequences and must uphold the
// structural invariants of a content-distribution cache.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "pscd/cache/strategy_factory.h"
#include "pscd/util/rng.h"

namespace pscd {
namespace {

constexpr StrategyKind kAllKinds[] = {
    StrategyKind::kGDStar, StrategyKind::kSUB,   StrategyKind::kSG1,
    StrategyKind::kSG2,    StrategyKind::kSR,    StrategyKind::kDM,
    StrategyKind::kDCFP,   StrategyKind::kDCAP,  StrategyKind::kDCLAP,
    StrategyKind::kLRU,    StrategyKind::kGDS,   StrategyKind::kLFUDA,
};

struct Op {
  bool isPush;
  PageId page;
  Version version;
  Bytes size;
  std::uint32_t subs;
  SimTime time;
};

std::vector<Op> randomOps(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<Op> ops;
  std::map<PageId, Version> latest;
  std::map<PageId, Bytes> size;
  for (int i = 0; i < count; ++i) {
    Op op;
    op.page = static_cast<PageId>(rng.uniformInt(std::uint64_t{25}));
    if (!latest.contains(op.page) || rng.bernoulli(0.15)) {
      // (Re-)publish: bump the version.
      op.isPush = true;
      op.version = latest.contains(op.page) ? latest[op.page] + 1 : 0;
      latest[op.page] = op.version;
      size[op.page] = 16 + 8 * rng.uniformInt(std::uint64_t{20});
    } else {
      op.isPush = rng.bernoulli(0.4);
      op.version = latest[op.page];
    }
    op.size = size[op.page];
    op.subs = 1 + static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{9}));
    op.time = static_cast<SimTime>(i);
    ops.push_back(op);
  }
  return ops;
}

class StrategyPropertyTest : public ::testing::TestWithParam<StrategyKind> {
 protected:
  static std::unique_ptr<DistributionStrategy> make(Bytes capacity) {
    StrategyParams p;
    p.capacity = capacity;
    p.fetchCost = 1.3;
    p.beta = 2.0;
    return makeStrategy(GetParam(), p);
  }
};

TEST_P(StrategyPropertyTest, InvariantsUnderRandomChurn) {
  const auto s = make(400);
  for (const Op& op : randomOps(77, 1500)) {
    if (op.isPush) {
      s->onPush({op.page, op.version, op.size, op.subs, op.time});
    } else {
      s->onRequest({op.page, op.version, op.size, op.subs, op.time});
    }
    ASSERT_LE(s->usedBytes(), s->capacityBytes());
    ASSERT_NO_THROW(s->checkInvariants());
  }
}

TEST_P(StrategyPropertyTest, NeverHitsUnseenPage) {
  const auto s = make(1000);
  Rng rng(5);
  std::map<PageId, bool> seen;
  for (const Op& op : randomOps(11, 600)) {
    if (op.isPush) {
      s->onPush({op.page, op.version, op.size, op.subs, op.time});
      seen[op.page] = true;
    } else {
      const auto out =
          s->onRequest({op.page, op.version, op.size, op.subs, op.time});
      if (!seen.contains(op.page)) {
        ASSERT_FALSE(out.hit) << "hit on never-seen page " << op.page;
      }
      seen[op.page] = true;
    }
  }
}

TEST_P(StrategyPropertyTest, StoredPushIsImmediatelyHittable) {
  const auto s = make(500);
  for (const Op& op : randomOps(23, 800)) {
    if (!op.isPush) continue;
    const auto out =
        s->onPush({op.page, op.version, op.size, op.subs, op.time});
    if (out.stored) {
      const auto r = s->onRequest(
          {op.page, op.version, op.size, op.subs, op.time + 0.5});
      ASSERT_TRUE(r.hit) << s->name() << " stored page " << op.page
                         << " but missed the next request";
    }
  }
}

TEST_P(StrategyPropertyTest, NewerVersionNeverServedStale) {
  const auto s = make(500);
  // Probe versions count upward from far above anything the op stream
  // (or a previous probe) ever stored, so a hit would mean the strategy
  // served a version it cannot possess.
  Version probe = 1000;
  for (const Op& op : randomOps(31, 500)) {
    if (op.isPush) {
      s->onPush({op.page, op.version, op.size, op.subs, op.time});
    } else {
      s->onRequest({op.page, op.version, op.size, op.subs, op.time});
    }
    const auto r = s->onRequest(
        {op.page, ++probe, op.size, op.subs, op.time + 0.25});
    ASSERT_FALSE(r.hit);
  }
}

TEST_P(StrategyPropertyTest, DeterministicReplay) {
  const auto a = make(300);
  const auto b = make(300);
  for (const Op& op : randomOps(99, 700)) {
    if (op.isPush) {
      const PushContext ctx{op.page, op.version, op.size, op.subs, op.time};
      ASSERT_EQ(a->onPush(ctx).stored, b->onPush(ctx).stored);
    } else {
      const RequestContext ctx{op.page, op.version, op.size, op.subs,
                               op.time};
      const auto ra = a->onRequest(ctx);
      const auto rb = b->onRequest(ctx);
      ASSERT_EQ(ra.hit, rb.hit);
      ASSERT_EQ(ra.storedAfterMiss, rb.storedAfterMiss);
    }
  }
  EXPECT_EQ(a->usedBytes(), b->usedBytes());
}

TEST_P(StrategyPropertyTest, TinyCapacityNeverOverflows) {
  const auto s = make(40);  // smaller than many pages
  for (const Op& op : randomOps(123, 800)) {
    if (op.isPush) {
      s->onPush({op.page, op.version, op.size, op.subs, op.time});
    } else {
      s->onRequest({op.page, op.version, op.size, op.subs, op.time});
    }
    ASSERT_LE(s->usedBytes(), 40u);
  }
}

TEST_P(StrategyPropertyTest, PushOnlyAffectsPushCapableStrategies) {
  const auto s = make(500);
  const auto out = s->onPush({1, 0, 100, 5, 0.0});
  if (!s->pushCapable()) {
    EXPECT_FALSE(out.stored);
    EXPECT_EQ(s->usedBytes(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyPropertyTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      std::string name{strategyName(info.param)};
      for (auto& c : name) {
        if (c == '*') c = 's';
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pscd
