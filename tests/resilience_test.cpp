// Fault-hardening tests (DESIGN.md §14): the daemon's connection
// deadlines / load shedding / graceful drain, the hardened WireClient
// retry path, and the ChaosProxy fault injector — wired together over
// loopback so every injected fault lands in an exact counter.
//
// Determinism: each scenario's fault schedule is a pure function of its
// (seed, ChaosConfig, workload), so the tests assert full stats structs
// with operator==, not >= bounds; ChaosDeterminism runs one scenario
// twice and requires identical counters end to end.
#include "pscd/net/chaos.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pscd/net/client.h"
#include "pscd/net/daemon.h"
#include "pscd/net/wire.h"
#include "pscd/util/wallclock.h"

namespace pscd::net {
namespace {

std::size_t countOpenFds() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

ServeHostConfig smallHostConfig() {
  ServeHostConfig config;
  config.numProxies = 2;
  config.numTransitNodes = 2;
  return config;
}

std::string encodedRequest(std::uint32_t seq, ProxyId proxy, PageId page) {
  WireFrame frame;
  frame.seq = seq;
  frame.body = RequestBody{proxy, page};
  return encodeFrame(frame);
}

/// Blocking loopback socket, optionally with a tiny receive buffer set
/// *before* connect (so the kernel's clamped floor applies to the
/// window the daemon sees).
int rawConnect(std::uint16_t port, int rcvbufBytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  if (rcvbufBytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbufBytes,
                 sizeof(rcvbufBytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void sendAllRaw(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

// ---------------------------------------------------------------------
// Satellite: every DaemonStats counter provoked exactly once, asserting
// the FULL struct — a counter that fires as a side effect of another
// scenario (or fails to fire at all) breaks the == on the whole record.

struct CounterCase {
  const char* name;
  DaemonConfig config;
  /// When true the provocation ends the run itself (drain scenarios);
  /// the runner then only joins instead of calling stop().
  bool selfStopping;
  std::function<void(ServeHost&)> provoke;
  DaemonStats expected;
};

TEST(DaemonCounters, EveryCounterFiresExactlyOnce) {
  std::vector<CounterCase> cases;

  {
    CounterCase c;
    c.name = "clean_baseline";
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      EXPECT_TRUE(client.publish(1, 1, 64).ok());
    };
    c.expected = DaemonStats{.accepted = 1, .closed = 1, .framesHandled = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "accept_rejected";
    c.config.maxConnections = 1;
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      EXPECT_TRUE(client.publish(1, 1, 64).ok());
      // Over the cap: accepted and immediately closed — the blocking
      // recv returning 0 proves the daemon processed the reject.
      const int fd = rawConnect(host.daemon().port(), 0);
      char byte = 0;
      EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
      ::close(fd);
    };
    c.expected = DaemonStats{.accepted = 1,
                             .acceptRejected = 1,
                             .closed = 1,
                             .framesHandled = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "decode_error";
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      client.sendRaw("not a PSC1 frame, not even close..............");
      EXPECT_THROW(client.request(0, 1), std::runtime_error);
    };
    c.expected = DaemonStats{.accepted = 1, .closed = 1, .decodeErrors = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "protocol_error";
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      WireFrame frame;
      frame.seq = 1;
      frame.body = ResponseBody{
          0, static_cast<std::uint8_t>(FrameType::kRequest), 0, 0, 0, 0,
          0.0};
      client.sendRaw(encodeFrame(frame));
      EXPECT_THROW(client.request(0, 1), std::runtime_error);
    };
    c.expected = DaemonStats{.accepted = 1, .closed = 1,
                             .protocolErrors = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "error_response";
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      EXPECT_FALSE(client.request(0, 999).ok());  // unknown page
    };
    c.expected = DaemonStats{.accepted = 1,
                             .closed = 1,
                             .framesHandled = 1,
                             .errorResponses = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "input_overflow";
    c.config.maxInBufferBytes = 8;
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      // A well-formed 16-byte header whose body never arrives: decode
      // says kNeedMore, and the 16 buffered bytes blow the 8-byte cap.
      client.sendRaw(encodedRequest(1, 0, 1).substr(0, 16));
      WireFrame out;
      EXPECT_EQ(client.readResponse(5.0, &out), WireError::kConnReset);
    };
    c.expected = DaemonStats{.accepted = 1, .closed = 1,
                             .inputOverflows = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "idle_timeout";
    c.config.idleTimeoutSeconds = 0.1;
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      EXPECT_TRUE(client.publish(1, 1, 64).ok());
      // Go silent; the daemon reaps us and we observe the close.
      WireFrame out;
      EXPECT_EQ(client.readResponse(5.0, &out), WireError::kConnReset);
    };
    c.expected = DaemonStats{.accepted = 1,
                             .closed = 1,
                             .framesHandled = 1,
                             .idleTimeouts = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "read_timeout_slow_loris";
    c.config.readTimeoutSeconds = 0.1;
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      // Half a header, then silence: a slow loris holding a partial
      // frame open. Only the read deadline is armed (idle is off).
      client.sendRaw(encodedRequest(1, 0, 1).substr(0, 8));
      WireFrame out;
      EXPECT_EQ(client.readResponse(5.0, &out), WireError::kConnReset);
    };
    c.expected = DaemonStats{.accepted = 1, .closed = 1,
                             .readTimeouts = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "write_timeout_slow_reader";
    c.config.writeTimeoutSeconds = 0.2;
    c.config.sendBufferBytes = 1;  // kernel clamps to its floor
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      {
        WireClient seeder("127.0.0.1", host.daemon().port());
        EXPECT_TRUE(seeder.publish(1, 1, 64).ok());
      }
      // A reader that never reads: tiny receive window + a pipelined
      // burst whose responses cannot fit in the daemon's (floored)
      // send buffer, so flushWrites hits EAGAIN and the write deadline
      // reaps the connection.
      const int fd = rawConnect(host.daemon().port(), 1);
      std::string burst;
      for (std::uint32_t i = 0; i < 400; ++i) {
        burst += encodedRequest(100 + i, 0, 1);
      }
      sendAllRaw(fd, burst);
      sleepSeconds(1.0);
      ::close(fd);
    };
    c.expected = DaemonStats{.accepted = 2,
                             .closed = 2,
                             .framesHandled = 401,
                             .writeTimeouts = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "overload_shed";
    c.config.shedThreshold = 4;
    c.selfStopping = false;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      EXPECT_TRUE(client.publish(1, 1, 64).ok());
      // One pipelined burst arrives as one input drain: the first 4
      // REQUESTs execute, the remaining 6 are answered kOverloaded in
      // order, all on a connection that stays open.
      std::string burst;
      for (std::uint32_t i = 0; i < 10; ++i) {
        burst += encodedRequest(100 + i, 0, 1);
      }
      client.sendRaw(burst);
      int executed = 0;
      int shed = 0;
      for (int i = 0; i < 10; ++i) {
        WireFrame out;
        ASSERT_EQ(client.readResponse(5.0, &out), WireError::kNone);
        const auto& resp = std::get<ResponseBody>(out.body);
        if (resp.overloaded()) {
          ++shed;
        } else {
          ++executed;
        }
      }
      EXPECT_EQ(executed, 4);
      EXPECT_EQ(shed, 6);
      // The shed connection still serves: state-mutating ops were
      // never shed and the stream is intact.
      EXPECT_TRUE(client.request(0, 1).ok());
    };
    c.expected = DaemonStats{.accepted = 1,
                             .closed = 1,
                             .framesHandled = 12,
                             .overloadShed = 6};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "drain_flushed";
    c.selfStopping = true;  // run() ends when the drained client leaves
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      EXPECT_TRUE(client.publish(1, 1, 64).ok());
      host.daemon().stopDrain();
      // A full round trip after stopDrain(): by the time our EOF is
      // processed, the loop has passed its mode check and is draining.
      EXPECT_TRUE(client.request(0, 1).ok());
    };
    c.expected = DaemonStats{.accepted = 1,
                             .closed = 1,
                             .framesHandled = 2,
                             .drainFlushed = 1};
    cases.push_back(std::move(c));
  }
  {
    CounterCase c;
    c.name = "drain_deadline_expires";
    c.config.drainSeconds = 0.2;
    c.selfStopping = true;
    c.provoke = [](ServeHost& host) {
      WireClient client("127.0.0.1", host.daemon().port());
      EXPECT_TRUE(client.publish(1, 1, 64).ok());
      host.daemon().stopDrain();
      // Never close: the drain budget expires and the daemon abandons
      // the connection — counted as closed, NOT as drainFlushed.
      sleepSeconds(0.8);
    };
    c.expected = DaemonStats{.accepted = 1, .closed = 1,
                             .framesHandled = 1};
    cases.push_back(std::move(c));
  }

  for (const CounterCase& c : cases) {
    SCOPED_TRACE(c.name);
    ServeHost host(smallHostConfig(), c.config);
    std::thread loop([&host] { host.daemon().run(); });
    c.provoke(host);
    if (!c.selfStopping) host.daemon().stop();
    loop.join();
    EXPECT_TRUE(host.daemon().stats() == c.expected)
        << "got:      " << formatDaemonStats(host.daemon().stats())
        << "\nexpected: " << formatDaemonStats(c.expected);
  }
}

// ---------------------------------------------------------------------
// Chaos proxy scenarios: daemon + ChaosProxy on background threads, a
// hardened WireClient dialing the proxy.

struct ChaosOutcome {
  CallResult result;
  ClientStats client;
  DaemonStats daemon;
  ChaosStats chaos;
};

/// Runs one hardened publish through a chaos proxy whose first
/// connection is broken per `mutate`; the retry's reconnect lands on a
/// clean link (faultConnections = 1) and must succeed.
ChaosOutcome runFaultedCallScenario(
    const std::function<void(ChaosConfig&)>& mutate) {
  ChaosOutcome outcome;
  ServeHost host(smallHostConfig(), DaemonConfig{});
  std::thread daemonLoop([&host] { host.daemon().run(); });

  ChaosConfig chaosConfig;
  chaosConfig.targetPort = host.daemon().port();
  chaosConfig.seed = 7;
  chaosConfig.faultConnections = 1;
  mutate(chaosConfig);
  ChaosProxy proxy(chaosConfig);
  std::thread proxyLoop([&proxy] { proxy.run(); });

  {
    WireClient client("127.0.0.1", proxy.port());
    WireFrame frame;
    frame.body = PublishBody{1, 1, 64};
    CallOptions options;
    options.deadlineSeconds = 0.3;
    options.retries = 2;
    options.backoffSeconds = 0.01;
    outcome.result = client.call(frame, options);
    outcome.client = client.stats();
  }

  proxy.stop();
  proxyLoop.join();
  host.daemon().stop();
  daemonLoop.join();
  outcome.daemon = host.daemon().stats();
  outcome.chaos = proxy.stats();
  return outcome;
}

TEST(ChaosResilience, StalledConnectionTimesOutAndRetrySucceeds) {
  const ChaosOutcome outcome = runFaultedCallScenario([](ChaosConfig& c) {
    // Forward exactly 1 byte of the first connection's request, then
    // hang: the daemon never sees a full frame, the client's deadline
    // expires, and the retry reconnects onto a clean link.
    c.clientToServer.stallAfterBytes = 1;
  });
  EXPECT_TRUE(outcome.result.ok()) << outcome.result.message;
  EXPECT_EQ(outcome.result.attempts, 2u);
  const ClientStats expectedClient{
      .calls = 1, .timeouts = 1, .retries = 1, .reconnects = 1};
  EXPECT_TRUE(outcome.client == expectedClient);
  const DaemonStats expectedDaemon{
      .accepted = 2, .closed = 2, .framesHandled = 1};
  EXPECT_TRUE(outcome.daemon == expectedDaemon)
      << formatDaemonStats(outcome.daemon);
  EXPECT_EQ(outcome.chaos.connections, 2u);
  EXPECT_EQ(outcome.chaos.stalled, 1u);
  EXPECT_EQ(outcome.chaos.resets, 0u);
}

TEST(ChaosResilience, MidFrameResetIsRetriedOnAFreshConnection) {
  const ChaosOutcome outcome = runFaultedCallScenario([](ChaosConfig& c) {
    // RST the first connection as soon as the client has sent 10 bytes
    // (mid-frame): the client sees a hard reset, not a clean close.
    c.resetAfterClientBytes = 10;
  });
  EXPECT_TRUE(outcome.result.ok()) << outcome.result.message;
  EXPECT_EQ(outcome.result.attempts, 2u);
  const ClientStats expectedClient{
      .calls = 1, .connResets = 1, .retries = 1, .reconnects = 1};
  EXPECT_TRUE(outcome.client == expectedClient);
  const DaemonStats expectedDaemon{
      .accepted = 2, .closed = 2, .framesHandled = 1};
  EXPECT_TRUE(outcome.daemon == expectedDaemon)
      << formatDaemonStats(outcome.daemon);
  EXPECT_EQ(outcome.chaos.connections, 2u);
  EXPECT_EQ(outcome.chaos.resets, 1u);
}

TEST(ChaosResilience, TruncatedResponseReadsAsConnReset) {
  // Truncate the server->client direction mid-frame: the client gets a
  // clean EOF in the middle of a RESPONSE and classifies it as a
  // connection loss; the retry lands on a clean link.
  const ChaosOutcome outcome = runFaultedCallScenario([](ChaosConfig& c) {
    c.serverToClient.truncateAfterBytes = 5;
  });
  EXPECT_TRUE(outcome.result.ok()) << outcome.result.message;
  EXPECT_EQ(outcome.result.attempts, 2u);
  const ClientStats expectedClient{
      .calls = 1, .connResets = 1, .retries = 1, .reconnects = 1};
  EXPECT_TRUE(outcome.client == expectedClient);
  EXPECT_EQ(outcome.chaos.truncated, 1u);
  // Both attempts' frames reached the daemon — only the reply was cut.
  EXPECT_EQ(outcome.daemon.framesHandled, 2u);
}

TEST(ChaosResilience, SameSeedAndConfigReplaysIdenticalCounters) {
  const auto mutate = [](ChaosConfig& c) {
    c.clientToServer.stallAfterBytes = 1;
  };
  const ChaosOutcome first = runFaultedCallScenario(mutate);
  const ChaosOutcome second = runFaultedCallScenario(mutate);
  EXPECT_TRUE(first.client == second.client);
  EXPECT_TRUE(first.daemon == second.daemon)
      << formatDaemonStats(first.daemon) << "\nvs "
      << formatDaemonStats(second.daemon);
  EXPECT_TRUE(first.chaos == second.chaos)
      << formatChaosStats(first.chaos) << "\nvs "
      << formatChaosStats(second.chaos);
  EXPECT_EQ(first.result.attempts, second.result.attempts);
}

TEST(ChaosResilience, FullFaultedScenarioLeaksNoFds) {
  const std::size_t before = countOpenFds();
  {
    const ChaosOutcome outcome = runFaultedCallScenario([](ChaosConfig& c) {
      c.resetAfterClientBytes = 10;
    });
    EXPECT_TRUE(outcome.result.ok());
  }
  EXPECT_EQ(countOpenFds(), before);
}

TEST(ChaosResilience, ChaosConfigIsValidated) {
  EXPECT_THROW(ChaosProxy{ChaosConfig{}}, std::invalid_argument);
  ChaosConfig negative;
  negative.targetPort = 1;
  negative.serverToClient.latencySeconds = -1.0;
  EXPECT_THROW(ChaosProxy{negative}, std::invalid_argument);
}

// ---------------------------------------------------------------------
// Satellite: hostname resolution in WireClient.

TEST(ClientResolve, LocalhostHostnameConnects) {
  ServeHost host(smallHostConfig(), DaemonConfig{});
  std::thread loop([&host] { host.daemon().run(); });
  {
    WireClient client("localhost", host.daemon().port());
    EXPECT_TRUE(client.publish(1, 1, 64).ok());
  }
  host.daemon().stop();
  loop.join();
}

TEST(ClientResolve, UnresolvableHostThrows) {
  EXPECT_THROW(WireClient("no.such.host.invalid", 1), std::runtime_error);
}

}  // namespace
}  // namespace pscd::net
