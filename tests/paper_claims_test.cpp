// Full-scale regression guards for the paper's shape claims: these run
// the canonical NEWS/ALTERNATIVE traces (195k requests, 100 proxies,
// seeds fixed) and assert the qualitative results of section 5 that
// EXPERIMENTS.md reports. If a refactor silently changes a strategy's
// semantics or the workload calibration, these tests catch it even when
// every unit test still passes.
#include <gtest/gtest.h>

#include "pscd/sim/experiment.h"

namespace pscd {
namespace {

ExperimentContext& ctx() {
  static ExperimentContext context;  // workloads cached across tests
  return context;
}

double hit(TraceKind trace, StrategyKind kind, double cap = 0.05,
           double sq = 1.0) {
  return ctx().run(trace, sq, kind, cap).hitRatio();
}

TEST(PaperClaimsTest, Table2AllPushingSchemesBeatGdStarAt5Percent) {
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    const double gd = hit(trace, StrategyKind::kGDStar);
    for (const StrategyKind kind :
         {StrategyKind::kSUB, StrategyKind::kSG1, StrategyKind::kSG2,
          StrategyKind::kSR, StrategyKind::kDM, StrategyKind::kDCFP,
          StrategyKind::kDCLAP}) {
      EXPECT_GT(hit(trace, kind), gd)
          << traceName(trace) << " " << strategyName(kind);
    }
  }
}

TEST(PaperClaimsTest, Table2Sg2AndSrLeadTheFamily) {
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    const double sg2 = hit(trace, StrategyKind::kSG2);
    const double sr = hit(trace, StrategyKind::kSR);
    const double top = std::max(sg2, sr);
    for (const StrategyKind kind :
         {StrategyKind::kSUB, StrategyKind::kSG1, StrategyKind::kDCFP,
          StrategyKind::kDCLAP}) {
      EXPECT_GT(top, hit(trace, kind))
          << traceName(trace) << " " << strategyName(kind);
    }
    // And the two are close to each other (the paper: "The temporal
    // analysis in SG2 does not provide extra benefit to SR").
    EXPECT_NEAR(sg2, sr, 0.02);
  }
}

TEST(PaperClaimsTest, Table2GainsLargerOnAlternativeTrace) {
  // "The much higher gains for ALTERNATIVE mean that the push-time
  // placement module benefits the non-homogeneous request streams more."
  for (const StrategyKind kind :
       {StrategyKind::kSUB, StrategyKind::kSG1, StrategyKind::kSG2,
        StrategyKind::kDCLAP}) {
    const double newsGain = hit(TraceKind::kNews, kind) /
                            hit(TraceKind::kNews, StrategyKind::kGDStar);
    const double altGain =
        hit(TraceKind::kAlternative, kind) /
        hit(TraceKind::kAlternative, StrategyKind::kGDStar);
    EXPECT_GT(altGain, newsGain) << strategyName(kind);
  }
}

TEST(PaperClaimsTest, Fig4HitRatioGrowsWithCapacity) {
  for (const StrategyKind kind :
       {StrategyKind::kGDStar, StrategyKind::kSUB, StrategyKind::kSG2,
        StrategyKind::kDCLAP}) {
    const double h1 = hit(TraceKind::kNews, kind, 0.01);
    const double h5 = hit(TraceKind::kNews, kind, 0.05);
    const double h10 = hit(TraceKind::kNews, kind, 0.10);
    EXPECT_LE(h1, h5 + 1e-9) << strategyName(kind);
    EXPECT_LE(h5, h10 + 1e-9) << strategyName(kind);
  }
}

TEST(PaperClaimsTest, Fig4GdStarMuchWeakerOnAlternative) {
  EXPECT_LT(hit(TraceKind::kAlternative, StrategyKind::kGDStar),
            hit(TraceKind::kNews, StrategyKind::kGDStar) - 0.15);
}

TEST(PaperClaimsTest, Fig5GdStarIndifferentToSubscriptionQuality) {
  const double base = hit(TraceKind::kNews, StrategyKind::kGDStar, 0.05, 1.0);
  for (const double sq : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(hit(TraceKind::kNews, StrategyKind::kGDStar, 0.05, sq), base,
                1e-9);
  }
}

TEST(PaperClaimsTest, Fig5SrDegradesMostWithSubscriptionQuality) {
  for (const TraceKind trace : {TraceKind::kNews, TraceKind::kAlternative}) {
    const double srDrop = hit(trace, StrategyKind::kSR, 0.05, 1.0) -
                          hit(trace, StrategyKind::kSR, 0.05, 0.25);
    const double sg1Drop = hit(trace, StrategyKind::kSG1, 0.05, 1.0) -
                           hit(trace, StrategyKind::kSG1, 0.05, 0.25);
    const double lapDrop = hit(trace, StrategyKind::kDCLAP, 0.05, 1.0) -
                           hit(trace, StrategyKind::kDCLAP, 0.05, 0.25);
    EXPECT_GT(srDrop, sg1Drop + 0.03) << traceName(trace);
    EXPECT_GT(srDrop, lapDrop + 0.03) << traceName(trace);
  }
}

TEST(PaperClaimsTest, Fig5Sg2FallsBelowSg1AtLowQualityOnAlternativeOnly) {
  // The paper's most distinctive fig. 5 observation.
  EXPECT_LT(hit(TraceKind::kAlternative, StrategyKind::kSG2, 0.05, 0.25),
            hit(TraceKind::kAlternative, StrategyKind::kSG1, 0.05, 0.25));
  EXPECT_GE(hit(TraceKind::kNews, StrategyKind::kSG2, 0.05, 0.25),
            hit(TraceKind::kNews, StrategyKind::kSG1, 0.05, 0.25) - 0.01);
}

TEST(PaperClaimsTest, Fig6SubDeterioratesOverTheWeek) {
  const auto m = ctx().run(TraceKind::kNews, 1.0, StrategyKind::kSUB, 0.05,
                           PushScheme::kAlwaysPushing, true);
  double early = 0, late = 0;
  const std::size_t half = m.hours() / 2;
  for (std::size_t h = 0; h < half; ++h) early += m.hourlyHitRatio(h);
  for (std::size_t h = half; h < m.hours(); ++h) late += m.hourlyHitRatio(h);
  EXPECT_LT(late / half, early / half - 0.05);
}

TEST(PaperClaimsTest, Fig7TrafficClaims) {
  const auto gd = ctx().run(TraceKind::kNews, 1.0, StrategyKind::kGDStar,
                            0.05, PushScheme::kAlwaysPushing);
  const auto gdWn = ctx().run(TraceKind::kNews, 1.0, StrategyKind::kGDStar,
                              0.05, PushScheme::kPushingWhenNecessary);
  // GD* traffic identical under both schemes.
  EXPECT_EQ(gd.traffic().totalPages(), gdWn.traffic().totalPages());

  const auto sub = ctx().run(TraceKind::kNews, 1.0, StrategyKind::kSUB, 0.05,
                             PushScheme::kAlwaysPushing);
  const auto sg2 = ctx().run(TraceKind::kNews, 1.0, StrategyKind::kSG2, 0.05,
                             PushScheme::kAlwaysPushing);
  // SUB generates the most traffic (fetch-on-miss without caching).
  EXPECT_GT(sub.traffic().totalPages(), sg2.traffic().totalPages());
  // Pushing-When-Necessary helps SUB the most.
  const auto subWn = ctx().run(TraceKind::kNews, 1.0, StrategyKind::kSUB,
                               0.05, PushScheme::kPushingWhenNecessary);
  const auto sg2Wn = ctx().run(TraceKind::kNews, 1.0, StrategyKind::kSG2,
                               0.05, PushScheme::kPushingWhenNecessary);
  const auto saved = [](const SimMetrics& always, const SimMetrics& wn) {
    return static_cast<double>(always.traffic().pushPages -
                               wn.traffic().pushPages) /
           static_cast<double>(always.traffic().pushPages);
  };
  EXPECT_GT(saved(sub, subWn), saved(sg2, sg2Wn));
}

TEST(PaperClaimsTest, ResponseTimeMirrorsHitRatioAcrossStrategies) {
  // The paper's motivation: higher H => lower user-perceived latency.
  double prevHit = -1.0, prevRt = 1e9;
  for (const StrategyKind kind :
       {StrategyKind::kGDStar, StrategyKind::kSUB, StrategyKind::kSG2}) {
    const auto m = ctx().run(TraceKind::kNews, 1.0, kind, 0.05);
    EXPECT_GT(m.hitRatio(), prevHit);
    EXPECT_LT(m.meanResponseTime(), prevRt);
    prevHit = m.hitRatio();
    prevRt = m.meanResponseTime();
  }
}

}  // namespace
}  // namespace pscd
